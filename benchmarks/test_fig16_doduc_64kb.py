"""Benchmark: regenerate Figure 16 (doduc with a 64KB cache)."""

from repro.experiments import get_experiment


def test_fig16(run_experiment):
    result = run_experiment("fig16", scale=1.0)
    baseline = get_experiment("fig5").run(scale=1.0)
    header = list(result.headers)
    col = header.index("mc=1")
    big = next(row for row in result.rows if row[0] == 10)[col]
    small = next(row for row in baseline.rows if row[0] == 10)[col]
    # Paper: ~5x lower absolute MCPI, same curve family.
    assert big < 0.45 * small
    print("\n" + result.render())
