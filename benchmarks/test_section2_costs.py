"""Benchmark: regenerate the Section 2 hardware-cost table."""


def test_costs(run_experiment):
    result = run_experiment("costs")
    bits = {row[0]: row[1] for row in result.rows}
    assert bits["implicit(32B line, 8B sub-blocks)"] == 92
    assert bits["explicit(32B line, 4 entries)"] == 112
    print("\n" + result.render())
