"""Benchmark: regenerate Figure 6 (in-flight histograms for doduc)."""


def test_fig6(run_experiment):
    result = run_experiment("fig6")
    # Max fetches never exceeds the 16-cycle miss penalty (single issue).
    for row in result.rows:
        if row[2] == "fetches":
            assert row[-1] <= 16
    print("\n" + result.render())
