"""Benchmark: regenerate Figure 18 (tomcatv MCPI vs miss penalty)."""

import pytest


def test_fig18(run_experiment):
    result = run_experiment("fig18")
    rows = {row[0]: row[1:] for row in result.rows}
    penalties = [4, 8, 16, 32, 64, 128]
    mc0 = dict(zip(penalties, rows["mc=0"]))
    free = dict(zip(penalties, rows["no restrict"]))
    # Blocking scales strictly linearly with the penalty...
    assert mc0[32] / mc0[16] == pytest.approx(2.0, rel=0.05)
    # ...while the unrestricted organization is highly non-linear.
    assert free[32] / max(free[16], 1e-9) > 2.5
    assert free[4] < mc0[4] / 4
    print("\n" + result.render())
