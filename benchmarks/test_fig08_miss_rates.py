"""Benchmark: regenerate Figure 8 (doduc load miss rates)."""


def test_fig8(run_experiment):
    result = run_experiment("fig8")
    header = list(result.headers)
    lat10 = next(row for row in result.rows if row[0] == 10)
    # Secondary misses only exist on organizations that support them.
    assert lat10[header.index("mc=0 sec%")] == 0.0
    assert lat10[header.index("no restrict sec%")] > 0.0
    print("\n" + result.render())
