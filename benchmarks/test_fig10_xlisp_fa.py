"""Benchmark: regenerate Figure 10 (xlisp, fully associative cache)."""

from repro.experiments import get_experiment


def test_fig10(run_experiment):
    result = run_experiment("fig10")
    dm = get_experiment("fig9").run(scale=0.5)
    header = list(result.headers)
    lat10_fa = next(row for row in result.rows if row[0] == 10)
    lat10_dm = next(row for row in dm.rows if row[0] == 10)
    col = header.index("mc=1")
    # Full associativity removes xlisp's conflict misses (paper: 2-3x).
    assert lat10_fa[col] < 0.6 * lat10_dm[col]
    print("\n" + result.render())
