"""Benchmark: regenerate Figure 14 (MSHR addressing grid for doduc)."""


def test_fig14(run_experiment):
    result = run_experiment("fig14")
    by_cell = {(row[0], row[1]): row[2] for row in result.rows}
    # 4-byte granularity (8x1) beats 8-byte granularity (4x1).
    assert by_cell[(8, 1)] < by_cell[(4, 1)]
    # Four explicit entries match the unrestricted reference closely.
    assert by_cell[(1, 4)] <= 1.1 * by_cell[("inf", "inf")]
    print("\n" + result.render())
