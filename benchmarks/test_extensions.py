"""Benchmarks for the extension experiments (Sections 2.3 / 4.2)."""


def test_incache(run_experiment):
    result = run_experiment("incache")
    rows = {row[0]: row for row in result.rows}
    # Read-out overhead costs something on top of the fs=1 restriction.
    assert rows["in-cache(+1)"][1] > rows["fs=1 (free read-out)"][1]
    assert rows["in-cache(+3, 8B port)"][1] > rows["in-cache(+1)"][1]
    # And the transit-bit storage is far cheaper than discrete MSHRs.
    assert rows["in-cache(+1)"][3] < rows["no restrict"][3]
    print("\n" + result.render())


def test_assoc(run_experiment):
    result = run_experiment("assoc")
    by_ways = {row[0]: row for row in result.rows}
    # Direct mapped: one fetch per set hurts badly on su2cor...
    assert by_ways[1][3] > 1.5
    # ...two ways already lift the restriction almost entirely.
    assert by_ways[2][3] < 1.2
    print("\n" + result.render())


def test_linesize(run_experiment):
    result = run_experiment("linesize")
    positions = [row[-1] for row in result.rows]
    # fc=1's position between mc=1 and mc=2 grows with the line size
    # (the Section 5.2 prediction, swept): weakly monotone, and the
    # extremes are far apart.
    assert positions[0] < 0.2
    assert positions[-1] > 0.4
    assert all(b >= a - 0.1 for a, b in zip(positions, positions[1:]))
    print("\n" + result.render())
