"""Shared benchmark fixtures.

Each benchmark regenerates one paper artifact through the experiment
registry.  ``--benchmark-only`` runs print the regenerated tables, so a
full benchmark run doubles as a reproduction report; the scale is kept
modest so the whole suite finishes in minutes.

Set ``REPRO_BENCH_SCALE`` to change the run length (default 0.5).
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import get_experiment

#: Default run-length multiplier for benchmark runs.
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))


@pytest.fixture
def run_experiment(benchmark):
    """Benchmark one experiment once and return its result."""

    def runner(experiment_id: str, scale: float = BENCH_SCALE):
        exp = get_experiment(experiment_id)
        result = benchmark.pedantic(
            exp.run, kwargs={"scale": scale}, rounds=1, iterations=1,
            warmup_rounds=0,
        )
        return result

    return runner
