"""Benchmark: regenerate Figure 15 (su2cor with fs= per-set limits)."""


def test_fig15(run_experiment):
    result = run_experiment("fig15")
    header = list(result.headers)
    lat10 = next(row for row in result.rows if row[0] == 10)
    fs1 = lat10[header.index("fs=1")]
    fs2 = lat10[header.index("fs=2")]
    free = lat10[header.index("no restrict")]
    # The paper's Section 4.2 point: one fetch per set is not enough.
    assert fs1 > 1.5 * fs2
    assert fs2 <= 1.6 * free
    print("\n" + result.render())
