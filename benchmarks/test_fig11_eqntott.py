"""Benchmark: regenerate Figure 11 (baseline miss CPI for eqntott)."""


def test_fig11(run_experiment):
    result = run_experiment("fig11")
    lat10 = next(row for row in result.rows if row[0] == 10)
    header = list(result.headers)
    # The lockup-free curves nearly coincide for eqntott.
    free_cols = ["mc=1", "fc=1", "mc=2", "fc=2", "no restrict"]
    values = [lat10[header.index(c)] for c in free_cols]
    assert max(values) <= 1.2 * min(values)
    print("\n" + result.render())
