"""Benchmark: regenerate Figure 12 (baseline miss CPI for tomcatv)."""


def test_fig12(run_experiment):
    result = run_experiment("fig12")
    header = list(result.headers)
    free = [row[header.index("no restrict")] for row in result.rows]
    # Unrestricted MCPI decreases (weakly) with the scheduled latency.
    assert free[-1] < free[0]
    print("\n" + result.render())
