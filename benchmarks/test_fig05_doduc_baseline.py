"""Benchmark: regenerate Figure 5 (baseline miss CPI for doduc)."""


def test_fig5(run_experiment):
    result = run_experiment("fig5")
    # Column order: latency, mc=0+wma, mc=0, mc=1, fc=1, mc=2, fc=2, inf.
    lat10 = next(row for row in result.rows if row[0] == 10)
    mc0, mc1, fc1, mc2, fc2, free = lat10[2], lat10[3], lat10[4], lat10[5], lat10[6], lat10[7]
    assert mc0 > mc1 > fc1 > fc2 >= free
    assert mc1 > mc2 > fc2
    print("\n" + result.render())
