"""Benchmark: regenerate Figure 9 (baseline miss CPI for xlisp)."""


def test_fig9(run_experiment):
    result = run_experiment("fig9")
    # Hit-under-miss near-optimal: within 1.35x of unrestricted at 10.
    lat10 = next(row for row in result.rows if row[0] == 10)
    header = list(result.headers)
    mc1 = lat10[header.index("mc=1")]
    free = lat10[header.index("no restrict")]
    assert mc1 <= 1.35 * free
    print("\n" + result.render())
