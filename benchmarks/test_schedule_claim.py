"""Benchmark: the Section 7 compiler claim across all 18 benchmarks."""


def test_schedule(run_experiment):
    result = run_experiment("schedule")
    rows = {row[0]: row for row in result.rows}
    # ora: immune to both hardware and scheduling.
    assert rows["ora"][5] == 1.0 and rows["ora"][6] == 1.0
    # tomcatv: hardware alone buys ~2x; scheduling unlocks far more.
    hw_only = rows["tomcatv"][5]
    assert isinstance(hw_only, float) and hw_only < 3.0
    assert rows["tomcatv"][6] == ">50" or rows["tomcatv"][6] > 5.0
    print("\n" + result.render())
