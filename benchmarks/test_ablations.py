"""Ablation benchmarks for the design choices DESIGN.md calls out.

These are not paper figures; they quantify modelling assumptions:

* write policy: write-around vs write-miss-allocate blocking;
* the multi-write-port register file (simultaneous fill) vs a
  single-ported serialized fill (the Section 6 correction);
* scheduling for hits (latency 1) vs for misses (latency 10) on
  non-blocking hardware -- the paper's compiler conclusion;
* the ideal write buffer vs a finite one.
"""

from dataclasses import replace

from repro.core.policies import MSHRPolicy, blocking_cache, mc, no_restrict
from repro.sim.config import baseline_config
from repro.sim.simulator import simulate
from repro.workloads.spec92 import get_benchmark

SCALE = 0.5


def _run(benchmark_fixture, workload, config, latency=10):
    return benchmark_fixture.pedantic(
        simulate,
        args=(workload, config),
        kwargs={"load_latency": latency, "scale": SCALE},
        rounds=1, iterations=1, warmup_rounds=0,
    )


def test_ablation_write_policy(benchmark):
    """Fetch-on-write stalls are pure loss on this workload mix."""
    workload = get_benchmark("su2cor")
    wma = simulate(workload, baseline_config(blocking_cache(True)),
                   load_latency=10, scale=SCALE)
    around = _run(benchmark, workload, baseline_config(blocking_cache()))
    assert wma.mcpi > around.mcpi
    print(f"\nwrite-around {around.mcpi:.3f} vs +wma {wma.mcpi:.3f} MCPI")


def test_ablation_fill_ports(benchmark):
    """Serializing register fills costs little (Section 6's claim).

    The paper argues the multi-write-port correction 'is probably not
    significant enough to be included'; with one fill port the MCPI
    rises only modestly.
    """
    workload = get_benchmark("tomcatv")
    one_port = MSHRPolicy(name="no restrict/1 port", fill_ports=1)
    serial = simulate(workload, baseline_config(one_port),
                      load_latency=10, scale=SCALE)
    ideal = _run(benchmark, workload, baseline_config(no_restrict()))
    assert ideal.mcpi <= serial.mcpi <= 1.5 * ideal.mcpi + 0.05
    print(f"\nsimultaneous fill {ideal.mcpi:.3f} vs "
          f"1-port {serial.mcpi:.3f} MCPI")


def test_ablation_schedule_for_miss_not_hit(benchmark):
    """The compiler conclusion: scheduling for latency 1 wastes the
    non-blocking hardware; scheduling for 10 unlocks it."""
    workload = get_benchmark("tomcatv")
    hit_sched = simulate(workload, baseline_config(no_restrict()),
                         load_latency=1, scale=SCALE)
    miss_sched = _run(benchmark, workload, baseline_config(no_restrict()))
    assert miss_sched.mcpi < 0.7 * hit_sched.mcpi
    print(f"\nscheduled-for-hit {hit_sched.mcpi:.3f} vs "
          f"scheduled-for-miss {miss_sched.mcpi:.3f} MCPI")


def test_ablation_finite_write_buffer(benchmark):
    """A small real write buffer barely moves MCPI on this mix."""
    workload = get_benchmark("xlisp")  # store-heavy
    finite = replace(baseline_config(mc(1)), write_buffer_depth=4,
                     write_buffer_retire_cycles=2)
    with_finite = simulate(workload, finite, load_latency=10, scale=SCALE)
    ideal = _run(benchmark, workload, baseline_config(mc(1)))
    assert with_finite.mcpi >= ideal.mcpi
    assert with_finite.mcpi <= 1.5 * ideal.mcpi + 0.05
    print(f"\nideal buffer {ideal.mcpi:.3f} vs "
          f"finite(4,2) {with_finite.mcpi:.3f} MCPI")
