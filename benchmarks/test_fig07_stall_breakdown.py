"""Benchmark: regenerate Figure 7 (structural-stall share for doduc)."""


def test_fig7(run_experiment):
    result = run_experiment("fig7")
    # Blocking caches have no structural stalls by definition; the
    # restricted non-blocking organizations do at long latencies.
    lat10 = next(row for row in result.rows if row[0] == 10)
    header = list(result.headers)
    assert lat10[header.index("mc=0")] == 0.0
    assert lat10[header.index("mc=1")] > 0.0
    assert lat10[header.index("no restrict")] == 0.0
    print("\n" + result.render())
