"""Benchmark: regenerate Figure 17 (doduc with 16-byte lines)."""

from repro.experiments import get_experiment


def test_fig17(run_experiment):
    result = run_experiment("fig17")
    baseline = get_experiment("fig5").run(scale=0.5)

    def rel_position(table):
        header = list(table.headers)
        lat10 = next(row for row in table.rows if row[0] == 10)
        m1 = lat10[header.index("mc=1")]
        m2 = lat10[header.index("mc=2")]
        f1 = lat10[header.index("fc=1")]
        return (m1 - f1) / max(m1 - m2, 1e-9)

    # With 16B lines fc=1 moves toward mc=1 (secondary misses rarer).
    assert rel_position(result) < rel_position(baseline)
    print("\n" + result.render())
