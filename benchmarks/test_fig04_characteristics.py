"""Benchmark: regenerate Figure 4 (benchmark characteristics table)."""


def test_fig4(run_experiment):
    result = run_experiment("fig4")
    assert len(result.rows) == 5  # the five detailed benchmarks
    print("\n" + result.render())
