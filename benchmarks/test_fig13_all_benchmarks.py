"""Benchmark: regenerate Figure 13 (the 18-benchmark MCPI table)."""


def test_fig13(run_experiment):
    result = run_experiment("fig13")
    assert len(result.rows) == 18
    # ora: flat across the hardware spectrum (MCPI ratios all 1.0).
    ora = next(row for row in result.rows if row[0] == "ora")
    ratios = [c for c in ora if isinstance(c, str) and c not in ("ora",)]
    assert all(r == "1.0" for r in ratios)
    print("\n" + result.render())
