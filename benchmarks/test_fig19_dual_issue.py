"""Benchmark: regenerate Figure 19 (dual-issue scaling comparison)."""


def test_fig19(run_experiment):
    result = run_experiment("fig19")
    assert len(result.rows) == 5
    for row in result.rows:
        ipc = row[1]
        assert 1.0 < ipc <= 2.0
        errors = row[5::2]
        # First-order agreement on the restricted organizations; the
        # aggressive organizations on software-pipelined schedules are
        # where the rule is coarsest (the paper's own worst cell was
        # tomcatv/no-restrict at +28%).
        assert all(abs(e) <= 40 for e in errors[:2])  # mc=0, mc=1
        assert all(abs(e) <= 90 for e in errors)
    print("\n" + result.render())
