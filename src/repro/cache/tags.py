"""Tag stores: the presence/replacement state of a cache.

The timing study never needs data values, only whether a block is
present; the tag store is therefore the whole cache.  Two
implementations are provided:

* :class:`DirectMappedTags` -- one tag per set, O(1) probe/install.
  This is the baseline configuration and the hot path, so it is kept
  branch-light.
* :class:`SetAssociativeTags` -- per-set way lists with true-LRU
  replacement; covers set-associative and (with one set) fully
  associative caches such as the Figure 10 configuration.

Both share the :class:`TagStore` interface used by the simulator and
the miss handler.

For the hit fast path (see :mod:`repro.cpu.pipeline` and
``docs/performance.md``) every tag store additionally maintains
``resident`` -- a plain ``set`` of the block numbers currently held --
updated on every install/evict/invalidate/flush, and exposes
``hit_probe``: a callable equivalent to :meth:`TagStore.access`
(including any replacement-state update) that the execution engines
may call inline instead of going through the miss handler.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Set

from repro.cache.geometry import CacheGeometry


class TagStore:
    """Interface for cache tag state keyed on block addresses."""

    geometry: CacheGeometry
    #: Blocks currently resident; maintained on fill/evict so the
    #: execution engines can probe hits without a method call.
    resident: Set[int]
    #: Callable ``block -> bool`` equivalent to :meth:`access` --
    #: membership test plus any replacement-state update.
    hit_probe: Callable[[int], bool]
    #: True when :attr:`hit_probe` is a pure membership test with no
    #: replacement-state side effect (direct mapped), so the engines
    #: may batch probes without replaying them in order.  False for
    #: set-associative stores, whose hits must touch LRU one by one.
    probe_is_pure: bool

    def probe(self, block: int) -> bool:
        """Return True if ``block`` is present (no LRU update)."""
        raise NotImplementedError

    def access(self, block: int) -> bool:
        """Probe and update replacement state; True on hit."""
        raise NotImplementedError

    def install(self, block: int) -> Optional[int]:
        """Install ``block``, returning the evicted block or ``None``.

        Installing a block that is already present refreshes its
        replacement state and evicts nothing.
        """
        raise NotImplementedError

    def invalidate(self, block: int) -> bool:
        """Remove ``block`` if present; True if it was present."""
        raise NotImplementedError

    def flush(self) -> None:
        """Empty the cache."""
        raise NotImplementedError

    def occupancy(self) -> int:
        """Number of valid lines currently held."""
        raise NotImplementedError


class DirectMappedTags(TagStore):
    """Direct-mapped tag array: one block per set.

    Stored as a flat list indexed by set, holding the resident block
    address or ``None``.
    """

    def __init__(self, geometry: CacheGeometry) -> None:
        if not geometry.is_direct_mapped:
            raise ValueError("DirectMappedTags requires associativity == 1")
        self.geometry = geometry
        self._mask = geometry.num_sets - 1
        self._tags: List[Optional[int]] = [None] * geometry.num_sets
        self.resident: Set[int] = set()
        # Direct-mapped access updates no replacement state, so the
        # resident-set membership test IS the access -- a single C call.
        self.hit_probe = self.resident.__contains__
        self.probe_is_pure = True

    def probe(self, block: int) -> bool:
        return self._tags[block & self._mask] == block

    # With one way per set, access and probe coincide.
    access = probe

    def install(self, block: int) -> Optional[int]:
        idx = block & self._mask
        old = self._tags[idx]
        self._tags[idx] = block
        if old == block:
            return None
        if old is not None:
            self.resident.discard(old)
        self.resident.add(block)
        return old

    def invalidate(self, block: int) -> bool:
        idx = block & self._mask
        if self._tags[idx] == block:
            self._tags[idx] = None
            self.resident.discard(block)
            return True
        return False

    def flush(self) -> None:
        self._tags = [None] * self.geometry.num_sets
        self.resident.clear()

    def occupancy(self) -> int:
        return sum(1 for t in self._tags if t is not None)


class SetAssociativeTags(TagStore):
    """Set-associative tags with true-LRU replacement.

    Each set is a list of block addresses ordered most- to
    least-recently used.  Sets are small (the ways count), so list
    operations are cheap.
    """

    def __init__(self, geometry: CacheGeometry) -> None:
        self.geometry = geometry
        self._ways = geometry.ways
        self._num_sets = geometry.num_sets
        self._sets: List[List[int]] = [[] for _ in range(self._num_sets)]
        self.resident: Set[int] = set()
        # LRU state must move on every hit, so the fast-path probe is
        # the access method itself (a miss leaves the state untouched).
        self.hit_probe = self.access
        self.probe_is_pure = False

    def _set_for(self, block: int) -> List[int]:
        return self._sets[block & (self._num_sets - 1)]

    def probe(self, block: int) -> bool:
        return block in self._set_for(block)

    def access(self, block: int) -> bool:
        ways = self._set_for(block)
        try:
            ways.remove(block)
        except ValueError:
            return False
        ways.insert(0, block)
        return True

    def install(self, block: int) -> Optional[int]:
        ways = self._set_for(block)
        if block in ways:
            ways.remove(block)
            ways.insert(0, block)
            return None
        ways.insert(0, block)
        self.resident.add(block)
        if len(ways) > self._ways:
            victim = ways.pop()
            self.resident.discard(victim)
            return victim
        return None

    def invalidate(self, block: int) -> bool:
        ways = self._set_for(block)
        try:
            ways.remove(block)
        except ValueError:
            return False
        self.resident.discard(block)
        return True

    def flush(self) -> None:
        self._sets = [[] for _ in range(self._num_sets)]
        self.resident.clear()

    def occupancy(self) -> int:
        return sum(len(ways) for ways in self._sets)


def make_tag_store(geometry: CacheGeometry) -> TagStore:
    """Build the appropriate tag store for ``geometry``."""
    if geometry.is_direct_mapped:
        return DirectMappedTags(geometry)
    return SetAssociativeTags(geometry)
