"""Write buffer between the data cache and memory.

The paper's model (Section 3.1) places a write buffer between the
write-through data cache and the lower memory hierarchy and assumes
that "no memory cycles are required to retire writes from the write
buffer" -- i.e. the buffer never fills and never stalls the processor.

We implement that ideal buffer as the default, and additionally a
finite buffer with a retire rate, used by the ablation benchmarks to
quantify how much the free-retirement assumption matters.  The finite
model retires one entry every ``retire_cycles`` cycles and stalls the
processor when a store finds the buffer full.
"""

from __future__ import annotations

from repro.errors import ConfigurationError


class WriteBuffer:
    """Ideal write buffer: unbounded, free retirement.

    Only counts traffic; :meth:`push` never stalls.
    """

    def __init__(self) -> None:
        self.pushes = 0

    def push(self, cycle: int) -> int:
        """Accept a write at ``cycle``; return stall cycles (always 0)."""
        self.pushes += 1
        return 0

    def reset(self) -> None:
        self.pushes = 0


class FiniteWriteBuffer(WriteBuffer):
    """Bounded write buffer retiring one entry per ``retire_cycles``.

    Occupancy is tracked lazily: entries drain at a constant rate, so
    the occupancy at any cycle is derivable from the time of the last
    push.  A push into a full buffer stalls until one entry retires.
    """

    def __init__(self, depth: int, retire_cycles: int = 1) -> None:
        super().__init__()
        if depth < 1:
            raise ConfigurationError(f"write buffer depth must be >= 1: {depth}")
        if retire_cycles < 1:
            raise ConfigurationError(
                f"retire period must be >= 1 cycle: {retire_cycles}"
            )
        self.depth = depth
        self.retire_cycles = retire_cycles
        self.stall_cycles = 0
        # The cycle at which the buffer becomes empty if nothing more
        # is pushed; occupancy = ceil((drain_done - now)/retire_cycles).
        self._drain_done = 0

    def _occupancy(self, cycle: int) -> int:
        remaining = self._drain_done - cycle
        if remaining <= 0:
            return 0
        return -(-remaining // self.retire_cycles)

    def push(self, cycle: int) -> int:
        """Accept a write at ``cycle``; return processor stall cycles."""
        self.pushes += 1
        stall = 0
        occ = self._occupancy(cycle)
        if occ >= self.depth:
            # Wait until one entry retires.
            stall = self._drain_done - (self.depth - 1) * self.retire_cycles - cycle
            if stall < 0:
                stall = 0
            cycle += stall
            self.stall_cycles += stall
        base = max(self._drain_done, cycle)
        self._drain_done = base + self.retire_cycles
        return stall

    def reset(self) -> None:
        super().reset()
        self.stall_cycles = 0
        self._drain_done = 0
