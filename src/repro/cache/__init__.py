"""Cache substrate: geometry, tag stores, memory, and write buffer.

This package models everything below the MSHR layer: the data-cache
tag state (direct mapped / set associative / fully associative with
LRU), the fully pipelined main memory, and the write buffer.  The
non-blocking machinery itself lives in :mod:`repro.core`.
"""

from repro.cache.geometry import FULLY_ASSOCIATIVE, CacheGeometry
from repro.cache.memory import (
    PipelinedMemory,
    penalty_for_line_size,
)
from repro.cache.tags import (
    DirectMappedTags,
    SetAssociativeTags,
    TagStore,
    make_tag_store,
)
from repro.cache.write_buffer import FiniteWriteBuffer, WriteBuffer

__all__ = [
    "FULLY_ASSOCIATIVE",
    "CacheGeometry",
    "PipelinedMemory",
    "penalty_for_line_size",
    "TagStore",
    "DirectMappedTags",
    "SetAssociativeTags",
    "make_tag_store",
    "WriteBuffer",
    "FiniteWriteBuffer",
]
