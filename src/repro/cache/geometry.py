"""Cache geometry: sizes, indexing, and address arithmetic.

The paper's baseline data cache is 8 Kbytes, direct mapped, with 32-byte
lines (Section 4); Section 5 varies the size (64KB) and the line size
(16B).  Figure 10 uses a fully associative cache.  This module captures
the geometry and the address decomposition used everywhere else:

* ``block address`` -- the byte address with the line-offset bits
  stripped (i.e. ``addr >> log2(line_size)``).  All cache and MSHR
  bookkeeping is keyed on block addresses.
* ``set index`` -- ``block_addr % num_sets`` for a set-associative or
  direct-mapped cache (0 for fully associative).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

#: Sentinel associativity meaning "fully associative".
FULLY_ASSOCIATIVE = 0


def _is_pow2(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


@dataclass(frozen=True)
class CacheGeometry:
    """Immutable description of a cache's shape.

    Parameters
    ----------
    size:
        Total data capacity in bytes.  Must be a power of two.
    line_size:
        Line (block) size in bytes.  Must be a power of two dividing
        ``size``.
    associativity:
        Ways per set; ``1`` is direct mapped and
        :data:`FULLY_ASSOCIATIVE` (0) means one set containing every
        line.
    """

    size: int = 8 * 1024
    line_size: int = 32
    associativity: int = 1

    def __post_init__(self) -> None:
        if not _is_pow2(self.size):
            raise ConfigurationError(f"cache size must be a power of two: {self.size}")
        if not _is_pow2(self.line_size):
            raise ConfigurationError(
                f"line size must be a power of two: {self.line_size}"
            )
        if self.line_size > self.size:
            raise ConfigurationError("line size larger than the cache")
        if self.associativity < 0:
            raise ConfigurationError("associativity must be >= 0")
        if self.associativity > self.num_lines:
            raise ConfigurationError(
                f"associativity {self.associativity} exceeds the "
                f"{self.num_lines} lines in the cache"
            )

    @property
    def num_lines(self) -> int:
        """Total number of lines in the cache."""
        return self.size // self.line_size

    @property
    def num_sets(self) -> int:
        """Number of sets (1 when fully associative)."""
        if self.associativity == FULLY_ASSOCIATIVE:
            return 1
        return self.num_lines // self.associativity

    @property
    def ways(self) -> int:
        """Ways per set (``num_lines`` when fully associative)."""
        if self.associativity == FULLY_ASSOCIATIVE:
            return self.num_lines
        return self.associativity

    @property
    def offset_bits(self) -> int:
        """Bits of byte offset within a line."""
        return self.line_size.bit_length() - 1

    @property
    def is_direct_mapped(self) -> bool:
        """True when there is exactly one way per set."""
        return self.associativity == 1

    # -- address arithmetic -------------------------------------------------

    def block_of(self, addr: int) -> int:
        """Block address (line-aligned) containing byte ``addr``."""
        return addr >> self.offset_bits

    def set_of_block(self, block: int) -> int:
        """Set index a block address maps to."""
        return block & (self.num_sets - 1)

    def set_of(self, addr: int) -> int:
        """Set index a byte address maps to."""
        return self.set_of_block(self.block_of(addr))

    def offset_of(self, addr: int) -> int:
        """Byte offset of ``addr`` within its line."""
        return addr & (self.line_size - 1)

    def describe(self) -> str:
        """Human-readable one-line summary (for logs and tables)."""
        if self.associativity == FULLY_ASSOCIATIVE:
            assoc = "fully associative"
        elif self.associativity == 1:
            assoc = "direct mapped"
        else:
            assoc = f"{self.associativity}-way"
        return f"{self.size // 1024}KB {assoc}, {self.line_size}B lines"
