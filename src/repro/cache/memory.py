"""The pipelined main-memory model.

Section 3.1 of the paper: "the main memory is assumed to be fully
pipelined.  Hence, regardless of other memory activity, a constant
number of cycles is required to fetch a cache line from the memory into
the cache."  The baseline miss penalty is 16 cycles for 32-byte lines.

Section 5.2 refines the penalty as a function of line size: "a pipelined
memory system with 14 cycles for the return of the first 16 bytes on a
miss and 2 cycles per additional 16 bytes", giving 14 cycles for 16-byte
lines and 16 cycles for 32-byte lines.

Because the memory is fully pipelined with a constant latency, a fetch
launched at cycle *t* completes at exactly ``t + penalty`` independent
of every other fetch.  That determinism is what lets the simulator avoid
an event queue entirely.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

#: Cycles until the first 16-byte chunk of a line returns (Section 5.2).
FIRST_CHUNK_LATENCY = 14
#: Additional cycles per additional 16-byte chunk (Section 5.2).
PER_CHUNK_LATENCY = 2
#: Chunk size of the memory return path in bytes.
CHUNK_BYTES = 16


def penalty_for_line_size(line_size: int) -> int:
    """Paper's Section 5.2 miss penalty for a given line size.

    >>> penalty_for_line_size(16)
    14
    >>> penalty_for_line_size(32)
    16
    >>> penalty_for_line_size(64)
    20
    """
    if line_size <= 0:
        raise ConfigurationError(f"line size must be positive: {line_size}")
    chunks = max(1, (line_size + CHUNK_BYTES - 1) // CHUNK_BYTES)
    return FIRST_CHUNK_LATENCY + PER_CHUNK_LATENCY * (chunks - 1)


@dataclass(frozen=True)
class PipelinedMemory:
    """Fully pipelined memory with a fixed line-fill latency.

    ``miss_penalty`` is the number of cycles from launching a line
    fetch to the whole line (and all waiting registers) being filled.
    """

    miss_penalty: int = 16

    def __post_init__(self) -> None:
        if self.miss_penalty < 1:
            raise ConfigurationError(
                f"miss penalty must be >= 1 cycle: {self.miss_penalty}"
            )

    def fill_time(self, launch_cycle: int) -> int:
        """Cycle at which a fetch launched at ``launch_cycle`` fills."""
        return launch_cycle + self.miss_penalty

    @classmethod
    def for_line_size(cls, line_size: int) -> "PipelinedMemory":
        """Memory with the Section 5.2 line-size-dependent penalty."""
        return cls(miss_penalty=penalty_for_line_size(line_size))
