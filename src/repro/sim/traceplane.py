"""Zero-copy shared-memory trace plane for parallel sweeps.

Before this module existed, every pool worker re-ran ``expand()`` for
its group's trace even when the parent (or a sibling worker) had
already materialized the identical address buffers -- with the
interpreter 10x faster, that redundant data movement dominated cold
parallel sweeps.  The trace plane eliminates it:

1. the **parent** expands each unique (workload, load latency, scale)
   trace once (through the simulator's own caches) and publishes its
   ``array('q')`` address buffers, back to back, into one
   :class:`multiprocessing.shared_memory.SharedMemory` segment;
2. a picklable :class:`TraceHandle` (segment name + per-op byte spans)
   rides to the pool with the group instead of nothing -- the address
   payload itself is never pickled;
3. each **worker** attaches zero-copy: it maps the segment and builds
   its :class:`~repro.sim.trace.ExpandedTrace` from ``memoryview``
   casts over the shared buffer, then seeds the worker-local trace
   cache so ``simulate`` never expands.

Segment lifecycle is refcounted in the parent: a dispatch acquires one
reference per group that needs the trace, and the segment is unlinked
as soon as the last reference drops (normally right after the dispatch
finishes, including when a worker raised).  Workers that already
mapped an unlinked segment keep a valid mapping -- POSIX shared memory
frees the pages when the last map closes -- so a persistent pool's
warm trace caches survive the unlink.  An ``atexit`` hook unlinks
anything still alive if a process dies mid-dispatch.

Everything degrades cleanly: if shared memory is unavailable
(``REPRO_SHM=0``, an exotic platform, a full ``/dev/shm``, or a
workload whose expansion itself fails), ``acquire`` returns ``None``
and the worker falls back to today's local expansion.  Results are
bit-identical either way -- the shared buffers hold exactly the bytes
``expand()`` produces.
"""

from __future__ import annotations

import atexit
import os
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro import telemetry
from repro.sim.resultstore import workload_key
from repro.workloads.workload import Workload

try:  # pragma: no cover - exercised indirectly via shm_available()
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - platforms without _posixshmem
    _shared_memory = None  # type: ignore[assignment]

#: Prefix of every segment this module creates; the CI leak check and
#: the tests scan ``/dev/shm`` for it.
SEGMENT_PREFIX = "repro-trace"


def shm_available() -> bool:
    """Whether the platform offers POSIX shared memory at all."""
    return _shared_memory is not None


def shm_enabled() -> bool:
    """Whether the trace plane should be used (``REPRO_SHM=0`` opts out)."""
    return shm_available() and os.environ.get("REPRO_SHM", "1") != "0"


def _attach_untracked(name: str):
    """``SharedMemory(name=...)`` without registering with the tracker.

    On 3.8-3.12 *attaching* registers the segment with the resource
    tracker just like creating it does (bpo-38119): with a forked pool
    the worker's later unregister would race the parent's single
    registration in the shared tracker, and with spawn the worker's
    private tracker would unlink a segment it never owned on exit.
    Only the creating parent may hold the registration, so attachment
    briefly no-ops ``register`` (workers are single-threaded, and the
    3.13+ ``track=False`` parameter does exactly this internally).
    """
    from multiprocessing import resource_tracker

    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return _shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


@dataclass(frozen=True)
class TraceHandle:
    """Everything a worker needs to rebuild a trace from shared memory.

    ``spans`` is parallel to the compiled body: ``(byte_offset, count)``
    for memory ops, ``None`` for the rest.  The worker recompiles the
    body itself (deterministic, and cached across a persistent pool's
    lifetime), so only this small descriptor is pickled per group.
    """

    segment: str
    spans: Tuple[Optional[Tuple[int, int]], ...]
    executions: int
    load_latency: int
    scale: float
    nbytes: int


@dataclass(frozen=True)
class StreamHandle:
    """Everything a worker needs to rebuild an event stream zero-copy.

    ``spans`` is parallel to the stream's slots: ``(byte_offset, count)``
    of each slot's line-address buffer inside the segment.  The slot
    structure itself (kinds, pregaps, dependence terms) is recomputed
    by the worker from its compiled body -- deterministic and cached --
    so, as with :class:`TraceHandle`, only this small descriptor is
    pickled per group and the line-address payload never is.
    """

    segment: str
    line_size: int
    spans: Tuple[Tuple[int, int], ...]
    load_latency: int
    scale: float
    nbytes: int


class _Segment:
    __slots__ = ("shm", "handle", "refs")

    def __init__(self, shm, handle) -> None:
        self.shm = shm
        self.handle = handle
        self.refs = 1


#: Plane key: the content identity of one expanded trace.
_Key = Tuple[Tuple, int, float]


#: Monotonic per-process segment sequence number.  Module-global (not
#: per plane) so a name is never reissued while an earlier mapping of
#: it may still be cached in :data:`_ATTACHED`.
_SEQ = 0
_SEQ_LOCK = threading.Lock()


def _next_segment_name() -> str:
    global _SEQ
    with _SEQ_LOCK:
        _SEQ += 1
        return f"{SEGMENT_PREFIX}-{os.getpid()}-{_SEQ}"


class TracePlane:
    """Parent-side registry of published trace segments (refcounted)."""

    def __init__(self) -> None:
        self._segments: Dict[_Key, _Segment] = {}
        self._streams: Dict[Tuple[_Key, int], _Segment] = {}
        self._lock = threading.Lock()

    @staticmethod
    def key(workload: Workload, load_latency: int, scale: float) -> _Key:
        return (workload_key(workload), load_latency, scale)

    def acquire(
        self, workload: Workload, load_latency: int, scale: float
    ) -> Optional[TraceHandle]:
        """Publish (or re-reference) the trace's segment; ``None`` = fallback.

        Any failure -- shared memory missing, segment creation denied,
        or the expansion itself raising -- is swallowed here: the
        caller dispatches the group without a handle and the worker
        expands locally, where a genuine workload error surfaces with
        full cell context.
        """
        if not shm_enabled():
            return None
        key = self.key(workload, load_latency, scale)
        with self._lock:
            record = self._segments.get(key)
            if record is not None:
                record.refs += 1
                return record.handle
            try:
                record = self._publish(workload, load_latency, scale)
            except Exception:
                if telemetry.enabled():
                    telemetry.counter("plane.fallbacks").inc()
                return None
            self._segments[key] = record
            if telemetry.enabled():
                m = telemetry.metrics()
                m.counter("plane.segments_created").inc()
                m.counter("plane.bytes_published").inc(record.handle.nbytes)
            return record.handle

    def _publish(
        self, workload: Workload, load_latency: int, scale: float
    ) -> _Segment:
        from repro.sim.simulator import expand_workload

        _, trace = expand_workload(workload, load_latency, scale=scale)
        spans: List[Optional[Tuple[int, int]]] = []
        offset = 0
        for buf in trace.addresses:
            if buf is None:
                spans.append(None)
            else:
                spans.append((offset, len(buf)))
                offset += 8 * len(buf)
        shm = self._create_segment(max(offset, 1))
        view = memoryview(shm.buf)
        try:
            for span, buf in zip(spans, trace.addresses):
                if span is None:
                    continue
                start, count = span
                view[start:start + 8 * count] = memoryview(buf).cast("B")
        finally:
            view.release()
        handle = TraceHandle(
            segment=shm.name,
            spans=tuple(spans),
            executions=trace.executions,
            load_latency=load_latency,
            scale=scale,
            nbytes=offset,
        )
        return _Segment(shm, handle)

    @staticmethod
    def _create_segment(nbytes: int):
        """A fresh named segment; the name embeds the pid for leak triage."""
        while True:
            try:
                return _shared_memory.SharedMemory(
                    name=_next_segment_name(), create=True, size=nbytes
                )
            except FileExistsError:
                continue

    def release(
        self, workload: Workload, load_latency: int, scale: float
    ) -> None:
        """Drop one reference; unlink the segment when the last one goes."""
        key = self.key(workload, load_latency, scale)
        with self._lock:
            record = self._segments.get(key)
            if record is None:
                return
            record.refs -= 1
            if record.refs > 0:
                return
            del self._segments[key]
            self._destroy(record)

    # -- event streams ---------------------------------------------------------

    def acquire_stream(
        self, workload: Workload, load_latency: int, scale: float,
        line_size: int,
    ) -> Optional[StreamHandle]:
        """Publish (or re-reference) the group's event-stream segment.

        The fused engine's policy replay reads only the stream's
        line-address buffers; publishing them once lets every worker
        replaying a policy sibling attach zero-copy instead of
        re-deriving the lines from its trace.  Failures degrade exactly
        like :meth:`acquire`: ``None`` means the worker builds the
        stream locally, bit-identically.
        """
        if not shm_enabled():
            return None
        key = (self.key(workload, load_latency, scale), line_size)
        with self._lock:
            record = self._streams.get(key)
            if record is not None:
                record.refs += 1
                return record.handle
            try:
                record = self._publish_stream(
                    workload, load_latency, scale, line_size)
            except Exception:
                record = None
            if record is None:
                if telemetry.enabled():
                    telemetry.counter("plane.stream_fallbacks").inc()
                return None
            self._streams[key] = record
            if telemetry.enabled():
                m = telemetry.metrics()
                m.counter("plane.stream_segments_created").inc()
                m.counter("plane.stream_bytes_published").inc(
                    record.handle.nbytes)
            return record.handle

    def _publish_stream(
        self, workload: Workload, load_latency: int, scale: float,
        line_size: int,
    ) -> Optional[_Segment]:
        from repro.sim.stream import event_stream

        stream = event_stream(workload, load_latency, scale, line_size)
        if stream is None:
            return None
        spans: List[Tuple[int, int]] = []
        offset = 0
        for buf in stream.lines:
            spans.append((offset, len(buf)))
            offset += 8 * len(buf)
        shm = self._create_segment(max(offset, 1))
        view = memoryview(shm.buf)
        try:
            for span, buf in zip(spans, stream.lines):
                start, count = span
                view[start:start + 8 * count] = memoryview(buf).cast("B")
        finally:
            view.release()
        handle = StreamHandle(
            segment=shm.name,
            line_size=line_size,
            spans=tuple(spans),
            load_latency=load_latency,
            scale=scale,
            nbytes=offset,
        )
        return _Segment(shm, handle)

    def release_stream(
        self, workload: Workload, load_latency: int, scale: float,
        line_size: int,
    ) -> None:
        """Drop one stream reference; unlink on the last one."""
        key = (self.key(workload, load_latency, scale), line_size)
        with self._lock:
            record = self._streams.get(key)
            if record is None:
                return
            record.refs -= 1
            if record.refs > 0:
                return
            del self._streams[key]
            self._destroy(record, counter="plane.stream_segments_unlinked")

    def release_all(self) -> None:
        """Unlink every live segment regardless of refcounts (atexit)."""
        with self._lock:
            traces = list(self._segments.values())
            streams = list(self._streams.values())
            self._segments.clear()
            self._streams.clear()
        for record in traces:
            self._destroy(record)
        for record in streams:
            self._destroy(record, counter="plane.stream_segments_unlinked")

    @staticmethod
    def _destroy(record: _Segment,
                 counter: str = "plane.segments_unlinked") -> None:
        try:
            record.shm.close()
            record.shm.unlink()
        except (OSError, BufferError):  # pragma: no cover - best effort
            pass
        if telemetry.enabled():
            telemetry.counter(counter).inc()

    def live_segments(self) -> int:
        with self._lock:
            return len(self._segments) + len(self._streams)


# -- worker side --------------------------------------------------------------

#: Segments this process has mapped, by name.  Kept so repeated groups
#: over one trace share a single mapping, and so the buffer outlives
#: the memoryviews cached inside worker-local ``ExpandedTrace``s.
_ATTACHED: Dict[str, object] = {}

#: Soft cap on idle mappings; see :func:`_prune_attached`.
_ATTACH_LIMIT = 64


def _prune_attached(limit: int = _ATTACH_LIMIT) -> None:
    """Close mappings whose trace the worker cache has since evicted.

    A mapping with live exported memoryviews refuses to close
    (``BufferError``) and is kept; everything else is surplus.
    """
    if len(_ATTACHED) <= limit:
        return
    for name in list(_ATTACHED):
        if len(_ATTACHED) <= limit:
            break
        try:
            _ATTACHED[name].close()
        except BufferError:
            continue
        except OSError:  # pragma: no cover - already gone
            pass
        del _ATTACHED[name]


def attach_trace(workload: Workload, handle: TraceHandle):
    """Build an :class:`ExpandedTrace` over the shared segment, or ``None``.

    The body is recompiled locally (hits the worker's compile cache);
    the address buffers are ``memoryview(...).cast('q')`` windows into
    the mapped segment -- no copy, no pickling, indexable exactly like
    the ``array('q')`` buffers ``expand()`` builds.  Returns ``None``
    when the segment has vanished or the compiled body no longer lines
    up with the handle (both mean: fall back to local expansion).
    """
    from repro.sim.trace import ExpandedTrace
    from repro.sim.simulator import compile_workload

    shm = _ATTACHED.get(handle.segment)
    if shm is None:
        if not shm_available():
            return None
        try:
            shm = _attach_untracked(handle.segment)
        except (OSError, ValueError):
            if telemetry.enabled():
                telemetry.counter("plane.attach_failures").inc()
            return None
        _prune_attached()
        _ATTACHED[handle.segment] = shm

    compiled = compile_workload(workload, handle.load_latency)
    if len(compiled.instructions) != len(handle.spans):
        if telemetry.enabled():
            telemetry.counter("plane.attach_failures").inc()
        return None

    base = memoryview(shm.buf)
    addresses = []
    for span in handle.spans:
        if span is None:
            addresses.append(None)
        else:
            start, count = span
            addresses.append(base[start:start + 8 * count].cast("q"))
    if telemetry.enabled():
        m = telemetry.metrics()
        m.counter("plane.attaches").inc()
        m.counter("plane.bytes_attached").inc(handle.nbytes)
    return ExpandedTrace(
        body=compiled.instructions,
        addresses=addresses,
        executions=handle.executions,
        workload_name=workload.name,
    )


def attach_stream(trace, handle: StreamHandle):
    """Build an :class:`EventStream` over the shared segment, or ``None``.

    ``trace`` is the worker's :class:`ExpandedTrace` for the group (an
    attached shared-memory trace or a local expansion -- either works:
    the stream structure depends only on the compiled body).  The line
    buffers become ``memoryview(...).cast('q')`` windows into the
    mapped segment, so sibling replays across the pool share one copy
    of the line addresses.  Returns ``None`` when the segment has
    vanished or the buffers no longer line up with the body's memory
    ops (fall back to a local :func:`~repro.sim.stream.build_stream`).
    """
    from repro.sim.stream import build_stream

    shm = _ATTACHED.get(handle.segment)
    if shm is None:
        if not shm_available():
            return None
        try:
            shm = _attach_untracked(handle.segment)
        except (OSError, ValueError):
            if telemetry.enabled():
                telemetry.counter("plane.stream_attach_failures").inc()
            return None
        _prune_attached()
        _ATTACHED[handle.segment] = shm

    n_mem = sum(1 for buf in trace.addresses if buf is not None)
    if n_mem != len(handle.spans):
        if telemetry.enabled():
            telemetry.counter("plane.stream_attach_failures").inc()
        return None
    base = memoryview(shm.buf)
    lines = []
    for start, count in handle.spans:
        lines.append(base[start:start + 8 * count].cast("q"))
    stream = build_stream(trace, handle.line_size, lines=lines)
    if stream is not None and telemetry.enabled():
        m = telemetry.metrics()
        m.counter("plane.stream_attaches").inc()
        m.counter("plane.stream_bytes_attached").inc(handle.nbytes)
    return stream


# -- process-wide plane --------------------------------------------------------

#: The plane the dispatcher uses.  One per process; forked children
#: must never unlink the parent's segments, so every mutation checks
#: the owning pid.
_PLANE = TracePlane()
_PLANE_PID = os.getpid()


def plane() -> TracePlane:
    """The process-wide plane (re-created after a fork)."""
    global _PLANE, _PLANE_PID
    if _PLANE_PID != os.getpid():
        _PLANE = TracePlane()
        _PLANE_PID = os.getpid()
    return _PLANE


def _atexit_release() -> None:
    if _PLANE_PID == os.getpid():
        _PLANE.release_all()


atexit.register(_atexit_release)
