"""Content-addressed, on-disk store of simulation results.

Every simulation in this study is fully deterministic: the result of a
sweep cell is a pure function of the workload (kernel content, address
patterns, seed, iteration count), the machine configuration, and the
compiler's scheduled load latency and run scale.  The paper burned 370
CPU-days re-simulating 3700 such cells; our figure experiments overlap
heavily cell-for-cell (the unrestricted baseline appears in nearly
every figure), so this module memoizes results *across* runs and
experiments.

A cell is keyed by a **fingerprint**: a SHA-256 digest over

* the store schema version (:data:`STORE_SCHEMA`),
* the execution-engine version tag
  (:data:`repro.sim.simulator.ENGINE_VERSION` -- bump it whenever the
  timing semantics change and every stale entry silently misses),
* the workload's content identity (name, kernel digest, per-stream
  address patterns, iterations, compile hints, seed),
* the full :class:`~repro.sim.config.MachineConfig` (geometry, policy,
  field layout, penalty, issue width, write buffer), and
* the scheduled load latency and run scale.

Entries are JSON files under ``<root>/v<schema>/<aa>/<digest>.json``
(two-level fan-out keeps directories small), written atomically
(temp file + ``os.replace``) so a killed sweep never leaves a torn
entry.  Reads are corruption-tolerant: any unreadable, truncated, or
mismatched entry is treated as a miss (and unlinked), never an error.

Environment knobs:

* ``REPRO_CACHE=0`` disables the store entirely (every lookup misses,
  nothing is written);
* ``REPRO_CACHE_DIR`` relocates the store root (default
  ``.repro-cache/`` in the current directory).

The ``python -m repro cache {stats,clear,gc}`` subcommand fronts the
maintenance entry points.  See ``docs/caching.md``.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import shutil
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple

from repro import telemetry
from repro.core.classify import StructuralCause
from repro.core.stats import MissStats
from repro.sim.config import MachineConfig
from repro.sim.stats import SimulationResult
from repro.workloads.workload import Workload

#: On-disk layout version.  Bump when the entry format changes; old
#: version directories are ignored by reads and reaped by ``gc``.
STORE_SCHEMA = 1

#: Default store location (relative to the current directory).
DEFAULT_ROOT = ".repro-cache"


# -- content fingerprints ----------------------------------------------------


def _freeze(value):
    """Recursively convert a value into a stable, hashable tuple form.

    Handles the frozen dataclasses the simulator's inputs are built
    from (configs, policies, address patterns), plus enums, dicts, and
    sequences.  The result round-trips through ``repr`` untouched, so
    it can feed a digest.
    """
    if isinstance(value, enum.Enum):
        return (type(value).__name__, value.name)
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return (type(value).__name__,) + tuple(
            (f.name, _freeze(getattr(value, f.name)))
            for f in dataclasses.fields(value)
        )
    if isinstance(value, dict):
        return tuple(
            (k, _freeze(v)) for k, v in sorted(value.items())
        )
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    return value


def workload_key(workload: Workload) -> Tuple:
    """The content identity of a workload: what the simulator consumes.

    Two distinct ``Workload`` instances with equal keys produce
    bit-identical simulations, so the key is both the store's workload
    component and the grouping key for cache-affine dispatch
    (:mod:`repro.sim.parallel`).  Cosmetic fields (``description``,
    ``is_fp``) are excluded.  Memoized on the instance: workloads are
    frozen dataclasses treated as immutable after construction.
    """
    cached = getattr(workload, "_content_key", None)
    if cached is None:
        cached = (
            "workload",
            workload.name,
            workload.kernel.fingerprint(),
            _freeze(dict(workload.patterns)),
            workload.iterations,
            workload.max_unroll,
            workload.software_pipeline,
            workload.seed,
            _freeze(workload.spill_pattern),
        )
        object.__setattr__(workload, "_content_key", cached)
    return cached


def config_key(config: MachineConfig) -> Tuple:
    """The content identity of a machine configuration."""
    return _freeze(config)


def cell_fingerprint(
    workload: Workload,
    config: MachineConfig,
    load_latency: int,
    scale: float = 1.0,
) -> str:
    """SHA-256 fingerprint of one sweep cell (hex digest).

    Includes the store schema and the engine version tag, so bumping
    either invalidates every existing entry without touching the disk.
    """
    from repro.sim import simulator

    key = (
        STORE_SCHEMA,
        simulator.ENGINE_VERSION,
        workload_key(workload),
        config_key(config),
        int(load_latency),
        repr(float(scale)),
    )
    return hashlib.sha256(repr(key).encode("utf-8")).hexdigest()


# -- result (de)serialization -------------------------------------------------


def result_to_dict(result: SimulationResult) -> Dict:
    """Serialize a result to plain JSON-compatible types."""
    out: Dict = {}
    for f in dataclasses.fields(SimulationResult):
        value = getattr(result, f.name)
        if f.name == "miss":
            miss: Dict = {}
            for mf in dataclasses.fields(MissStats):
                mv = getattr(value, mf.name)
                if mf.name == "structural_causes":
                    mv = {cause.name: int(n) for cause, n in mv.items()}
                miss[mf.name] = mv
            value = miss
        out[f.name] = value
    return out


def result_from_dict(data: Dict) -> SimulationResult:
    """Rebuild a result; raises on any shape mismatch (caller catches).

    Unknown or missing fields raise ``TypeError``/``KeyError``, which
    the store treats as a cache miss -- so entries written by an older
    code revision with a different result shape silently invalidate.
    """
    kwargs = dict(data)
    miss_data = dict(kwargs.pop("miss"))
    causes = miss_data.pop("structural_causes", {})
    miss = MissStats(
        structural_causes={
            StructuralCause[name]: int(count) for name, count in causes.items()
        },
        **miss_data,
    )
    return SimulationResult(miss=miss, **kwargs)


# -- the store ----------------------------------------------------------------


@dataclass(frozen=True)
class StoreStats:
    """A snapshot of the store's contents and lifetime counters."""

    root: str
    enabled: bool
    schema: int
    entries: int
    total_bytes: int
    #: Lifetime counters (survive across processes): planner store hits,
    #: cells actually simulated, entries written, corrupt entries
    #: reaped on read, entries removed by ``gc``.
    hits: int
    misses: int
    stores: int
    corrupt: int = 0
    gc_removed: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of planner lookups served from the store."""
        looked_up = self.hits + self.misses
        if not looked_up:
            return 0.0
        return self.hits / looked_up

    def to_dict(self) -> Dict:
        return {
            "root": self.root,
            "enabled": self.enabled,
            "schema": self.schema,
            "entries": self.entries,
            "total_bytes": self.total_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "corrupt": self.corrupt,
            "gc_removed": self.gc_removed,
            "hit_rate": self.hit_rate,
        }

    def describe(self) -> str:
        state = "enabled" if self.enabled else "DISABLED (REPRO_CACHE=0)"
        return (
            f"result store at {self.root} [{state}]\n"
            f"  schema v{self.schema}: {self.entries} entries, "
            f"{self.total_bytes / 1024:.1f} KiB\n"
            f"  lifetime: {self.hits} hits, {self.misses} misses "
            f"({100 * self.hit_rate:.1f}% hit rate), "
            f"{self.stores} entries written, "
            f"{self.corrupt} corrupt reaped, {self.gc_removed} gc'd"
        )


class ResultStore:
    """A content-addressed result cache rooted at one directory.

    All operations are best-effort: I/O failures degrade to cache
    misses (reads) or dropped writes, never to exceptions -- a broken
    or read-only cache directory must not break a sweep.
    """

    def __init__(self, root, enabled: bool = True) -> None:
        self.root = Path(root)
        self.enabled = enabled

    @classmethod
    def from_env(cls) -> "ResultStore":
        """The store the environment selects (see module docstring)."""
        enabled = os.environ.get("REPRO_CACHE", "1") != "0"
        root = os.environ.get("REPRO_CACHE_DIR", DEFAULT_ROOT)
        return cls(root, enabled=enabled)

    # -- paths ---------------------------------------------------------------

    @property
    def _entries_root(self) -> Path:
        return self.root / f"v{STORE_SCHEMA}"

    def entry_path(self, fingerprint: str) -> Path:
        """Where one cell's entry lives (two-level digest fan-out)."""
        return self._entries_root / fingerprint[:2] / f"{fingerprint}.json"

    @property
    def _counters_path(self) -> Path:
        return self.root / "counters.json"

    # -- entry I/O -----------------------------------------------------------

    def load(self, fingerprint: str) -> Optional[SimulationResult]:
        """The stored result for a fingerprint, or ``None`` on any miss.

        Corrupted, truncated, or shape-mismatched entries are unlinked
        and reported as misses: the caller falls back to simulation and
        overwrites them with a fresh entry.
        """
        if not self.enabled:
            return None
        path = self.entry_path(fingerprint)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
            if payload["schema"] != STORE_SCHEMA:
                raise ValueError("schema mismatch")
            if payload["fingerprint"] != fingerprint:
                raise ValueError("fingerprint mismatch")
            return result_from_dict(payload["result"])
        except FileNotFoundError:
            return None
        except Exception:
            # Tolerate (and reap) anything malformed.
            try:
                os.unlink(path)
            except OSError:
                pass
            self.add_counters(corrupt=1)
            return None

    def store(self, fingerprint: str, result: SimulationResult) -> bool:
        """Persist one result atomically; returns False if skipped."""
        if not self.enabled:
            return False
        path = self.entry_path(fingerprint)
        payload = {
            "schema": STORE_SCHEMA,
            "fingerprint": fingerprint,
            "workload": result.workload,
            "policy": result.policy,
            "load_latency": result.load_latency,
            "result": result_to_dict(result),
        }
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                prefix=".tmp-", suffix=".json", dir=str(path.parent)
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as fh:
                    json.dump(payload, fh)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
            return True
        except OSError:
            return False

    # -- lifetime counters ---------------------------------------------------

    def add_counters(
        self, hits: int = 0, misses: int = 0, stores: int = 0,
        corrupt: int = 0, gc_removed: int = 0,
    ) -> None:
        """Accumulate store lifetime counters into ``counters.json``.

        Read-modify-write with an atomic replace; a lost update under
        concurrent sweeps only skews the advisory statistics, never the
        cached results themselves.  The same increments feed the
        in-process telemetry registry (``store.*`` counters).
        """
        if not self.enabled or not (hits or misses or stores or corrupt
                                    or gc_removed):
            return
        if telemetry.enabled():
            m = telemetry.metrics()
            for name, amount in (("store.hits", hits),
                                 ("store.misses", misses),
                                 ("store.stores", stores),
                                 ("store.corrupt", corrupt),
                                 ("store.gc_removed", gc_removed)):
                if amount:
                    m.counter(name).inc(amount)
        current = self._read_counters()
        current["hits"] += hits
        current["misses"] += misses
        current["stores"] += stores
        current["corrupt"] += corrupt
        current["gc_removed"] += gc_removed
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                prefix=".tmp-", suffix=".json", dir=str(self.root)
            )
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(current, fh)
            os.replace(tmp, self._counters_path)
        except OSError:
            pass

    def _read_counters(self) -> Dict[str, int]:
        counters = {"hits": 0, "misses": 0, "stores": 0, "corrupt": 0,
                    "gc_removed": 0}
        try:
            with open(self._counters_path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
            for key in counters:
                counters[key] = int(data.get(key, 0))
        except Exception:
            pass
        return counters

    # -- maintenance ---------------------------------------------------------

    def _iter_entries(self):
        root = self._entries_root
        if not root.is_dir():
            return
        for path in root.rglob("*.json"):
            if path.name.startswith(".tmp-"):
                continue
            yield path

    def stats(self) -> StoreStats:
        """Entry count, footprint, and lifetime counters."""
        entries = 0
        total = 0
        for path in self._iter_entries():
            try:
                total += path.stat().st_size
            except OSError:
                continue
            entries += 1
        counters = self._read_counters()
        return StoreStats(
            root=str(self.root),
            enabled=self.enabled,
            schema=STORE_SCHEMA,
            entries=entries,
            total_bytes=total,
            hits=counters["hits"],
            misses=counters["misses"],
            stores=counters["stores"],
            corrupt=counters["corrupt"],
            gc_removed=counters["gc_removed"],
        )

    def clear(self) -> int:
        """Remove the whole store (entries and counters); entry count."""
        removed = sum(1 for _ in self._iter_entries())
        if self.root.is_dir():
            shutil.rmtree(self.root, ignore_errors=True)
        return removed

    def gc(
        self,
        max_bytes: Optional[int] = None,
        max_age_days: Optional[float] = None,
    ) -> int:
        """Prune the store; returns the number of entries removed.

        Always drops entry trees left by other schema versions.  With
        ``max_age_days``, drops entries older than the cutoff; with
        ``max_bytes``, evicts oldest-first until the footprint fits.
        """
        removed = 0
        if self.root.is_dir():
            for child in self.root.iterdir():
                if (child.is_dir() and child.name.startswith("v")
                        and child != self._entries_root):
                    removed += sum(1 for _ in child.rglob("*.json"))
                    shutil.rmtree(child, ignore_errors=True)
        aged = []
        for path in self._iter_entries():
            try:
                stat = path.stat()
            except OSError:
                continue
            aged.append((stat.st_mtime, stat.st_size, path))
        aged.sort()
        if max_age_days is not None:
            cutoff = time.time() - max_age_days * 86400.0
            keep = []
            for mtime, size, path in aged:
                if mtime < cutoff:
                    try:
                        os.unlink(path)
                        removed += 1
                    except OSError:
                        pass
                else:
                    keep.append((mtime, size, path))
            aged = keep
        if max_bytes is not None:
            total = sum(size for _, size, _ in aged)
            for mtime, size, path in aged:
                if total <= max_bytes:
                    break
                try:
                    os.unlink(path)
                    removed += 1
                    total -= size
                except OSError:
                    pass
        if removed:
            self.add_counters(gc_removed=removed)
        return removed
