"""Multiprocess sweep execution.

The paper burned 370 CPU-days on its 3700 simulations; this
reproduction's sweeps are lighter but still embarrassingly parallel:
every (workload, policy, latency, penalty) cell is an independent
deterministic simulation.  This module fans a sweep's cells across a
process pool and reassembles the same structures the serial harness
produces.

Every piece of a cell description (workloads, policies, configs) is a
plain picklable dataclass, and each worker process builds its own
compile/trace caches, so results are bit-identical to serial runs --
the tests assert exact equality.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.policies import MSHRPolicy
from repro.sim.config import MachineConfig, baseline_config
from repro.sim.stats import SimulationResult
from repro.sim.sweep import TableSweep
from repro.workloads.workload import Workload

#: One sweep cell: everything a worker needs.
Cell = Tuple[Workload, MachineConfig, int, float]


def _run_cell(cell: Cell) -> SimulationResult:
    """Worker entry point: simulate one cell."""
    from repro.sim.simulator import simulate

    workload, config, load_latency, scale = cell
    return simulate(workload, config, load_latency=load_latency, scale=scale)


def default_workers() -> int:
    """A conservative worker count (half the CPUs, at least one)."""
    return max(1, (os.cpu_count() or 2) // 2)


def run_cells(
    cells: Sequence[Cell], workers: Optional[int] = None
) -> List[SimulationResult]:
    """Run arbitrary sweep cells across a process pool, in order.

    With ``workers=1`` (or a single cell) everything runs in-process,
    which keeps tests and small sweeps free of pool overhead.
    """
    if workers is None:
        workers = default_workers()
    if workers <= 1 or len(cells) <= 1:
        return [_run_cell(cell) for cell in cells]
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(_run_cell, cells))


def run_table_parallel(
    workloads: Sequence[Workload],
    policies: Sequence[MSHRPolicy],
    load_latency: int = 10,
    base: Optional[MachineConfig] = None,
    scale: float = 1.0,
    workers: Optional[int] = None,
) -> TableSweep:
    """Parallel equivalent of :func:`repro.sim.sweep.run_table`."""
    if base is None:
        base = baseline_config()
    cells: List[Cell] = []
    for workload in workloads:
        for policy in policies:
            cells.append((workload, base.with_policy(policy),
                          load_latency, scale))
    results = run_cells(cells, workers=workers)

    table = TableSweep(
        load_latency=load_latency,
        policy_names=tuple(p.name for p in policies),
    )
    index = 0
    for workload in workloads:
        row: Dict[str, SimulationResult] = {}
        for policy in policies:
            row[policy.name] = results[index]
            index += 1
        table.rows[workload.name] = row
    return table
