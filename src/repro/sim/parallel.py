"""Multiprocess sweep execution.

The paper burned 370 CPU-days on its 3700 simulations; this
reproduction's sweeps are lighter but still embarrassingly parallel:
every (workload, policy, latency, penalty) cell is an independent
deterministic simulation.  This module fans a sweep's cells across a
process pool and reassembles the same structures the serial harness
produces.

Cells are dispatched *cache-affinely*: cells sharing a
(workload, load latency, scale) triple need the same compiled schedule
and expanded trace, so they are grouped and shipped to the pool as
units.  Each worker then compiles and expands once per group (via the
simulator's own caches) instead of once per cell, and each group
pickles its workload a single time instead of once per cell.  Groups
complete in whatever order the pool likes; results are stitched back
into submission order by index.

Every piece of a cell description (workloads, policies, configs) is a
plain picklable dataclass, and each worker process builds its own
compile/trace caches, so results are bit-identical to serial runs --
the tests assert exact equality.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Dict, List, Optional, Sequence, Tuple

from typing import TYPE_CHECKING

from repro import telemetry
from repro.core.policies import MSHRPolicy
from repro.errors import ConfigurationError
from repro.sim.config import MachineConfig
from repro.sim.resultstore import workload_key
from repro.sim.stats import SimulationResult
from repro.workloads.workload import Workload

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.sweep import TableSweep

#: One sweep cell: everything a worker needs.
Cell = Tuple[Workload, MachineConfig, int, float]

#: One pool task: a workload/latency/scale triple plus the configs to
#: run against it, each tagged with its position in the caller's cell
#: list.
_Group = Tuple[Workload, int, float, List[Tuple[int, MachineConfig]]]


def _run_cell(cell: Cell) -> SimulationResult:
    """Worker entry point: simulate one cell."""
    from repro.sim.simulator import simulate

    workload, config, load_latency, scale = cell
    return simulate(workload, config, load_latency=load_latency, scale=scale)


def _run_group(group: _Group):
    """Worker entry point: simulate one cache-affine group of cells.

    The first ``simulate`` call compiles and expands the trace; the
    rest hit the worker-local caches because workload, latency, and
    scale are constant within a group.

    Returns ``(pairs, telemetry_delta, started_at)``: the indexed
    results, the worker's metric activity for exactly this group (a
    before/after snapshot diff, so a parallel sweep's merged metrics
    equal the sum of serial runs), and the wall-clock instant the group
    started executing (the parent derives queue wait from it).
    """
    from repro.sim.simulator import simulate

    workload, load_latency, scale, members = group
    telemetry_on = telemetry.enabled()
    before = telemetry.snapshot() if telemetry_on else None
    started_at = time.time()
    busy_start = time.perf_counter()
    pairs = [
        (index,
         simulate(workload, config, load_latency=load_latency, scale=scale))
        for index, config in members
    ]
    delta = None
    if telemetry_on:
        busy = time.perf_counter() - busy_start
        m = telemetry.metrics()
        m.counter("pool.groups").inc()
        m.counter("pool.worker_busy_seconds").inc(busy)
        m.histogram("pool.group_cells",
                    bounds=telemetry.SIZE_BUCKETS).observe(len(members))
        m.histogram("pool.group_seconds").observe(busy)
        delta = telemetry.snapshot_diff(before, telemetry.snapshot())
    return pairs, delta, started_at


def default_workers() -> int:
    """The pool size: ``REPRO_WORKERS`` if set, else half the CPUs.

    The environment override lets batch scripts and CI pin the worker
    count without plumbing a flag through every entry point.
    """
    override = os.environ.get("REPRO_WORKERS")
    if override is not None:
        try:
            workers = int(override)
        except ValueError:
            raise ConfigurationError(
                f"REPRO_WORKERS must be an integer: {override!r}"
            ) from None
        if workers < 1:
            raise ConfigurationError(
                f"REPRO_WORKERS must be >= 1: {workers}"
            )
        return workers
    return max(1, (os.cpu_count() or 2) // 2)


def _group_cells(cells: Sequence[Cell], max_group: int) -> List[_Group]:
    """Bucket cells by (workload content, latency, scale), keeping tags.

    Workload identity is by *content* (:func:`workload_key`), not by
    object: equal-but-distinct ``Workload`` instances -- e.g. the
    ``replace(workload, seed=...)`` copies seed replication builds --
    land in the same bucket and share one compile and trace expansion.
    Groups are capped at ``max_group`` members so one giant bucket
    cannot serialize the whole pool behind a single worker.
    """
    buckets: Dict[Tuple, List[Tuple[int, MachineConfig]]] = {}
    keys: Dict[Tuple, Tuple[Workload, int, float]] = {}
    for index, (workload, config, load_latency, scale) in enumerate(cells):
        key = (workload_key(workload), load_latency, scale)
        buckets.setdefault(key, []).append((index, config))
        keys.setdefault(key, (workload, load_latency, scale))
    groups: List[_Group] = []
    for key, members in buckets.items():
        workload, load_latency, scale = keys[key]
        for start in range(0, len(members), max_group):
            groups.append(
                (workload, load_latency, scale,
                 members[start:start + max_group])
            )
    return groups


def run_cells(
    cells: Sequence[Cell], workers: Optional[int] = None
) -> List[SimulationResult]:
    """Run arbitrary sweep cells across a process pool, in order.

    With ``workers=1`` (or a single cell) everything runs in-process,
    which keeps tests and small sweeps free of pool overhead.
    """
    if workers is None:
        workers = default_workers()
    if workers <= 1 or len(cells) <= 1:
        return [_run_cell(cell) for cell in cells]
    # Cap group size so every worker gets a few tasks to balance, but
    # never below a handful of cells or the affinity win evaporates.
    max_group = max(4, -(-len(cells) // (workers * 4)))
    groups = _group_cells(cells, max_group)
    results: List[Optional[SimulationResult]] = [None] * len(cells)
    telemetry_on = telemetry.enabled()
    busy_total = 0.0
    dispatch_start = time.perf_counter()
    with ProcessPoolExecutor(max_workers=workers) as pool:
        submitted_at = {}
        futures = []
        for group in groups:
            future = pool.submit(_run_group, group)
            submitted_at[future] = time.time()
            futures.append(future)
        for future in as_completed(futures):
            pairs, delta, started_at = future.result()
            for index, result in pairs:
                results[index] = result
            if telemetry_on and delta is not None:
                telemetry.merge(delta)
                busy_total += delta.get("counters", {}).get(
                    "pool.worker_busy_seconds", 0.0)
                telemetry.histogram("pool.queue_wait_seconds").observe(
                    max(0.0, started_at - submitted_at[future]))
    if telemetry_on:
        elapsed = time.perf_counter() - dispatch_start
        m = telemetry.metrics()
        m.counter("pool.dispatches").inc()
        m.gauge("pool.workers").set(workers)
        if elapsed > 0:
            m.gauge("pool.last_utilization").set(
                busy_total / (workers * elapsed))
    return results  # type: ignore[return-value]


def run_cells_ungrouped(
    cells: Sequence[Cell], workers: Optional[int] = None
) -> List[SimulationResult]:
    """Pre-grouping dispatch: one pool task per cell.

    Kept as the comparison baseline for ``tools/perfbench.py``; sweeps
    should use :func:`run_cells`.
    """
    if workers is None:
        workers = default_workers()
    if workers <= 1 or len(cells) <= 1:
        return [_run_cell(cell) for cell in cells]
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(_run_cell, cells))


def run_table_parallel(
    workloads: Sequence[Workload],
    policies: Sequence[MSHRPolicy],
    load_latency: int = 10,
    base: Optional[MachineConfig] = None,
    scale: float = 1.0,
    workers: Optional[int] = None,
) -> "TableSweep":
    """Parallel equivalent of :func:`repro.sim.sweep.run_table`.

    Thin wrapper kept for compatibility: ``run_table`` now routes
    through the planner itself, so this just selects a parallel pool
    size by default.
    """
    from repro.sim.sweep import run_table

    if workers is None:
        workers = default_workers()
    return run_table(workloads, policies, load_latency=load_latency,
                     base=base, scale=scale, workers=workers)
