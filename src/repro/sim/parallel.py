"""Sweep dispatch: the transport-neutral backend API and its backends.

The paper burned 370 CPU-days on its 3700 simulations; this
reproduction's sweeps are lighter but still embarrassingly parallel:
every (workload, policy, latency, penalty) cell is an independent
deterministic simulation.  This module owns *how* a flat cell list
gets executed.  :func:`dispatch` is the single entry point; it
resolves a :class:`DispatchBackend` through one path (argument >
``REPRO_BACKEND`` > ``auto``, mirroring the engine registry in
:mod:`repro.sim.engines`) and hands the cells to it:

``inline``
    Serial in-process execution -- no pool, no serialization; what
    ``workers=1`` has always meant.
``pool``
    The cache-affine process pool described below: grouped dispatch,
    shared-memory trace plane, persistent workers.
``socket``
    The distributed fabric (:mod:`repro.sim.fabric`): shards shipped
    to ``python -m repro worker`` processes over TCP, with per-shard
    retry/reassignment.  Needs ``REPRO_FABRIC_WORKERS``.
``auto``
    ``inline`` for serial/single-cell calls, ``pool`` otherwise --
    the historical behaviour of ``run_cells``.

The legacy entry points ``run_cells`` / ``run_cells_ungrouped`` /
``run_table_parallel`` survive as thin deprecated aliases (one
:class:`DeprecationWarning` per process, mirroring the PR 6
``REPRO_FASTPATH``/``REPRO_FUSION`` pattern).

The rest of this docstring describes the ``pool`` backend, which
remains the single-host workhorse: it fans a sweep's cells across a
process pool and reassembles the same structures the serial harness
produces.

Cells are dispatched *cache-affinely*: cells sharing a
(workload, load latency, scale) triple need the same compiled schedule
and expanded trace, so they are grouped and shipped to the pool as
units.  On top of the grouping, two mechanisms remove the remaining
redundant data movement:

* **the trace plane** (:mod:`repro.sim.traceplane`): the parent
  expands each group's trace once and publishes the address buffers
  into shared memory; workers attach zero-copy instead of re-running
  ``expand()``.  ``REPRO_SHM=0`` (or any publish failure) falls back
  to worker-local expansion, bit-identically.
* **the persistent pool**: one lazily created, process-wide
  ``ProcessPoolExecutor`` is reused across every ``run_cells`` call --
  all sweeps and all experiment drivers -- so worker compile/trace
  caches stay warm between dispatches.  The pool is capped at the
  number of dispatchable groups, shuts itself down after
  ``REPRO_POOL_IDLE`` seconds of disuse, is never reused across a
  fork, and can be retired explicitly via
  :func:`repro.api.shutdown_pool`.  ``REPRO_POOL_PERSIST=0`` restores
  a fresh pool per call.

Every piece of a cell description (workloads, policies, configs) is a
plain picklable dataclass, and each worker process builds its own
compile/trace caches, so results are bit-identical to serial runs --
the tests assert exact equality.  A cell that raises inside a worker
surfaces as :class:`~repro.errors.CellExecutionError` naming the
(workload, policy, latency, scale) cell, not as an anonymous pool
traceback.
"""

from __future__ import annotations

import atexit
import os
import threading
import time
import warnings
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from typing import TYPE_CHECKING

from repro import telemetry
from repro.core.policies import MSHRPolicy
from repro.errors import CellExecutionError, ConfigurationError
from repro.sim import engines
from repro.sim.config import MachineConfig
from repro.sim.resultstore import workload_key
from repro.sim.stats import SimulationResult
from repro.sim import traceplane
from repro.workloads.workload import Workload

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.sweep import TableSweep

#: One sweep cell: everything a worker needs.
Cell = Tuple[Workload, MachineConfig, int, float]

#: One pool task: a workload/latency/scale triple plus the configs to
#: run against it, each tagged with its position in the caller's cell
#: list.
_Group = Tuple[Workload, int, float, List[Tuple[int, MachineConfig]]]


def _cell_description(
    workload: Workload, config: MachineConfig, load_latency: int, scale: float
) -> str:
    policy = "perfect" if config.perfect_cache else config.policy.name
    return (f"workload={workload.name!r} policy={policy!r} "
            f"load_latency={load_latency} scale={scale}")


def _run_cell(cell: Cell) -> SimulationResult:
    """Worker entry point: simulate one cell."""
    from repro.sim.simulator import simulate

    workload, config, load_latency, scale = cell
    return simulate(workload, config, load_latency=load_latency, scale=scale)


def _run_group(group: _Group, handle=None, stream_handles=None):
    """Worker entry point: simulate one cache-affine group of cells.

    With a :class:`~repro.sim.traceplane.TraceHandle` the worker first
    seeds its trace cache from the shared-memory segment (skipped when
    a previous dispatch on this persistent worker already cached the
    trace); otherwise the first ``simulate`` call compiles and expands
    locally.  ``stream_handles`` carries the group's published
    event-stream segments (one per line size the group's fused cells
    replay over): the worker seeds its stream cache with zero-copy
    views the same way, so policy siblings replay without re-deriving
    line addresses.  Either way the remaining cells hit the
    worker-local caches because workload, latency, and scale are
    constant within a group.

    Returns ``(pairs, telemetry_delta, started_at)``: the indexed
    results, the worker's metric activity for exactly this group (a
    before/after snapshot diff, so a parallel sweep's merged metrics
    equal the sum of serial runs), and the wall-clock instant the group
    started executing (the parent derives queue wait from it).
    """
    from repro.sim import simulator
    from repro.sim.simulator import simulate

    workload, load_latency, scale, members = group
    telemetry_on = telemetry.enabled()
    before = telemetry.snapshot() if telemetry_on else None
    started_at = time.time()
    busy_start = time.perf_counter()
    trace = None
    if handle is not None and not simulator.trace_cached(
            workload, load_latency, scale):
        trace = traceplane.attach_trace(workload, handle)
        if trace is not None:
            simulator.install_trace(workload, load_latency, trace,
                                    scale=scale)
    if stream_handles:
        from repro.sim import stream as stream_mod

        for stream_handle in stream_handles:
            if stream_mod.stream_cached(workload, load_latency, scale,
                                        stream_handle.line_size):
                continue
            if trace is None:
                _, trace = simulator.expand_workload(
                    workload, load_latency, scale=scale)
            stream = traceplane.attach_stream(trace, stream_handle)
            if stream is not None:
                stream_mod.install_stream(workload, load_latency, stream,
                                          scale=scale)
    pairs = []
    for index, config in members:
        try:
            result = simulate(workload, config, load_latency=load_latency,
                              scale=scale)
        except Exception as exc:
            raise CellExecutionError(
                f"sweep cell failed "
                f"({_cell_description(workload, config, load_latency, scale)})"
                f": {exc!r}"
            ) from exc
        pairs.append((index, result))
    delta = None
    if telemetry_on:
        busy = time.perf_counter() - busy_start
        m = telemetry.metrics()
        m.counter("pool.groups").inc()
        m.counter("pool.worker_busy_seconds").inc(busy)
        m.histogram("pool.group_cells",
                    bounds=telemetry.SIZE_BUCKETS).observe(len(members))
        m.histogram("pool.group_seconds").observe(busy)
        delta = telemetry.snapshot_diff(before, telemetry.snapshot())
    return pairs, delta, started_at


def default_workers() -> int:
    """The pool size: ``REPRO_WORKERS`` if set, else half the CPUs.

    The environment override lets batch scripts and CI pin the worker
    count without plumbing a flag through every entry point.
    """
    override = os.environ.get("REPRO_WORKERS")
    if override is not None:
        try:
            workers = int(override)
        except ValueError:
            raise ConfigurationError(
                f"REPRO_WORKERS must be an integer: {override!r}"
            ) from None
        if workers < 1:
            raise ConfigurationError(
                f"REPRO_WORKERS must be >= 1: {workers}"
            )
        return workers
    return max(1, (os.cpu_count() or 2) // 2)


# -- the persistent pool -------------------------------------------------------


def persistent_pool_enabled() -> bool:
    """Whether ``run_cells`` reuses one process-wide pool.

    ``REPRO_POOL_PERSIST=0`` restores the old fresh-pool-per-call
    behaviour (each dispatch pays process start-up and cold worker
    caches); anything else keeps the pool warm between sweeps.
    """
    return os.environ.get("REPRO_POOL_PERSIST", "1") != "0"


def pool_idle_seconds() -> float:
    """How long the persistent pool may sit unused before self-retiring."""
    override = os.environ.get("REPRO_POOL_IDLE")
    if override is None:
        return 120.0
    try:
        idle = float(override)
    except ValueError:
        raise ConfigurationError(
            f"REPRO_POOL_IDLE must be a number of seconds: {override!r}"
        ) from None
    if idle <= 0:
        raise ConfigurationError(
            f"REPRO_POOL_IDLE must be positive: {idle}"
        )
    return idle


class _PoolState:
    """The process-wide pool plus its bookkeeping, guarded by one lock."""

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.pool: Optional[ProcessPoolExecutor] = None
        self.workers = 0
        self.pid: Optional[int] = None
        self.leases = 0
        self.last_used = 0.0
        self.idle_timer: Optional[threading.Timer] = None
        self.created = 0
        self.reused = 0
        self.shutdowns = 0


_STATE = _PoolState()


def _lease_pool(workers: int, reuse: bool) -> Tuple[ProcessPoolExecutor, bool]:
    """A pool with at least ``workers`` workers; ``(pool, caller_owns)``.

    With ``reuse`` the process-wide pool is handed out (created or
    resized if the live one is too small, discarded if it belongs to a
    pre-fork parent); the caller must pass it to :func:`_return_pool`.
    Without ``reuse`` a fresh private pool is returned and the caller
    shuts it down.
    """
    if not reuse:
        return ProcessPoolExecutor(max_workers=workers), True
    state = _STATE
    with state.lock:
        if state.pid is not None and state.pid != os.getpid():
            # Forked child: the inherited executor's plumbing belongs
            # to the parent.  Abandon it without touching its queues.
            state.pool = None
            state.pid = None
            state.workers = 0
            state.leases = 0
            state.idle_timer = None
        pool = state.pool
        broken = pool is not None and getattr(pool, "_broken", False)
        if pool is not None and state.workers < workers and state.leases > 0:
            # Another dispatch is mid-flight on the shared pool; give
            # this caller a private, right-sized pool instead of
            # yanking the shared one out from under its sibling.
            return ProcessPoolExecutor(max_workers=workers), True
        if pool is None or broken or state.workers < workers:
            if pool is not None:
                pool.shutdown(wait=not broken, cancel_futures=True)
                state.shutdowns += 1
            pool = ProcessPoolExecutor(max_workers=workers)
            state.pool = pool
            state.workers = workers
            state.pid = os.getpid()
            state.created += 1
            if telemetry.enabled():
                telemetry.counter("pool.created").inc()
        else:
            state.reused += 1
            if telemetry.enabled():
                telemetry.counter("pool.reused").inc()
        state.leases += 1
        state.last_used = time.monotonic()
        if state.idle_timer is not None:
            state.idle_timer.cancel()
            state.idle_timer = None
        return pool, False


def _return_pool(pool: ProcessPoolExecutor, owned: bool,
                 broken: bool = False) -> None:
    """End a lease: private pools die, the shared one arms its idle timer."""
    if owned:
        pool.shutdown(wait=True, cancel_futures=True)
        return
    state = _STATE
    with state.lock:
        if state.pool is not pool:
            return
        state.leases = max(0, state.leases - 1)
        state.last_used = time.monotonic()
        if broken:
            state.pool = None
            state.workers = 0
            state.leases = 0
            state.shutdowns += 1
            pool.shutdown(wait=False, cancel_futures=True)
            return
        if state.leases == 0:
            _arm_idle_timer_locked(state)


def _arm_idle_timer_locked(state: _PoolState) -> None:
    idle = pool_idle_seconds()
    timer = threading.Timer(idle, _idle_shutdown)
    timer.daemon = True
    state.idle_timer = timer
    timer.start()


def _idle_shutdown() -> None:
    state = _STATE
    with state.lock:
        if (state.pool is None or state.leases > 0
                or state.pid != os.getpid()):
            return
        if time.monotonic() - state.last_used < pool_idle_seconds() * 0.5:
            _arm_idle_timer_locked(state)
            return
        pool = state.pool
        state.pool = None
        state.workers = 0
        state.idle_timer = None
        state.shutdowns += 1
    pool.shutdown(wait=True, cancel_futures=True)
    if telemetry.enabled():
        telemetry.counter("pool.idle_shutdowns").inc()


def _shutdown_process_pool() -> bool:
    """Retire the persistent process pool now; True if one was running."""
    state = _STATE
    with state.lock:
        if state.idle_timer is not None:
            state.idle_timer.cancel()
            state.idle_timer = None
        pool = state.pool
        if pool is None or state.pid != os.getpid():
            state.pool = None
            state.workers = 0
            state.leases = 0
            return False
        state.pool = None
        state.workers = 0
        state.leases = 0
        state.shutdowns += 1
    pool.shutdown(wait=True, cancel_futures=True)
    return True


def _process_pool_stats() -> Dict[str, object]:
    """Lifetime process-pool bookkeeping for this process (advisory)."""
    state = _STATE
    with state.lock:
        return {
            "active": state.pool is not None and state.pid == os.getpid(),
            "workers": state.workers,
            "created": state.created,
            "reused": state.reused,
            "shutdowns": state.shutdowns,
        }


def _atexit_shutdown() -> None:
    state = _STATE
    if state.pid == os.getpid():
        _shutdown_process_pool()


atexit.register(_atexit_shutdown)


# -- dispatch ------------------------------------------------------------------


def _stream_affinity(config: MachineConfig) -> Tuple:
    """Sort key clustering policy siblings of one event stream.

    Within a (workload, latency, scale) bucket, cells that share a
    line size replay over the same event stream, and cells that also
    share the full geometry and store policy share a functional
    summary.  Ordering members this way before chunking keeps stream
    siblings in the same pool group (and adjacent in serial runs), so
    the small stream/summary LRU caches stay hot across them.

    The engine-capability tier (:func:`repro.sim.engines.cell_engine_tier`)
    leads the key so a group also stays on one code path: native-lane
    cells compile vectorized kernels and stacked column matrices that
    fused-only siblings never touch, and interleaving the two would
    thrash both kernel caches.
    """
    geometry = config.geometry
    return (
        engines.cell_engine_tier(config),
        config.perfect_cache,
        geometry.line_size,
        geometry.size,
        geometry.associativity,
        config.policy.blocking,
        config.policy.write_allocate_blocking,
    )


def _group_cells(cells: Sequence[Cell], max_group: int) -> List[_Group]:
    """Bucket cells by (workload content, latency, scale), keeping tags.

    Workload identity is by *content* (:func:`workload_key`), not by
    object: equal-but-distinct ``Workload`` instances -- e.g. the
    ``replace(workload, seed=...)`` copies seed replication builds --
    land in the same bucket and share one compile and trace expansion.
    Members are ordered stream-affinely (:func:`_stream_affinity`)
    before chunking, and groups are capped at ``max_group`` members so
    one giant bucket cannot serialize the whole pool behind a single
    worker.
    """
    buckets: Dict[Tuple, List[Tuple[int, MachineConfig]]] = {}
    keys: Dict[Tuple, Tuple[Workload, int, float]] = {}
    for index, (workload, config, load_latency, scale) in enumerate(cells):
        key = (workload_key(workload), load_latency, scale)
        buckets.setdefault(key, []).append((index, config))
        keys.setdefault(key, (workload, load_latency, scale))
    groups: List[_Group] = []
    for key, members in buckets.items():
        workload, load_latency, scale = keys[key]
        members.sort(key=lambda item: _stream_affinity(item[1]) + (item[0],))
        for start in range(0, len(members), max_group):
            groups.append(
                (workload, load_latency, scale,
                 members[start:start + max_group])
            )
    return groups


def _prebuild_kernels(cells: Sequence[Cell]) -> None:
    """Compile every C kernel family the sweep will need, up front.

    Workers inherit the on-disk kernel cache, so building in the
    parent turns each worker's first cnative cell into a plain
    ``dlopen`` of the cached ``.so`` instead of a racing compile.
    Quietly does nothing when the resolved engine has no C tier or no
    compiler exists -- the per-cell fallback handles those paths.
    """
    from repro.cpu import ckernel
    from repro.cpu.replay import replay_supported
    from repro.sim import engines as engines_mod

    if not engines_mod.resolve_engine().cnative:
        return
    if not ckernel.kernels_available():
        return
    families = {
        ckernel.family_of(config)
        for _workload, config, _latency, _scale in cells
        if not config.policy.blocking and replay_supported(config)
    }
    for family in families:
        try:
            ckernel.ensure_kernel(family)
        except ckernel.KernelBuildError:
            return


def _pool_submit(
    cells: Sequence[Cell],
    workers: Optional[int] = None,
    reuse_pool: Optional[bool] = None,
    trace_plane: Optional[bool] = None,
) -> List[SimulationResult]:
    """Run arbitrary sweep cells across a process pool, in order.

    With ``workers=1`` (or a single cell) everything runs in-process,
    which keeps tests and small sweeps free of pool overhead.  The
    pool never exceeds the number of dispatchable groups.
    ``reuse_pool`` / ``trace_plane`` override the environment defaults
    (:func:`persistent_pool_enabled`,
    :func:`repro.sim.traceplane.shm_enabled`); benchmarks use them to
    pin each dispatch strategy explicitly.
    """
    if workers is None:
        workers = default_workers()
    if workers <= 1 or len(cells) <= 1:
        return [_run_cell(cell) for cell in cells]
    if reuse_pool is None:
        reuse_pool = persistent_pool_enabled()
    if trace_plane is None:
        trace_plane = traceplane.shm_enabled()
    # Cap group size so every worker gets a few tasks to balance, but
    # never below a handful of cells or the affinity win evaporates.
    max_group = max(4, -(-len(cells) // (workers * 4)))
    groups = _group_cells(cells, max_group)
    # A pool larger than the group count would spawn workers that can
    # never receive a task; with one group the pool cannot help at all.
    workers = min(workers, len(groups))
    if workers <= 1:
        return [_run_cell(cell) for cell in cells]

    _prebuild_kernels(cells)
    plane = traceplane.plane() if trace_plane else None
    handles: List[Optional[traceplane.TraceHandle]] = []
    stream_sets: List[List[traceplane.StreamHandle]] = []
    results: List[Optional[SimulationResult]] = [None] * len(cells)
    telemetry_on = telemetry.enabled()
    busy_total = 0.0
    dispatch_start = time.perf_counter()
    pool, owned = _lease_pool(workers, reuse_pool)
    broken = False
    try:
        if plane is not None:
            from repro.sim.simulator import fusion_default

            publish_streams = fusion_default()
            for workload, load_latency, scale, members in groups:
                handles.append(plane.acquire(workload, load_latency, scale))
                streams: List[traceplane.StreamHandle] = []
                if publish_streams:
                    line_sizes = sorted({
                        config.geometry.line_size
                        for _index, config in members
                        if not config.perfect_cache
                    })
                    for line_size in line_sizes:
                        stream_handle = plane.acquire_stream(
                            workload, load_latency, scale, line_size)
                        if stream_handle is not None:
                            streams.append(stream_handle)
                stream_sets.append(streams)
        else:
            handles = [None] * len(groups)
            stream_sets = [[] for _ in groups]
        submitted_at = {}
        futures = []
        for group, handle, streams in zip(groups, handles, stream_sets):
            future = pool.submit(_run_group, group, handle, streams or None)
            submitted_at[future] = time.time()
            futures.append(future)
        try:
            for future in as_completed(futures):
                pairs, delta, started_at = future.result()
                for index, result in pairs:
                    results[index] = result
                if telemetry_on and delta is not None:
                    telemetry.merge(delta)
                    busy_total += delta.get("counters", {}).get(
                        "pool.worker_busy_seconds", 0.0)
                    telemetry.histogram("pool.queue_wait_seconds").observe(
                        max(0.0, started_at - submitted_at[future]))
        except BaseException as exc:
            broken = isinstance(exc, BrokenProcessPool)
            for future in futures:
                future.cancel()
            raise
    finally:
        if plane is not None:
            for group, handle in zip(groups, handles):
                if handle is not None:
                    plane.release(group[0], group[1], group[2])
            for group, streams in zip(groups, stream_sets):
                for stream_handle in streams:
                    plane.release_stream(group[0], group[1], group[2],
                                         stream_handle.line_size)
        _return_pool(pool, owned, broken=broken)
    if telemetry_on:
        elapsed = time.perf_counter() - dispatch_start
        m = telemetry.metrics()
        m.counter("pool.dispatches").inc()
        m.gauge("pool.workers").set(workers)
        if elapsed > 0:
            m.gauge("pool.last_utilization").set(
                busy_total / (workers * elapsed))
    return results  # type: ignore[return-value]


def _ungrouped_submit(
    cells: Sequence[Cell], workers: Optional[int] = None
) -> List[SimulationResult]:
    """Pre-grouping dispatch: one fresh-pool task per cell.

    Kept as the comparison baseline for ``tools/perfbench.py``; sweeps
    should use :func:`dispatch`.
    """
    if workers is None:
        workers = default_workers()
    if workers <= 1 or len(cells) <= 1:
        return [_run_cell(cell) for cell in cells]
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(_run_cell, cells))


# -- the backend API -----------------------------------------------------------


@dataclass(frozen=True)
class BackendCapabilities:
    """What a dispatch backend can exploit, for planners and humans.

    The flags gate the *parent-side* optimizations: only a backend
    that runs forked children on this host can attach them to the
    shared-memory trace plane or reuse the persistent pool, and only
    one that executes C-tier cells in processes inheriting this
    parent's kernel cache benefits from pre-building kernels here.
    """

    #: Workers can attach the parent's shared-memory trace plane.
    trace_plane: bool = False
    #: Dispatches lease the persistent process-wide worker pool.
    persistent_pool: bool = False
    #: Pre-compiling C kernels in the parent warms the workers.
    kernel_prebuild: bool = False
    #: Cells leave this process (serialized over the wire format).
    remote: bool = False

    def describe(self) -> str:
        flags = [
            name for name, on in (
                ("shm", self.trace_plane),
                ("pool", self.persistent_pool),
                ("prebuild", self.kernel_prebuild),
                ("remote", self.remote),
            ) if on
        ]
        return "+".join(flags) if flags else "-"


class DispatchBackend:
    """Protocol every dispatch transport implements.

    A backend turns a shard of cells into ordered results; everything
    else (dedup, memoization, reassembly) lives in the planner.  All
    backends are bit-identical by construction -- they run the same
    ``simulate`` -- so selection is purely an execution-topology
    decision, exactly like engine tiers.
    """

    name: str = "?"
    description: str = ""
    capabilities: BackendCapabilities = BackendCapabilities()

    def submit(
        self,
        cells: Sequence[Cell],
        workers: Optional[int] = None,
        reuse_pool: Optional[bool] = None,
        trace_plane: Optional[bool] = None,
    ) -> List[SimulationResult]:
        """Execute ``cells`` and return results in the caller's order."""
        raise NotImplementedError

    def stats(self) -> Dict[str, object]:
        """Advisory lifetime state of this backend in this process."""
        return {}

    def shutdown(self) -> bool:
        """Release held resources; True if any were actually live."""
        return False


class InlineBackend(DispatchBackend):
    """Serial in-process execution: no pool, no serialization."""

    name = "inline"
    description = "serial in-process execution (no pool, no wire)"
    capabilities = BackendCapabilities()

    def __init__(self) -> None:
        self._dispatches = 0
        self._cells = 0

    def submit(self, cells, workers=None, reuse_pool=None, trace_plane=None):
        self._dispatches += 1
        self._cells += len(cells)
        return [_run_cell(cell) for cell in cells]

    def stats(self) -> Dict[str, object]:
        return {"dispatches": self._dispatches, "cells": self._cells}


class PoolBackend(DispatchBackend):
    """The cache-affine grouped process pool (module docstring)."""

    name = "pool"
    description = ("cache-affine grouped process pool "
                   "(trace plane + persistent workers)")
    capabilities = BackendCapabilities(
        trace_plane=True, persistent_pool=True, kernel_prebuild=True,
    )

    def __init__(self) -> None:
        self._dispatches = 0
        self._cells = 0

    def submit(self, cells, workers=None, reuse_pool=None, trace_plane=None):
        self._dispatches += 1
        self._cells += len(cells)
        return _pool_submit(cells, workers=workers, reuse_pool=reuse_pool,
                            trace_plane=trace_plane)

    def stats(self) -> Dict[str, object]:
        stats: Dict[str, object] = {
            "dispatches": self._dispatches, "cells": self._cells,
        }
        stats.update(_process_pool_stats())
        return stats

    def shutdown(self) -> bool:
        return _shutdown_process_pool()


class AutoBackend(DispatchBackend):
    """``inline`` for serial or single-cell calls, ``pool`` otherwise.

    This is the historical ``run_cells`` behaviour promoted to an
    explicit backend, and the default resolution when neither an
    argument nor ``REPRO_BACKEND`` pins one.
    """

    name = "auto"
    description = "inline when workers<=1 or one cell, else pool"
    capabilities = PoolBackend.capabilities

    def _delegate(self, cells, workers) -> DispatchBackend:
        if workers is None:
            workers = default_workers()
        if workers <= 1 or len(cells) <= 1:
            return get_backend("inline")
        return get_backend("pool")

    def submit(self, cells, workers=None, reuse_pool=None, trace_plane=None):
        return self._delegate(cells, workers).submit(
            cells, workers=workers, reuse_pool=reuse_pool,
            trace_plane=trace_plane)

    def stats(self) -> Dict[str, object]:
        return {"delegates": ("inline", "pool")}


#: Registry order, as listed by ``python -m repro backends``.
BACKEND_ORDER: Tuple[str, ...] = ("inline", "pool", "socket")

AUTO_BACKEND = "auto"

_BACKENDS: Dict[str, DispatchBackend] = {}


def register_backend(backend: DispatchBackend) -> DispatchBackend:
    """Install (or replace) a backend instance under its name."""
    _BACKENDS[backend.name] = backend
    return backend


register_backend(InlineBackend())
register_backend(PoolBackend())
_AUTO = AutoBackend()


def backend_names() -> Tuple[str, ...]:
    """Valid ``REPRO_BACKEND`` / ``backend=`` values, ``auto`` included."""
    return BACKEND_ORDER + (AUTO_BACKEND,)


def get_backend(name: str) -> DispatchBackend:
    """Look up one backend by name (``auto`` resolves lazily per call)."""
    label = name.strip().lower()
    if label == AUTO_BACKEND:
        return _AUTO
    if label not in _BACKENDS and label == "socket":
        # The socket backend lives with the fabric; importing the
        # module registers it.  Lazy so `import repro.sim.parallel`
        # never drags the network stack in.
        import repro.sim.fabric  # noqa: F401
    backend = _BACKENDS.get(label)
    if backend is None:
        raise ConfigurationError(
            f"unknown dispatch backend '{name}'; valid backends: "
            f"{', '.join(backend_names())}"
        )
    return backend


def resolve_backend(name: Optional[str] = None) -> DispatchBackend:
    """The single selection path: argument, ``REPRO_BACKEND``, ``auto``."""
    if name is not None:
        return get_backend(name)
    env = os.environ.get("REPRO_BACKEND")
    if env is not None:
        return get_backend(env)
    return _AUTO


def dispatch(
    cells: Sequence[Cell],
    *,
    backend: Optional[str] = None,
    workers: Optional[int] = None,
    reuse_pool: Optional[bool] = None,
    trace_plane: Optional[bool] = None,
) -> List[SimulationResult]:
    """Execute sweep cells through the resolved dispatch backend.

    The one entry point every sweep path funnels through (replacing
    ``run_cells`` / ``run_cells_ungrouped`` / ``run_table_parallel``).
    ``backend`` names a transport from :func:`backend_names`;
    ``None`` resolves via ``REPRO_BACKEND`` and defaults to ``auto``.
    Results are bit-identical across backends -- only topology and
    speed change.  ``reuse_pool`` / ``trace_plane`` are pool-backend
    knobs and are ignored by backends without those capabilities.
    """
    resolved = resolve_backend(backend)
    cells = list(cells)
    if telemetry.enabled():
        m = telemetry.metrics()
        m.counter("dispatch.calls").inc()
        m.counter("dispatch.cells").inc(len(cells))
        m.counter(f"dispatch.backend.{resolved.name}").inc()
    return resolved.submit(cells, workers=workers, reuse_pool=reuse_pool,
                           trace_plane=trace_plane)


# -- per-backend lifecycle -----------------------------------------------------


def shutdown_pool() -> bool:
    """Release every backend's held resources; True if any were live.

    Despite the historical name this now covers all registered
    backends: the persistent process pool and, when the fabric has
    been used, the socket backend's cached worker connections.  Safe
    to call at any time -- a later sweep transparently reacquires
    whatever it needs.
    """
    any_live = False
    for backend in list(_BACKENDS.values()):
        any_live = backend.shutdown() or any_live
    return any_live


def pool_stats(backend: Optional[str] = None) -> Dict[str, object]:
    """Per-backend dispatch state for this process (advisory).

    ``backend`` (a resolved name; the active selection when ``None``)
    picks what ``"backend"`` reports; ``"backends"`` always carries
    every registered backend's own stats, so callers see the truth
    even when the inline or socket backend -- not the process pool --
    is doing the work.  The historical process-pool keys (``active``,
    ``workers``, ``created``, ``reused``, ``shutdowns``) stay at top
    level for compatibility and always describe the process pool.
    """
    resolved = resolve_backend(backend)
    stats: Dict[str, object] = {
        "backend": resolved.name,
        "backends": {
            name: instance.stats()
            for name, instance in sorted(_BACKENDS.items())
        },
    }
    stats.update(_process_pool_stats())
    return stats


# -- deprecated aliases --------------------------------------------------------


_DEPRECATION_WARNED = set()


def _warn_deprecated(name: str, replacement: str) -> None:
    if name in _DEPRECATION_WARNED:
        return
    _DEPRECATION_WARNED.add(name)
    warnings.warn(
        f"{name} is deprecated; use {replacement} instead",
        DeprecationWarning,
        stacklevel=3,
    )


def reset_deprecation_warnings() -> None:
    """Re-arm the once-per-process alias warnings (tests)."""
    _DEPRECATION_WARNED.clear()


def run_cells(
    cells: Sequence[Cell],
    workers: Optional[int] = None,
    reuse_pool: Optional[bool] = None,
    trace_plane: Optional[bool] = None,
) -> List[SimulationResult]:
    """Deprecated alias for :func:`dispatch` on the pool/auto path."""
    _warn_deprecated("run_cells", "repro.sim.parallel.dispatch(cells, ...)")
    return _pool_submit(cells, workers=workers, reuse_pool=reuse_pool,
                        trace_plane=trace_plane)


def run_cells_ungrouped(
    cells: Sequence[Cell], workers: Optional[int] = None
) -> List[SimulationResult]:
    """Deprecated alias kept for old benchmark scripts."""
    _warn_deprecated(
        "run_cells_ungrouped",
        "repro.sim.parallel.dispatch (grouped dispatch is always better)",
    )
    return _ungrouped_submit(cells, workers=workers)


def run_table_parallel(
    workloads: Sequence[Workload],
    policies: Sequence[MSHRPolicy],
    load_latency: int = 10,
    base: Optional[MachineConfig] = None,
    scale: float = 1.0,
    workers: Optional[int] = None,
) -> "TableSweep":
    """Deprecated alias for :func:`repro.sim.sweep.run_table`."""
    from repro.sim.sweep import run_table

    _warn_deprecated(
        "run_table_parallel", "repro.api.sweep(workers=...) or run_table"
    )
    if workers is None:
        workers = default_workers()
    return run_table(workloads, policies, load_latency=load_latency,
                     base=base, scale=scale, workers=workers)
