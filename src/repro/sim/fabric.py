"""Distributed sweep fabric: socket workers and the shard coordinator.

The planner already reduces every sweep to a flat, content-addressed
cell list, and cells are deterministic and idempotent, which makes
scale-out almost embarrassing: the fabric just has to move cells to
other Python processes and move :class:`SimulationResult` objects
back.  This module supplies the three pieces:

:class:`WorkerServer`
    ``python -m repro worker --host H --port P``.  A TCP server that
    executes shards.  Each connection starts with a ``hello``
    handshake carrying the worker's wire schema, ``ENGINE_VERSION``
    and fabric protocol number; a coordinator running a different
    timing-model revision is refused outright (mixing engine versions
    would poison the shared result store).  Shards execute with the
    worker-local compile/trace caches, so a shard's cache-affine cells
    amortize expansion exactly like pool groups do.

:class:`FabricCoordinator`
    Partitions a cell list with the same stream-affinity grouping the
    process pool uses, fans the shards out over the connected workers
    (one feeder thread per worker), and reassembles ordered results.
    Failure semantics are *at-least-once*: when a worker's socket
    dies, its in-flight shard goes back on the queue for the
    surviving workers (``fabric.reassigned``); if every worker is
    lost, the remainder runs locally inline (``fabric.local_cells``)
    unless local fallback is disabled, in which case
    :class:`~repro.errors.FabricError` is raised.  A shard that
    *executes* but raises remotely is a real cell failure and is
    re-raised, never retried.  Workers return their telemetry
    snapshot diff with each shard and the coordinator merges it, so a
    distributed sweep's metrics still sum to the serial run's.

:class:`SocketBackend`
    The ``socket`` entry in the dispatch-backend registry
    (:mod:`repro.sim.parallel`).  Worker addresses come from
    ``REPRO_FABRIC_WORKERS`` (``host:port,host:port,...``).

Result-store backfill is deliberately *not* done here: the planner
stores every dispatched result after :func:`repro.sim.parallel.dispatch`
returns, whatever the backend, so a fabric sweep warms the
coordinator's store exactly like a local one.
"""

from __future__ import annotations

import os
import queue
import socket
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro import telemetry
from repro.errors import CellExecutionError, FabricError, WireError
from repro.sim import wire
from repro.sim.parallel import (
    BackendCapabilities,
    Cell,
    DispatchBackend,
    _group_cells,
    _run_cell,
    register_backend,
)
from repro.sim.stats import SimulationResult

#: Fabric message-protocol revision, checked during the handshake
#: alongside the wire schema and engine version.
PROTOCOL = 1

#: Accept/connect timeout and per-shard response timeout (seconds).
#: Shards are small (tens of cells) but a cold worker compiles and
#: expands traces, so the response timeout is generous.
CONNECT_TIMEOUT = 10.0
SHARD_TIMEOUT = 600.0

#: Shards kept in flight per worker connection.  Depth 2 hides the
#: coordinator's encode/decode and the loopback round trip behind the
#: worker's simulation time without hoarding work on a slow worker.
PIPELINE_DEPTH = 2


def _hello_payload() -> Dict[str, object]:
    return {
        "kind": "hello",
        "protocol": PROTOCOL,
        "schema": wire.WIRE_SCHEMA,
        "engine": wire._engine_version(),
        "pid": os.getpid(),
    }


def _check_hello(payload: Dict[str, object], who: str) -> None:
    """Refuse a peer whose protocol/schema/engine doesn't match ours."""
    if not isinstance(payload, dict) or payload.get("kind") != "hello":
        raise FabricError(f"{who} did not open with a hello message")
    ours = _hello_payload()
    for key in ("protocol", "schema", "engine"):
        if payload.get(key) != ours[key]:
            raise FabricError(
                f"{who} {key} mismatch: local {ours[key]!r}, "
                f"peer {payload.get(key)!r}; refusing to exchange cells"
            )


def parse_worker_addresses(spec: str) -> List[Tuple[str, int]]:
    """Parse ``host:port,host:port`` (the ``REPRO_FABRIC_WORKERS`` form)."""
    addresses: List[Tuple[str, int]] = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        host, sep, port = part.rpartition(":")
        if not sep or not host:
            raise FabricError(
                f"bad worker address {part!r}; expected host:port"
            )
        try:
            addresses.append((host, int(port)))
        except ValueError:
            raise FabricError(
                f"bad worker port in {part!r}; expected host:port"
            ) from None
    if not addresses:
        raise FabricError("no worker addresses given")
    return addresses


# -- worker side ---------------------------------------------------------------


class WorkerServer:
    """A socket worker: executes shards for one coordinator at a time.

    Connections are handled in daemon threads so a wedged coordinator
    cannot block the accept loop; shard execution within a connection
    is sequential, which keeps the worker-local caches coherent and
    the memory footprint at one trace at a time.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self._sock = socket.create_server((host, port))
        # A blocked accept() does not notice close() from another
        # thread on Linux, so the accept loop polls: wake every 250ms
        # to check the closed flag.  Accepted sockets are unaffected
        # (accept() always returns blocking sockets).
        self._sock.settimeout(0.25)
        self.host, self.port = self._sock.getsockname()[:2]
        self._closed = threading.Event()
        self._conns: set = set()
        self._conns_lock = threading.Lock()

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def serve_forever(self) -> None:
        """Accept coordinators until :meth:`close` (blocking)."""
        while not self._closed.is_set():
            try:
                conn, _peer = self._sock.accept()
            except TimeoutError:
                continue
            except OSError:
                break
            thread = threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True)
            thread.start()

    def close(self) -> None:
        """Stop accepting and sever live connections (simulated death).

        Closing in-flight connections too makes this equivalent, from
        a coordinator's point of view, to the worker process being
        killed -- which is exactly what the reassignment tests need.
        """
        self._closed.set()
        try:
            self._sock.close()
        except OSError:
            pass
        with self._conns_lock:
            conns = list(self._conns)
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass

    def _serve_connection(self, conn: socket.socket) -> None:
        with self._conns_lock:
            self._conns.add(conn)
        # Shard frames are small and strictly request/response; Nagle
        # delays would stack ~40ms per round trip.
        conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        fh = conn.makefile("rwb")
        try:
            wire.send_frame(fh, _hello_payload())
            hello = wire.recv_frame(fh)
            if hello is None:
                return
            try:
                _check_hello(hello, "coordinator")
            except FabricError as exc:
                wire.send_frame(fh, {"kind": "error", "id": None,
                                     "fatal": True, "message": str(exc)})
                return
            while True:
                message = wire.recv_frame(fh)
                if message is None:
                    return
                kind = message.get("kind")
                if kind == "ping":
                    wire.send_frame(fh, {"kind": "pong"})
                elif kind == "shard":
                    wire.send_frame(fh, self._execute(message))
                else:
                    wire.send_frame(fh, {
                        "kind": "error", "id": message.get("id"),
                        "fatal": True,
                        "message": f"unknown message kind {kind!r}",
                    })
                    return
        except (WireError, OSError):
            pass
        finally:
            with self._conns_lock:
                self._conns.discard(conn)
            try:
                fh.close()
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass

    def _execute(self, message: Dict[str, object]) -> Dict[str, object]:
        shard_id = message.get("id")
        try:
            cells = wire.cells_from_wire(message["cells"])
        except (KeyError, WireError) as exc:
            return {"kind": "error", "id": shard_id, "fatal": True,
                    "message": f"undecodable shard: {exc}"}
        telemetry_on = telemetry.enabled()
        before = telemetry.snapshot() if telemetry_on else None
        try:
            results = [_run_cell(cell) for cell in cells]
        except Exception as exc:  # noqa: BLE001 - shipped to coordinator
            return {"kind": "error", "id": shard_id, "fatal": False,
                    "message": f"{type(exc).__name__}: {exc}"}
        delta = None
        if telemetry_on:
            telemetry.counter("fabric.worker.shards").inc()
            telemetry.counter("fabric.worker.cells").inc(len(cells))
            delta = telemetry.snapshot_diff(before, telemetry.snapshot())
        return {"kind": "result", "id": shard_id,
                "results": wire.results_to_wire(results),
                "telemetry": delta}


def run_worker(host: str = "127.0.0.1", port: int = 0) -> None:
    """``python -m repro worker`` entry: announce the address and serve.

    The ``listening on host:port`` line (flushed) is the discovery
    contract for port-0 workers: smoke scripts and the CI fabric step
    read it to learn the kernel-assigned port.
    """
    server = WorkerServer(host=host, port=port)
    print(f"listening on {server.address}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.close()


# -- coordinator side ----------------------------------------------------------


@dataclass
class FabricReport:
    """What a coordinator run actually did, for benchmarks and smoke."""

    workers: int = 0
    shards: int = 0
    cells: int = 0
    reassigned: int = 0
    lost_workers: int = 0
    local_cells: int = 0
    worker_shards: Dict[str, int] = field(default_factory=dict)


class _Shard:
    __slots__ = ("shard_id", "indices", "cells", "attempts")

    def __init__(self, shard_id: int, indices: List[int],
                 cells: List[Cell]) -> None:
        self.shard_id = shard_id
        self.indices = indices
        self.cells = cells
        self.attempts = 0


class FabricCoordinator:
    """Fan a cell list out over socket workers and reassemble results.

    ``addresses`` are ``(host, port)`` pairs of live
    :class:`WorkerServer` instances.  ``max_group`` caps shard size
    (defaulting to the pool's balance heuristic); ``on_shard_done``
    is a test/smoke hook called with each completed :class:`_Shard`
    as its remote result lands -- the kill-a-worker smoke uses it to
    time the kill deterministically.  Note that dispatch is
    pipelined (:data:`PIPELINE_DEPTH`), so by the time the hook
    fires the worker may already hold its next shard; a worker
    killed from the hook reassigns everything it still held.
    """

    def __init__(
        self,
        addresses: Sequence[Tuple[str, int]],
        *,
        max_group: Optional[int] = None,
        allow_local_fallback: bool = True,
        on_shard_done=None,
    ) -> None:
        if not addresses:
            raise FabricError("fabric coordinator needs at least one worker")
        self._addresses = list(addresses)
        self._max_group = max_group
        self._allow_local_fallback = allow_local_fallback
        self._on_shard_done = on_shard_done
        self.report = FabricReport()

    def run(self, cells: Sequence[Cell]) -> List[SimulationResult]:
        cells = list(cells)
        if not cells:
            return []
        if self._max_group is not None:
            max_group = self._max_group
        else:
            workers = max(len(self._addresses), 1)
            max_group = max(4, -(-len(cells) // (workers * 4)))
        groups = _group_cells(cells, max_group)
        shards: "queue.Queue[Optional[_Shard]]" = queue.Queue()
        for shard_id, (workload, load_latency, scale, members) in enumerate(
                groups):
            indices = [index for index, _config in members]
            shard_cells = [
                (workload, config, load_latency, scale)
                for _index, config in members
            ]
            shards.put(_Shard(shard_id, indices, shard_cells))

        report = self.report = FabricReport(
            workers=len(self._addresses), shards=len(groups),
            cells=len(cells))
        results: List[Optional[SimulationResult]] = [None] * len(cells)
        lock = threading.Lock()
        state = {
            "remaining": len(groups),
            "failure": None,        # remote execution error: fatal
            "live_workers": 0,
        }
        done = threading.Event()
        telemetry_on = telemetry.enabled()

        def finish_shard(shard: _Shard,
                         shard_results: List[SimulationResult],
                         delta, address: str) -> None:
            with lock:
                for index, result in zip(shard.indices, shard_results):
                    results[index] = result
                if telemetry_on and delta is not None:
                    telemetry.merge(delta)
                report.worker_shards[address] = (
                    report.worker_shards.get(address, 0) + 1)
                state["remaining"] -= 1
                if state["remaining"] == 0:
                    done.set()
            if self._on_shard_done is not None:
                self._on_shard_done(shard)

        def fail(exc: Exception) -> None:
            with lock:
                if state["failure"] is None:
                    state["failure"] = exc
                done.set()

        def worker_loop(host: str, port: int) -> None:
            address = f"{host}:{port}"
            fh = None
            conn = None
            shard: Optional[_Shard] = None
            inflight: Deque[_Shard] = deque()
            try:
                conn = socket.create_connection((host, port),
                                                timeout=CONNECT_TIMEOUT)
                conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                conn.settimeout(SHARD_TIMEOUT)
                fh = conn.makefile("rwb")
                hello = wire.recv_frame(fh)
                if hello is None:
                    raise FabricError(f"worker {address} closed during hello")
                _check_hello(hello, f"worker {address}")
                wire.send_frame(fh, _hello_payload())
                with lock:
                    state["live_workers"] += 1
                # Pipelined dispatch: keep up to PIPELINE_DEPTH shards
                # in flight so the worker's next shard is already in
                # its socket buffer while the coordinator decodes the
                # previous reply.  The worker answers frames in FIFO
                # order, so replies match ``inflight`` front to back.
                while not done.is_set():
                    while len(inflight) < PIPELINE_DEPTH:
                        try:
                            nxt = (shards.get_nowait() if inflight
                                   else shards.get(timeout=0.05))
                        except queue.Empty:
                            break
                        nxt.attempts += 1
                        wire.send_frame(fh, {
                            "kind": "shard", "id": nxt.shard_id,
                            "cells": wire.cells_to_wire(nxt.cells),
                        })
                        inflight.append(nxt)
                    if not inflight:
                        continue
                    reply = wire.recv_frame(fh)
                    shard = inflight.popleft()
                    if reply is None:
                        raise FabricError(
                            f"worker {address} vanished mid-shard")
                    kind = reply.get("kind")
                    if kind == "result":
                        shard_results = wire.results_from_wire(
                            reply["results"])
                        if len(shard_results) != len(shard.indices):
                            raise FabricError(
                                f"worker {address} returned "
                                f"{len(shard_results)} results for a "
                                f"{len(shard.indices)}-cell shard")
                        finished, shard = shard, None
                        finish_shard(finished, shard_results,
                                     reply.get("telemetry"), address)
                    elif kind == "error":
                        message = reply.get("message", "unknown error")
                        fail(CellExecutionError(
                            f"fabric shard failed on worker {address}: "
                            f"{message}"))
                        return
                    else:
                        raise FabricError(
                            f"worker {address} sent unexpected "
                            f"{kind!r} reply")
            except (OSError, WireError, FabricError):
                # Transport-level loss: unanswered shards (popped and
                # still-queued alike) go back on the queue for the
                # survivors.  Execution errors were handled above and
                # never land here.
                with lock:
                    report.lost_workers += 1
                    if telemetry_on:
                        telemetry.counter("fabric.worker_lost").inc()
                    orphans = ([shard] if shard is not None else [])
                    orphans.extend(inflight)
                    inflight.clear()
                    shard = None
                    for orphan in orphans:
                        report.reassigned += 1
                        if telemetry_on:
                            telemetry.counter("fabric.reassigned").inc()
                        shards.put(orphan)
            finally:
                with lock:
                    if state["live_workers"] > 0:
                        state["live_workers"] -= 1
                for closable in (fh, conn):
                    if closable is not None:
                        try:
                            closable.close()
                        except OSError:
                            pass

        threads = [
            threading.Thread(target=worker_loop, args=(host, port),
                             daemon=True)
            for host, port in self._addresses
        ]
        for thread in threads:
            thread.start()

        # Wait for completion, a fatal failure, or total worker loss.
        while not done.is_set():
            if all(not thread.is_alive() for thread in threads):
                break
            done.wait(timeout=0.05)
        for thread in threads:
            thread.join(timeout=CONNECT_TIMEOUT)

        if state["failure"] is not None:
            raise state["failure"]

        if state["remaining"] > 0:
            # Every worker is gone with shards outstanding.
            leftovers: List[_Shard] = []
            while True:
                try:
                    item = shards.get_nowait()
                except queue.Empty:
                    break
                if item is not None:
                    leftovers.append(item)
            missing = sum(len(s.indices) for s in leftovers)
            if not self._allow_local_fallback:
                raise FabricError(
                    f"all {len(self._addresses)} fabric workers lost with "
                    f"{state['remaining']} shards outstanding")
            for shard in leftovers:
                for index, cell in zip(shard.indices, shard.cells):
                    results[index] = _run_cell(cell)
                with lock:
                    state["remaining"] -= 1
            report.local_cells += missing
            if telemetry_on:
                telemetry.counter("fabric.local_cells").inc(missing)

        holes = [i for i, result in enumerate(results) if result is None]
        if holes:
            raise FabricError(
                f"fabric dispatch lost {len(holes)} cells "
                f"(first missing index {holes[0]}); this is a bug")
        if telemetry_on:
            m = telemetry.metrics()
            m.counter("fabric.dispatches").inc()
            m.counter("fabric.shards").inc(report.shards)
            m.counter("fabric.cells").inc(report.cells)
        return results  # type: ignore[return-value]


# -- the socket backend --------------------------------------------------------


def worker_addresses_from_env() -> List[Tuple[str, int]]:
    """The ``REPRO_FABRIC_WORKERS`` addresses, or a clear error."""
    spec = os.environ.get("REPRO_FABRIC_WORKERS", "").strip()
    if not spec:
        raise FabricError(
            "the socket backend needs REPRO_FABRIC_WORKERS="
            "host:port[,host:port...] pointing at running "
            "`python -m repro worker` processes"
        )
    return parse_worker_addresses(spec)


class SocketBackend(DispatchBackend):
    """Dispatch over the TCP fabric to ``python -m repro worker`` peers."""

    name = "socket"
    description = ("TCP fabric to `python -m repro worker` peers "
                   "(REPRO_FABRIC_WORKERS)")
    capabilities = BackendCapabilities(remote=True)

    def __init__(self) -> None:
        self._dispatches = 0
        self._cells = 0
        self._reassigned = 0
        self._lost_workers = 0
        self._last_report: Optional[FabricReport] = None

    def submit(self, cells, workers=None, reuse_pool=None, trace_plane=None):
        addresses = worker_addresses_from_env()
        if workers is not None:
            addresses = addresses[:max(1, workers)]
        coordinator = FabricCoordinator(addresses)
        started = time.perf_counter()
        results = coordinator.run(cells)
        self._dispatches += 1
        self._cells += len(cells)
        self._reassigned += coordinator.report.reassigned
        self._lost_workers += coordinator.report.lost_workers
        self._last_report = coordinator.report
        if telemetry.enabled():
            telemetry.histogram("fabric.dispatch_seconds").observe(
                time.perf_counter() - started)
        return results

    def stats(self) -> Dict[str, object]:
        stats: Dict[str, object] = {
            "dispatches": self._dispatches,
            "cells": self._cells,
            "reassigned": self._reassigned,
            "lost_workers": self._lost_workers,
            "workers_env": os.environ.get("REPRO_FABRIC_WORKERS", ""),
        }
        if self._last_report is not None:
            stats["last_shards"] = self._last_report.shards
            stats["last_workers"] = self._last_report.workers
        return stats


register_backend(SocketBackend())
