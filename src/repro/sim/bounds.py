"""Interval-bounded MCPI estimates from the stream pass: no replay.

The screening tier (:mod:`repro.analysis.screen`) ranks design-space
cells without simulating them.  This module computes, per cell, a
``[lower, upper]`` bracket on the run's end cycle -- and therefore on
MCPI -- directly from the stream pass's
:class:`~repro.sim.stream.FunctionalSummary` and the static dependency
terms of the :class:`~repro.sim.stream.EventStream`:

* **exact closed forms** where the machine model permits: the blocking
  (``mc=0`` family) policies are the immediate-install machine whose
  end cycle is :func:`repro.core.handler.blocking_end_cycle`; a
  perfect cache and a body with no memory ops both pin the run at
  ``cycles == instructions``;
* **upper bound** for every non-blocking policy: the blocking closed
  form over the same functional summary.  A blocking cache takes the
  paper's worst-case stall for every miss and overlaps nothing, which
  is the paper's monotonicity observation (Figures 5/13/18: the
  ``mc=0`` curve dominates every non-blocking curve).  The soundness
  test suite validates the dominance against the reference engine on
  the full policy x geometry equivalence matrix;
* **lower bounds** that are *provably* sound for any machine the
  simulator can build:

  - the **dependency floor**: the exact end cycle of a relaxed machine
    with unlimited MSHRs, free stores, no structural stalls, and whose
    only misses are the *compulsory* references -- loads that are the
    first load ever to touch their line.  Such a load misses in every
    write-through machine this codebase models (stores never install
    under write-around, and a first touch can have no fetch in flight),
    and it always misses as a primary, so its data-ready time is at
    least ``issue + 1 + penalty`` in any machine.  The max-plus issue
    recurrence (:mod:`repro.cpu.replay`) is monotone in every ready
    time and every stall, so the relaxed machine finishes first.  The
    walk exploits the stream's periodicity: executions are grouped into
    runs of identical compulsory-miss masks and each run is advanced to
    its steady state (constant per-execution cycle delta and relative
    lateness vector), then multiplied out -- O(runs x slots), never
    O(references);
  - the **occupancy floor**: ``K`` compulsory line fetches each keep an
    MSHR busy for ``penalty`` cycles, and the policy admits at most
    ``N`` concurrently (``max_fetches`` / ``max_misses`` globally,
    ``max_fetches_per_set`` per set), so the run spans at least
    ``ceil(K * penalty / N)`` cycles;

* **finite write buffers** widen the bracket instead of breaking it:
  the ideal-buffer lower bound stands (removing stalls only speeds the
  machine up), and each of the run's ``pushes`` stalls at most
  ``retire_cycles`` (the drain invariant of
  :class:`repro.cache.write_buffer.FiniteWriteBuffer`), so the upper
  bound gains ``pushes * retire_cycles``.

Cells the bracket cannot cover report a cause through
:func:`screen_support` -- ``dual_issue`` (no MCPI is defined),
``fill_ports`` (serialized fills break the per-miss ready bound) and
``wma_nonblocking`` (a write-allocating non-blocking tag state has no
summary) -- and the screening tier falls back to exact simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.handler import blocking_end_cycle
from repro.sim.lru import LRUCache
from repro.sim.stream import (
    EventStream,
    _flat_blocks,
    _stream_key,
    event_stream,
    functional_summary,
)
from repro.sim.trace import P_LOAD
from repro.workloads.workload import Workload

#: Hard cap on individually walked executions in the dependency floor.
#: Beyond it the walk finishes with the (sound, coarser) body-length
#: floor for the remaining executions; real streams reach their
#: periodic steady state orders of magnitude earlier.
MAX_WALK_STEPS = 20_000


@dataclass(frozen=True)
class CellBounds:
    """A sound ``[lower, upper]`` bracket on one cell's end cycle.

    ``method`` records how the bracket was derived: ``"blocking"``,
    ``"perfect"`` and ``"no-mem"`` are exact closed forms
    (``lower_cycles == upper_cycles``); ``"interval"`` is the
    non-blocking bracket.
    """

    instructions: int
    lower_cycles: int
    upper_cycles: int
    method: str

    @property
    def exact(self) -> bool:
        return self.lower_cycles == self.upper_cycles

    @property
    def mcpi_low(self) -> float:
        """Lower MCPI bound, on the engines' exact formula."""
        return (self.lower_cycles - self.instructions) / self.instructions

    @property
    def mcpi_high(self) -> float:
        """Upper MCPI bound, on the engines' exact formula."""
        return (self.upper_cycles - self.instructions) / self.instructions

    @property
    def width(self) -> float:
        """Bound width in MCPI units (0 for the closed forms)."""
        return self.mcpi_high - self.mcpi_low


def screen_support(config) -> Optional[str]:
    """``None`` when the cell can be bracketed, else the fallback cause.

    Causes mirror the engine registry's fallback tags:
    ``dual_issue`` -- MCPI is undefined for ``issue_width != 1``;
    ``fill_ports`` -- serialized fills delay secondary ready times by
    an amount the summary cannot bound; ``wma_nonblocking`` -- a
    write-allocating non-blocking machine's tag state diverges from
    the immediate-install summary in both directions.
    """
    if config.issue_width != 1:
        return "dual_issue"
    if config.perfect_cache:
        return None
    policy = config.policy
    if not policy.blocking:
        if policy.fill_ports is not None:
            return "fill_ports"
        if policy.write_allocate_blocking:
            return "wma_nonblocking"
    return None


# -- compulsory references and floors ------------------------------------------

#: base stream key -> (flat indices of first-load refs, their blocks,
#: n_slots).  Policy-independent, so one entry serves a whole sweep.
_FIRST_LOAD_CACHE = LRUCache(16)

#: (base stream key, penalty) -> relaxed-machine end cycle.  The floor
#: depends on the policy only through its effective penalty, so the
#: cache collapses sibling policies of one design space.
_FLOOR_CACHE = LRUCache(64)


def clear_bounds_caches() -> None:
    """Drop the memoized compulsory-reference sets and floors."""
    _FIRST_LOAD_CACHE.clear()
    _FLOOR_CACHE.clear()


def bounds_cache_sizes() -> Tuple[int, int]:
    """(first-load sets, floors) currently cached."""
    return len(_FIRST_LOAD_CACHE), len(_FLOOR_CACHE)


def _first_load_refs(stream: EventStream) -> Tuple[np.ndarray, np.ndarray]:
    """Flat reference indices (execution-major) of the compulsory loads.

    A compulsory load is the first *load* to its line address in the
    whole run.  Prior stores are irrelevant: every non-blocking policy
    here is write-around, so stores never install a line.
    """
    blocks, is_load = _flat_blocks(stream)
    load_idx = np.nonzero(is_load)[0]
    if not load_idx.size:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    _, first = np.unique(blocks[load_idx], return_index=True)
    flat = np.sort(load_idx[first])
    return flat, blocks[flat]


def first_load_refs(
    workload: Workload, load_latency: int, scale: float, stream: EventStream
) -> Tuple[np.ndarray, np.ndarray]:
    """Cached :func:`_first_load_refs` for one stream group."""
    key = _stream_key(workload, load_latency, scale, stream.line_size, 0)
    cached = _FIRST_LOAD_CACHE.get(key)
    if cached is None:
        cached = _first_load_refs(stream)
        _FIRST_LOAD_CACHE.put(key, cached)
    return cached


def _occupancy_floor(
    policy, geometry, first_blocks: np.ndarray, penalty: int
) -> int:
    """``ceil(K * penalty / N)`` over every concurrency limit the policy has."""
    count = int(first_blocks.size)
    if not count or penalty <= 0:
        return 0
    floor = 0
    limits = [
        n for n in (policy.max_fetches, policy.max_misses) if n is not None
    ]
    if limits:
        n = min(limits)
        floor = -(-count * penalty // n)
    if policy.max_fetches_per_set is not None:
        sets = first_blocks & (geometry.num_sets - 1)
        busiest = int(np.bincount(sets).max())
        per_set = -(-busiest * penalty // policy.max_fetches_per_set)
        if per_set > floor:
            floor = per_set
    return floor


def _dependency_floor(
    stream: EventStream, penalty: int, first_flat: np.ndarray
) -> int:
    """Exact end cycle of the compulsory-miss relaxed machine.

    Mirrors the replay kernel's recurrence (``issue = max(cycle +
    pregap, max(ready[m] + delta))``; a memory op releases the pipeline
    one cycle after issue; a load publishes ``release`` when it hits
    and ``release + penalty`` when it misses) with unlimited MSHRs,
    free stores and the compulsory references as the only misses.
    """
    n_slots = len(stream.slots)
    execs = stream.executions
    body_len = stream.body_len

    grid = np.zeros(execs * n_slots, dtype=bool)
    grid[first_flat] = True
    grid = grid.reshape(execs, n_slots)
    if execs > 1:
        changed = np.any(grid[1:] != grid[:-1], axis=1)
        starts = np.concatenate(([0], np.nonzero(changed)[0] + 1))
    else:
        starts = np.zeros(1, dtype=np.int64)
    run_ends = np.concatenate((starts[1:], [execs]))

    slot_info = [
        (s.kind == P_LOAD, s.lr_index, s.pregap, s.terms)
        for s in stream.slots
    ]
    tail_gap = stream.tail_gap
    tail_terms = stream.tail_terms
    max_delta = 0
    for _m, d in tail_terms:
        if d > max_delta:
            max_delta = d
    for s in stream.slots:
        for _m, d in s.terms:
            if d > max_delta:
                max_delta = d

    ready: List[int] = [0] * stream.n_loads
    cycle = 0
    done = 0
    steps = 0
    for ri in range(starts.size):
        count = int(run_ends[ri] - starts[ri])
        row = grid[starts[ri]].tolist()
        prev_sig = None
        e = 0
        while e < count:
            if steps >= MAX_WALK_STEPS:
                # Sound coarse finish: each remaining execution
                # advances the clock by at least the body length.
                return cycle + (execs - done) * body_len
            start_cycle = cycle
            for k in range(n_slots):
                is_load, lr, pregap, terms = slot_info[k]
                t = cycle + pregap
                for m, d in terms:
                    v = ready[m] + d
                    if v > t:
                        t = v
                t += 1
                if is_load:
                    ready[lr] = t + penalty if row[k] else t
                cycle = t
            cycle += tail_gap
            for m, d in tail_terms:
                v = ready[m] + d
                if v > cycle:
                    cycle = v
            # Ready times older than every delta can never bind again;
            # normalizing them makes the steady-state signature exact.
            dead = cycle - max_delta
            for i in range(len(ready)):
                if ready[i] < dead:
                    ready[i] = dead
            steps += 1
            e += 1
            done += 1
            delta = cycle - start_cycle
            sig = (delta, tuple(r - cycle for r in ready))
            if sig == prev_sig:
                # Periodic steady state: the remaining executions of
                # this run repeat the same shifted timing exactly.
                shift = (count - e) * delta
                cycle += shift
                ready = [r + shift for r in ready]
                done += count - e
                break
            prev_sig = sig
    return cycle


def dependency_floor(
    workload: Workload,
    load_latency: int,
    scale: float,
    stream: EventStream,
    penalty: int,
) -> int:
    """Cached :func:`_dependency_floor` for one (group, penalty) pair."""
    key = (
        _stream_key(workload, load_latency, scale, stream.line_size, 0),
        penalty,
    )
    cached = _FLOOR_CACHE.get(key)
    if cached is None:
        first_flat, _blocks = first_load_refs(
            workload, load_latency, scale, stream
        )
        cached = _dependency_floor(stream, penalty, first_flat)
        _FLOOR_CACHE.put(key, cached)
    return cached


# -- the bracket ---------------------------------------------------------------


def _trace_instructions(workload: Workload, load_latency: int,
                        scale: float) -> int:
    from repro.sim.simulator import expand_workload

    _, trace = expand_workload(workload, load_latency, scale=scale)
    return len(trace.body) * trace.executions


def cell_bounds(
    workload: Workload,
    config,
    load_latency: int = 10,
    scale: float = 1.0,
) -> Optional[CellBounds]:
    """Bracket one cell's end cycle, or ``None`` when it has no bracket.

    ``None`` means :func:`screen_support` names a fallback cause; every
    other cell gets a sound ``[lower, upper]`` with ``lower == upper``
    for the closed-form families.
    """
    if screen_support(config) is not None:
        return None
    instructions = _trace_instructions(workload, load_latency, scale)
    if config.perfect_cache:
        return CellBounds(instructions, instructions, instructions,
                          "perfect")
    policy = config.policy
    geometry = config.geometry
    summary = functional_summary(
        workload, load_latency, scale, geometry,
        write_allocate=policy.write_allocate_blocking,
    )
    if summary is None:
        # No memory ops: nothing ever stalls and the clock is the
        # instruction count.
        return CellBounds(instructions, instructions, instructions,
                          "no-mem")
    penalty = config.effective_penalty + policy.fill_overhead
    upper = blocking_end_cycle(
        instructions=summary.instructions,
        load_misses=summary.load_misses,
        store_misses=summary.store_misses,
        penalty=penalty,
        write_allocate_blocking=policy.write_allocate_blocking,
    )
    if policy.blocking:
        lower = upper
        method = "blocking"
    else:
        stream = event_stream(workload, load_latency, scale,
                              geometry.line_size)
        floor = dependency_floor(workload, load_latency, scale, stream,
                                 penalty)
        _flat, first_blocks = first_load_refs(workload, load_latency,
                                              scale, stream)
        occupancy = _occupancy_floor(policy, geometry, first_blocks,
                                     penalty)
        lower = max(summary.instructions, floor, occupancy)
        method = "interval"
    if config.write_buffer_depth is not None:
        # Finite buffer: the ideal-buffer lower bound stands; each
        # push stalls at most one retire period (drain invariant).
        pushes = summary.store_hits + summary.store_misses
        upper += pushes * config.write_buffer_retire_cycles
        if method == "blocking":
            method = "interval"
    return CellBounds(summary.instructions, lower, upper, method)
