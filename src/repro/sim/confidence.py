"""Seed replication: how robust are the synthetic-workload results?

The paper simulated fixed SPEC92 reference streams; our workload models
are seeded stochastic processes, so any MCPI we report is one draw.
This module reruns a configuration under several workload seeds and
summarizes the spread, which both quantifies the models' stability and
gives experiments an honest error bar.

The compiled schedule is seed-independent (seeds only drive address
generation), so replications share compilation and differ only in the
expanded traces.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.sim.config import MachineConfig, baseline_config
from repro.sim.planner import cached_simulate
from repro.workloads.workload import Workload

#: Two-sided 95% normal quantile (adequate for the ~5-10 replications
#: these summaries use; the spread itself is the headline).
Z95 = 1.96


@dataclass(frozen=True)
class ReplicationSummary:
    """MCPI statistics over seed replications of one configuration."""

    workload: str
    policy: str
    load_latency: int
    seeds: Sequence[int]
    mcpis: Sequence[float]

    @property
    def n(self) -> int:
        return len(self.mcpis)

    @property
    def mean(self) -> float:
        return sum(self.mcpis) / self.n

    @property
    def stdev(self) -> float:
        if self.n < 2:
            return 0.0
        mu = self.mean
        return math.sqrt(sum((x - mu) ** 2 for x in self.mcpis) / (self.n - 1))

    @property
    def ci95_half_width(self) -> float:
        """Half-width of the ~95% confidence interval on the mean."""
        if self.n < 2:
            return 0.0
        return Z95 * self.stdev / math.sqrt(self.n)

    @property
    def relative_spread(self) -> float:
        """(max - min) / mean: the headline stability number."""
        if not self.mean:
            return 0.0
        return (max(self.mcpis) - min(self.mcpis)) / self.mean

    def describe(self) -> str:
        return (
            f"{self.workload}/{self.policy} @ latency {self.load_latency}: "
            f"MCPI {self.mean:.3f} +/- {self.ci95_half_width:.3f} "
            f"(n={self.n}, spread {100 * self.relative_spread:.1f}%)"
        )


def replicate(
    workload: Workload,
    config: Optional[MachineConfig] = None,
    load_latency: int = 10,
    seeds: Sequence[int] = (1, 2, 3, 4, 5),
    scale: float = 0.25,
) -> ReplicationSummary:
    """Run one configuration under several workload seeds."""
    if not seeds:
        raise ConfigurationError("replicate needs at least one seed")
    if config is None:
        config = baseline_config()
    mcpis: List[float] = []
    for seed in seeds:
        # A distinct seed gives a fresh Workload; the kernel object is
        # shared, so compiled schedules stay cached.  Each seed has its
        # own content fingerprint, so the result store keeps the
        # replications distinct.
        variant = replace(workload, seed=seed)
        result = cached_simulate(variant, config, load_latency=load_latency,
                                 scale=scale)
        mcpis.append(result.mcpi)
    return ReplicationSummary(
        workload=workload.name,
        policy=config.policy.name,
        load_latency=load_latency,
        seeds=tuple(seeds),
        mcpis=tuple(mcpis),
    )
