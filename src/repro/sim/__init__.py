"""Simulation layer: configs, trace expansion, execution, sweeps."""

from repro.sim.config import MachineConfig, baseline_config
from repro.sim.confidence import ReplicationSummary, replicate
from repro.sim.parallel import run_cells, run_table_parallel
from repro.sim.planner import (
    PlanReport,
    cached_simulate,
    execute_cells,
    run_plan,
)
from repro.sim.resultstore import ResultStore, cell_fingerprint
from repro.sim.simulator import (
    ENGINE_VERSION,
    clear_caches,
    compile_workload,
    expand_workload,
    simulate,
)
from repro.sim.stats import SimulationResult
from repro.sim.sweep import (
    PAPER_LATENCIES,
    CurveSweep,
    TableSweep,
    run_curves,
    run_penalty_sweep,
    run_table,
)
from repro.sim.trace import ExpandedTrace, expand
from repro.sim.tracelog import (
    AccessRecord,
    TracingHandler,
    format_access_log,
    record_accesses,
)

__all__ = [
    "MachineConfig",
    "baseline_config",
    "simulate",
    "compile_workload",
    "expand_workload",
    "clear_caches",
    "SimulationResult",
    "PAPER_LATENCIES",
    "CurveSweep",
    "TableSweep",
    "run_curves",
    "run_table",
    "run_penalty_sweep",
    "ExpandedTrace",
    "expand",
    "ReplicationSummary",
    "replicate",
    "run_cells",
    "run_table_parallel",
    "PlanReport",
    "cached_simulate",
    "execute_cells",
    "run_plan",
    "ResultStore",
    "cell_fingerprint",
    "ENGINE_VERSION",
    "AccessRecord",
    "TracingHandler",
    "record_accesses",
    "format_access_log",
]
