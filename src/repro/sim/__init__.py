"""Simulation layer: configs, trace expansion, execution, sweeps.

Programmatic use should go through the stable facade
:mod:`repro.api`; the names here are internal plumbing that may move
between releases.  A few package-level aliases are deprecated and kept
only for compatibility -- importing them emits ``DeprecationWarning``
pointing at their ``repro.api`` replacement (the export smoke test in
``tests/sim/test_exports.py`` pins `__all__` to reality).
"""

import warnings

from repro.sim.config import MachineConfig, baseline_config
from repro.sim.confidence import ReplicationSummary, replicate
from repro.sim.planner import (
    PlanReport,
    cached_simulate,
    execute_cells,
    run_plan,
)
from repro.sim.resultstore import ResultStore, cell_fingerprint
from repro.sim.simulator import (
    ENGINE_VERSION,
    clear_caches,
    compile_workload,
    expand_workload,
    simulate,
)
from repro.sim.stats import SimulationResult
from repro.sim.sweep import (
    PAPER_LATENCIES,
    CurveSweep,
    TableSweep,
    run_curves,
    run_penalty_sweep,
    run_table,
)
from repro.sim.trace import ExpandedTrace, expand
from repro.sim.tracelog import (
    AccessRecord,
    TracingHandler,
    format_access_log,
    record_accesses,
)

__all__ = [
    "MachineConfig",
    "baseline_config",
    "simulate",
    "compile_workload",
    "expand_workload",
    "clear_caches",
    "SimulationResult",
    "PAPER_LATENCIES",
    "CurveSweep",
    "TableSweep",
    "run_curves",
    "run_table",
    "run_penalty_sweep",
    "ExpandedTrace",
    "expand",
    "ReplicationSummary",
    "replicate",
    "run_cells",
    "run_table_parallel",
    "PlanReport",
    "cached_simulate",
    "execute_cells",
    "run_plan",
    "ResultStore",
    "cell_fingerprint",
    "ENGINE_VERSION",
    "AccessRecord",
    "TracingHandler",
    "record_accesses",
    "format_access_log",
]

#: Package-level aliases kept for compatibility: name -> (module
#: attribute path, replacement to mention in the warning).
_DEPRECATED_ALIASES = {
    "run_cells": ("repro.sim.parallel", "run_cells",
                  "repro.api.sweep (or repro.sim.parallel.run_cells)"),
    "run_table_parallel": ("repro.sim.parallel", "run_table_parallel",
                           "repro.api.sweep(workers=...)"),
}


def __getattr__(name):
    alias = _DEPRECATED_ALIASES.get(name)
    if alias is None:
        raise AttributeError(f"module 'repro.sim' has no attribute {name!r}")
    module_name, attribute, replacement = alias
    warnings.warn(
        f"repro.sim.{name} is deprecated; use {replacement} instead",
        DeprecationWarning,
        stacklevel=2,
    )
    import importlib

    return getattr(importlib.import_module(module_name), attribute)


def __dir__():
    return sorted(set(globals()) | set(_DEPRECATED_ALIASES))
