"""A tiny bounded mapping with least-recently-used eviction.

Shared by the simulator's compile/trace caches and the event-stream
caches (:mod:`repro.sim.stream`); it lives in its own module so the
two can use one implementation without importing each other.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.errors import ConfigurationError


class LRUCache:
    """Bounded key-value cache; ``put`` evicts the least recently used."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ConfigurationError(f"cache capacity must be >= 1: {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict" = OrderedDict()

    def get(self, key):
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
        return entry

    def put(self, key, value) -> None:
        entries = self._entries
        entries[key] = value
        entries.move_to_end(key)
        if len(entries) > self.capacity:
            entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)
