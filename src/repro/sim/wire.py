"""Versioned wire format for cells, plans, and results.

The distributed fabric (:mod:`repro.sim.fabric`) ships sweep cells to
workers on other hosts and results back.  Pickle would be the easy
transport, but it is neither schema-checked nor safe to feed from a
network peer, so this module defines an explicit, versioned encoding
of exactly the object vocabulary a sweep cell touches:

* workloads (kernel IR, address patterns, compile hints, seed),
* machine configurations (geometry, MSHR policy, field layout),
* simulation results (cycle counts, miss statistics).

Encoded values are plain JSON-compatible structures -- dicts, lists,
strings, numbers -- with small tagged wrappers preserving the Python
shapes JSON cannot express (tuples, int-keyed dicts, enums, registered
dataclasses).  A dataclass instance appearing more than once inside
one envelope is encoded once and referenced thereafter by a ``$ref``
back-reference, so a shard whose cells all point at the same workload
ships that workload's kernel exactly once; the decoder restores the
sharing (reference identity) as well as equality.
:func:`to_wire` wraps a value in an **envelope** stamped
with the wire schema (:data:`WIRE_SCHEMA`) and the execution-engine
version (:data:`repro.sim.simulator.ENGINE_VERSION`); :func:`from_wire`
refuses anything whose stamps disagree, so two nodes running different
timing-model revisions fail loudly at the handshake instead of quietly
mixing incompatible results.  Every rejection raises
:class:`~repro.errors.WireError`.

The round trip is exact where it matters: a decoded cell produces the
same result-store fingerprint
(:func:`repro.sim.resultstore.cell_fingerprint`) as the original, so a
worker's memoized store entries are valid for every other node --
``tests/sim/test_wire.py`` property-tests this across the policy
families and geometries.

Framing: :func:`encode_frame` / :func:`decode_frame` produce
length-prefixed binary frames (magic + codec byte + big-endian length)
carrying the envelope as msgpack when the ``msgpack`` package is
importable and JSON otherwise; :func:`send_frame` / :func:`recv_frame`
move them over a socket file.  A decoder always accepts both codecs,
so mixed installations interoperate.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import struct
from typing import Any, Dict, List, Optional, Sequence, Tuple, Type

from repro.errors import WireError

try:  # pragma: no cover - exercised only where msgpack is installed
    import msgpack as _msgpack
except ImportError:  # pragma: no cover - the common case in this image
    _msgpack = None

#: Wire layout version.  Bump whenever the encoding itself changes;
#: the engine version rides in the envelope separately, so timing-model
#: bumps invalidate peers without touching this number.
WIRE_SCHEMA = 1

#: Frame header: magic, codec byte, payload length (big endian).
_MAGIC = b"RPRW"
_HEADER = struct.Struct(">4sBI")
_CODEC_JSON = 0
_CODEC_MSGPACK = 1
#: Refuse absurd frames before allocating for them (a corrupt length
#: field must not look like a 3GB read).
MAX_FRAME_BYTES = 1 << 30


def _engine_version() -> str:
    from repro.sim.simulator import ENGINE_VERSION

    return ENGINE_VERSION


# -- the type registry ---------------------------------------------------------


def _registered_types() -> Tuple[List[Type], List[Type[enum.Enum]]]:
    """The dataclasses and enums the wire may carry.

    Collected lazily (cells pull in the compiler and workload stacks)
    and memoized.  Address-pattern classes are discovered from
    :mod:`repro.workloads.patterns`, so a new pattern kind becomes
    wire-able the moment it is defined there.
    """
    from repro.cache.geometry import CacheGeometry
    from repro.compiler.ir import Kernel, RegClass, VOp
    from repro.core.classify import StructuralCause
    from repro.core.policies import FieldLayout, MSHRPolicy
    from repro.core.stats import MissStats
    from repro.cpu.isa import OpClass
    from repro.sim.config import MachineConfig
    from repro.sim.stats import SimulationResult
    from repro.workloads import patterns as patterns_mod
    from repro.workloads.patterns import AddressPattern
    from repro.workloads.workload import Workload

    pattern_types = [
        obj for obj in vars(patterns_mod).values()
        if isinstance(obj, type)
        and issubclass(obj, AddressPattern)
        and dataclasses.is_dataclass(obj)
    ]
    dataclass_types = [
        Workload, Kernel, VOp, MachineConfig, CacheGeometry,
        MSHRPolicy, FieldLayout, SimulationResult, MissStats,
    ] + pattern_types
    enum_types: List[Type[enum.Enum]] = [RegClass, OpClass, StructuralCause]
    return dataclass_types, enum_types


_TYPE_CACHE: Optional[Dict[str, Type]] = None
_ENUM_CACHE: Optional[Dict[str, Type[enum.Enum]]] = None


def _tables() -> Tuple[Dict[str, Type], Dict[str, Type[enum.Enum]]]:
    global _TYPE_CACHE, _ENUM_CACHE
    if _TYPE_CACHE is None or _ENUM_CACHE is None:
        dataclass_types, enum_types = _registered_types()
        _TYPE_CACHE = {cls.__name__: cls for cls in dataclass_types}
        _ENUM_CACHE = {cls.__name__: cls for cls in enum_types}
    return _TYPE_CACHE, _ENUM_CACHE


# -- value encoding ------------------------------------------------------------

#: Marker keys.  Chosen to be impossible field names, so a tagged
#: wrapper can never collide with real dataclass content.
_T = "$type"
_E = "$enum"
_TUPLE = "$tuple"
_MAP = "$map"
_REF = "$ref"

_SCALARS = (str, bool, type(None))


def _encode(value: Any, memo: Optional[Dict[int, int]] = None) -> Any:
    # ``memo`` maps id(dataclass instance) -> back-reference index so a
    # shared instance -- e.g. the one workload every cell of a shard
    # points at -- is encoded once and referenced thereafter.  Indices
    # are assigned in completion (post-) order; the decoder rebuilds
    # objects in the same order, so index n on the wire is always the
    # n-th dataclass the decoder finished.  The payloads stay acyclic
    # because the registered dataclasses cannot contain themselves.
    if memo is None:
        memo = {}
    types, _enums = _tables()
    if isinstance(value, enum.Enum):
        return {_E: type(value).__name__, "name": value.name}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        ref = memo.get(id(value))
        if ref is not None:
            return {_REF: ref}
        name = type(value).__name__
        if types.get(name) is not type(value):
            raise WireError(
                f"type {type(value).__module__}.{name} is not wire-registered"
            )
        node = {
            _T: name,
            "fields": {
                f.name: _encode(getattr(value, f.name), memo)
                for f in dataclasses.fields(value)
            },
        }
        memo[id(value)] = len(memo)
        return node
    if isinstance(value, _SCALARS):
        return value
    if isinstance(value, int):
        return int(value)
    if isinstance(value, float):
        return float(value)
    if isinstance(value, tuple):
        return {_TUPLE: [_encode(v, memo) for v in value]}
    if isinstance(value, list):
        return [_encode(v, memo) for v in value]
    if isinstance(value, dict):
        return {
            _MAP: [[_encode(k, memo), _encode(v, memo)]
                   for k, v in value.items()]
        }
    raise WireError(
        f"cannot encode {type(value).__name__} value for the wire: {value!r}"
    )


def _decode(value: Any, seen: Optional[List[Any]] = None) -> Any:
    if seen is None:
        seen = []
    types, enums = _tables()
    if isinstance(value, dict):
        if _E in value:
            cls = enums.get(value[_E])
            if cls is None:
                raise WireError(f"unknown enum on the wire: {value[_E]!r}")
            try:
                return cls[value["name"]]
            except KeyError:
                raise WireError(
                    f"unknown {value[_E]} member: {value.get('name')!r}"
                ) from None
        if _T in value:
            cls = types.get(value[_T])
            if cls is None:
                raise WireError(f"unknown type on the wire: {value[_T]!r}")
            fields = value.get("fields")
            if not isinstance(fields, dict):
                raise WireError(f"malformed {value[_T]} payload")
            known = {f.name for f in dataclasses.fields(cls)}
            extra = set(fields) - known
            if extra:
                raise WireError(
                    f"{value[_T]} payload carries unknown fields: "
                    f"{sorted(extra)}"
                )
            try:
                obj = cls(**{k: _decode(v, seen) for k, v in fields.items()})
            except WireError:
                raise
            except Exception as exc:
                raise WireError(
                    f"could not rebuild {value[_T]} from the wire: {exc}"
                ) from exc
            seen.append(obj)
            return obj
        if _REF in value:
            ref = value[_REF]
            if not isinstance(ref, int) or not 0 <= ref < len(seen):
                raise WireError(f"dangling wire back-reference: {ref!r}")
            return seen[ref]
        if _TUPLE in value:
            return tuple(_decode(v, seen) for v in value[_TUPLE])
        if _MAP in value:
            pairs = value[_MAP]
            if not isinstance(pairs, list):
                raise WireError("malformed map payload")
            return {_decode(k, seen): _decode(v, seen) for k, v in pairs}
        raise WireError(f"untagged mapping on the wire: {sorted(value)!r}")
    if isinstance(value, list):
        return [_decode(v, seen) for v in value]
    if isinstance(value, _SCALARS) or isinstance(value, (int, float)):
        return value
    raise WireError(f"cannot decode wire value of type {type(value).__name__}")


# -- envelopes -----------------------------------------------------------------


def to_wire(value: Any) -> Dict[str, Any]:
    """Encode a value into a schema-stamped, JSON-compatible envelope."""
    return {
        "schema": WIRE_SCHEMA,
        "engine": _engine_version(),
        "body": _encode(value),
    }


def from_wire(payload: Any) -> Any:
    """Decode an envelope, refusing stale or foreign payloads."""
    if not isinstance(payload, dict):
        raise WireError(
            f"wire envelope must be a mapping, got {type(payload).__name__}"
        )
    schema = payload.get("schema")
    if schema != WIRE_SCHEMA:
        raise WireError(
            f"unsupported wire schema {schema!r} (this node speaks "
            f"{WIRE_SCHEMA})"
        )
    engine = payload.get("engine")
    if engine != _engine_version():
        raise WireError(
            f"engine version mismatch: payload {engine!r}, this node "
            f"{_engine_version()!r} -- refusing to mix timing models"
        )
    if "body" not in payload:
        raise WireError("wire envelope lacks a body")
    return _decode(payload["body"])


# -- cells and plans -----------------------------------------------------------


def cell_to_wire(cell: Tuple) -> Dict[str, Any]:
    """Encode one sweep cell ``(workload, config, latency, scale)``."""
    workload, config, load_latency, scale = cell
    return to_wire((workload, config, int(load_latency), float(scale)))


def cell_from_wire(payload: Any) -> Tuple:
    """Decode one sweep cell; the fingerprint survives the round trip."""
    decoded = from_wire(payload)
    if not isinstance(decoded, tuple) or len(decoded) != 4:
        raise WireError("wire payload is not a sweep cell")
    return decoded


def cells_to_wire(cells: Sequence[Tuple]) -> Dict[str, Any]:
    """Encode a whole shard of cells in one envelope."""
    return to_wire([
        (workload, config, int(load_latency), float(scale))
        for workload, config, load_latency, scale in cells
    ])


def cells_from_wire(payload: Any) -> List[Tuple]:
    """Decode a shard; raises :class:`WireError` on any malformed cell."""
    decoded = from_wire(payload)
    if not isinstance(decoded, list):
        raise WireError("wire payload is not a cell list")
    cells = []
    for item in decoded:
        if not isinstance(item, tuple) or len(item) != 4:
            raise WireError("wire payload is not a cell list")
        cells.append(item)
    return cells


def results_to_wire(results: Sequence) -> Dict[str, Any]:
    """Encode a list of :class:`~repro.sim.stats.SimulationResult`."""
    return to_wire(list(results))


def results_from_wire(payload: Any) -> List:
    from repro.sim.stats import SimulationResult

    decoded = from_wire(payload)
    if not isinstance(decoded, list) or not all(
        isinstance(r, SimulationResult) for r in decoded
    ):
        raise WireError("wire payload is not a result list")
    return decoded


def plan_fingerprint(cells: Sequence[Tuple]) -> str:
    """Content identity of a whole plan: order-independent digest.

    Two sweep requests whose cell lists contain the same cells (in any
    order, duplicates collapsed) produce identical simulation work, so
    the service layer (:mod:`repro.serve`) coalesces in-flight requests
    on this digest.
    """
    from repro.sim.resultstore import cell_fingerprint

    digests = sorted({
        cell_fingerprint(workload, config, load_latency, scale)
        for workload, config, load_latency, scale in cells
    })
    return hashlib.sha256("\n".join(digests).encode("ascii")).hexdigest()


# -- framing -------------------------------------------------------------------


def default_codec() -> str:
    """``"msgpack"`` when the package is importable, else ``"json"``."""
    return "msgpack" if _msgpack is not None else "json"


def encode_frame(payload: Dict[str, Any], codec: Optional[str] = None) -> bytes:
    """Serialize a JSON-compatible message into one binary frame."""
    name = codec or default_codec()
    if name == "msgpack":
        if _msgpack is None:
            raise WireError("msgpack codec requested but not installed")
        body = _msgpack.packb(payload, use_bin_type=True)
        codec_id = _CODEC_MSGPACK
    elif name == "json":
        body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
        codec_id = _CODEC_JSON
    else:
        raise WireError(f"unknown wire codec {name!r}")
    if len(body) > MAX_FRAME_BYTES:
        raise WireError(f"frame too large: {len(body)} bytes")
    return _HEADER.pack(_MAGIC, codec_id, len(body)) + body


def decode_frame(data: bytes) -> Dict[str, Any]:
    """Decode one complete binary frame back into its message."""
    if len(data) < _HEADER.size:
        raise WireError("truncated frame header")
    magic, codec_id, length = _HEADER.unpack_from(data)
    if magic != _MAGIC:
        raise WireError(f"bad frame magic {magic!r}")
    body = data[_HEADER.size:]
    if len(body) != length:
        raise WireError(
            f"frame length mismatch: header says {length}, got {len(body)}"
        )
    return _decode_body(codec_id, body)


def _decode_body(codec_id: int, body: bytes) -> Dict[str, Any]:
    try:
        if codec_id == _CODEC_JSON:
            message = json.loads(body.decode("utf-8"))
        elif codec_id == _CODEC_MSGPACK:
            if _msgpack is None:
                raise WireError(
                    "peer sent a msgpack frame but msgpack is not installed"
                )
            message = _msgpack.unpackb(body, raw=False)
        else:
            raise WireError(f"unknown frame codec id {codec_id}")
    except WireError:
        raise
    except Exception as exc:
        raise WireError(f"undecodable frame body: {exc}") from exc
    if not isinstance(message, dict):
        raise WireError("frame body is not a mapping")
    return message


def send_frame(fh, payload: Dict[str, Any],
               codec: Optional[str] = None) -> None:
    """Write one frame to a binary file object and flush it."""
    fh.write(encode_frame(payload, codec=codec))
    fh.flush()


def recv_frame(fh) -> Optional[Dict[str, Any]]:
    """Read one frame; ``None`` on a clean EOF at a frame boundary."""
    header = fh.read(_HEADER.size)
    if not header:
        return None
    if len(header) < _HEADER.size:
        raise WireError("connection closed mid-header")
    magic, codec_id, length = _HEADER.unpack(header)
    if magic != _MAGIC:
        raise WireError(f"bad frame magic {magic!r}")
    if length > MAX_FRAME_BYTES:
        raise WireError(f"frame too large: {length} bytes")
    body = b""
    while len(body) < length:
        chunk = fh.read(length - len(body))
        if not chunk:
            raise WireError("connection closed mid-frame")
        body += chunk
    return _decode_body(codec_id, body)
