"""Run-level results: MCPI and its decomposition.

The paper's single figure of merit is the *miss CPI* (MCPI): memory
stall cycles per instruction, on a machine where data-cache misses are
the only stall source (Section 3.1).  :class:`SimulationResult` wraps
one run's cycle counts, the true-data-dependency stall total measured
by the pipeline, and the miss-level counters collected by the handler,
and exposes the derived quantities the figures need.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.stats import MissStats
from repro.errors import SimulationError


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of simulating one workload on one machine."""

    workload: str
    policy: str
    load_latency: int
    instructions: int
    cycles: int
    #: Stall cycles from using a register before its fill returned
    #: (includes the rare scoreboard WAW stalls on pending fills).
    truedep_stall_cycles: int
    miss: MissStats
    issue_width: int = 1
    unroll_factor: int = 1
    spill_count: int = 0

    # -- headline numbers --------------------------------------------------------

    @property
    def total_stall_cycles(self) -> int:
        """All cycles beyond one per instruction (single-issue)."""
        return self.cycles - self.instructions

    @property
    def mcpi(self) -> float:
        """Miss CPI: memory stall cycles per instruction.

        Only meaningful on the single-issue model, where the ideal CPI
        is exactly 1 (Section 3.1).  Dual-issue MCPI needs a
        perfect-cache baseline; see
        :func:`repro.analysis.scaling.dual_issue_mcpi`.
        """
        if self.issue_width != 1:
            raise SimulationError(
                "mcpi is defined against the single-issue ideal CPI; "
                "use analysis.scaling for multi-issue machines"
            )
        if not self.instructions:
            return 0.0
        return self.total_stall_cycles / self.instructions

    @property
    def cpi(self) -> float:
        """Raw cycles per instruction."""
        if not self.instructions:
            return 0.0
        return self.cycles / self.instructions

    @property
    def ipc(self) -> float:
        """Instructions per cycle."""
        if not self.cycles:
            return 0.0
        return self.instructions / self.cycles

    # -- stall decomposition --------------------------------------------------------

    @property
    def structural_mcpi(self) -> float:
        """MCPI contribution of structural-hazard stalls (Figure 7)."""
        if not self.instructions:
            return 0.0
        return self.miss.structural_stall_cycles / self.instructions

    @property
    def truedep_mcpi(self) -> float:
        """MCPI contribution of true-data-dependency stalls."""
        if not self.instructions:
            return 0.0
        return self.truedep_stall_cycles / self.instructions

    @property
    def pct_structural(self) -> float:
        """Percent of MCPI due to structural stalls (Figure 7's y-axis)."""
        total = self.total_stall_cycles
        if not total:
            return 0.0
        return 100.0 * self.miss.structural_stall_cycles / total

    # -- reference mix ------------------------------------------------------------------

    @property
    def loads_per_instruction(self) -> float:
        if not self.instructions:
            return 0.0
        return self.miss.loads / self.instructions

    @property
    def stores_per_instruction(self) -> float:
        if not self.instructions:
            return 0.0
        return self.miss.stores / self.instructions

    # -- invariants ---------------------------------------------------------------------

    def verify_accounting(self) -> None:
        """Check that every stall cycle is attributed exactly once.

        On the single-issue model the decomposition is exact:
        ``cycles - instructions`` equals true-dependency stalls plus
        every memory stall the handler recorded.  A mismatch means a
        timing-model bug, so tests call this on every run.
        """
        if self.issue_width != 1:
            return
        attributed = self.truedep_stall_cycles + self.miss.memory_stall_cycles
        if attributed != self.total_stall_cycles:
            raise SimulationError(
                f"stall accounting mismatch for {self.workload}/{self.policy}: "
                f"total {self.total_stall_cycles}, attributed {attributed}"
            )
