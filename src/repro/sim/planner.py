"""The unified sweep planner: dedup, memoize, then dispatch.

Every sweep in the repository -- the curve figures, the Figure 13
table, the penalty sweeps, the CLI's benchmark x policy grid -- lowers
to one flat list of cells ``(workload, config, load_latency, scale)``.
This module is the single execution funnel for such lists:

1. **fingerprint** every cell with
   :func:`repro.sim.resultstore.cell_fingerprint`;
2. **deduplicate** identical cells (the unrestricted baseline appears
   in nearly every figure, so a multi-figure run collapses
   substantially) -- each distinct cell is simulated at most once per
   planner call;
3. **partition** the unique cells into store hits and misses against
   the content-addressed :class:`~repro.sim.resultstore.ResultStore`;
4. **dispatch** only the misses through
   :func:`repro.sim.parallel.dispatch` -- the resolved backend
   (inline, the cache-affine process pool, or the socket fabric)
   executes them; the pool backend publishes each group's trace once
   into the shared-memory trace plane (:mod:`repro.sim.traceplane`)
   and reuses the process-wide persistent pool, so consecutive
   planner runs keep worker caches warm -- persist their results
   (whatever node ran them, the coordinator's store is backfilled
   here), and
5. **reassemble** the full result list in the caller's cell order.

A re-run of an already-simulated sweep is therefore a pure cache read,
and a first run simulates each distinct cell exactly once no matter
how many figures share it.  Results are bit-identical to calling
:func:`repro.sim.simulator.simulate` per cell -- the tests assert
exact equality across serial, parallel, and cached executions.

The analytical screening tier (:mod:`repro.analysis.screen`) sits in
front of this funnel as a *multi-fidelity* stage: it brackets every
cell from the stream pass alone and feeds only the cells that still
matter -- unboundable fallbacks and frontier-band survivors -- into
:func:`execute_cells`, so a screened design-space sweep pays the
planner for tens of cells instead of thousands while the results that
do land here are memoized and dispatched exactly as before.  Only
genuinely simulated results enter the store; interval estimates never
do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro import telemetry
from repro.sim.config import MachineConfig, baseline_config
from repro.sim.parallel import Cell, _stream_affinity, dispatch
from repro.sim.resultstore import ResultStore, cell_fingerprint, workload_key
from repro.sim.stats import SimulationResult
from repro.workloads.workload import Workload


@dataclass(frozen=True)
class PlanReport:
    """What one planner execution did."""

    #: Cells requested by the caller.
    cells: int
    #: Distinct cells after dedup.
    unique: int
    #: Unique cells served from the result store.
    store_hits: int
    #: Unique cells actually simulated (and then persisted).
    simulated: int

    @property
    def deduplicated(self) -> int:
        """Requested cells that were duplicates of another cell."""
        return self.cells - self.unique

    @property
    def hit_rate(self) -> float:
        """Fraction of unique cells served from the store."""
        if not self.unique:
            return 0.0
        return self.store_hits / self.unique

    def describe(self) -> str:
        return (
            f"{self.cells} cells -> {self.unique} unique "
            f"({self.deduplicated} deduplicated), "
            f"{self.store_hits} cached, {self.simulated} simulated"
        )


#: The report of the most recent :func:`run_plan` in this process; the
#: CLI prints it after a sweep.  Purely advisory.
last_report: Optional[PlanReport] = None


def run_plan(
    cells: Sequence[Cell],
    workers: Optional[int] = 1,
    store: Optional[ResultStore] = None,
    backend: Optional[str] = None,
) -> Tuple[List[SimulationResult], PlanReport]:
    """Execute a cell list through dedup + store + dispatch; keep order.

    ``workers=1`` (the default) runs misses in-process, which keeps the
    serial sweep entry points bit-identical and pool-free;
    ``workers=None`` selects :func:`repro.sim.parallel.default_workers`.
    ``backend`` names a dispatch backend
    (:func:`repro.sim.parallel.backend_names`); ``None`` resolves via
    ``REPRO_BACKEND`` then ``auto``.  ``store=None`` selects the
    environment's store (:meth:`ResultStore.from_env`); pass an
    explicit store to isolate (benchmarks, tests).
    """
    global last_report
    if store is None:
        store = ResultStore.from_env()

    with telemetry.span("plan", cells=len(cells)) as span_args:
        results, report = _run_plan_impl(cells, workers, store, backend)
        span_args.update(unique=report.unique,
                         store_hits=report.store_hits,
                         simulated=report.simulated)
    if telemetry.enabled():
        m = telemetry.metrics()
        m.counter("plan.runs").inc()
        m.counter("plan.cells").inc(report.cells)
        m.counter("plan.unique").inc(report.unique)
        m.counter("plan.deduplicated").inc(report.deduplicated)
        m.counter("plan.store_hits").inc(report.store_hits)
        m.counter("plan.simulated").inc(report.simulated)
        m.histogram("plan.cells_per_run",
                    bounds=telemetry.SIZE_BUCKETS).observe(report.cells)
    last_report = report
    return results, report


def _dispatch_key(cell: Cell) -> Tuple:
    """Stream-key ordering for dispatch: group, then stream siblings."""
    workload, config, load_latency, scale = cell
    return (
        workload_key(workload), load_latency, scale,
    ) + _stream_affinity(config)


def _run_plan_impl(
    cells: Sequence[Cell],
    workers: Optional[int],
    store: ResultStore,
    backend: Optional[str] = None,
) -> Tuple[List[SimulationResult], PlanReport]:
    fingerprints = [
        cell_fingerprint(workload, config, load_latency, scale)
        for workload, config, load_latency, scale in cells
    ]
    unique_order: List[str] = []
    unique_cells: Dict[str, Cell] = {}
    for fingerprint, cell in zip(fingerprints, cells):
        if fingerprint not in unique_cells:
            unique_cells[fingerprint] = cell
            unique_order.append(fingerprint)

    resolved: Dict[str, SimulationResult] = {}
    missing: List[str] = []
    for fingerprint in unique_order:
        cached = store.load(fingerprint)
        if cached is None:
            missing.append(fingerprint)
        else:
            resolved[fingerprint] = cached

    if missing:
        # Dispatch in stream-key order: cells sharing a (workload,
        # latency, scale, line size) replay over one event stream, so
        # adjacency keeps the stream/summary caches hot -- in-process
        # for serial runs, per pool group for parallel ones (the
        # grouper re-sorts within its buckets either way).  Results
        # are reassembled by fingerprint, so order is free to change.
        missing.sort(key=lambda fingerprint: _dispatch_key(
            unique_cells[fingerprint]))
        simulated = dispatch(
            [unique_cells[fingerprint] for fingerprint in missing],
            backend=backend,
            workers=workers,
        )
        for fingerprint, result in zip(missing, simulated):
            store.store(fingerprint, result)
            resolved[fingerprint] = result

    store.add_counters(
        hits=len(unique_order) - len(missing),
        misses=len(missing),
        stores=len(missing),
    )
    report = PlanReport(
        cells=len(cells),
        unique=len(unique_order),
        store_hits=len(unique_order) - len(missing),
        simulated=len(missing),
    )
    return [resolved[fingerprint] for fingerprint in fingerprints], report


def execute_cells(
    cells: Sequence[Cell],
    workers: Optional[int] = 1,
    store: Optional[ResultStore] = None,
    backend: Optional[str] = None,
) -> List[SimulationResult]:
    """:func:`run_plan` returning just the results (sweep harness API)."""
    results, _ = run_plan(cells, workers=workers, store=store,
                          backend=backend)
    return results


def cached_simulate(
    workload: Workload,
    config: Optional[MachineConfig] = None,
    load_latency: int = 10,
    scale: float = 1.0,
    store: Optional[ResultStore] = None,
    engine: Optional[str] = None,
) -> SimulationResult:
    """A drop-in memoized :func:`repro.sim.simulator.simulate`.

    For experiment drivers that run one configuration at a time (the
    histogram, layout-grid, and scaling studies): same signature for
    the common arguments, same bit-identical result, backed by the
    store.  ``engine`` picks the execution tier on a store miss; since
    every tier is bit-identical the fingerprint (and thus the cached
    entry) is engine-independent.
    """
    from repro.sim.simulator import simulate

    if config is None:
        config = baseline_config()
    if store is None:
        store = ResultStore.from_env()
    fingerprint = cell_fingerprint(workload, config, load_latency, scale)
    result = store.load(fingerprint)
    if result is not None:
        store.add_counters(hits=1)
        return result
    result = simulate(workload, config, load_latency=load_latency, scale=scale,
                      engine=engine)
    store.store(fingerprint, result)
    store.add_counters(misses=1, stores=1)
    return result
