"""Sweep harness: the cartesian runs behind every figure and table.

The paper's results are sweeps over (benchmark x hardware policy x
scheduled load latency x cache geometry x miss penalty).  These
helpers run such sweeps by lowering each to a flat cell list and
handing it to the unified planner (:mod:`repro.sim.planner`), which
deduplicates identical cells, serves previously-simulated cells from
the content-addressed result store, and dispatches the remainder
through the cache-affine pool.  ``workers=1`` (the default) keeps
execution in-process and bit-identical to direct ``simulate`` calls;
any other value fans the missing cells across processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.policies import MSHRPolicy
from repro.sim.config import MachineConfig, baseline_config
from repro.sim.parallel import Cell
from repro.sim.planner import execute_cells
from repro.sim.stats import SimulationResult
from repro.workloads.workload import Workload

#: The load latencies the paper's compiler sweep used (Section 6:
#: "the set {1,2,3,6,10,20}").
PAPER_LATENCIES: Tuple[int, ...] = (1, 2, 3, 6, 10, 20)


@dataclass
class CurveSweep:
    """MCPI-vs-latency curves for one workload (a Figure 5-style plot)."""

    workload: str
    latencies: Tuple[int, ...]
    #: policy name -> list of results parallel to ``latencies``.
    results: Dict[str, List[SimulationResult]] = field(default_factory=dict)

    def mcpi_curve(self, policy: str) -> List[float]:
        """The MCPI series for one policy."""
        return [r.mcpi for r in self.results[policy]]

    def policies(self) -> List[str]:
        return list(self.results)


def run_curves(
    workload: Workload,
    policies: Sequence[MSHRPolicy],
    latencies: Iterable[int] = PAPER_LATENCIES,
    base: Optional[MachineConfig] = None,
    scale: float = 1.0,
    workers: Optional[int] = 1,
    backend: Optional[str] = None,
) -> CurveSweep:
    """Sweep load latency x policy for one workload."""
    if base is None:
        base = baseline_config()
    lat_list = tuple(latencies)
    cells: List[Cell] = [
        (workload, base.with_policy(policy), lat, scale)
        for policy in policies
        for lat in lat_list
    ]
    results = execute_cells(cells, workers=workers, backend=backend)

    sweep = CurveSweep(workload=workload.name, latencies=lat_list)
    index = 0
    for policy in policies:
        sweep.results[policy.name] = results[index:index + len(lat_list)]
        index += len(lat_list)
    return sweep


@dataclass
class TableSweep:
    """MCPI for benchmarks x policies at one latency (Figure 13 shape)."""

    load_latency: int
    policy_names: Tuple[str, ...]
    #: workload name -> policy name -> result.
    rows: Dict[str, Dict[str, SimulationResult]] = field(default_factory=dict)

    def mcpi(self, workload: str, policy: str) -> float:
        return self.rows[workload][policy].mcpi

    def ratio(self, workload: str, policy: str, reference: str) -> float:
        """MCPI ratio of ``policy`` to ``reference`` (paper's ratio columns)."""
        ref = self.mcpi(workload, reference)
        if ref == 0:
            return float("inf") if self.mcpi(workload, policy) > 0 else 1.0
        return self.mcpi(workload, policy) / ref


def run_table(
    workloads: Sequence[Workload],
    policies: Sequence[MSHRPolicy],
    load_latency: int = 10,
    base: Optional[MachineConfig] = None,
    scale: float = 1.0,
    workers: Optional[int] = 1,
    backend: Optional[str] = None,
) -> TableSweep:
    """Sweep benchmarks x policies at a single scheduled latency."""
    if base is None:
        base = baseline_config()
    cells: List[Cell] = [
        (workload, base.with_policy(policy), load_latency, scale)
        for workload in workloads
        for policy in policies
    ]
    results = execute_cells(cells, workers=workers, backend=backend)

    table = TableSweep(
        load_latency=load_latency,
        policy_names=tuple(p.name for p in policies),
    )
    index = 0
    for workload in workloads:
        row: Dict[str, SimulationResult] = {}
        for policy in policies:
            row[policy.name] = results[index]
            index += 1
        table.rows[workload.name] = row
    return table


def run_penalty_sweep(
    workload: Workload,
    policies: Sequence[MSHRPolicy],
    penalties: Sequence[int],
    load_latency: int = 10,
    base: Optional[MachineConfig] = None,
    scale: float = 1.0,
    workers: Optional[int] = 1,
    backend: Optional[str] = None,
) -> Dict[str, Dict[int, SimulationResult]]:
    """Sweep miss penalty x policy (Figure 18 shape)."""
    if base is None:
        base = baseline_config()
    cells: List[Cell] = [
        (workload, replace(base, policy=policy, miss_penalty=penalty),
         load_latency, scale)
        for policy in policies
        for penalty in penalties
    ]
    results = execute_cells(cells, workers=workers, backend=backend)

    out: Dict[str, Dict[int, SimulationResult]] = {}
    index = 0
    for policy in policies:
        per_policy: Dict[int, SimulationResult] = {}
        for penalty in penalties:
            per_policy[penalty] = results[index]
            index += 1
        out[policy.name] = per_policy
    return out
