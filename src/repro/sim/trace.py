"""Trace expansion: binding a compiled body to concrete addresses.

The compiled loop body references streams symbolically; this module
pre-generates, for every memory op in the body, the address it uses in
each execution of the body.  Pre-generation keeps all numpy work out of
the simulator's hot loop (addresses become plain Python int lists) and
makes runs exactly reproducible.

A stream referenced by ``k`` ops per body execution is consumed ``k``
addresses per execution, assigned to its ops in body order -- so the
address sequence a stream produces is independent of the unroll factor
and (statistically) of the schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.compiler.pipeline import CompiledBody
from repro.cpu.isa import Instruction, OpClass
from repro.workloads.workload import Workload
from repro.errors import WorkloadError


@dataclass
class ExpandedTrace:
    """A compiled body with per-op per-execution addresses."""

    body: Tuple[Instruction, ...]
    #: Parallel to ``body``: for memory ops, the list of addresses (one
    #: per body execution); ``None`` for non-memory ops.
    addresses: List[Optional[List[int]]]
    #: Number of times the body is executed.
    executions: int
    workload_name: str

    @property
    def num_instructions(self) -> int:
        return len(self.body) * self.executions


def expand(
    workload: Workload, compiled: CompiledBody, scale: float = 1.0
) -> ExpandedTrace:
    """Materialize the run: addresses for every memory op.

    ``scale`` multiplies the workload's iteration count; the body
    executes ``ceil(iterations / unroll_factor)`` times so the number
    of *original* iterations simulated stays comparable across
    schedules with different unroll factors.
    """
    if scale <= 0:
        raise WorkloadError(f"scale must be positive: {scale}")
    iterations = max(1, int(workload.iterations * scale))
    executions = -(-iterations // compiled.unroll_factor)

    body = compiled.instructions
    # Occurrence index of each memory op within its stream, body order.
    occurrence: List[Tuple[int, int]] = []  # (stream, index within stream)
    uses_per_stream: Dict[int, int] = {}
    for instr in body:
        if instr.op in (OpClass.LOAD, OpClass.STORE):
            sid = instr.stream
            assert sid is not None
            occurrence.append((sid, uses_per_stream.get(sid, 0)))
            uses_per_stream[sid] = uses_per_stream.get(sid, 0) + 1

    # Generate each stream once, then slice per op.
    stream_addresses: Dict[int, "object"] = {}
    for sid, k in uses_per_stream.items():
        pattern = workload.pattern_for(sid, compiled.spill_stream)
        rng = workload.rng_for_stream(sid)
        stream_addresses[sid] = pattern.generate(k * executions, rng)

    addresses: List[Optional[List[int]]] = []
    mem_idx = 0
    for instr in body:
        if instr.op in (OpClass.LOAD, OpClass.STORE):
            sid, occ = occurrence[mem_idx]
            mem_idx += 1
            k = uses_per_stream[sid]
            arr = stream_addresses[sid]
            addresses.append(arr[occ::k][:executions].tolist())
        else:
            addresses.append(None)

    return ExpandedTrace(
        body=body,
        addresses=addresses,
        executions=executions,
        workload_name=workload.name,
    )
