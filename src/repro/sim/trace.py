"""Trace expansion: binding a compiled body to concrete addresses.

The compiled loop body references streams symbolically; this module
pre-generates, for every memory op in the body, the address it uses in
each execution of the body.  Pre-generation keeps all numpy work out of
the simulator's hot loop and makes runs exactly reproducible.
Addresses are stored as flat ``array('q')`` buffers -- 8 bytes per
entry instead of a boxed ``int`` per entry -- so billion-reference
expansions stay within memory.

A stream referenced by ``k`` ops per body execution is consumed ``k``
addresses per execution, assigned to its ops in body order -- so the
address sequence a stream produces is independent of the unroll factor
and (statistically) of the schedule.

For the execution engines the trace also compiles itself into a
*flattened program* (:meth:`ExpandedTrace.program`): a per-op dispatch
table in which every attribute lookup has been hoisted, source-register
lists are pre-filtered down to the registers that can actually stall,
and runs of non-memory ops that can never interact with a pending load
fill are coalesced into single "advance the clock by N" entries.  See
``docs/performance.md`` for the argument that this is exact.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.compiler.pipeline import CompiledBody
from repro.cpu.isa import Instruction, OpClass
from repro.workloads.workload import Workload
from repro.errors import WorkloadError

#: Flattened-program opcodes (first element of each program entry).
#: SKIP entries are ``(P_SKIP, n)``: n coalesced non-memory ops, none
#: of which can read or overwrite a pending load fill.
P_SKIP = 0
#: ``(P_LOAD, dst, stall_srcs, addrs)``.
P_LOAD = 1
#: ``(P_STORE, stall_srcs, addrs)``.
P_STORE = 2
#: ``(P_SCALAR, dst_or_minus1, stall_srcs)``: a non-memory op that may
#: stall on (or overwrite) a load destination register.
P_SCALAR = 3


def _flatten(
    body: Sequence[Instruction], addresses: Sequence[Optional[Sequence[int]]]
) -> List[tuple]:
    """Compile the body into the engines' dispatch program.

    Only load destination registers can ever hold a future readiness
    time (every other writer publishes ``cycle + 1``, which program
    order has already passed when any reader issues), so:

    * source lists are filtered to registers in the load-destination
      set -- the others can never raise a true-dependency stall;
    * a non-memory op whose (filtered) sources are empty and whose
      destination is not a load destination has no observable effect
      beyond advancing the clock one cycle, and consecutive such ops
      collapse into one ``P_SKIP`` entry.
    """
    load_dsts = {op.dst for op in body if op.op is OpClass.LOAD}
    program: List[tuple] = []
    skip = 0
    for j, instr in enumerate(body):
        kind = instr.op
        if kind is OpClass.LOAD or kind is OpClass.STORE:
            if skip:
                program.append((P_SKIP, skip))
                skip = 0
            stall_srcs = tuple(s for s in instr.srcs if s in load_dsts)
            if kind is OpClass.LOAD:
                program.append((P_LOAD, instr.dst, stall_srcs, addresses[j]))
            else:
                program.append((P_STORE, stall_srcs, addresses[j]))
            continue
        stall_srcs = tuple(s for s in instr.srcs if s in load_dsts)
        dst = instr.dst if instr.dst is not None else -1
        if not stall_srcs and dst not in load_dsts:
            skip += 1
            continue
        if skip:
            program.append((P_SKIP, skip))
            skip = 0
        # The write is observable only when dst aliases a load
        # destination (the scoreboard WAW case); otherwise drop it.
        program.append((P_SCALAR, dst if dst in load_dsts else -1, stall_srcs))
    if skip:
        program.append((P_SKIP, skip))
    return program


@dataclass
class ExpandedTrace:
    """A compiled body with per-op per-execution addresses."""

    body: Tuple[Instruction, ...]
    #: Parallel to ``body``: for memory ops, the per-execution address
    #: buffer (an ``array('q')`` from :func:`expand`, though any
    #: integer sequence works); ``None`` for non-memory ops.
    addresses: List[Optional[Sequence[int]]]
    #: Number of times the body is executed.
    executions: int
    workload_name: str
    _program: Optional[List[tuple]] = field(
        default=None, init=False, repr=False, compare=False
    )
    #: Specialized single-issue runner, built lazily by
    #: :mod:`repro.cpu.codegen` and cached here with the trace.
    _single_issue_fn: Optional[object] = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def num_instructions(self) -> int:
        return len(self.body) * self.executions

    def program(self) -> List[tuple]:
        """The flattened dispatch program (built once, cached)."""
        if self._program is None:
            self._program = _flatten(self.body, self.addresses)
        return self._program


def expand(
    workload: Workload, compiled: CompiledBody, scale: float = 1.0
) -> ExpandedTrace:
    """Materialize the run: addresses for every memory op.

    ``scale`` multiplies the workload's iteration count; the body
    executes ``ceil(iterations / unroll_factor)`` times so the number
    of *original* iterations simulated stays comparable across
    schedules with different unroll factors.
    """
    if scale <= 0:
        raise WorkloadError(f"scale must be positive: {scale}")
    iterations = max(1, int(workload.iterations * scale))
    executions = -(-iterations // compiled.unroll_factor)

    body = compiled.instructions
    # Occurrence index of each memory op within its stream, body order.
    occurrence: List[Tuple[int, int]] = []  # (stream, index within stream)
    uses_per_stream: Dict[int, int] = {}
    for instr in body:
        if instr.op in (OpClass.LOAD, OpClass.STORE):
            sid = instr.stream
            assert sid is not None
            occurrence.append((sid, uses_per_stream.get(sid, 0)))
            uses_per_stream[sid] = uses_per_stream.get(sid, 0) + 1

    # Generate each stream once, then slice per op.
    stream_addresses: Dict[int, "object"] = {}
    for sid, k in uses_per_stream.items():
        pattern = workload.pattern_for(sid, compiled.spill_stream)
        rng = workload.rng_for_stream(sid)
        stream_addresses[sid] = pattern.generate(k * executions, rng)

    addresses: List[Optional[Sequence[int]]] = []
    mem_idx = 0
    for instr in body:
        if instr.op in (OpClass.LOAD, OpClass.STORE):
            sid, occ = occurrence[mem_idx]
            mem_idx += 1
            k = uses_per_stream[sid]
            arr = stream_addresses[sid]
            sliced = np.ascontiguousarray(
                np.asarray(arr)[occ::k][:executions], dtype=np.int64
            )
            # One copy, numpy buffer -> array buffer: a byte-cast view
            # feeds frombytes directly, with no intermediate bytes
            # object doubling the trace's peak footprint.
            buf = array("q")
            buf.frombytes(memoryview(sliced).cast("B"))
            addresses.append(buf)
        else:
            addresses.append(None)

    return ExpandedTrace(
        body=body,
        addresses=addresses,
        executions=executions,
        workload_name=workload.name,
    )
