"""Access-level tracing: watch the lockup-free cache work.

The aggregate counters answer "how much"; debugging a policy or
teaching the mechanism needs "what happened, access by access".  This
module wraps a :class:`~repro.core.handler.MissHandler` so that every
load/store is recorded with its issue cycle, address, classification,
stall, and data-ready time, then exposes a one-call entry point that
runs a (truncated) simulation and returns the log.

Tracing is strictly additive: the wrapped handler's timing decisions
are untouched, so a traced run's cycle counts equal an untraced run's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.classify import AccessOutcome
from repro.core.handler import MissHandler
from repro.cpu.pipeline import run_single_issue
from repro.sim.config import MachineConfig, baseline_config
from repro.sim.simulator import expand_workload
from repro.workloads.workload import Workload


@dataclass(frozen=True)
class AccessRecord:
    """One data-cache access as the handler resolved it."""

    index: int
    is_load: bool
    address: int
    issue_cycle: int
    #: Cycle at which the pipeline could issue the next instruction.
    next_issue: int
    #: Cycle at which the loaded register became valid (loads only).
    data_ready: Optional[int]
    outcome: Optional[AccessOutcome]
    store_hit: Optional[bool] = None

    @property
    def stall_cycles(self) -> int:
        """Pipeline cycles this access held beyond its own issue slot."""
        return self.next_issue - self.issue_cycle - 1

    def describe(self) -> str:
        kind = "load " if self.is_load else "store"
        outcome = (
            self.outcome.name.lower() if self.outcome is not None
            else ("hit" if self.store_hit else "miss")
        )
        text = (f"#{self.index:<6d} cycle {self.issue_cycle:<8d} {kind} "
                f"0x{self.address:08x}  {outcome:10s}")
        if self.stall_cycles:
            text += f" stalled {self.stall_cycles}"
        if self.is_load and self.data_ready is not None:
            text += f" ready@{self.data_ready}"
        return text


class TracingHandler:
    """MissHandler wrapper recording every access up to a limit."""

    def __init__(self, inner: MissHandler, limit: int = 1000) -> None:
        self.inner = inner
        self.limit = limit
        self.records: List[AccessRecord] = []
        self._count = 0

    @property
    def stats(self):
        return self.inner.stats

    def load(self, addr: int, now: int):
        result = self.inner.load(addr, now)
        if len(self.records) < self.limit:
            nxt, ready, outcome = result
            self.records.append(AccessRecord(
                index=self._count, is_load=True, address=addr,
                issue_cycle=now, next_issue=nxt, data_ready=ready,
                outcome=outcome,
            ))
        self._count += 1
        return result

    def store(self, addr: int, now: int):
        result = self.inner.store(addr, now)
        if len(self.records) < self.limit:
            nxt, hit = result
            self.records.append(AccessRecord(
                index=self._count, is_load=False, address=addr,
                issue_cycle=now, next_issue=nxt, data_ready=None,
                outcome=None, store_hit=hit,
            ))
        self._count += 1
        return result

    def finalize(self, end_cycle: int) -> None:
        self.inner.finalize(end_cycle)


def record_accesses(
    workload: Workload,
    config: Optional[MachineConfig] = None,
    load_latency: int = 10,
    limit: int = 200,
    scale: float = 0.05,
) -> List[AccessRecord]:
    """Run a short simulation and return the first ``limit`` accesses.

    Single-issue only (the tracing wrapper mirrors that engine's
    handler interface).
    """
    if config is None:
        config = baseline_config()
    _compiled, trace = expand_workload(workload, load_latency, scale=scale)
    handler = TracingHandler(config.make_handler(), limit=limit)
    run_single_issue(trace, handler)
    return handler.records


def format_access_log(records: List[AccessRecord]) -> str:
    """Render an access log as readable lines."""
    return "\n".join(record.describe() for record in records)
