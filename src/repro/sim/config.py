"""Machine configuration: everything the simulator needs beyond the code.

The paper's baseline system (Section 4): an 8KB direct-mapped data
cache with 32-byte lines and a 16-cycle miss penalty, single-issue
processor, ideal write buffer.  Section 5 varies the cache size, line
size (with the Section 5.2 penalty rule), and the miss penalty;
Section 6 uses a dual-issue processor.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.cache.geometry import CacheGeometry
from repro.cache.memory import PipelinedMemory, penalty_for_line_size
from repro.cache.write_buffer import FiniteWriteBuffer, WriteBuffer
from repro.core.handler import MissHandler
from repro.core.policies import MSHRPolicy, no_restrict
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class MachineConfig:
    """One simulated machine."""

    geometry: CacheGeometry = field(default_factory=CacheGeometry)
    policy: MSHRPolicy = field(default_factory=no_restrict)
    #: Miss penalty in cycles; ``None`` derives it from the line size
    #: with the Section 5.2 rule (14 + 2 per extra 16B chunk).
    miss_penalty: Optional[int] = 16
    issue_width: int = 1
    #: All loads hit; used to measure issue-limited IPC (Section 6).
    perfect_cache: bool = False
    #: Finite write-buffer depth for the ablation study (``None`` =
    #: the paper's ideal free-retiring buffer).
    write_buffer_depth: Optional[int] = None
    write_buffer_retire_cycles: int = 1

    def __post_init__(self) -> None:
        if self.issue_width not in (1, 2):
            raise ConfigurationError(
                f"issue width must be 1 or 2: {self.issue_width}"
            )
        if self.miss_penalty is not None and self.miss_penalty < 1:
            raise ConfigurationError(
                f"miss penalty must be >= 1: {self.miss_penalty}"
            )

    @property
    def effective_penalty(self) -> int:
        """The miss penalty after applying the line-size rule."""
        if self.miss_penalty is not None:
            return self.miss_penalty
        return penalty_for_line_size(self.geometry.line_size)

    def with_policy(self, policy: MSHRPolicy) -> "MachineConfig":
        """Copy of this config under a different MSHR policy."""
        return replace(self, policy=policy)

    def make_handler(self) -> MissHandler:
        """Build a fresh miss handler for one simulation run."""
        memory = PipelinedMemory(miss_penalty=self.effective_penalty)
        if self.write_buffer_depth is None:
            buffer: WriteBuffer = WriteBuffer()
        else:
            buffer = FiniteWriteBuffer(
                self.write_buffer_depth, self.write_buffer_retire_cycles
            )
        return MissHandler(
            policy=self.policy,
            geometry=self.geometry,
            memory=memory,
            write_buffer=buffer,
        )

    def describe(self) -> str:
        """One-line summary for table headers."""
        parts = [
            self.geometry.describe(),
            f"penalty {self.effective_penalty}",
            self.policy.name,
        ]
        if self.issue_width != 1:
            parts.append(f"{self.issue_width}-issue")
        if self.perfect_cache:
            parts.append("perfect cache")
        return ", ".join(parts)


def baseline_config(policy: Optional[MSHRPolicy] = None) -> MachineConfig:
    """The paper's baseline: 8KB DM cache, 32B lines, 16-cycle penalty."""
    return MachineConfig(policy=policy if policy is not None else no_restrict())
