"""Memory-event streams: the policy-independent half of an execution.

Every cell in a policy sweep re-runs the same compiled trace; only the
miss handler differs.  This module factors the policy-*independent*
work out of that loop once per (workload, load latency, scale, line
size) group:

* **line addresses** -- each memory op's per-execution addresses with
  the line-offset bits pre-stripped, stored as ``array('q')`` buffers,
  so a replay probes residency without shifting;
* **dependency terms** -- a static max-plus summary of every
  true-data-dependency stall the interpreter could take between
  memory ops.  Between two memory ops the interpreter's stall checks
  compose as ``issue = max(cycle + pregap, max_i(ready_i + delta_i))``
  where each ``delta_i`` is a compile-time constant and each
  ``ready_i`` is the ready time of a *load slot* (only load
  destinations ever publish future ready times).  A two-pass
  reaching-definitions walk over the flattened program extracts, per
  memory op, exactly which load slots can bind and with what delta --
  see ``docs/performance.md`` for the exactness argument;
* **functional classification** -- the hit/miss outcome of every
  reference under an immediate-install cache, which equals the
  *blocking* policy's machine exactly (a non-blocking cache's tag
  state diverges through in-flight fills, so siblings replay their
  own tag store instead).

The replay kernel (:mod:`repro.cpu.replay`) then advances each
policy's :class:`~repro.core.handler.MissHandler` over the stream
without touching the interpreter, and the blocking policies collapse
to a closed form over the functional aggregates.  Results are
bit-identical to the reference loops; ``tests/sim/test_fusion_equivalence.py``
asserts it per policy family.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import telemetry
from repro.cache.geometry import CacheGeometry
from repro.cache.tags import make_tag_store
from repro.sim.lru import LRUCache
from repro.sim.trace import P_LOAD, P_SCALAR, P_SKIP, P_STORE, ExpandedTrace
from repro.workloads.workload import Workload


@dataclass(frozen=True)
class SlotSpec:
    """Static description of one memory op in the body.

    ``terms`` is the op's readiness summary: the op issues at
    ``max(cycle + pregap, max over (lr, delta) of ready[lr] + delta)``
    where ``ready`` is the per-load-slot rolling ready-time array the
    replay kernel maintains.
    """

    #: ``P_LOAD`` or ``P_STORE``.
    kind: int
    #: Index into ``trace.body`` / ``trace.addresses`` (the issuing
    #: instruction's position in the body).
    body_index: int
    #: Dense load-slot index (-1 for stores).
    lr_index: int
    #: Clock advances since the previous memory op (or the head of the
    #: body for the first slot).
    pregap: int
    #: ``(lr_index, delta)`` readiness terms, deduplicated per slot.
    terms: Tuple[Tuple[int, int], ...]


@dataclass
class EventStream:
    """One group's memory-event stream (everything but the policy)."""

    workload_name: str
    line_size: int
    body_len: int
    executions: int
    #: Loads / stores per body execution.
    n_loads: int
    n_stores: int
    slots: Tuple[SlotSpec, ...]
    #: Clock advances after the last memory op to the end of the body.
    tail_gap: int
    #: Readiness terms of the post-body stall sites (same shape as
    #: :attr:`SlotSpec.terms`).
    tail_terms: Tuple[Tuple[int, int], ...]
    #: Parallel to ``slots``: per-execution *line* addresses
    #: (``array('q')`` locally, ``memoryview('q')`` when attached from
    #: the shared-memory plane).
    lines: List[Sequence[int]]
    #: Compiled replay kernels, built lazily by
    #: :mod:`repro.cpu.replay` and cached here with the stream, keyed
    #: by ``(geometry, policy, effective_penalty)``.
    _replay_fns: Dict[object, object] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    @property
    def instructions(self) -> int:
        return self.body_len * self.executions

    @property
    def references(self) -> int:
        """Memory references in the whole run."""
        return len(self.slots) * self.executions


@dataclass(frozen=True)
class FunctionalSummary:
    """Aggregate hit/miss outcome of a run on an immediate-install cache.

    Exact for the blocking (``mc=0`` family) policies, whose machine
    *is* the immediate-install machine; see the module docstring for
    why non-blocking siblings cannot reuse it.
    """

    geometry: CacheGeometry
    write_allocate: bool
    instructions: int
    load_hits: int
    load_misses: int
    store_hits: int
    store_misses: int
    evictions: int
    #: Reference indices (execution-major order) that missed, as an
    #: ``array('q')``; diagnostics and tests use it, the closed form
    #: needs only the aggregates.
    miss_refs: array


# -- structure extraction ------------------------------------------------------


def _extract_structure(program: Sequence[tuple]) -> Optional[tuple]:
    """Walk the flattened program and summarize its dependency structure.

    Returns ``(slot_kinds, lr_indices, pregaps, terms, tail_gap,
    tail_terms, n_loads, n_stores)`` or ``None`` when the body has no
    memory ops.

    The walk runs the body **twice**: registers reaching the second
    pass carry their steady-state writers (the last writer in the
    body), so the second pass's records are exact for every execution.
    For the first execution a recorded term can name a load slot that
    has not yet run -- its rolling ready time is still 0, which can
    never bind, exactly as the interpreter's zero-initialized
    scoreboard never stalls there.  Each pass flushes its trailing
    sites into the tail record, mirroring the per-execution tail block
    the replay kernel emits.
    """
    mem_kinds: List[int] = []
    lr_indices: List[int] = []
    n_loads = 0
    for op in program:
        if op[0] == P_LOAD:
            mem_kinds.append(P_LOAD)
            lr_indices.append(n_loads)
            n_loads += 1
        elif op[0] == P_STORE:
            mem_kinds.append(P_STORE)
            lr_indices.append(-1)
    n_slots = len(mem_kinds)
    if not n_slots:
        return None
    n_stores = n_slots - n_loads

    #: register -> lr index of the load whose ready time it holds.
    writer: Dict[int, int] = {}
    #: (lr_index, advances-before-site) stall sites since the last
    #: memory op.
    pending: List[Tuple[int, int]] = []
    adv = 0
    pregaps = [0] * n_slots
    terms: List[Tuple[Tuple[int, int], ...]] = [()] * n_slots
    tail_gap = 0
    tail_terms: Tuple[Tuple[int, int], ...] = ()

    def _flush(gap: int) -> Tuple[Tuple[int, int], ...]:
        best: Dict[int, int] = {}
        for lr, at in pending:
            delta = gap - at
            if best.get(lr, -1) < delta:
                best[lr] = delta
        pending.clear()
        return tuple(sorted(best.items()))

    for _ in range(2):
        slot = 0
        for op in program:
            kind = op[0]
            if kind == P_SKIP:
                adv += op[1]
            elif kind == P_SCALAR:
                dst, srcs = op[1], op[2]
                for s in srcs:
                    w = writer.get(s)
                    if w is not None:
                        pending.append((w, adv))
                if dst >= 0:
                    w = writer.get(dst)
                    if w is not None:  # scoreboard WAW site
                        pending.append((w, adv))
                    # The scalar overwrite publishes ``cycle + 1``,
                    # which no later reader can stall on.
                    writer.pop(dst, None)
                adv += 1
            else:
                srcs = op[2] if kind == P_LOAD else op[1]
                for s in srcs:
                    w = writer.get(s)
                    if w is not None:
                        pending.append((w, adv))
                if kind == P_LOAD:
                    w = writer.get(op[1])
                    if w is not None:  # WAW on a pending fill
                        pending.append((w, adv))
                pregaps[slot] = adv
                terms[slot] = _flush(adv)
                if kind == P_LOAD:
                    writer[op[1]] = lr_indices[slot]
                adv = 0
                slot += 1
        tail_gap = adv
        tail_terms = _flush(adv)
        adv = 0

    return (mem_kinds, lr_indices, pregaps, terms, tail_gap, tail_terms,
            n_loads, n_stores)


def _mem_body_indices(trace: ExpandedTrace) -> List[int]:
    """Body indices of the memory ops, in body (== program) order."""
    return [j for j, buf in enumerate(trace.addresses) if buf is not None]


def _line_array(buf: Sequence[int], offset_bits: int) -> array:
    """Shift a byte-address buffer down to line addresses, as array('q')."""
    raw = np.frombuffer(buf, dtype=np.int64)
    shifted = raw >> offset_bits if offset_bits else raw
    out = array("q")
    out.frombytes(memoryview(np.ascontiguousarray(shifted)).cast("B"))
    return out


def build_stream(
    trace: ExpandedTrace,
    line_size: int,
    lines: Optional[List[Sequence[int]]] = None,
) -> Optional[EventStream]:
    """Build the event stream for one expanded trace.

    ``lines`` supplies pre-built line-address buffers (the
    shared-memory plane hands workers zero-copy ``memoryview`` windows
    here); when omitted they are computed from the trace's byte
    addresses.  Returns ``None`` for a body with no memory ops.
    """
    structure = _extract_structure(trace.program())
    if structure is None:
        return None
    (mem_kinds, lr_indices, pregaps, terms, tail_gap, tail_terms,
     n_loads, n_stores) = structure
    body_indices = _mem_body_indices(trace)
    offset_bits = line_size.bit_length() - 1
    if lines is None:
        lines = [
            _line_array(trace.addresses[j], offset_bits)
            for j in body_indices
        ]
    slots = tuple(
        SlotSpec(
            kind=mem_kinds[k],
            body_index=body_indices[k],
            lr_index=lr_indices[k],
            pregap=pregaps[k],
            terms=terms[k],
        )
        for k in range(len(mem_kinds))
    )
    if telemetry.enabled():
        telemetry.counter("fusion.streams_built").inc()
    return EventStream(
        workload_name=trace.workload_name,
        line_size=line_size,
        body_len=len(trace.body),
        executions=trace.executions,
        n_loads=n_loads,
        n_stores=n_stores,
        slots=slots,
        tail_gap=tail_gap,
        tail_terms=tail_terms,
        lines=list(lines),
    )


# -- functional classification -------------------------------------------------


def _flat_blocks(stream: EventStream) -> Tuple[np.ndarray, np.ndarray]:
    """(blocks, is_load) flattened in reference order (execution-major)."""
    n_slots = len(stream.slots)
    grid = np.empty((stream.executions, n_slots), dtype=np.int64)
    for k, buf in enumerate(stream.lines):
        grid[:, k] = np.frombuffer(buf, dtype=np.int64)
    kinds = np.array(
        [slot.kind == P_LOAD for slot in stream.slots], dtype=bool
    )
    is_load = np.broadcast_to(
        kinds, (stream.executions, n_slots)
    ).reshape(-1)
    return grid.reshape(-1), np.ascontiguousarray(is_load)


def _dm_functional(
    blocks: np.ndarray, is_load: np.ndarray, num_sets: int
) -> Dict[bool, Tuple[np.ndarray, int]]:
    """Vectorized classification for a direct-mapped cache.

    Returns ``{write_allocate: (hit_mask, evictions)}`` for both store
    policies in one pass (they share the sorted order).  The tricks:

    * under write-miss allocate every reference leaves its own block
      resident, so a reference hits iff the *previous reference* to
      its set touched the same block;
    * under write-around only load misses install, and a load install
      always leaves the load's block resident, so residency equals
      "the block of the last load to the set" and stores never change
      tag state at all.  A reference hits iff the last *load* before
      it in its set touched the same block.
    """
    n = blocks.size
    sets = blocks & (num_sets - 1)
    order = np.lexsort((np.arange(n), sets))
    s_sorted = sets[order]
    b_sorted = blocks[order]
    l_sorted = is_load[order]

    same_set = np.empty(n, dtype=bool)
    same_set[0] = False
    same_set[1:] = s_sorted[1:] == s_sorted[:-1]

    # write-miss allocate: compare with the immediately preceding
    # reference in the set.
    hit_wma_sorted = np.empty(n, dtype=bool)
    hit_wma_sorted[0] = False
    hit_wma_sorted[1:] = same_set[1:] & (b_sorted[1:] == b_sorted[:-1])
    hit_wma = np.empty(n, dtype=bool)
    hit_wma[order] = hit_wma_sorted

    # write-around: compare with the last preceding *load* in the set.
    # Groups are contiguous and set-sorted, so a keyed running maximum
    # of "position of the last load" resets itself at set boundaries.
    idx = np.arange(n)
    load_pos = np.where(l_sorted, idx, -1)
    keyed = np.maximum.accumulate(s_sorted * (n + 1) + load_pos + 1)
    last_load_incl = keyed - s_sorted * (n + 1) - 1
    prev_load = np.empty(n, dtype=np.int64)
    prev_load[0] = -1
    prev_load[1:] = np.where(same_set[1:], last_load_incl[:-1], -1)
    hit_wa_sorted = (prev_load >= 0) & (
        b_sorted[np.maximum(prev_load, 0)] == b_sorted
    )
    hit_wa = np.empty(n, dtype=bool)
    hit_wa[order] = hit_wa_sorted

    # Evictions: the first install into a set evicts nothing; every
    # later install evicts (its block differs from the resident one,
    # else it would have hit).
    misses_wma = n - int(np.count_nonzero(hit_wma))
    evict_wma = misses_wma - int(np.unique(sets).size)
    load_misses_wa = int(np.count_nonzero(is_load & ~hit_wa))
    load_sets = np.unique(sets[is_load]).size if is_load.any() else 0
    evict_wa = load_misses_wa - int(load_sets)
    return {True: (hit_wma, evict_wma), False: (hit_wa, evict_wa)}


def _lru_functional(
    blocks: np.ndarray,
    is_load: np.ndarray,
    geometry: CacheGeometry,
    write_allocate: bool,
) -> Tuple[np.ndarray, int]:
    """Sequential classification for set-associative (LRU) geometries."""
    tags = make_tag_store(geometry)
    access = tags.access
    install = tags.install
    hits = np.empty(blocks.size, dtype=bool)
    evictions = 0
    for i, (block, load) in enumerate(zip(blocks.tolist(),
                                          is_load.tolist())):
        if access(block):
            hits[i] = True
            continue
        hits[i] = False
        if load or write_allocate:
            if install(block) is not None:
                evictions += 1
    return hits, evictions


def _summarize(
    stream: EventStream,
    geometry: CacheGeometry,
    write_allocate: bool,
    hits: np.ndarray,
    is_load: np.ndarray,
    evictions: int,
) -> FunctionalSummary:
    miss_refs = array("q")
    missed = np.nonzero(~hits)[0].astype(np.int64)
    miss_refs.frombytes(memoryview(np.ascontiguousarray(missed)).cast("B"))
    return FunctionalSummary(
        geometry=geometry,
        write_allocate=write_allocate,
        instructions=stream.instructions,
        load_hits=int(np.count_nonzero(hits & is_load)),
        load_misses=int(np.count_nonzero(~hits & is_load)),
        store_hits=int(np.count_nonzero(hits & ~is_load)),
        store_misses=int(np.count_nonzero(~hits & ~is_load)),
        evictions=evictions,
        miss_refs=miss_refs,
    )


def classify_stream(
    stream: EventStream, geometry: CacheGeometry, write_allocate: bool
) -> FunctionalSummary:
    """Classify every reference on an immediate-install ``geometry``."""
    if geometry.line_size != stream.line_size:
        raise ValueError(
            f"stream was built for {stream.line_size}B lines, "
            f"geometry has {geometry.line_size}B"
        )
    blocks, is_load = _flat_blocks(stream)
    if geometry.is_direct_mapped:
        hit_masks = _dm_functional(blocks, is_load, geometry.num_sets)
        hits, evictions = hit_masks[write_allocate]
    else:
        hits, evictions = _lru_functional(
            blocks, is_load, geometry, write_allocate
        )
    return _summarize(stream, geometry, write_allocate, hits, is_load,
                      evictions)


# -- process-level caches ------------------------------------------------------

#: Streams hold line buffers comparable in size to the trace cache's
#: address buffers, so the bound stays tight; summaries are a few
#: scalars plus the miss-index array.
_STREAM_CACHE = LRUCache(16)
_SUMMARY_CACHE = LRUCache(64)


def clear_stream_caches() -> None:
    """Drop cached event streams and functional summaries."""
    _STREAM_CACHE.clear()
    _SUMMARY_CACHE.clear()


def cache_sizes() -> Tuple[int, int]:
    """(streams, summaries) currently cached, for the telemetry gauges."""
    return len(_STREAM_CACHE), len(_SUMMARY_CACHE)


def _stream_key(
    workload: Workload,
    load_latency: int,
    scale: float,
    line_size: int,
    unroll_override: int,
) -> Tuple:
    from repro.sim.simulator import _trace_key

    return (_trace_key(workload, load_latency, scale, unroll_override),
            line_size)


def stream_cached(
    workload: Workload,
    load_latency: int,
    scale: float = 1.0,
    line_size: int = 32,
    unroll_override: int = 0,
) -> bool:
    """Whether this process already holds the group's event stream.

    Pool workers consult this before attaching a shared-memory stream
    segment, exactly like :func:`repro.sim.simulator.trace_cached`.
    """
    key = _stream_key(workload, load_latency, scale, line_size,
                      unroll_override)
    return _STREAM_CACHE.get(key) is not None


def install_stream(
    workload: Workload,
    load_latency: int,
    stream: EventStream,
    scale: float = 1.0,
    unroll_override: int = 0,
) -> None:
    """Seed the stream cache with an externally assembled stream.

    The trace plane uses this to hand workers zero-copy streams built
    over shared memory; the caller guarantees the stream is
    bit-identical to what :func:`build_stream` would produce for the
    same key.
    """
    key = _stream_key(workload, load_latency, scale, stream.line_size,
                      unroll_override)
    _STREAM_CACHE.put(key, stream)


def event_stream(
    workload: Workload,
    load_latency: int,
    scale: float = 1.0,
    line_size: int = 32,
    unroll_override: int = 0,
) -> Optional[EventStream]:
    """The group's event stream, built once and cached (or ``None``)."""
    from repro.sim.simulator import expand_workload

    key = _stream_key(workload, load_latency, scale, line_size,
                      unroll_override)
    stream = _STREAM_CACHE.get(key)
    if stream is None:
        if telemetry.enabled():
            telemetry.counter("sim.stream_cache.misses").inc()
        _, trace = expand_workload(workload, load_latency, scale=scale,
                                   unroll_override=unroll_override)
        stream = build_stream(trace, line_size)
        if stream is None:
            return None
        _STREAM_CACHE.put(key, stream)
    elif telemetry.enabled():
        telemetry.counter("sim.stream_cache.hits").inc()
    return stream


def functional_summary(
    workload: Workload,
    load_latency: int,
    scale: float,
    geometry: CacheGeometry,
    write_allocate: bool,
    unroll_override: int = 0,
) -> Optional[FunctionalSummary]:
    """Cached functional classification for one (group, geometry) pair.

    Direct-mapped geometries compute both store policies in one sorted
    pass, so asking for ``mc=0`` right after ``mc=0+wma`` is a cache
    hit.
    """
    base_key = _stream_key(workload, load_latency, scale,
                           geometry.line_size, unroll_override)
    key = (base_key, geometry, write_allocate)
    summary = _SUMMARY_CACHE.get(key)
    if summary is not None:
        return summary
    stream = event_stream(workload, load_latency, scale,
                          geometry.line_size, unroll_override)
    if stream is None:
        return None
    if geometry.is_direct_mapped:
        blocks, is_load = _flat_blocks(stream)
        for wa, (hits, evictions) in _dm_functional(
                blocks, is_load, geometry.num_sets).items():
            _SUMMARY_CACHE.put(
                (base_key, geometry, wa),
                _summarize(stream, geometry, wa, hits, is_load, evictions),
            )
        return _SUMMARY_CACHE.get(key)
    summary = classify_stream(stream, geometry, write_allocate)
    _SUMMARY_CACHE.put(key, summary)
    return summary
