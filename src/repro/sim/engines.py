"""The execution-engine registry: one resolution path for every tier.

Five engines can execute a sweep cell, ordered slowest to fastest:

``reference``
    The plain interpreter loops in :mod:`repro.cpu.reference`.  No
    fast path, no fusion; the ground truth every other tier is tested
    against.
``fastpath``
    The optimized two-tier engine (hit fast path + flattened
    interpreter, :mod:`repro.cpu.pipeline`), one full trace execution
    per cell.
``fused``
    Policy-sibling fusion: one stream pass per (workload, latency,
    scale, line size) group plus a compiled per-policy replay kernel
    (:mod:`repro.sim.stream`, :mod:`repro.cpu.replay`); blocking
    policies collapse to the functional closed form.
``native``
    The fused engine with the numpy-vectorized replay lane
    (:mod:`repro.cpu.replay_native`): quiescent all-hit execution runs
    are detected and batch-accounted in chunked vector form instead of
    Python bytecode.  Cells outside the native envelope (set-
    associative geometries, finite write buffers, dual issue) fall
    back to the next tier transparently.
``cnative``
    The native engine plus generated-C replay kernels
    (:mod:`repro.cpu.ckernel`, :mod:`repro.cpu.replay_cnative`):
    compiled once per policy family and dlopen'd from the kernel
    cache, they execute the *full* irregular recurrence, taking
    exactly the replayable cells the vector lane declines
    (set-associative geometries, store-gated and streaming models).
    Without a C compiler (``REPRO_CC`` override included) every cell
    degrades to the ``native`` machinery, cause-tagged under
    ``engine.cnative.fallback.*``.

All five produce **bit-identical** :class:`~repro.sim.stats.SimulationResult`
objects -- the engine-matrix CI step and
``tests/sim/test_fusion_equivalence.py`` assert it -- so selection is
purely a performance decision and ``ENGINE_VERSION`` never depends on
it.

Selection resolves through exactly one path, replacing the old
scattered ``REPRO_FASTPATH`` / ``REPRO_FUSION`` probes:

1. an explicit ``engine=`` argument (``simulate``, ``api.simulate``,
   ``ExperimentOptions.engine``, ``--engine``);
2. the ``REPRO_ENGINE`` environment variable (an engine name or
   ``auto``);
3. the legacy variables ``REPRO_FASTPATH=0`` (-> ``reference``) and
   ``REPRO_FUSION=0`` (-> ``fastpath``), still honoured but emitting a
   :class:`DeprecationWarning` pointing at ``REPRO_ENGINE``;
4. the default, ``auto``: the fastest tier, falling back per cell.

Each tier *includes* its fallbacks: pinning ``native`` still runs
ineligible cells on the fused/fastpath machinery (counted under
``engine.native.fallbacks``), while pinning ``fused`` guarantees the
native lane never runs.  ``python -m repro engines`` prints the
registry and the current resolution.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro import telemetry
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Engine:
    """One execution tier: a named capability quadruple."""

    name: str
    description: str
    #: Use the optimized two-tier interpreter instead of the
    #: reference loops.
    fast_path: bool
    #: Let eligible cells run as stream replays / closed forms.
    fusion: bool
    #: Let eligible replays use the numpy-vectorized lane.
    native: bool
    #: Let eligible replays use the compiled-C kernels.
    cnative: bool


REFERENCE = Engine(
    "reference",
    "unoptimized interpreter loops (ground truth)",
    fast_path=False, fusion=False, native=False, cnative=False,
)
FASTPATH = Engine(
    "fastpath",
    "two-tier engine: hit fast path + flattened interpreter",
    fast_path=True, fusion=False, native=False, cnative=False,
)
FUSED = Engine(
    "fused",
    "policy-sibling fusion: shared stream pass + compiled replay kernels",
    fast_path=True, fusion=True, native=False, cnative=False,
)
NATIVE = Engine(
    "native",
    "fused engine + numpy-vectorized replay lane (chunked batch scan)",
    fast_path=True, fusion=True, native=True, cnative=False,
)
CNATIVE = Engine(
    "cnative",
    "native engine + generated-C replay kernels for the cells the "
    "vector lane declines",
    fast_path=True, fusion=True, native=True, cnative=True,
)

#: Registry order, slowest tier first.
ENGINE_ORDER: Tuple[str, ...] = (
    "reference", "fastpath", "fused", "native", "cnative",
)

ENGINES: Dict[str, Engine] = {
    engine.name: engine
    for engine in (REFERENCE, FASTPATH, FUSED, NATIVE, CNATIVE)
}

#: ``auto`` = the fastest tier; per-cell fallback makes it safe.
AUTO_NAME = "auto"
DEFAULT_ENGINE = CNATIVE


def engine_names() -> Tuple[str, ...]:
    """Valid ``REPRO_ENGINE`` / ``engine=`` values, ``auto`` included."""
    return ENGINE_ORDER + (AUTO_NAME,)


def get_engine(name: str) -> Engine:
    """Look up one engine by name (``auto`` resolves to the fastest)."""
    label = name.strip().lower()
    if label == AUTO_NAME:
        return DEFAULT_ENGINE
    engine = ENGINES.get(label)
    if engine is None:
        raise ConfigurationError(
            f"unknown engine '{name}'; valid engines: "
            f"{', '.join(engine_names())}"
        )
    return engine


_LEGACY_WARNED = set()


def _warn_legacy(var: str) -> None:
    if var in _LEGACY_WARNED:
        return
    _LEGACY_WARNED.add(var)
    warnings.warn(
        f"{var} is deprecated; use REPRO_ENGINE="
        f"{{{'|'.join(engine_names())}}} instead",
        DeprecationWarning,
        stacklevel=3,
    )


def resolve_engine(name: Optional[str] = None) -> Engine:
    """The single selection path: argument, env, legacy env, default.

    ``name=None`` consults ``REPRO_ENGINE``; when that is unset the
    legacy ``REPRO_FASTPATH=0`` / ``REPRO_FUSION=0`` opt-outs still
    map onto the matching tier (with a :class:`DeprecationWarning`),
    and otherwise ``auto`` -- the fastest tier with per-cell fallback
    -- is selected.
    """
    if name is not None:
        return get_engine(name)
    env = os.environ.get("REPRO_ENGINE")
    if env is not None:
        return get_engine(env)
    if os.environ.get("REPRO_FASTPATH", "1") == "0":
        _warn_legacy("REPRO_FASTPATH")
        return REFERENCE
    if os.environ.get("REPRO_FUSION", "1") == "0":
        _warn_legacy("REPRO_FUSION")
        return FASTPATH
    return DEFAULT_ENGINE


def reset_legacy_warnings() -> None:
    """Re-arm the once-per-process legacy deprecation warnings (tests)."""
    _LEGACY_WARNED.clear()


# -- per-cell capability -------------------------------------------------------


def cell_engine_tier(config) -> int:
    """The tier index where this cell's execution actually lands.

    Used by the dispatch layer (:func:`repro.sim.parallel._stream_affinity`)
    to keep cells of equal engine capability adjacent, so a pool group
    stays on one code path and its kernel/stream caches serve every
    member.  Indexes into :data:`ENGINE_ORDER`.  Vector-lane cells
    report ``native`` (the numpy scan outranks the C kernel on its own
    envelope); replayable cells outside that envelope report
    ``cnative`` when a compiler is available and ``fused`` otherwise.
    """
    from repro.cpu.ckernel import kernels_available
    from repro.cpu.replay import replay_supported
    from repro.cpu.replay_native import native_supported

    if native_supported(config):
        return ENGINE_ORDER.index("native")
    if replay_supported(config) and kernels_available():
        return ENGINE_ORDER.index("cnative")
    if config.policy.blocking or replay_supported(config):
        return ENGINE_ORDER.index("fused")
    return ENGINE_ORDER.index("fastpath")


#: Cached counter objects: ``count_selection`` runs once per
#: telemetry-enabled ``simulate`` call, inside the overhead budget that
#: ``tools/perfbench.py --assert-overhead`` enforces.
_SELECTION_METRICS = telemetry.MetricHandles(lambda m: {
    name: m.counter(f"engine.selected.{name}") for name in ENGINE_ORDER
})

_FALLBACK_METRICS = telemetry.MetricHandles(lambda m: {
    "total": m.counter("engine.native.fallbacks"),
    "associative": m.counter("engine.native.fallback.associative"),
    "policy": m.counter("engine.native.fallback.policy"),
    "streaming": m.counter("engine.native.fallback.streaming"),
})

_CNATIVE_FALLBACK_METRICS = telemetry.MetricHandles(lambda m: {
    "total": m.counter("engine.cnative.fallbacks"),
    "policy": m.counter("engine.cnative.fallback.policy"),
    "nocc": m.counter("engine.cnative.fallback.nocc"),
    "build": m.counter("engine.cnative.fallback.build"),
})


def count_selection(engine: Engine) -> None:
    """Record one cell's resolved engine (``engine.selected.*``)."""
    if telemetry.enabled():
        _SELECTION_METRICS.get()[engine.name].inc()


def count_native_fallback(cause: str) -> None:
    """Record one native-lane fallback with its cause tag.

    ``engine.native.fallbacks`` is the total;
    ``engine.native.fallback.<cause>`` splits it by reason
    (``associative`` for set-associative geometries, ``policy`` for
    machines the replay tier itself cannot model, ``streaming`` for
    miss-dense cells the stream-shape heuristic steers off the
    vector scan).
    """
    if telemetry.enabled():
        counters = _FALLBACK_METRICS.get()
        counters["total"].inc()
        counters[cause].inc()


def count_cnative_fallback(cause: str) -> None:
    """Record one C-tier fallback with its cause tag.

    ``engine.cnative.fallbacks`` is the total;
    ``engine.cnative.fallback.<cause>`` splits it by reason
    (``policy`` for machines outside the replay contract, ``nocc``
    when no C compiler is available, ``build`` when compilation or
    loading failed).
    """
    if telemetry.enabled():
        counters = _CNATIVE_FALLBACK_METRICS.get()
        counters["total"].inc()
        counters[cause].inc()
