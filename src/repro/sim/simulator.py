"""Top-level simulation driver: compile, expand, execute, account.

``simulate(workload, config, load_latency)`` is the package's central
entry point.  It runs the compiler pipeline (cached per workload and
latency, since the paper sweeps many hardware configurations over each
schedule), expands the address streams, executes the trace on the
selected processor model, and returns a
:class:`repro.sim.stats.SimulationResult`.

Caching: compiled bodies and expanded traces are memoized in bounded
LRU caches keyed on the *content* of the kernel (workload name plus
:meth:`repro.compiler.ir.Kernel.fingerprint`), never on ``id()`` --
object ids are reused after garbage collection and would silently
alias entries during long sweeps.  The bounds keep week-long sweeps
from growing memory without limit; sizes were chosen so a full
paper-scale sweep (18 benchmarks x 6 latencies) still fits.

Engine selection: the optimized two-tier engine (hit fast path +
flattened interpreter, see ``docs/performance.md``) is the default.
``fast_path=False`` -- or setting the environment variable
``REPRO_FASTPATH=0`` -- routes execution through the reference loops
in :mod:`repro.cpu.reference` instead; results are bit-identical.
"""

from __future__ import annotations

import os
from typing import Optional, Tuple

from repro import telemetry
from repro.compiler.pipeline import CompiledBody, compile_kernel
from repro.errors import ConfigurationError
from repro.cpu.dual_issue import run_dual_issue
from repro.cpu.pipeline import PerfectCacheHandler, run_single_issue
from repro.cpu.reference import (
    run_dual_issue_reference,
    run_single_issue_reference,
)
from repro.sim.config import MachineConfig, baseline_config
from repro.sim.lru import LRUCache
from repro.sim.stats import SimulationResult
from repro.sim.trace import ExpandedTrace, expand
from repro.workloads.workload import Workload

#: Version tag for the engine's *observable* semantics.  The on-disk
#: result store (:mod:`repro.sim.resultstore`) folds this into every
#: cell fingerprint, so bump it whenever a change alters any simulated
#: number (timing model, accounting, trace expansion) and every stale
#: cached result silently becomes a miss.  Pure speedups that keep
#: results bit-identical must NOT bump it.
ENGINE_VERSION = "engine-2"


#: Backwards-compatible name; the implementation moved to
#: :mod:`repro.sim.lru` so the event-stream caches can share it.
_LRUCache = LRUCache

#: Compiled bodies are small; traces hold the full address buffers, so
#: their cache is kept tighter.
_COMPILE_CACHE = _LRUCache(512)
_TRACE_CACHE = _LRUCache(64)


def clear_caches() -> None:
    """Drop cached schedules, traces, and event streams (tests use this)."""
    from repro.sim.stream import clear_stream_caches

    _COMPILE_CACHE.clear()
    _TRACE_CACHE.clear()
    clear_stream_caches()


def _update_cache_gauges() -> None:
    """Publish every in-memory LRU cache's size as a telemetry gauge."""
    from repro.sim.stream import cache_sizes

    streams, summaries = cache_sizes()
    m = telemetry.metrics()
    m.gauge("engine.cache.compiled").set(len(_COMPILE_CACHE))
    m.gauge("engine.cache.traces").set(len(_TRACE_CACHE))
    m.gauge("engine.cache.streams").set(streams)
    m.gauge("engine.cache.summaries").set(summaries)


def _kernel_identity(workload: Workload) -> Tuple:
    """Stable cache-key component for a workload's kernel."""
    return (workload.name, workload.kernel.fingerprint())


def fast_path_default() -> bool:
    """The engine selection when ``simulate`` is not told explicitly.

    ``REPRO_FASTPATH=0`` in the environment selects the reference
    engine; anything else (including unset) selects the optimized one.
    """
    return os.environ.get("REPRO_FASTPATH", "1") != "0"


def fusion_default() -> bool:
    """Whether policy-sibling fusion applies when not told explicitly.

    ``REPRO_FUSION=0`` opts out, routing every cell through full trace
    execution; anything else (including unset) lets eligible cells run
    as stream replays (:mod:`repro.sim.stream`, :mod:`repro.cpu.replay`).
    Results are bit-identical either way.
    """
    return os.environ.get("REPRO_FUSION", "1") != "0"


def compile_workload(
    workload: Workload, load_latency: int, unroll_override: int = 0
) -> CompiledBody:
    """Compile (with caching) a workload's kernel for ``load_latency``."""
    key = (_kernel_identity(workload), load_latency, workload.max_unroll,
           unroll_override, workload.software_pipeline)
    body = _COMPILE_CACHE.get(key)
    if body is None:
        if telemetry.enabled():
            telemetry.counter("sim.compile_cache.misses").inc()
        body = compile_kernel(
            workload.kernel,
            load_latency,
            max_unroll=workload.max_unroll,
            unroll_override=unroll_override,
            software_pipeline=workload.software_pipeline,
        )
        _COMPILE_CACHE.put(key, body)
    elif telemetry.enabled():
        telemetry.counter("sim.compile_cache.hits").inc()
    return body


def _trace_key(
    workload: Workload,
    load_latency: int,
    scale: float,
    unroll_override: int = 0,
) -> Tuple:
    """The trace cache key: everything expansion depends on."""
    return (
        _kernel_identity(workload),
        load_latency,
        workload.max_unroll,
        unroll_override,
        workload.software_pipeline,
        workload.iterations,
        workload.seed,
        scale,
    )


def trace_cached(
    workload: Workload,
    load_latency: int,
    scale: float = 1.0,
    unroll_override: int = 0,
) -> bool:
    """Whether this process already holds the workload's expanded trace.

    Pool workers consult this before attaching a shared-memory trace
    segment (:mod:`repro.sim.traceplane`): a persistent worker's warm
    cache makes the attach redundant.
    """
    key = _trace_key(workload, load_latency, scale, unroll_override)
    return _TRACE_CACHE.get(key) is not None


def install_trace(
    workload: Workload,
    load_latency: int,
    trace: ExpandedTrace,
    scale: float = 1.0,
    unroll_override: int = 0,
) -> None:
    """Seed the trace cache with an externally built expansion.

    The trace plane uses this to hand workers zero-copy traces built
    over shared memory; the subsequent ``simulate`` call then hits the
    cache exactly as if the worker had expanded locally.  The caller
    guarantees the trace is bit-identical to what :func:`expand` would
    produce for the same key -- the parallel-equivalence tests enforce
    it end to end.
    """
    key = _trace_key(workload, load_latency, scale, unroll_override)
    _TRACE_CACHE.put(key, trace)


def expand_workload(
    workload: Workload,
    load_latency: int,
    scale: float = 1.0,
    unroll_override: int = 0,
) -> Tuple[CompiledBody, ExpandedTrace]:
    """Compile and expand (with caching) a workload."""
    compiled = compile_workload(workload, load_latency, unroll_override)
    key = _trace_key(workload, load_latency, scale, unroll_override)
    trace = _TRACE_CACHE.get(key)
    if trace is None:
        if telemetry.enabled():
            telemetry.counter("sim.trace_cache.misses").inc()
        trace = expand(workload, compiled, scale=scale)
        _TRACE_CACHE.put(key, trace)
    elif telemetry.enabled():
        telemetry.counter("sim.trace_cache.hits").inc()
    return compiled, trace


def simulate(
    workload: Workload,
    config: Optional[MachineConfig] = None,
    load_latency: int = 10,
    scale: float = 1.0,
    unroll_override: int = 0,
    warmup: float = 0.0,
    fast_path: Optional[bool] = None,
    fusion: Optional[bool] = None,
) -> SimulationResult:
    """Run ``workload`` on ``config`` with the given scheduled latency.

    ``scale`` shrinks or grows the run length (1.0 = the workload's
    default iteration count); the compiler sweep parameters follow the
    paper's Section 3.3 definitions.  ``warmup`` (a fraction of the
    run, 0..1) discards the cold-start prefix from every reported
    statistic -- single-issue only.  ``fast_path`` selects the engine:
    True for the optimized two-tier engine, False for the reference
    loops, None (default) for :func:`fast_path_default`.  ``fusion``
    (default :func:`fusion_default`) lets eligible cells execute as a
    policy replay over the group's cached memory-event stream instead
    of a full trace execution -- same results, shared stream pass.

    When telemetry is enabled each call contributes one ``simulate``
    span plus the per-cell counters catalogued in
    ``docs/observability.md``; the result itself is bit-identical
    either way (the instrumentation only reads the outcome).
    """
    if config is None:
        config = baseline_config()
    if fast_path is None:
        fast_path = fast_path_default()
    if fusion is None:
        fusion = fusion_default()
    if not telemetry.enabled():
        return _simulate_impl(workload, config, load_latency, scale,
                              unroll_override, warmup, fast_path, fusion)
    policy_name = "perfect" if config.perfect_cache else config.policy.name
    with telemetry.span(
        "simulate", workload=workload.name, policy=policy_name,
        load_latency=load_latency, scale=scale,
    ):
        result = _simulate_impl(workload, config, load_latency, scale,
                                unroll_override, warmup, fast_path, fusion)
    miss = result.miss
    m = telemetry.metrics()
    m.counter("sim.cells").inc()
    m.counter("sim.instructions").inc(result.instructions)
    m.counter("sim.cycles").inc(result.cycles)
    m.counter("sim.stall.truedep_cycles").inc(result.truedep_stall_cycles)
    m.counter("sim.stall.structural_cycles").inc(miss.structural_stall_cycles)
    m.counter("sim.stall.blocking_cycles").inc(miss.blocking_stall_cycles)
    m.counter("sim.stall.write_allocate_cycles").inc(
        miss.write_allocate_stall_cycles)
    m.counter("sim.stall.write_buffer_cycles").inc(
        miss.write_buffer_stall_cycles)
    _update_cache_gauges()
    return result


def _try_fused(
    workload: Workload,
    config: MachineConfig,
    load_latency: int,
    scale: float,
    unroll_override: int,
    trace: ExpandedTrace,
):
    """Attempt the fused (stream-replay) execution of one cell.

    Returns ``(stats, cycles, instructions, truedep)`` or ``None``
    when the cell must fall back to full execution (no memory ops in
    the body, a finite write buffer, or a stream the builders decline).
    Blocking policies with the ideal write buffer collapse further, to
    the functional summary's closed form; non-blocking policies run the
    compiled replay kernel.
    """
    from repro.cpu.replay import run_blocking_summary, run_replay
    from repro.sim import stream as stream_mod

    if config.policy.blocking:
        if config.write_buffer_depth is not None:
            return None
        summary = stream_mod.functional_summary(
            workload, load_latency, scale, config.geometry,
            config.policy.write_allocate_blocking, unroll_override,
        )
        if summary is None:
            return None
        handler = config.make_handler()
        out = run_blocking_summary(summary, handler)
        if out is None:  # pragma: no cover - guards re-checked above
            return None
        cycles, instructions, truedep = out
        stats = handler.stats
        if telemetry.enabled():
            telemetry.counter("fusion.closed_form").inc()
    else:
        stream = stream_mod.event_stream(
            workload, load_latency, scale, config.geometry.line_size,
            unroll_override,
        )
        if stream is None:
            return None
        out = run_replay(stream, trace, config)
        if out is None:
            return None
        stats, cycles, instructions, truedep = out
        if telemetry.enabled():
            telemetry.counter("fusion.replays").inc()
    return stats, cycles, instructions, truedep


def _simulate_impl(
    workload: Workload,
    config: MachineConfig,
    load_latency: int,
    scale: float,
    unroll_override: int,
    warmup: float,
    fast_path: bool,
    fusion: bool = False,
) -> SimulationResult:
    compiled, trace = expand_workload(
        workload, load_latency, scale=scale, unroll_override=unroll_override
    )

    if not 0.0 <= warmup < 1.0:
        raise ConfigurationError(f"warmup must lie in [0, 1): {warmup}")

    if fusion:
        # Fusion covers exactly the cells whose execution the replay
        # kernel models: single-issue, real cache, whole-run stats,
        # optimized engine.  Everything else takes the usual path.
        fused = None
        if (fast_path and config.issue_width == 1
                and not config.perfect_cache and warmup == 0.0):
            fused = _try_fused(workload, config, load_latency, scale,
                               unroll_override, trace)
        if fused is not None:
            stats, cycles, instructions, truedep = fused
            result = SimulationResult(
                workload=workload.name,
                policy=config.policy.name,
                load_latency=load_latency,
                instructions=instructions,
                cycles=cycles,
                truedep_stall_cycles=truedep,
                miss=stats,
                issue_width=config.issue_width,
                unroll_factor=compiled.unroll_factor,
                spill_count=compiled.spill_count,
            )
            result.verify_accounting()
            return result
        if telemetry.enabled():
            telemetry.counter("fusion.bypasses").inc()

    if config.perfect_cache:
        handler = PerfectCacheHandler()
    else:
        handler = config.make_handler()

    if config.issue_width == 1:
        warmup_executions = int(trace.executions * warmup)
        if fast_path:
            cycles, instructions, truedep = run_single_issue(
                trace, handler, warmup_executions=warmup_executions
            )
        else:
            cycles, instructions, truedep = run_single_issue_reference(
                trace, handler, warmup_executions=warmup_executions
            )
    else:
        if warmup:
            raise ConfigurationError(
                "warmup discard is implemented for the single-issue model"
            )
        if fast_path:
            cycles, instructions, truedep = run_dual_issue(trace, handler)
        else:
            cycles, instructions, truedep = run_dual_issue_reference(
                trace, handler
            )

    policy_name = "perfect" if config.perfect_cache else config.policy.name
    result = SimulationResult(
        workload=workload.name,
        policy=policy_name,
        load_latency=load_latency,
        instructions=instructions,
        cycles=cycles,
        truedep_stall_cycles=truedep,
        miss=handler.stats,
        issue_width=config.issue_width,
        unroll_factor=compiled.unroll_factor,
        spill_count=compiled.spill_count,
    )
    if config.issue_width == 1 and not config.perfect_cache:
        result.verify_accounting()
    return result
