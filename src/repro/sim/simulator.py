"""Top-level simulation driver: compile, expand, execute, account.

``simulate(workload, config, load_latency)`` is the package's central
entry point.  It runs the compiler pipeline (cached per workload and
latency, since the paper sweeps many hardware configurations over each
schedule), expands the address streams, executes the trace on the
selected processor model, and returns a
:class:`repro.sim.stats.SimulationResult`.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.compiler.pipeline import CompiledBody, compile_kernel
from repro.errors import ConfigurationError
from repro.cpu.dual_issue import run_dual_issue
from repro.cpu.pipeline import PerfectCacheHandler, run_single_issue
from repro.sim.config import MachineConfig, baseline_config
from repro.sim.stats import SimulationResult
from repro.sim.trace import ExpandedTrace, expand
from repro.workloads.workload import Workload

# Compiled bodies keyed by (kernel identity, latency, max_unroll, override).
_COMPILE_CACHE: Dict[Tuple, CompiledBody] = {}
# Expanded traces keyed by (kernel identity, latency, ..., iterations).
_TRACE_CACHE: Dict[Tuple, ExpandedTrace] = {}


def clear_caches() -> None:
    """Drop cached schedules and traces (tests use this)."""
    _COMPILE_CACHE.clear()
    _TRACE_CACHE.clear()


def compile_workload(
    workload: Workload, load_latency: int, unroll_override: int = 0
) -> CompiledBody:
    """Compile (with caching) a workload's kernel for ``load_latency``."""
    key = (id(workload.kernel), load_latency, workload.max_unroll,
           unroll_override, workload.software_pipeline)
    body = _COMPILE_CACHE.get(key)
    if body is None:
        body = compile_kernel(
            workload.kernel,
            load_latency,
            max_unroll=workload.max_unroll,
            unroll_override=unroll_override,
            software_pipeline=workload.software_pipeline,
        )
        _COMPILE_CACHE[key] = body
    return body


def expand_workload(
    workload: Workload,
    load_latency: int,
    scale: float = 1.0,
    unroll_override: int = 0,
) -> Tuple[CompiledBody, ExpandedTrace]:
    """Compile and expand (with caching) a workload."""
    compiled = compile_workload(workload, load_latency, unroll_override)
    key = (
        id(workload.kernel),
        load_latency,
        workload.max_unroll,
        unroll_override,
        workload.software_pipeline,
        workload.iterations,
        workload.seed,
        scale,
    )
    trace = _TRACE_CACHE.get(key)
    if trace is None:
        trace = expand(workload, compiled, scale=scale)
        _TRACE_CACHE[key] = trace
    return compiled, trace


def simulate(
    workload: Workload,
    config: MachineConfig = None,  # type: ignore[assignment]
    load_latency: int = 10,
    scale: float = 1.0,
    unroll_override: int = 0,
    warmup: float = 0.0,
) -> SimulationResult:
    """Run ``workload`` on ``config`` with the given scheduled latency.

    ``scale`` shrinks or grows the run length (1.0 = the workload's
    default iteration count); the compiler sweep parameters follow the
    paper's Section 3.3 definitions.  ``warmup`` (a fraction of the
    run, 0..1) discards the cold-start prefix from every reported
    statistic -- single-issue only.
    """
    if config is None:
        config = baseline_config()
    compiled, trace = expand_workload(
        workload, load_latency, scale=scale, unroll_override=unroll_override
    )

    if config.perfect_cache:
        handler = PerfectCacheHandler()
    else:
        handler = config.make_handler()

    if not 0.0 <= warmup < 1.0:
        raise ConfigurationError(f"warmup must lie in [0, 1): {warmup}")
    if config.issue_width == 1:
        warmup_executions = int(trace.executions * warmup)
        cycles, instructions, truedep = run_single_issue(
            trace, handler, warmup_executions=warmup_executions
        )
    else:
        if warmup:
            raise ConfigurationError(
                "warmup discard is implemented for the single-issue model"
            )
        cycles, instructions, truedep = run_dual_issue(trace, handler)

    policy_name = "perfect" if config.perfect_cache else config.policy.name
    result = SimulationResult(
        workload=workload.name,
        policy=policy_name,
        load_latency=load_latency,
        instructions=instructions,
        cycles=cycles,
        truedep_stall_cycles=truedep,
        miss=handler.stats,
        issue_width=config.issue_width,
        unroll_factor=compiled.unroll_factor,
        spill_count=compiled.spill_count,
    )
    if config.issue_width == 1 and not config.perfect_cache:
        result.verify_accounting()
    return result
