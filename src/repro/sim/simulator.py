"""Top-level simulation driver: compile, expand, execute, account.

``simulate(workload, config, load_latency)`` is the package's central
entry point.  It runs the compiler pipeline (cached per workload and
latency, since the paper sweeps many hardware configurations over each
schedule), expands the address streams, executes the trace on the
selected processor model, and returns a
:class:`repro.sim.stats.SimulationResult`.

Caching: compiled bodies and expanded traces are memoized in bounded
LRU caches keyed on the *content* of the kernel (workload name plus
:meth:`repro.compiler.ir.Kernel.fingerprint`), never on ``id()`` --
object ids are reused after garbage collection and would silently
alias entries during long sweeps.  The bounds keep week-long sweeps
from growing memory without limit; sizes were chosen so a full
paper-scale sweep (18 benchmarks x 6 latencies) still fits.

Engine selection goes through the registry in
:mod:`repro.sim.engines`: five tiers (reference / fastpath / fused /
native / cnative), selectable per call (``engine=``), per process
(``REPRO_ENGINE``), or implicitly (``auto`` = fastest applicable per
cell).  All tiers produce bit-identical results; the legacy
``REPRO_FASTPATH`` / ``REPRO_FUSION`` variables still work through the
same resolution path, with a deprecation warning.
"""

from __future__ import annotations

from types import SimpleNamespace
from typing import Optional, Tuple

from repro import telemetry
from repro.compiler.pipeline import CompiledBody, compile_kernel
from repro.errors import ConfigurationError
from repro.cpu.dual_issue import run_dual_issue
from repro.cpu.pipeline import PerfectCacheHandler, run_single_issue
from repro.cpu.reference import (
    run_dual_issue_reference,
    run_single_issue_reference,
)
from repro.sim import engines as engines_mod
from repro.sim.config import MachineConfig, baseline_config
from repro.sim.lru import LRUCache
from repro.sim.stats import SimulationResult
from repro.sim.trace import ExpandedTrace, expand
from repro.workloads.workload import Workload

#: Version tag for the engine's *observable* semantics.  The on-disk
#: result store (:mod:`repro.sim.resultstore`) folds this into every
#: cell fingerprint, so bump it whenever a change alters any simulated
#: number (timing model, accounting, trace expansion) and every stale
#: cached result silently becomes a miss.  Pure speedups that keep
#: results bit-identical must NOT bump it.
ENGINE_VERSION = "engine-2"


#: Backwards-compatible name; the implementation moved to
#: :mod:`repro.sim.lru` so the event-stream caches can share it.
_LRUCache = LRUCache

#: Compiled bodies are small; traces hold the full address buffers, so
#: their cache is kept tighter.
_COMPILE_CACHE = _LRUCache(512)
_TRACE_CACHE = _LRUCache(64)


def clear_caches() -> None:
    """Drop cached schedules, traces, and event streams (tests use this)."""
    from repro.sim.bounds import clear_bounds_caches
    from repro.sim.stream import clear_stream_caches

    _COMPILE_CACHE.clear()
    _TRACE_CACHE.clear()
    clear_stream_caches()
    clear_bounds_caches()


#: Cached metric objects for the per-cell emission sites below; a cell
#: emits over a dozen metrics, and the per-name registry lookups they
#: would otherwise pay are most of the telemetry overhead budget that
#: ``tools/perfbench.py --assert-overhead`` enforces.
_METRICS = telemetry.MetricHandles(lambda m: SimpleNamespace(
    compile_hits=m.counter("sim.compile_cache.hits"),
    compile_misses=m.counter("sim.compile_cache.misses"),
    trace_hits=m.counter("sim.trace_cache.hits"),
    trace_misses=m.counter("sim.trace_cache.misses"),
    cells=m.counter("sim.cells"),
    instructions=m.counter("sim.instructions"),
    cycles=m.counter("sim.cycles"),
    truedep=m.counter("sim.stall.truedep_cycles"),
    structural=m.counter("sim.stall.structural_cycles"),
    blocking=m.counter("sim.stall.blocking_cycles"),
    write_allocate=m.counter("sim.stall.write_allocate_cycles"),
    write_buffer=m.counter("sim.stall.write_buffer_cycles"),
    closed_form=m.counter("fusion.closed_form"),
    replays=m.counter("fusion.replays"),
    native_replays=m.counter("engine.native.replays"),
    cnative_replays=m.counter("engine.cnative.replays"),
    bypasses=m.counter("fusion.bypasses"),
    cache_compiled=m.gauge("engine.cache.compiled"),
    cache_traces=m.gauge("engine.cache.traces"),
    cache_streams=m.gauge("engine.cache.streams"),
    cache_summaries=m.gauge("engine.cache.summaries"),
    gauge_sizes=[None],
))


def _update_cache_gauges() -> None:
    """Publish every in-memory LRU cache's size as a telemetry gauge.

    Skips the gauge writes when nothing changed since the previous
    cell -- the steady state of a warm sweep -- because this runs once
    per cell inside the telemetry overhead budget.  The last-published
    sizes live inside the handle bundle, so a registry reset (which
    rebuilds the bundle) republishes on the next cell.
    """
    from repro.sim.stream import cache_sizes

    streams, summaries = cache_sizes()
    sizes = (len(_COMPILE_CACHE), len(_TRACE_CACHE), streams, summaries)
    m = _METRICS.get()
    if m.gauge_sizes[0] == sizes:
        return
    m.gauge_sizes[0] = sizes
    m.cache_compiled.set(sizes[0])
    m.cache_traces.set(sizes[1])
    m.cache_streams.set(sizes[2])
    m.cache_summaries.set(sizes[3])


def _kernel_identity(workload: Workload) -> Tuple:
    """Stable cache-key component for a workload's kernel."""
    return (workload.name, workload.kernel.fingerprint())


def fast_path_default() -> bool:
    """Whether the resolved engine uses the optimized interpreter.

    Resolution goes through :func:`repro.sim.engines.resolve_engine`
    (``REPRO_ENGINE``, with the legacy ``REPRO_FASTPATH=0`` still
    selecting the reference tier under a deprecation warning).
    """
    return engines_mod.resolve_engine().fast_path


def fusion_default() -> bool:
    """Whether the resolved engine lets eligible cells run fused.

    Resolution goes through :func:`repro.sim.engines.resolve_engine`
    (``REPRO_ENGINE``, with the legacy ``REPRO_FUSION=0`` still
    selecting the fastpath tier under a deprecation warning).
    Results are bit-identical either way.
    """
    return engines_mod.resolve_engine().fusion


def compile_workload(
    workload: Workload, load_latency: int, unroll_override: int = 0
) -> CompiledBody:
    """Compile (with caching) a workload's kernel for ``load_latency``."""
    key = (_kernel_identity(workload), load_latency, workload.max_unroll,
           unroll_override, workload.software_pipeline)
    body = _COMPILE_CACHE.get(key)
    if body is None:
        if telemetry.enabled():
            _METRICS.get().compile_misses.inc()
        body = compile_kernel(
            workload.kernel,
            load_latency,
            max_unroll=workload.max_unroll,
            unroll_override=unroll_override,
            software_pipeline=workload.software_pipeline,
        )
        _COMPILE_CACHE.put(key, body)
    elif telemetry.enabled():
        _METRICS.get().compile_hits.inc()
    return body


def _trace_key(
    workload: Workload,
    load_latency: int,
    scale: float,
    unroll_override: int = 0,
) -> Tuple:
    """The trace cache key: everything expansion depends on."""
    return (
        _kernel_identity(workload),
        load_latency,
        workload.max_unroll,
        unroll_override,
        workload.software_pipeline,
        workload.iterations,
        workload.seed,
        scale,
    )


def trace_cached(
    workload: Workload,
    load_latency: int,
    scale: float = 1.0,
    unroll_override: int = 0,
) -> bool:
    """Whether this process already holds the workload's expanded trace.

    Pool workers consult this before attaching a shared-memory trace
    segment (:mod:`repro.sim.traceplane`): a persistent worker's warm
    cache makes the attach redundant.
    """
    key = _trace_key(workload, load_latency, scale, unroll_override)
    return _TRACE_CACHE.get(key) is not None


def install_trace(
    workload: Workload,
    load_latency: int,
    trace: ExpandedTrace,
    scale: float = 1.0,
    unroll_override: int = 0,
) -> None:
    """Seed the trace cache with an externally built expansion.

    The trace plane uses this to hand workers zero-copy traces built
    over shared memory; the subsequent ``simulate`` call then hits the
    cache exactly as if the worker had expanded locally.  The caller
    guarantees the trace is bit-identical to what :func:`expand` would
    produce for the same key -- the parallel-equivalence tests enforce
    it end to end.
    """
    key = _trace_key(workload, load_latency, scale, unroll_override)
    _TRACE_CACHE.put(key, trace)


def expand_workload(
    workload: Workload,
    load_latency: int,
    scale: float = 1.0,
    unroll_override: int = 0,
) -> Tuple[CompiledBody, ExpandedTrace]:
    """Compile and expand (with caching) a workload."""
    compiled = compile_workload(workload, load_latency, unroll_override)
    key = _trace_key(workload, load_latency, scale, unroll_override)
    trace = _TRACE_CACHE.get(key)
    if trace is None:
        if telemetry.enabled():
            _METRICS.get().trace_misses.inc()
        trace = expand(workload, compiled, scale=scale)
        _TRACE_CACHE.put(key, trace)
    elif telemetry.enabled():
        _METRICS.get().trace_hits.inc()
    return compiled, trace


def simulate(
    workload: Workload,
    config: Optional[MachineConfig] = None,
    load_latency: int = 10,
    scale: float = 1.0,
    unroll_override: int = 0,
    warmup: float = 0.0,
    fast_path: Optional[bool] = None,
    fusion: Optional[bool] = None,
    engine: Optional[str] = None,
) -> SimulationResult:
    """Run ``workload`` on ``config`` with the given scheduled latency.

    ``scale`` shrinks or grows the run length (1.0 = the workload's
    default iteration count); the compiler sweep parameters follow the
    paper's Section 3.3 definitions.  ``warmup`` (a fraction of the
    run, 0..1) discards the cold-start prefix from every reported
    statistic -- single-issue only.

    ``engine`` names an execution tier from the registry
    (:mod:`repro.sim.engines`); ``None`` resolves through
    ``REPRO_ENGINE`` / the legacy variables / the ``auto`` default.
    Every tier is bit-identical; cells a tier cannot execute fall back
    to the next one transparently.  ``fast_path`` / ``fusion`` remain
    as per-axis overrides on top of the resolved engine (True/False
    force the axis, None inherits it).

    When telemetry is enabled each call contributes one ``simulate``
    span plus the per-cell counters catalogued in
    ``docs/observability.md``; the result itself is bit-identical
    either way (the instrumentation only reads the outcome).
    """
    if config is None:
        config = baseline_config()
    resolved = engines_mod.resolve_engine(engine)
    if fast_path is None:
        fast_path = resolved.fast_path
    if fusion is None:
        fusion = resolved.fusion
    native = resolved.native and fast_path and fusion
    cnative = resolved.cnative and fast_path and fusion
    if not telemetry.enabled():
        return _simulate_impl(workload, config, load_latency, scale,
                              unroll_override, warmup, fast_path, fusion,
                              native, cnative)
    engines_mod.count_selection(resolved)
    policy_name = "perfect" if config.perfect_cache else config.policy.name
    with telemetry.span(
        "simulate", workload=workload.name, policy=policy_name,
        load_latency=load_latency, scale=scale,
    ):
        result = _simulate_impl(workload, config, load_latency, scale,
                                unroll_override, warmup, fast_path, fusion,
                                native, cnative)
    miss = result.miss
    m = _METRICS.get()
    m.cells.inc()
    m.instructions.inc(result.instructions)
    m.cycles.inc(result.cycles)
    m.truedep.inc(result.truedep_stall_cycles)
    m.structural.inc(miss.structural_stall_cycles)
    m.blocking.inc(miss.blocking_stall_cycles)
    m.write_allocate.inc(miss.write_allocate_stall_cycles)
    m.write_buffer.inc(miss.write_buffer_stall_cycles)
    _update_cache_gauges()
    return result


def _try_fused(
    workload: Workload,
    config: MachineConfig,
    load_latency: int,
    scale: float,
    unroll_override: int,
    trace: ExpandedTrace,
    native: bool = False,
    cnative: bool = False,
):
    """Attempt the fused (stream-replay) execution of one cell.

    Returns ``(stats, cycles, instructions, truedep)`` or ``None``
    when the cell must fall back to full execution (no memory ops in
    the body, a finite write buffer, or a stream the builders decline).
    Blocking policies with the ideal write buffer collapse further, to
    the functional summary's closed form; non-blocking policies run a
    compiled replay kernel, picked lane by lane: the numpy-vectorized
    native lane when ``native`` is set, the cell is in its envelope
    (:func:`repro.cpu.replay_native.native_supported`), and the
    stream-shape heuristic does not flag it as streaming; the
    compiled-C kernel when ``cnative`` is set and a kernel can be
    built (:mod:`repro.cpu.replay_cnative`); the scalar kernel
    otherwise.
    """
    from repro.cpu.replay import run_blocking_summary, run_replay
    from repro.cpu.replay_cnative import run_cnative
    from repro.cpu.replay_native import (
        fallback_cause,
        native_supported,
        run_native,
        streaming_decline,
    )
    from repro.sim import stream as stream_mod

    if config.policy.blocking:
        if config.write_buffer_depth is not None:
            return None
        summary = stream_mod.functional_summary(
            workload, load_latency, scale, config.geometry,
            config.policy.write_allocate_blocking, unroll_override,
        )
        if summary is None:
            return None
        handler = config.make_handler()
        out = run_blocking_summary(summary, handler)
        if out is None:  # pragma: no cover - guards re-checked above
            return None
        cycles, instructions, truedep = out
        stats = handler.stats
        if telemetry.enabled():
            _METRICS.get().closed_form.inc()
    else:
        stream = stream_mod.event_stream(
            workload, load_latency, scale, config.geometry.line_size,
            unroll_override,
        )
        if stream is None:
            return None
        out = None
        native_hit = False
        cnative_hit = False
        if native:
            if not native_supported(config):
                engines_mod.count_native_fallback(fallback_cause(config))
            elif streaming_decline(stream, workload, load_latency, scale,
                                   config, unroll_override):
                engines_mod.count_native_fallback("streaming")
            else:
                out = run_native(stream, trace, config)
                native_hit = out is not None
        if out is None and cnative:
            out = run_cnative(stream, trace, config)
            cnative_hit = out is not None
        if out is None:
            out = run_replay(stream, trace, config)
        if out is None:
            return None
        stats, cycles, instructions, truedep = out
        if telemetry.enabled():
            # ``fusion.replays`` keeps counting every replayed cell
            # regardless of lane; ``engine.native.replays`` and
            # ``engine.cnative.replays`` are the vectorized and
            # compiled-C subsets.
            _METRICS.get().replays.inc()
            if native_hit:
                _METRICS.get().native_replays.inc()
            if cnative_hit:
                _METRICS.get().cnative_replays.inc()
    return stats, cycles, instructions, truedep


def _simulate_impl(
    workload: Workload,
    config: MachineConfig,
    load_latency: int,
    scale: float,
    unroll_override: int,
    warmup: float,
    fast_path: bool,
    fusion: bool = False,
    native: bool = False,
    cnative: bool = False,
) -> SimulationResult:
    compiled, trace = expand_workload(
        workload, load_latency, scale=scale, unroll_override=unroll_override
    )

    if not 0.0 <= warmup < 1.0:
        raise ConfigurationError(f"warmup must lie in [0, 1): {warmup}")

    if fusion:
        # Fusion covers exactly the cells whose execution the replay
        # kernel models: single-issue, real cache, whole-run stats,
        # optimized engine.  Everything else takes the usual path.
        fused = None
        if (fast_path and config.issue_width == 1
                and not config.perfect_cache and warmup == 0.0):
            fused = _try_fused(workload, config, load_latency, scale,
                               unroll_override, trace, native, cnative)
        if fused is not None:
            stats, cycles, instructions, truedep = fused
            result = SimulationResult(
                workload=workload.name,
                policy=config.policy.name,
                load_latency=load_latency,
                instructions=instructions,
                cycles=cycles,
                truedep_stall_cycles=truedep,
                miss=stats,
                issue_width=config.issue_width,
                unroll_factor=compiled.unroll_factor,
                spill_count=compiled.spill_count,
            )
            result.verify_accounting()
            return result
        if telemetry.enabled():
            _METRICS.get().bypasses.inc()

    if config.perfect_cache:
        handler = PerfectCacheHandler()
    else:
        handler = config.make_handler()

    if config.issue_width == 1:
        warmup_executions = int(trace.executions * warmup)
        if fast_path:
            cycles, instructions, truedep = run_single_issue(
                trace, handler, warmup_executions=warmup_executions
            )
        else:
            cycles, instructions, truedep = run_single_issue_reference(
                trace, handler, warmup_executions=warmup_executions
            )
    else:
        if warmup:
            raise ConfigurationError(
                "warmup discard is implemented for the single-issue model"
            )
        if fast_path:
            cycles, instructions, truedep = run_dual_issue(trace, handler)
        else:
            cycles, instructions, truedep = run_dual_issue_reference(
                trace, handler
            )

    policy_name = "perfect" if config.perfect_cache else config.policy.name
    result = SimulationResult(
        workload=workload.name,
        policy=policy_name,
        load_latency=load_latency,
        instructions=instructions,
        cycles=cycles,
        truedep_stall_cycles=truedep,
        miss=handler.stats,
        issue_width=config.issue_width,
        unroll_factor=compiled.unroll_factor,
        spill_count=compiled.spill_count,
    )
    if config.issue_width == 1 and not config.perfect_cache:
        result.verify_accounting()
    return result
