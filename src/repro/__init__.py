"""repro: a reproduction of Farkas & Jouppi (ISCA 1994),
"Complexity/Performance Tradeoffs with Non-Blocking Loads".

The package builds, from scratch, everything the paper's study needs:

* the lockup-free cache and every MSHR organization of Section 2
  (:mod:`repro.core`),
* the cache/memory substrate (:mod:`repro.cache`),
* the idealized single- and dual-issue processor models of
  Sections 3.1 and 6 (:mod:`repro.cpu`),
* a latency-parameterized loop compiler standing in for the Multiflow
  scheduler (:mod:`repro.compiler`),
* synthetic models of the 18 SPEC92 benchmarks
  (:mod:`repro.workloads`),
* the simulation driver and sweep harness (:mod:`repro.sim`), and
* one experiment per paper figure/table (:mod:`repro.experiments`).

Programmatic use goes through the stable facade :mod:`repro.api`
(see ``docs/api.md``)::

    from repro import api

    result = api.simulate("tomcatv", policy="mc=1", load_latency=10)
    print(result.mcpi)

The flat re-exports below (``from repro import simulate, ...``) remain
for compatibility, but new code should import from ``repro.api``.
"""

from repro import api
from repro import telemetry
from repro.cache import CacheGeometry, PipelinedMemory
from repro.core import (
    AccessOutcome,
    FieldLayout,
    MissHandler,
    MSHRPolicy,
    baseline_policies,
    blocking_cache,
    explicit,
    fc,
    fs,
    implicit,
    in_cache,
    inverted,
    mc,
    no_restrict,
    table13_policies,
    with_layout,
)
from repro.sim import (
    MachineConfig,
    SimulationResult,
    baseline_config,
    run_curves,
    run_penalty_sweep,
    run_table,
    simulate,
)
from repro.workloads import (
    Workload,
    all_benchmarks,
    benchmark_names,
    detailed_benchmarks,
    get_benchmark,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "api",
    "telemetry",
    "CacheGeometry",
    "PipelinedMemory",
    "AccessOutcome",
    "FieldLayout",
    "MissHandler",
    "MSHRPolicy",
    "baseline_policies",
    "table13_policies",
    "blocking_cache",
    "mc",
    "fc",
    "fs",
    "in_cache",
    "inverted",
    "no_restrict",
    "with_layout",
    "implicit",
    "explicit",
    "MachineConfig",
    "SimulationResult",
    "baseline_config",
    "simulate",
    "run_curves",
    "run_table",
    "run_penalty_sweep",
    "Workload",
    "all_benchmarks",
    "benchmark_names",
    "detailed_benchmarks",
    "get_benchmark",
]
