"""Figure 12: baseline miss CPI for tomcatv.

An order of magnitude larger MCPI than eqntott, the same curve
ordering as doduc, and -- unusually among the benchmarks -- monotone
decreasing MCPI that flattens for load latencies of 6 and beyond
(the compiler's unrolled schedules stop changing).
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.base import ExperimentOptions, ExperimentResult, register
from repro.experiments.curves import curve_experiment


@register(
    "fig12",
    "Baseline miss CPI for tomcatv",
    "Figure 12 (Section 4)",
)
def run(options: ExperimentOptions) -> ExperimentResult:
    scale = options.scale
    workers = options.workers
    return curve_experiment(
        "fig12",
        "Baseline miss CPI for tomcatv (8KB DM, 32B lines, penalty 16)",
        "tomcatv",
        scale=scale,
        workers=workers,
        notes=(
            "Paper: tomcatv's MCPI is an order of magnitude above eqntott's, "
            "decreases monotonically with the scheduled latency, and is "
            "nearly constant for latencies >= 6."
        ),
    )
