"""Figure 11: baseline miss CPI for eqntott.

True-data-dependency-dominated: the paper reports structural hazards
account for under 1% of eqntott's MCPI, so all the lockup-free curves
nearly coincide and hit-under-miss is sufficient.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.base import ExperimentOptions, ExperimentResult, register
from repro.experiments.curves import curve_experiment


@register(
    "fig11",
    "Baseline miss CPI for eqntott",
    "Figure 11 (Section 4)",
)
def run(options: ExperimentOptions) -> ExperimentResult:
    scale = options.scale
    workers = options.workers
    return curve_experiment(
        "fig11",
        "Baseline miss CPI for eqntott (8KB DM, 32B lines, penalty 16)",
        "eqntott",
        scale=scale,
        workers=workers,
        notes=(
            "Paper: structural-hazard stalls are <1% of eqntott's MCPI; the "
            "lockup-free implementations are nearly indistinguishable."
        ),
    )
