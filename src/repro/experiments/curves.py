"""Shared machinery for the MCPI-vs-load-latency curve figures.

Figures 5, 9, 11, 12, 15, 16, and 17 all have the same shape: one
benchmark, the seven baseline hardware organizations (plus ``fs=``
curves for Figure 15), MCPI on the y-axis and the scheduled load
latency on the x-axis.  This module renders that family.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.analysis.ascii_plot import render_sweep
from repro.core.policies import MSHRPolicy, baseline_policies
from repro.experiments.base import ExperimentResult
from repro.sim.config import MachineConfig, baseline_config
from repro.sim.sweep import PAPER_LATENCIES, run_curves
from repro.workloads.spec92 import get_benchmark


def curve_experiment(
    experiment_id: str,
    title: str,
    benchmark: str,
    scale: float = 1.0,
    base: Optional[MachineConfig] = None,
    policies: Optional[Sequence[MSHRPolicy]] = None,
    latencies: Sequence[int] = PAPER_LATENCIES,
    notes: str = "",
    workers: Optional[int] = 1,
) -> ExperimentResult:
    """Run one curve figure and package it as an experiment result."""
    workload = get_benchmark(benchmark)
    if base is None:
        base = baseline_config()
    if policies is None:
        policies = baseline_policies()
    sweep = run_curves(workload, policies, latencies=latencies,
                       base=base, scale=scale, workers=workers)

    headers = ["load latency"] + [p.name for p in policies]
    rows: List[List[object]] = []
    for i, lat in enumerate(sweep.latencies):
        row: List[object] = [lat]
        for policy in policies:
            row.append(sweep.results[policy.name][i].mcpi)
        rows.append(row)
    return ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        headers=headers,
        rows=rows,
        extra_text=render_sweep(sweep),
        notes=notes,
    )
