"""Figure 5: baseline miss CPI for doduc.

Seven hardware organizations (lockup +wma, lockup, mc=1, fc=1, mc=2,
fc=2, no-restrict) on the baseline 8KB/32B/16-cycle system, MCPI as a
function of the scheduled load latency.  The paper's headline reads:
hit-under-miss (mc=1) incurs 2.9x the unrestricted MCPI at latency 10,
mc=2 drops that to 1.7x, fc=2 to 1.3x, and fc=1 sits between mc=1 and
mc=2 -- doduc profits more from two primary misses than from unlimited
secondaries to one block.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.base import ExperimentOptions, ExperimentResult, register
from repro.experiments.curves import curve_experiment


@register(
    "fig5",
    "Baseline miss CPI for doduc",
    "Figure 5 (Section 4)",
)
def run(options: ExperimentOptions) -> ExperimentResult:
    scale = options.scale
    workers = options.workers
    return curve_experiment(
        "fig5",
        "Baseline miss CPI for doduc (8KB DM, 32B lines, penalty 16)",
        "doduc",
        scale=scale,
        workers=workers,
        notes=(
            "Paper at latency 10: mc=1 is 2.9x unrestricted, mc=2 1.7x, "
            "fc=2 1.3x, with fc=1 between mc=1 and mc=2."
        ),
    )
