"""Figure 13: baseline MCPI for all 18 SPEC92 benchmarks.

The paper's summary table: MCPI at scheduled load latency 10 on the
baseline system, for mc=0, mc=1, mc=2, fc=1, fc=2, and the
unrestricted organization, with each restricted organization's ratio
to unrestricted.  This is also the calibration target for the workload
models; the experiment reports our values, the ratios, and the paper's
numbers side by side.
"""

from __future__ import annotations

from typing import List, Optional

from repro.analysis.tables import format_ratio, format_table, ratio
from repro.core.policies import table13_policies
from repro.experiments.base import ExperimentOptions, ExperimentResult, register
from repro.sim.config import baseline_config
from repro.sim.sweep import run_table
from repro.workloads.spec92 import BENCHMARK_ORDER, PAPER_FIG13, all_benchmarks

#: Column order used by the paper's table.
TABLE_COLUMNS = ("mc=0", "mc=1", "mc=2", "fc=1", "fc=2", "no restrict")


@register(
    "fig13",
    "Baseline MCPI for 18 SPEC92 benchmarks",
    "Figure 13 (Section 4)",
)
def run(options: ExperimentOptions) -> ExperimentResult:
    scale = options.scale
    load_latency = options.resolved_latency(10)
    workers = options.workers
    policies = table13_policies()
    table = run_table(all_benchmarks(), policies, load_latency=load_latency,
                      base=baseline_config(), scale=scale, workers=workers)

    headers: List[str] = ["benchmark"]
    for name in TABLE_COLUMNS[:-1]:
        headers.extend([f"{name} mcpi", "x"])
    headers.append("inf mcpi")

    rows: List[List[object]] = []
    paper_rows: List[List[object]] = []
    for bench in BENCHMARK_ORDER:
        unrestricted = table.mcpi(bench, "no restrict")
        row: List[object] = [bench]
        for name in TABLE_COLUMNS[:-1]:
            value = table.mcpi(bench, name)
            row.extend([value, format_ratio(ratio(value, unrestricted))])
        row.append(unrestricted)
        rows.append(row)

        paper = PAPER_FIG13[bench]
        paper_ref = paper["no restrict"]
        prow: List[object] = [bench]
        for name in TABLE_COLUMNS[:-1]:
            prow.extend([paper[name], format_ratio(ratio(paper[name], paper_ref))])
        prow.append(paper_ref)
        paper_rows.append(prow)

    paper_table = format_table(
        headers, paper_rows, precision=3,
        title="Paper's Figure 13 (for comparison)",
    )
    return ExperimentResult(
        experiment_id="fig13",
        title=f"Baseline MCPI, 18 benchmarks (load latency {load_latency})",
        headers=headers,
        rows=rows,
        extra_text=paper_table,
        notes=(
            "Paper's headline: integer benchmarks get very good performance "
            "from simple implementations (mc=1 ratios near 1), while many "
            "numeric benchmarks need several in-flight primary and secondary "
            "misses (tomcatv/su2cor mc=0 ratios of 17x/14x)."
        ),
    )
