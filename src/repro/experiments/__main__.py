"""Command-line driver for the experiments.

Usage::

    python -m repro.experiments list
    python -m repro.experiments fig5 [--scale 1.0]
    python -m repro.experiments all [--scale 0.5] [--out results.txt]
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.errors import ReproError
from repro.experiments import all_experiments, get_experiment


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description=(
            "Regenerate the tables and figures of Farkas & Jouppi, "
            "'Complexity/Performance Tradeoffs with Non-Blocking Loads' "
            "(ISCA 1994)."
        ),
    )
    parser.add_argument(
        "experiment",
        help="experiment id (e.g. fig5, fig13, costs), 'all', or 'list'",
    )
    parser.add_argument(
        "--scale", type=float, default=1.0,
        help="run-length multiplier (default 1.0; smaller is faster)",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="process-pool size for the sweeps behind each figure "
             "(default 1: serial; only cells missing from the result "
             "store are simulated either way)",
    )
    parser.add_argument(
        "--out", type=str, default=None,
        help="also write the rendered output to this file",
    )
    parser.add_argument(
        "--csv", type=str, default=None,
        help="also write each experiment's rows as CSV into this directory",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.experiment == "list":
        for exp in all_experiments():
            print(f"{exp.experiment_id:8s} {exp.title}  [{exp.paper_reference}]")
        return 0

    if args.experiment == "all":
        experiments = all_experiments()
    else:
        try:
            experiments = [get_experiment(args.experiment)]
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    chunks: List[str] = []
    for exp in experiments:
        start = time.time()
        try:
            result = exp.run(scale=args.scale,
                             workers=args.workers if args.workers else 1)
        except ReproError as exc:
            print(f"error running {exp.experiment_id}: {exc}", file=sys.stderr)
            return 1
        elapsed = time.time() - start
        text = result.render()
        chunks.append(text)
        print(text)
        print(f"\n({exp.experiment_id} regenerated in {elapsed:.1f}s "
              f"at scale {args.scale})\n")
        if args.csv:
            import os

            os.makedirs(args.csv, exist_ok=True)
            written = result.to_csv(args.csv)
            print(f"wrote {written}")

    if args.out:
        with open(args.out, "w") as fh:
            fh.write("\n\n".join(chunks) + "\n")
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
