"""Command-line driver for the experiments.

Usage::

    python -m repro.experiments list
    python -m repro.experiments fig5 [--scale 1.0]
    python -m repro.experiments all [--scale 0.5] [--out results.txt]
    python -m repro.experiments all --progress   # stderr progress line

Options flow through :class:`repro.experiments.base.ExperimentOptions`
-- unknown names fail loudly instead of silently running defaults.
Telemetry (cells simulated, store hits, per-phase wall time) is
flushed on exit; inspect it with ``python -m repro telemetry summary``.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro import telemetry
from repro.errors import ReproError
from repro.experiments import all_experiments, get_experiment
from repro.experiments.base import ExperimentOptions


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description=(
            "Regenerate the tables and figures of Farkas & Jouppi, "
            "'Complexity/Performance Tradeoffs with Non-Blocking Loads' "
            "(ISCA 1994)."
        ),
    )
    parser.add_argument(
        "experiment",
        help="experiment id (e.g. fig5, fig13, costs), 'all', or 'list'",
    )
    parser.add_argument(
        "--scale", type=float, default=1.0,
        help="run-length multiplier (default 1.0; smaller is faster)",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="process-pool size for the sweeps behind each figure "
             "(default 1: serial; only cells missing from the result "
             "store are simulated either way)",
    )
    parser.add_argument(
        "--benchmark", type=str, default=None,
        help="benchmark override for single-benchmark figures",
    )
    parser.add_argument(
        "--progress", action="store_true",
        help="print a per-experiment progress line to stderr",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="bypass the on-disk result store for this run",
    )
    parser.add_argument(
        "--out", type=str, default=None,
        help="also write the rendered output to this file",
    )
    parser.add_argument(
        "--csv", type=str, default=None,
        help="also write each experiment's rows as CSV into this directory",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.experiment == "list":
        for exp in all_experiments():
            print(f"{exp.experiment_id:8s} {exp.title}  [{exp.paper_reference}]")
        return 0

    if args.experiment == "all":
        experiments = all_experiments()
    else:
        try:
            experiments = [get_experiment(args.experiment)]
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    total = len(experiments)
    completed = 0

    def progress(experiment_id: str, event: str, elapsed: float) -> None:
        if event == "start":
            print(f"[{completed + 1}/{total}] {experiment_id} ...",
                  file=sys.stderr, flush=True)
        elif event == "done":
            print(f"[{completed + 1}/{total}] {experiment_id} "
                  f"done in {elapsed:.1f}s", file=sys.stderr, flush=True)
        else:
            print(f"[{completed + 1}/{total}] {experiment_id} "
                  f"FAILED after {elapsed:.1f}s", file=sys.stderr, flush=True)

    chunks: List[str] = []
    for exp in experiments:
        options = ExperimentOptions(
            scale=args.scale,
            workers=args.workers if args.workers else 1,
            benchmark=args.benchmark,
            cache=not args.no_cache,
            progress=progress if args.progress else None,
        )
        start = time.time()
        try:
            result = exp.run(options=options)
        except ReproError as exc:
            print(f"error running {exp.experiment_id}: {exc}", file=sys.stderr)
            return 1
        completed += 1
        elapsed = time.time() - start
        text = result.render()
        chunks.append(text)
        print(text)
        print(f"\n({exp.experiment_id} regenerated in {elapsed:.1f}s "
              f"at scale {args.scale})\n")
        if args.csv:
            import os

            os.makedirs(args.csv, exist_ok=True)
            written = result.to_csv(args.csv)
            print(f"wrote {written}")

    if args.out:
        with open(args.out, "w") as fh:
            fh.write("\n\n".join(chunks) + "\n")
        print(f"wrote {args.out}")
    # The drivers shared one persistent pool across every figure;
    # retire it now rather than leaving idle workers to the timer.
    from repro.sim.parallel import shutdown_pool

    shutdown_pool()
    telemetry.flush()
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # stdout went away (e.g. `... | head`); exit quietly and keep
        # interpreter shutdown from flushing the dead pipe.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(0)
