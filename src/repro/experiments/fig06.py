"""Figure 6: histogram of in-flight misses and fetches for doduc.

For each scheduled load latency the paper tabulates, under the
unrestricted organization: the percentage of run time with at least
one miss in flight (MIF), the conditional distribution over 1..7+
in-flight misses/fetches, and the run maxima.  The maximum number of
fetches never exceeds the miss penalty because only one load can issue
per cycle.
"""

from __future__ import annotations

from typing import List

from repro.core.policies import no_restrict
from repro.experiments.base import ExperimentOptions, ExperimentResult, register
from repro.sim.config import baseline_config
# Memoized front end: identical signature/results to
# ``repro.sim.simulator.simulate``, backed by the on-disk result store.
from repro.sim.planner import cached_simulate as simulate
from repro.sim.sweep import PAPER_LATENCIES
from repro.workloads.spec92 import get_benchmark


@register(
    "fig6",
    "Histogram of in-flight misses and fetches for doduc",
    "Figure 6 (Section 4)",
)
def run(options: ExperimentOptions) -> ExperimentResult:
    scale = options.scale
    benchmark = options.resolved_benchmark("doduc")
    workload = get_benchmark(benchmark)
    config = baseline_config(no_restrict())
    headers = (
        ["load latency", "% time >0 in flight", "kind"]
        + [str(i) for i in range(1, 7)]
        + ["7+", "max #"]
    )
    rows: List[List[object]] = []
    for lat in PAPER_LATENCIES:
        result = simulate(workload, config, load_latency=lat, scale=scale)
        miss = result.miss
        for kind, pct, dist, peak in (
            ("misses", miss.pct_time_misses_inflight,
             miss.miss_inflight_distribution(), miss.max_misses_inflight),
            ("fetches", miss.pct_time_fetches_inflight,
             miss.fetch_inflight_distribution(), miss.max_fetches_inflight),
        ):
            rows.append(
                [lat, round(100 * pct), kind]
                + [round(100 * p) for p in dist]
                + [peak]
            )
    return ExperimentResult(
        experiment_id="fig6",
        title=f"In-flight miss/fetch histograms for {benchmark} (no restrict)",
        headers=headers,
        rows=rows,
        notes=(
            "Paper for doduc: at latency 1 there is >0 misses in flight 27% "
            "of the time and 92% of that time only one; at latency 20, >1 "
            "miss is in flight 6x more often than at latency 1.  Max fetches "
            "never exceeds the 16-cycle miss penalty (single-issue)."
        ),
    )
