"""Figure 10: miss CPI for xlisp with a fully associative cache.

Replacing the direct-mapped baseline with a fully associative cache of
the same capacity removes xlisp's conflict misses: the paper reports
the absolute MCPI dropping by 2-3x and the curves flattening, while
the *ordering* of the non-blocking organizations is unchanged.
"""

from __future__ import annotations

from typing import Optional

from dataclasses import replace

from repro.cache.geometry import FULLY_ASSOCIATIVE, CacheGeometry
from repro.experiments.base import ExperimentOptions, ExperimentResult, register
from repro.experiments.curves import curve_experiment
from repro.sim.config import baseline_config


@register(
    "fig10",
    "Miss CPI for xlisp with a fully associative cache",
    "Figure 10 (Section 4)",
)
def run(options: ExperimentOptions) -> ExperimentResult:
    scale = options.scale
    workers = options.workers
    base = replace(
        baseline_config(),
        geometry=CacheGeometry(size=8 * 1024, line_size=32,
                               associativity=FULLY_ASSOCIATIVE),
    )
    return curve_experiment(
        "fig10",
        "Miss CPI for xlisp, 8KB fully associative cache",
        "xlisp",
        scale=scale,
        workers=workers,
        base=base,
        notes=(
            "Paper: full associativity cuts xlisp's MCPI by 2-3x versus the "
            "direct-mapped cache of Figure 9 and flattens the curves; the "
            "relative ordering of the organizations is preserved."
        ),
    )
