"""Figure 14: explicit, implicit, and hybrid MSHR organizations.

Section 4.1's grid: with unlimited MSHRs, restrict each MSHR's
destination fields to ``n_subblocks x misses_per_subblock`` and measure
doduc's MCPI at load latency 10.  The paper's populated cells:

==============  =====================================
sub-blocks      misses per sub-block
==============  =====================================
1               1, 2, 4          (explicitly addressed)
2               2                (hybrid)
4               1                (implicit, 8B words)
8               1                (implicit, 4B words)
inf             (the unrestricted reference)
==============  =====================================

The experiment also reports each organization's storage cost from the
Section 2 formulas (the paper quotes 140 bits for the 8x1 implicit,
112 for the 4-entry explicit, and 106 for the 2x2 hybrid).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.analysis.tables import format_ratio, ratio
from repro.core.cost import explicit_mshr_bits, hybrid_mshr_bits, implicit_mshr_bits
from repro.core.policies import no_restrict, with_layout
from repro.experiments.base import ExperimentOptions, ExperimentResult, register
from repro.sim.config import baseline_config
# Memoized front end: identical signature/results to
# ``repro.sim.simulator.simulate``, backed by the on-disk result store.
from repro.sim.planner import cached_simulate as simulate
from repro.workloads.spec92 import get_benchmark

#: (n_subblocks, misses_per_subblock) cells of the paper's table;
#: ``None`` marks the unrestricted reference row.
GRID: Tuple[Optional[Tuple[int, int]], ...] = (
    (1, 1),
    (1, 2),
    (1, 4),
    (2, 2),
    (4, 1),
    (8, 1),
    None,
)


def _cost_bits(n_subblocks: int, misses: int, line_size: int = 32) -> int:
    if n_subblocks == 1:
        return explicit_mshr_bits(line_size, misses)
    if misses == 1:
        return implicit_mshr_bits(line_size, line_size // n_subblocks)
    return hybrid_mshr_bits(line_size, n_subblocks, misses)


@register(
    "fig14",
    "Explicit, implicit, and hybrid MSHRs for doduc",
    "Figure 14 (Section 4.1)",
)
def run(options: ExperimentOptions) -> ExperimentResult:
    scale = options.scale
    benchmark = options.resolved_benchmark("doduc")
    load_latency = options.resolved_latency(10)
    workload = get_benchmark(benchmark)
    base = baseline_config()

    reference = simulate(
        workload, base.with_policy(no_restrict()),
        load_latency=load_latency, scale=scale,
    ).mcpi

    headers = ["sub-blocks", "misses/sub-block", "MCPI", "ratio", "bits/MSHR"]
    rows: List[List[object]] = []
    for cell in GRID:
        if cell is None:
            rows.append(["inf", "inf", reference, format_ratio(1.0), None])
            continue
        n_sub, misses = cell
        policy = with_layout(n_sub, misses)
        result = simulate(
            workload, base.with_policy(policy),
            load_latency=load_latency, scale=scale,
        )
        rows.append([
            n_sub,
            misses,
            result.mcpi,
            format_ratio(ratio(result.mcpi, reference)),
            _cost_bits(n_sub, misses),
        ])
    return ExperimentResult(
        experiment_id="fig14",
        title=(
            f"MSHR destination-field organizations for {benchmark} "
            f"(latency {load_latency}, unlimited MSHRs)"
        ),
        headers=headers,
        rows=rows,
        notes=(
            "Paper: a 4-entry explicit MSHR (112 bits) or an 8-sub-block "
            "implicit MSHR (140 bits) comes within 1% of unrestricted; the "
            "2x2 hybrid (stated as 106 bits; its formula gives 108) is "
            "slightly worse but cheapest.  The 4B "
            "granularity matters because doduc performs 32-bit loads."
        ),
    )
