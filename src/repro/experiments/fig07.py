"""Figure 7: stall-cycle breakdown for doduc.

For each lockup-free organization, the percentage of the MCPI caused
by structural-hazard stalls (the rest is true-data-dependency stalls).
Longer scheduled load latencies shift stalls from true dependences to
structural hazards, because the compiler removes load-use stalls while
creating more in-flight misses.
"""

from __future__ import annotations

from typing import List, Optional

from repro.analysis.ascii_plot import render_curves
from repro.core.policies import baseline_policies
from repro.experiments.base import ExperimentOptions, ExperimentResult, register
from repro.sim.config import baseline_config
from repro.sim.sweep import PAPER_LATENCIES, run_curves
from repro.workloads.spec92 import get_benchmark


@register(
    "fig7",
    "Stall cycle breakdown for doduc (% MCPI from structural hazards)",
    "Figure 7 (Section 4)",
)
def run(options: ExperimentOptions) -> ExperimentResult:
    scale = options.scale
    benchmark = options.resolved_benchmark("doduc")
    workers = options.workers
    workload = get_benchmark(benchmark)
    policies = baseline_policies()
    sweep = run_curves(workload, policies, latencies=PAPER_LATENCIES,
                       workers=workers,
                       base=baseline_config(), scale=scale)
    headers = ["load latency"] + [p.name for p in policies]
    rows: List[List[object]] = []
    for i, lat in enumerate(sweep.latencies):
        row: List[object] = [lat]
        for policy in policies:
            row.append(round(sweep.results[policy.name][i].pct_structural, 1))
        rows.append(row)
    series = [
        (p.name,
         [sweep.results[p.name][i].pct_structural
          for i in range(len(sweep.latencies))])
        for p in policies
    ]
    plot = render_curves(list(sweep.latencies), series,
                         y_label="% MCPI structural")
    return ExperimentResult(
        experiment_id="fig7",
        title=f"% of MCPI due to structural-hazard stalls ({benchmark})",
        headers=headers,
        rows=rows,
        extra_text=plot,
        notes=(
            "Paper: the structural share grows with the scheduled load "
            "latency; blocking (mc=0) caches report 0 by definition (all "
            "their miss stalls are counted as blocking stalls)."
        ),
    )
