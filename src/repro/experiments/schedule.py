"""Extension: the Section 7 compiler claim, tabulated.

The paper's final conclusion: "our results point out the importance in
non-blocking systems of scheduling load instructions wherever possible
for cache misses instead of cache hits."  The baseline figures show it
as curve slopes for five benchmarks; this experiment tabulates it for
all 18: the MCPI of unrestricted hardware under a schedule prepared
for hits (latency 1) versus for misses (latency 10/20), and the
hardware-alone gain for comparison.

Reading the table: "hw only" is what buying an inverted MSHR achieves
under hit-scheduled code; "hw+sched" adds the recompilation.  For the
numeric codes most of the value of the hardware is only unlocked by
the compiler -- the paper's point.
"""

from __future__ import annotations

from typing import List

from repro.core.policies import blocking_cache, no_restrict
from repro.experiments.base import ExperimentOptions, ExperimentResult, register
from repro.sim.config import baseline_config
# Memoized front end: identical signature/results to
# ``repro.sim.simulator.simulate``, backed by the on-disk result store.
from repro.sim.planner import cached_simulate as simulate


@register(
    "schedule",
    "Extension: scheduling for the miss vs for the hit (all benchmarks)",
    "Section 7 (the compiler conclusion, tabulated)",
)
def run(options: ExperimentOptions) -> ExperimentResult:
    scale = options.scale
    from repro.workloads.spec92 import BENCHMARK_ORDER, get_benchmark

    base = baseline_config()
    headers = [
        "benchmark",
        "mc=0 @lat1",          # the starting point: blocking, hit-scheduled
        "inf @lat1",           # hardware alone
        "inf @lat10",          # hardware + miss scheduling
        "inf @lat20",
        "hw only x",           # improvement factors over the start
        "hw+sched x",
    ]
    rows: List[List[object]] = []
    for name in BENCHMARK_ORDER:
        workload = get_benchmark(name)
        blocking_hit = simulate(workload, base.with_policy(blocking_cache()),
                                load_latency=1, scale=scale).mcpi
        free_hit = simulate(workload, base.with_policy(no_restrict()),
                            load_latency=1, scale=scale).mcpi
        free_10 = simulate(workload, base.with_policy(no_restrict()),
                           load_latency=10, scale=scale).mcpi
        free_20 = simulate(workload, base.with_policy(no_restrict()),
                           load_latency=20, scale=scale).mcpi
        best = min(free_10, free_20)

        def factor(denominator: float) -> object:
            # A denominator of (near-)zero means the schedule hid
            # every stall cycle: report a capped factor rather than
            # dividing by zero.
            if denominator < blocking_hit / 50:
                return ">50"
            return round(blocking_hit / denominator, 1)

        rows.append([
            name, blocking_hit, free_hit, free_10, free_20,
            factor(free_hit) if blocking_hit else None,
            factor(best) if blocking_hit else None,
        ])
    return ExperimentResult(
        experiment_id="schedule",
        title="Unrestricted-hardware MCPI under hit- vs miss-scheduled code",
        headers=headers,
        rows=rows,
        notes=(
            "Paper, Section 4: 'all the lockup-free implementations achieve "
            "very similar MCPIs for a load latency of 1' -- hardware alone "
            "buys little under hit-scheduled code (the 'hw only' column), "
            "because the consumer sits right behind each load.  "
            "Rescheduling for misses unlocks the hardware ('hw+sched'), "
            "most dramatically for the numeric codes; dependence-bound "
            "models (ora, spice2g6, xlisp) stay put under both columns, "
            "which is equally part of the paper's story.  Exact zeros at "
            "latency 20 are real in this idealized model: every load sits "
            "more than a miss penalty ahead of its first use, so nothing "
            "is exposed (the paper's machines retain small residuals)."
        ),
    )
