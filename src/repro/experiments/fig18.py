"""Figure 18: MCPI as a function of the miss penalty for tomcatv.

Section 5.3, at scheduled load latency 10: for non-blocking
organizations the MCPI grows *non-linearly* with the miss penalty
(small penalties are fully overlapped; large ones exhaust the overlap),
while the blocking cache's MCPI is strictly linear in the penalty.
The paper highlights the unrestricted organization growing almost 5x
when the penalty doubles from 16 to 32.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.analysis.ascii_plot import render_curves
from repro.core.policies import baseline_policies
from repro.experiments.base import ExperimentOptions, ExperimentResult, register
from repro.sim.config import baseline_config
from repro.sim.sweep import run_penalty_sweep
from repro.workloads.spec92 import get_benchmark

#: The paper's penalty sweep.
PENALTIES: Tuple[int, ...] = (4, 8, 16, 32, 64, 128)


@register(
    "fig18",
    "MCPI as a function of the miss penalty for tomcatv",
    "Figure 18 (Section 5.3)",
)
def run(options: ExperimentOptions) -> ExperimentResult:
    scale = options.scale
    benchmark = options.resolved_benchmark("tomcatv")
    load_latency = options.resolved_latency(10)
    workers = options.workers
    workload = get_benchmark(benchmark)
    policies = baseline_policies()
    sweep = run_penalty_sweep(
        workload, policies, PENALTIES,
        load_latency=load_latency, base=baseline_config(), scale=scale,
        workers=workers,
    )
    headers = ["organization"] + [f"penalty {p}" for p in PENALTIES]
    rows: List[List[object]] = []
    for policy in policies:
        rows.append(
            [policy.name]
            + [sweep[policy.name][p].mcpi for p in PENALTIES]
        )
    series = [
        (policy.name, [sweep[policy.name][p].mcpi for p in PENALTIES])
        for policy in policies
    ]
    plot = render_curves(list(PENALTIES), series,
                         x_label="miss penalty (cycles)")
    return ExperimentResult(
        experiment_id="fig18",
        title=f"MCPI vs miss penalty for {benchmark} (latency {load_latency})",
        headers=headers,
        rows=rows,
        extra_text=plot,
        notes=(
            "Paper: mc=0 scales strictly linearly with the penalty; the "
            "lockup-free organizations scale non-linearly (nearly free at "
            "penalty 4, increasingly exposed at 64-128).  The unrestricted "
            "MCPI grows ~5x from penalty 16 to 32."
        ),
    )
