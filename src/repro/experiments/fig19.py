"""Figure 19: dual- versus scaled single-issue MCPI comparison.

Section 6's accuracy check for the scaling rule.  For each of the five
detailed benchmarks:

1. measure the dual-issue machine's issue-limited IPC with a perfect
   data cache;
2. simulate the dual-issue machine (load latency 10, penalty 16) under
   four organizations and compute its measured MCPI against the
   perfect-cache run;
3. scale the parameters (latency x IPC rounded to the compiled set,
   penalty x IPC), run the single-issue model there, and predict the
   dual-issue MCPI as (scaled single-issue MCPI) / IPC;
4. report the prediction error -- the paper sees first-order agreement,
   mostly within +/-15% with outliers around +28%.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List

from repro.analysis.scaling import (
    ScalingComparison,
    dual_issue_mcpi,
    predicted_dual_issue_mcpi,
    scaled_parameters,
)
from repro.core.policies import blocking_cache, fc, mc, no_restrict
from repro.experiments.base import ExperimentOptions, ExperimentResult, register
from repro.sim.config import baseline_config
# Memoized front end: identical signature/results to
# ``repro.sim.simulator.simulate``, backed by the on-disk result store.
from repro.sim.planner import cached_simulate as simulate
from repro.workloads.spec92 import DETAILED_FIVE, get_benchmark

#: The four organizations of the paper's Figure 19.
FIG19_POLICIES = (blocking_cache(), mc(1), fc(2), no_restrict())


@register(
    "fig19",
    "Dual and single issue MCPI scaling comparison",
    "Figure 19 (Section 6)",
)
def run(options: ExperimentOptions) -> ExperimentResult:
    scale = options.scale
    load_latency = options.resolved_latency(10)
    miss_penalty = options.resolved_penalty(16)
    headers = ["benchmark", "IPC", "scaled lat", "scaled pen"]
    for policy in FIG19_POLICIES:
        headers.extend([f"{policy.name} mcpi", "%"])

    rows: List[List[object]] = []
    for name in DETAILED_FIVE:
        workload = get_benchmark(name)
        dual_base = replace(baseline_config(), issue_width=2,
                            miss_penalty=miss_penalty)
        perfect = simulate(
            workload, replace(dual_base, perfect_cache=True),
            load_latency=load_latency, scale=scale,
        )
        ipc = perfect.ipc
        scaled_lat, scaled_pen = scaled_parameters(
            ipc, load_latency=load_latency, miss_penalty=miss_penalty
        )
        row: List[object] = [name, round(ipc, 2), scaled_lat, scaled_pen]
        for policy in FIG19_POLICIES:
            dual = simulate(
                workload, dual_base.with_policy(policy),
                load_latency=load_latency, scale=scale,
            )
            measured = dual_issue_mcpi(dual, perfect)
            single = simulate(
                workload,
                replace(baseline_config(), policy=policy,
                        miss_penalty=scaled_pen),
                load_latency=scaled_lat, scale=scale,
            )
            comparison = ScalingComparison(
                workload=name,
                policy=policy.name,
                ipc=ipc,
                scaled_latency=scaled_lat,
                scaled_penalty=scaled_pen,
                measured_mcpi=measured,
                predicted_mcpi=predicted_dual_issue_mcpi(single.mcpi, ipc),
            )
            row.extend([round(measured, 3), round(comparison.error_pct)])
        rows.append(row)

    return ExperimentResult(
        experiment_id="fig19",
        title="Dual-issue MCPI vs the Section 6 single-issue scaling rule",
        headers=headers,
        rows=rows,
        notes=(
            "'%' is the signed error of the scaled single-issue prediction "
            "against the measured dual-issue MCPI.  Paper: a good first-order "
            "approximation, errors mostly within +/-15% with the worst cell "
            "(tomcatv under no-restrict) at +28%.  We see the same pattern: "
            "tight agreement for restricted organizations, large errors for "
            "aggressive organizations on software-pipelined schedules, where "
            "scaling the scheduled latency changes the code shape itself."
        ),
    )
