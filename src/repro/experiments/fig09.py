"""Figure 9: baseline miss CPI for xlisp.

The integer counterexample: the curves for all lockup-free
organizations sit close together -- hit-under-miss achieves
near-optimal performance (1.06x the unrestricted MCPI at latency 10 in
the paper) because the interpreter's misses are serialized by pointer
dependences.  The MCPI *rises* with load latency in the paper due to
schedule-induced conflict misses; Figure 10 shows a fully associative
cache removing that effect.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.base import ExperimentOptions, ExperimentResult, register
from repro.experiments.curves import curve_experiment


@register(
    "fig9",
    "Baseline miss CPI for xlisp",
    "Figure 9 (Section 4)",
)
def run(options: ExperimentOptions) -> ExperimentResult:
    scale = options.scale
    workers = options.workers
    return curve_experiment(
        "fig9",
        "Baseline miss CPI for xlisp (8KB DM, 32B lines, penalty 16)",
        "xlisp",
        scale=scale,
        workers=workers,
        notes=(
            "Paper: lockup-free curves nearly coincide; hit-under-miss is "
            "within 1.06x of unrestricted at latency 10.  Conflict misses "
            "(direct-mapped aliasing in the heap) set the MCPI level."
        ),
    )
