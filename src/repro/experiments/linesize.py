"""Extension: the line-size tradeoff swept end to end (Section 5.2).

The paper compares 16B and 32B lines and predicts the limits: "In the
limit as the cache line size is reduced to a single word, the fc=1
organization will have the same miss CPI as the mc=1 organization",
and conversely that larger lines favour secondary-miss support.  This
experiment sweeps the line size from 8B to 128B on a fixed-capacity
cache, with the paper's pipelined-memory penalty rule (14 cycles plus
2 per extra 16B chunk), and reports for each size:

* the four organizations that frame the tradeoff, and
* fc=1's *relative position* between mc=1 and mc=2
  (0 = no better than mc=1, 1 = as good as mc=2),

which makes the predicted monotone drift visible as one column.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Tuple

from repro.cache.geometry import CacheGeometry
from repro.cache.memory import penalty_for_line_size
from repro.core.policies import fc, mc, no_restrict
from repro.experiments.base import ExperimentOptions, ExperimentResult, register
from repro.sim.config import baseline_config
# Memoized front end: identical signature/results to
# ``repro.sim.simulator.simulate``, backed by the on-disk result store.
from repro.sim.planner import cached_simulate as simulate

LINE_SIZES: Tuple[int, ...] = (8, 16, 32, 64, 128)


@register(
    "linesize",
    "Extension: the fc-vs-mc tradeoff across line sizes",
    "Section 5.2 (the two-point comparison swept end to end)",
)
def run(options: ExperimentOptions) -> ExperimentResult:
    scale = options.scale
    benchmark = options.resolved_benchmark("doduc")
    load_latency = options.resolved_latency(10)
    from repro.workloads.spec92 import get_benchmark

    workload = get_benchmark(benchmark)
    headers = ["line size", "penalty", "mc=1", "fc=1", "mc=2",
               "no restrict", "fc=1 position"]
    rows: List[List[object]] = []
    for line_size in LINE_SIZES:
        penalty = penalty_for_line_size(line_size)
        base = replace(
            baseline_config(),
            geometry=CacheGeometry(size=8 * 1024, line_size=line_size,
                                   associativity=1),
            miss_penalty=penalty,
        )
        values = {}
        for policy in (mc(1), fc(1), mc(2), no_restrict()):
            values[policy.name] = simulate(
                workload, base.with_policy(policy),
                load_latency=load_latency, scale=scale,
            ).mcpi
        gap = values["mc=1"] - values["mc=2"]
        position = ((values["mc=1"] - values["fc=1"]) / gap
                    if gap > 1e-9 else 0.0)
        rows.append([
            line_size, penalty,
            values["mc=1"], values["fc=1"], values["mc=2"],
            values["no restrict"],
            round(position, 2),
        ])
    return ExperimentResult(
        experiment_id="linesize",
        title=f"Line-size sweep for {benchmark} (fixed 8KB capacity, "
              f"Section 5.2 penalty rule)",
        headers=headers,
        rows=rows,
        notes=(
            "The paper's prediction reads off the last column: with tiny "
            "lines there is nothing for secondary misses to merge into, so "
            "fc=1 degenerates toward mc=1 (position -> 0); growing the line "
            "multiplies same-line merging opportunities and fc=1 climbs "
            "toward (and past) mc=2's side of the gap.  Absolute MCPI is "
            "U-shaped in the line size under the Section 5.2 penalty rule: "
            "tiny lines waste the pipelined memory's burst, very large "
            "lines pay for bytes nothing uses."
        ),
    )
