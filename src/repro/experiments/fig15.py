"""Figure 15: baseline miss CPI for su2cor, including per-set limits.

Section 4.2: in-cache MSHR storage limits a direct-mapped cache to one
in-flight fetch per set (``fs=1``).  su2cor's power-of-two array
spacing wants *concurrent* fetches to the same set: the paper reports
fs=1 at 2.3x the unrestricted MCPI at latency 10 versus 1.3x for fs=2,
so supporting multiple fetches per set is clearly worthwhile here.
"""

from __future__ import annotations

from typing import Optional

from repro.core.policies import baseline_policies, fs
from repro.experiments.base import ExperimentOptions, ExperimentResult, register
from repro.experiments.curves import curve_experiment


@register(
    "fig15",
    "Baseline miss CPI for su2cor (with fs= per-set fetch limits)",
    "Figure 15 (Section 4.2)",
)
def run(options: ExperimentOptions) -> ExperimentResult:
    scale = options.scale
    workers = options.workers
    policies = tuple(baseline_policies()) + (fs(1), fs(2))
    return curve_experiment(
        "fig15",
        "Baseline miss CPI for su2cor (8KB DM, 32B lines, penalty 16)",
        "su2cor",
        scale=scale,
        workers=workers,
        policies=policies,
        notes=(
            "Paper at latency 10: fs=1 incurs 2.3x the unrestricted MCPI, "
            "fs=2 1.3x -- su2cor needs multiple in-flight fetches per cache "
            "set, which a direct-mapped in-cache-MSHR organization cannot "
            "provide."
        ),
    )
