"""Extension: set associativity vs per-set fetch limits (Section 4.2).

The paper closes its in-cache MSHR discussion with an unmeasured
observation: "By implementing the in-cache MSHR storage method in a
set-associative cache, more than one fetch per set could be in
progress simultaneously.  However, by implementing a set-associative
cache, most of these concurrent conflict misses might be eliminated in
the first place."

This experiment quantifies both halves on su2cor, whose power-of-two
array spacing is exactly the pathology in question: for 1-, 2-, and
4-way caches of the same 8KB capacity, it measures the in-cache
organization (one fetch per set *frame*, i.e. ``fs=ways``) against the
unrestricted organization.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List

from repro.cache.geometry import CacheGeometry
from repro.core.policies import fs, no_restrict
from repro.experiments.base import ExperimentOptions, ExperimentResult, register
from repro.sim.config import baseline_config
# Memoized front end: identical signature/results to
# ``repro.sim.simulator.simulate``, backed by the on-disk result store.
from repro.sim.planner import cached_simulate as simulate


@register(
    "assoc",
    "Extension: associativity vs per-set fetch limits for su2cor",
    "Section 4.2 (closing observation made quantitative)",
)
def run(options: ExperimentOptions) -> ExperimentResult:
    scale = options.scale
    benchmark = options.resolved_benchmark("su2cor")
    load_latency = options.resolved_latency(10)
    from repro.workloads.spec92 import get_benchmark

    workload = get_benchmark(benchmark)
    headers = ["ways", "in-cache MSHRs (fs=ways)", "no restrict",
               "fs penalty x"]
    rows: List[List[object]] = []
    for ways in (1, 2, 4):
        base = replace(
            baseline_config(),
            geometry=CacheGeometry(size=8 * 1024, line_size=32,
                                   associativity=ways),
        )
        limited = simulate(
            workload, base.with_policy(fs(ways)),
            load_latency=load_latency, scale=scale,
        ).mcpi
        free = simulate(
            workload, base.with_policy(no_restrict()),
            load_latency=load_latency, scale=scale,
        ).mcpi
        rows.append([
            ways, limited, free,
            round(limited / free, 2) if free else None,
        ])
    return ExperimentResult(
        experiment_id="assoc",
        title=f"Associativity vs per-set fetch limits ({benchmark})",
        headers=headers,
        rows=rows,
        notes=(
            "The first predicted effect appears cleanly: associativity "
            "lets the in-cache organization keep several fetches per set "
            "frame in flight, so the fs penalty ratio collapses from "
            "over 2x to ~1 at two ways.  su2cor's own miss level barely "
            "moves because our model's same-set misses are compulsory "
            "(first-touch streaming) rather than reuse conflicts; the "
            "second effect -- associativity removing conflict misses "
            "outright -- is demonstrated on xlisp by Figure 10's fully "
            "associative run (fig10)."
        ),
    )
