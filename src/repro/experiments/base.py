"""Experiment framework: each paper figure/table is one experiment.

An :class:`Experiment` pairs an id ("fig5", "fig13", ...) with a
runner that regenerates the figure's data.  Runners accept ``scale``
(run-length multiplier; 1.0 is the default calibration length) and
return an :class:`ExperimentResult` holding both the structured rows
and a rendered text table, plus paper-reference notes.

Run from the command line::

    python -m repro.experiments fig13 --scale 1.0
    python -m repro.experiments all
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.analysis.tables import format_table
from repro.errors import ExperimentError


@dataclass
class ExperimentResult:
    """The regenerated data for one figure or table."""

    experiment_id: str
    title: str
    headers: Sequence[str]
    rows: List[Sequence[object]]
    #: Free-form commentary: what the paper reported, caveats.
    notes: str = ""
    #: Optional extra rendered sections (e.g. a second table).
    extra_text: str = ""

    def render(self, precision: int = 3) -> str:
        """Full text rendering: title, table, notes."""
        parts = [
            format_table(self.headers, self.rows, precision=precision,
                         title=f"[{self.experiment_id}] {self.title}")
        ]
        if self.extra_text:
            parts.append(self.extra_text)
        if self.notes:
            parts.append(self.notes)
        return "\n\n".join(parts)

    def to_csv(self, path: Union[str, Path]) -> Path:
        """Write the structured rows as a CSV file and return its path.

        Downstream plotting/analysis wants data files, not rendered
        tables; the header row is the experiment's column headers.
        """
        target = Path(path)
        if target.is_dir():
            target = target / f"{self.experiment_id}.csv"
        with open(target, "w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(list(self.headers))
            for row in self.rows:
                writer.writerow(list(row))
        return target


@dataclass(frozen=True)
class Experiment:
    """A registered, runnable reproduction of one paper artifact."""

    experiment_id: str
    title: str
    paper_reference: str
    runner: Callable[..., ExperimentResult]

    def run(self, scale: float = 1.0, **kwargs) -> ExperimentResult:
        """Regenerate the figure's data at the given run scale."""
        return self.runner(scale=scale, **kwargs)


_REGISTRY: Dict[str, Experiment] = {}


def register(
    experiment_id: str, title: str, paper_reference: str
) -> Callable[[Callable[..., ExperimentResult]], Callable[..., ExperimentResult]]:
    """Decorator registering a runner under an experiment id."""

    def wrap(fn: Callable[..., ExperimentResult]) -> Callable[..., ExperimentResult]:
        if experiment_id in _REGISTRY:
            raise ExperimentError(f"duplicate experiment id: {experiment_id}")
        _REGISTRY[experiment_id] = Experiment(
            experiment_id=experiment_id,
            title=title,
            paper_reference=paper_reference,
            runner=fn,
        )
        return fn

    return wrap


def get_experiment(experiment_id: str) -> Experiment:
    """Look up a registered experiment by id."""
    try:
        return _REGISTRY[experiment_id]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ExperimentError(
            f"unknown experiment '{experiment_id}'; known: {known}"
        ) from None


def all_experiments() -> List[Experiment]:
    """All registered experiments, sorted by id."""
    def key(e: Experiment):
        ident = e.experiment_id
        if ident.startswith("fig"):
            tail = ident[3:]
            if tail.isdigit():
                return (0, int(tail), ident)
        return (1, 0, ident)

    return sorted(_REGISTRY.values(), key=key)
