"""Experiment framework: each paper figure/table is one experiment.

An :class:`Experiment` pairs an id ("fig5", "fig13", ...) with a
runner that regenerates the figure's data.  Runners take an
:class:`ExperimentOptions` (run scale, pool size, benchmark override,
...) and return an :class:`ExperimentResult` holding both the
structured rows and a rendered text table, plus paper-reference notes.

Options are validated *here*, not swallowed by ``**kwargs``: a typo'd
option name raises :class:`~repro.errors.ExperimentError` with a
did-you-mean hint instead of silently running the default
configuration.  Every run is wrapped in a telemetry ``experiment``
span, so per-experiment wall time lands in ``python -m repro
telemetry summary``, and an optional progress callback feeds the
``--progress`` stderr line of ``python -m repro.experiments all``.

Run from the command line::

    python -m repro.experiments fig13 --scale 1.0
    python -m repro.experiments all --progress
"""

from __future__ import annotations

import csv
import difflib
import os
import time
from dataclasses import dataclass, field, fields as dataclass_fields
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro import telemetry
from repro.analysis.tables import format_table
from repro.errors import ExperimentError


@dataclass
class ExperimentResult:
    """The regenerated data for one figure or table."""

    experiment_id: str
    title: str
    headers: Sequence[str]
    rows: List[Sequence[object]]
    #: Free-form commentary: what the paper reported, caveats.
    notes: str = ""
    #: Optional extra rendered sections (e.g. a second table).
    extra_text: str = ""

    def render(self, precision: int = 3) -> str:
        """Full text rendering: title, table, notes."""
        parts = [
            format_table(self.headers, self.rows, precision=precision,
                         title=f"[{self.experiment_id}] {self.title}")
        ]
        if self.extra_text:
            parts.append(self.extra_text)
        if self.notes:
            parts.append(self.notes)
        return "\n\n".join(parts)

    def to_csv(self, path: Union[str, Path]) -> Path:
        """Write the structured rows as a CSV file and return its path.

        Downstream plotting/analysis wants data files, not rendered
        tables; the header row is the experiment's column headers.
        """
        target = Path(path)
        if target.is_dir():
            target = target / f"{self.experiment_id}.csv"
        with open(target, "w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(list(self.headers))
            for row in self.rows:
                writer.writerow(list(row))
        return target


#: ``progress(experiment_id, event, elapsed_seconds)`` where ``event``
#: is ``"start"``, ``"done"``, or ``"error"``.
ProgressCallback = Callable[[str, str, float], None]


@dataclass
class ExperimentOptions:
    """Every option an experiment runner accepts, validated up front.

    The old ``runner(scale=..., **_kwargs)`` convention silently
    swallowed typos (``workres=4`` ran a serial sweep without a word);
    this dataclass is the complete vocabulary, and
    :meth:`from_kwargs` rejects anything else with a did-you-mean
    hint.  Fields defaulting to ``None`` mean "use the experiment's
    own default" -- e.g. ``benchmark`` is doduc for fig6 but tomcatv
    for fig18, so the resolution happens in the driver via
    :meth:`resolved_benchmark`.
    """

    #: Run-length multiplier (1.0 = the paper-calibrated length).
    scale: float = 1.0
    #: Process-pool size for the sweeps behind the figure (1 = serial).
    #: Pools are persistent and process-wide: consecutive experiments
    #: at the same size reuse one warm pool (see ``docs/performance.md``,
    #: "Trace plane and pool lifecycle"); ``repro.api.shutdown_pool()``
    #: retires it explicitly.
    workers: Optional[int] = 1
    #: Benchmark override for single-benchmark figures.
    benchmark: Optional[str] = None
    #: Scheduled load latency override for single-latency figures.
    load_latency: Optional[int] = None
    #: Miss penalty override (fig19's scaling study).
    miss_penalty: Optional[int] = None
    #: Serve repeated cells from the on-disk result store.
    cache: bool = True
    #: Execution engine for the run's simulations (a name from
    #: :func:`repro.sim.engines.engine_names`); ``None`` resolves via
    #: ``REPRO_ENGINE`` / ``auto``.  Applied as ``REPRO_ENGINE`` for
    #: the run's duration so sweep pool workers inherit it -- safe
    #: because every tier is bit-identical, so a worker that raced a
    #: previous run's setting still produces the same numbers.
    engine: Optional[str] = None
    #: Dispatch backend for the run's sweeps (a name from
    #: :func:`repro.sim.parallel.backend_names`); ``None`` resolves
    #: via ``REPRO_BACKEND`` / ``auto``.  Applied as ``REPRO_BACKEND``
    #: for the run's duration, mirroring ``engine`` -- every backend
    #: is bit-identical, so this only picks *where* cells execute.
    backend: Optional[str] = None
    #: Record metrics/spans for this run (see ``docs/observability.md``).
    telemetry: bool = True
    #: Progress notifications (the ``--progress`` stderr line).
    progress: Optional[ProgressCallback] = None

    @classmethod
    def option_names(cls) -> List[str]:
        return [f.name for f in dataclass_fields(cls)]

    @classmethod
    def from_kwargs(cls, **kwargs) -> "ExperimentOptions":
        """Build options from keywords; unknown names raise with a hint."""
        known = cls.option_names()
        for name in kwargs:
            if name not in known:
                hint = difflib.get_close_matches(name, known, n=1)
                suggestion = f"; did you mean '{hint[0]}'?" if hint else ""
                raise ExperimentError(
                    f"unknown experiment option '{name}'{suggestion} "
                    f"(known options: {', '.join(known)})"
                )
        options = cls(**kwargs)
        options.validate()
        return options

    def validate(self) -> None:
        if not self.scale > 0:
            raise ExperimentError(f"scale must be positive: {self.scale}")
        if self.workers is not None and self.workers < 1:
            raise ExperimentError(f"workers must be >= 1: {self.workers}")
        if self.load_latency is not None and self.load_latency < 1:
            raise ExperimentError(
                f"load_latency must be >= 1: {self.load_latency}"
            )
        if self.miss_penalty is not None and self.miss_penalty < 1:
            raise ExperimentError(
                f"miss_penalty must be >= 1: {self.miss_penalty}"
            )
        if self.engine is not None:
            from repro.sim.engines import get_engine

            try:
                get_engine(self.engine)
            except Exception as exc:
                raise ExperimentError(str(exc)) from None
        if self.backend is not None:
            from repro.sim.parallel import get_backend

            try:
                get_backend(self.backend)
            except Exception as exc:
                raise ExperimentError(str(exc)) from None

    # -- per-driver defaults -------------------------------------------------

    def resolved_benchmark(self, default: str) -> str:
        return self.benchmark if self.benchmark is not None else default

    def resolved_latency(self, default: int = 10) -> int:
        return (self.load_latency if self.load_latency is not None
                else default)

    def resolved_penalty(self, default: int = 16) -> int:
        return (self.miss_penalty if self.miss_penalty is not None
                else default)


@dataclass(frozen=True)
class Experiment:
    """A registered, runnable reproduction of one paper artifact."""

    experiment_id: str
    title: str
    paper_reference: str
    runner: Callable[[ExperimentOptions], ExperimentResult]

    def run(
        self,
        scale: Optional[float] = None,
        options: Optional[ExperimentOptions] = None,
        **kwargs,
    ) -> ExperimentResult:
        """Regenerate the figure's data.

        Either pass a prebuilt :class:`ExperimentOptions` or the same
        fields as keywords (``run(scale=0.5, workers=4)``); unknown
        keywords raise :class:`ExperimentError` with a did-you-mean
        hint.  The run is wrapped in an ``experiment.<id>`` telemetry
        span and counted under ``experiment.runs``.
        """
        if options is None:
            merged = dict(kwargs)
            if scale is not None:
                merged["scale"] = scale
            options = ExperimentOptions.from_kwargs(**merged)
        else:
            if kwargs or scale is not None:
                raise ExperimentError(
                    "pass either a prebuilt options object or keyword "
                    "options, not both"
                )
            options.validate()

        saved_cache = os.environ.get("REPRO_CACHE")
        saved_engine = os.environ.get("REPRO_ENGINE")
        saved_backend = os.environ.get("REPRO_BACKEND")
        telemetry_forced_off = not options.telemetry and telemetry.enabled()
        start = time.perf_counter()
        if options.progress is not None:
            options.progress(self.experiment_id, "start", 0.0)
        try:
            if not options.cache:
                os.environ["REPRO_CACHE"] = "0"
            if options.engine is not None:
                os.environ["REPRO_ENGINE"] = options.engine
            if options.backend is not None:
                os.environ["REPRO_BACKEND"] = options.backend
            if telemetry_forced_off:
                telemetry.set_enabled(False)
            with telemetry.span(f"experiment.{self.experiment_id}",
                                scale=options.scale):
                result = self.runner(options)
        except BaseException:
            if options.progress is not None:
                options.progress(self.experiment_id, "error",
                                 time.perf_counter() - start)
            raise
        finally:
            if telemetry_forced_off:
                telemetry.set_enabled(None)
            if not options.cache:
                if saved_cache is None:
                    os.environ.pop("REPRO_CACHE", None)
                else:
                    os.environ["REPRO_CACHE"] = saved_cache
            if options.engine is not None:
                if saved_engine is None:
                    os.environ.pop("REPRO_ENGINE", None)
                else:
                    os.environ["REPRO_ENGINE"] = saved_engine
            if options.backend is not None:
                if saved_backend is None:
                    os.environ.pop("REPRO_BACKEND", None)
                else:
                    os.environ["REPRO_BACKEND"] = saved_backend
        elapsed = time.perf_counter() - start
        if options.telemetry and telemetry.enabled():
            telemetry.counter("experiment.runs").inc()
        if options.progress is not None:
            options.progress(self.experiment_id, "done", elapsed)
        return result


_REGISTRY: Dict[str, Experiment] = {}


_Runner = Callable[[ExperimentOptions], ExperimentResult]


def register(
    experiment_id: str, title: str, paper_reference: str
) -> Callable[[_Runner], _Runner]:
    """Decorator registering a runner under an experiment id.

    Runners take exactly one argument, the validated
    :class:`ExperimentOptions`.
    """

    def wrap(fn: _Runner) -> _Runner:
        if experiment_id in _REGISTRY:
            raise ExperimentError(f"duplicate experiment id: {experiment_id}")
        _REGISTRY[experiment_id] = Experiment(
            experiment_id=experiment_id,
            title=title,
            paper_reference=paper_reference,
            runner=fn,
        )
        return fn

    return wrap


def get_experiment(experiment_id: str) -> Experiment:
    """Look up a registered experiment by id."""
    try:
        return _REGISTRY[experiment_id]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ExperimentError(
            f"unknown experiment '{experiment_id}'; known: {known}"
        ) from None


def all_experiments() -> List[Experiment]:
    """All registered experiments, sorted by id."""
    def key(e: Experiment):
        ident = e.experiment_id
        if ident.startswith("fig"):
            tail = ident[3:]
            if tail.isdigit():
                return (0, int(tail), ident)
        return (1, 0, ident)

    return sorted(_REGISTRY.values(), key=key)
