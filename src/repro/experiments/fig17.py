"""Figure 17: miss CPI for doduc with 16-byte lines.

Section 5.2: with the pipelined memory's line-size-dependent penalty
(14 cycles for 16B lines vs 16 for 32B), shrinking the line moves the
``fc=1`` curve *toward* ``mc=1``: smaller lines mean fewer secondary
misses per line, so unlimited secondaries to one block are worth less
and extra primary misses are worth relatively more.  In the limit of
single-word lines, fc=1 equals mc=1.
"""

from __future__ import annotations

from typing import Optional

from dataclasses import replace

from repro.cache.geometry import CacheGeometry
from repro.cache.memory import penalty_for_line_size
from repro.experiments.base import ExperimentOptions, ExperimentResult, register
from repro.experiments.curves import curve_experiment
from repro.sim.config import baseline_config


@register(
    "fig17",
    "Miss CPI for doduc with 16-byte lines",
    "Figure 17 (Section 5.2)",
)
def run(options: ExperimentOptions) -> ExperimentResult:
    scale = options.scale
    workers = options.workers
    base = replace(
        baseline_config(),
        geometry=CacheGeometry(size=8 * 1024, line_size=16, associativity=1),
        miss_penalty=penalty_for_line_size(16),
    )
    return curve_experiment(
        "fig17",
        "Miss CPI for doduc, 16B lines (pipelined-memory penalty 14)",
        "doduc",
        scale=scale,
        workers=workers,
        base=base,
        notes=(
            "Paper: with 16B lines fc=1 moves closer to mc=1 than to mc=2 "
            "(less secondary-miss opportunity per line); compare Figure 5."
        ),
    )
