"""Experiment registry: one runnable reproduction per paper artifact.

Importing this package registers every experiment; use
:func:`get_experiment` / :func:`all_experiments` or the CLI
(``python -m repro.experiments``).
"""

from repro.experiments.base import (
    Experiment,
    ExperimentResult,
    all_experiments,
    get_experiment,
    register,
)

# Importing the modules registers the experiments.
from repro.experiments import (  # noqa: F401  (import for side effect)
    assoc,
    costs,
    fig04,
    fig05,
    fig06,
    fig07,
    fig08,
    fig09,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    fig15,
    fig16,
    fig17,
    fig18,
    fig19,
    incache,
    linesize,
    robustness,
    schedule,
)

__all__ = [
    "Experiment",
    "ExperimentResult",
    "all_experiments",
    "get_experiment",
    "register",
]
