"""Section 2 hardware costs: the MSHR sizing worked examples.

Not a numbered figure, but the paper's Section 2 derives specific bit
counts for each organization; this experiment regenerates them (tests
pin the same numbers).
"""

from __future__ import annotations

from typing import List

from repro.core.cost import (
    explicit_mshr_cost,
    hybrid_mshr_cost,
    implicit_mshr_cost,
    in_cache_storage_cost,
    inverted_mshr_cost,
)
from repro.experiments.base import ExperimentOptions, ExperimentResult, register


@register(
    "costs",
    "MSHR organization hardware costs",
    "Section 2 (worked examples)",
)
def run(options: ExperimentOptions) -> ExperimentResult:
    scale = options.scale
    del scale  # cost formulas are analytic; nothing to scale
    entries = [
        implicit_mshr_cost(line_size=32, subblock_size=8),
        implicit_mshr_cost(line_size=32, subblock_size=4),
        explicit_mshr_cost(line_size=32, n_entries=4),
        hybrid_mshr_cost(line_size=32, n_subblocks=2, misses_per_subblock=2),
        inverted_mshr_cost(n_destinations=70, line_size=32),
        in_cache_storage_cost(cache_size=8 * 1024, line_size=32),
    ]
    headers = ["organization", "bits each", "count", "total bits",
               "comparators", "comparator bits"]
    rows: List[List[object]] = [
        [e.organization, e.bits_per_mshr, e.count, e.total_bits,
         e.comparators, e.comparator_bits]
        for e in entries
    ]
    return ExperimentResult(
        experiment_id="costs",
        title="MSHR hardware costs (Section 2 formulas)",
        headers=headers,
        rows=rows,
        notes=(
            "Paper's worked examples: 92 bits for the basic implicit MSHR "
            "(8B words), 140 bits at 4B granularity, 112 bits for a 4-entry "
            "explicit MSHR, and 44+(4x16) bits for the 2x2 hybrid (the "
            "paper states 106 but its expression evaluates to 108, which we "
            "reproduce); an inverted MSHR "
            "has one entry (plus comparator) per possible destination, and "
            "in-cache storage needs one transit bit per line."
        ),
    )
