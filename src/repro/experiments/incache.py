"""Extension: in-cache MSHR storage priced in full (Section 2.3).

Not a numbered figure -- the paper evaluates in-cache MSHR storage
through its ``fs=1`` restriction (Figure 15) and describes, without
measuring, its second cost: the MSHR information stored in the transit
line must be read back out when the fetch data arrives, adding fill
latency unless the record is kept within the cache's read-port width.

This experiment separates the two effects on su2cor (the benchmark
most sensitive to per-set restrictions) and doduc (a moderate case):
``fs=1`` alone, in-cache storage with the recommended single extra
read-out cycle, and a naive implementation that re-reads the whole
32-byte line through an 8-byte port (three extra cycles).  The storage
comparison (256 transit bits vs kilobits of discrete MSHRs) comes from
the Section 2 cost model.
"""

from __future__ import annotations

from typing import List

from repro.core.cost import explicit_mshr_cost, in_cache_storage_cost
from repro.core.policies import fs, in_cache, no_restrict
from repro.experiments.base import ExperimentOptions, ExperimentResult, register
from repro.sim.config import baseline_config
# Memoized front end: identical signature/results to
# ``repro.sim.simulator.simulate``, backed by the on-disk result store.
from repro.sim.planner import cached_simulate as simulate


@register(
    "incache",
    "Extension: in-cache MSHR storage with fill read-out overhead",
    "Section 2.3 (discussion made quantitative)",
)
def run(options: ExperimentOptions) -> ExperimentResult:
    scale = options.scale
    load_latency = options.resolved_latency(10)
    from repro.workloads.spec92 import get_benchmark

    policies = (
        fs(1).renamed("fs=1 (free read-out)"),
        in_cache(1),
        in_cache(3).renamed("in-cache(+3, 8B port)"),
        no_restrict(),
    )
    headers = ["organization"] + ["su2cor", "doduc"] + ["storage bits"]
    transit = in_cache_storage_cost(8 * 1024, 32).total_bits
    discrete = explicit_mshr_cost(32, 4, n_mshrs=16).total_bits
    storage = {
        "fs=1 (free read-out)": transit,
        "in-cache(+1)": transit,
        "in-cache(+3, 8B port)": transit,
        "no restrict": discrete,
    }
    rows: List[List[object]] = []
    for policy in policies:
        row: List[object] = [policy.name]
        for bench in ("su2cor", "doduc"):
            result = simulate(
                get_benchmark(bench), baseline_config(policy),
                load_latency=load_latency, scale=scale,
            )
            row.append(result.mcpi)
        row.append(storage[policy.name])
        rows.append(row)
    return ExperimentResult(
        experiment_id="incache",
        title="In-cache MSHR storage: per-set limit plus fill read-out",
        headers=headers,
        rows=rows,
        notes=(
            "The transit-bit organization stores MSHRs almost for free "
            "(one bit per line) but pays twice at runtime: one fetch per "
            "set, and extra fill cycles to read the MSHR record out of the "
            "line.  Keeping the record within the read-port width (the "
            "paper's recommendation) limits the latter to one cycle.  The "
            "'no restrict' row is priced as sixteen 4-entry discrete MSHRs."
        ),
    )
