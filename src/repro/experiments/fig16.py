"""Figure 16: miss CPI for doduc with a 64KB data cache.

Section 5.1: growing the cache from 8KB to 64KB cuts doduc's miss CPI
by about 5x, but the curve family looks "remarkably similar" -- the
remaining misses are still clustered enough that aggressive
non-blocking organizations keep their relative advantage.
"""

from __future__ import annotations

from typing import Optional

from dataclasses import replace

from repro.cache.geometry import CacheGeometry
from repro.experiments.base import ExperimentOptions, ExperimentResult, register
from repro.experiments.curves import curve_experiment
from repro.sim.config import baseline_config


@register(
    "fig16",
    "Miss CPI for doduc with a 64KB data cache",
    "Figure 16 (Section 5.1)",
)
def run(options: ExperimentOptions) -> ExperimentResult:
    scale = options.scale
    workers = options.workers
    base = replace(
        baseline_config(),
        geometry=CacheGeometry(size=64 * 1024, line_size=32, associativity=1),
    )
    return curve_experiment(
        "fig16",
        "Miss CPI for doduc, 64KB direct-mapped cache",
        "doduc",
        scale=scale,
        workers=workers,
        base=base,
        notes=(
            "Paper: absolute MCPI falls ~5x versus the 8KB cache but the "
            "relative benefit of each organization is preserved."
        ),
    )
