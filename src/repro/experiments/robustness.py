"""Extension: seed robustness of the synthetic workload models.

The paper's streams were fixed SPEC92 executions; ours are seeded
generators, so this reproduction owes the reader an answer to "would a
different draw change the conclusions?".  For the five detailed
benchmarks this experiment reruns the two headline organizations under
several seeds and reports the mean, the ~95% confidence half-width,
and the min-max spread relative to the mean.
"""

from __future__ import annotations

from typing import List

from repro.core.policies import mc, no_restrict
from repro.experiments.base import ExperimentOptions, ExperimentResult, register
from repro.sim.config import baseline_config
from repro.sim.confidence import replicate

SEEDS = (1, 2, 3, 4, 5)


@register(
    "robustness",
    "Extension: seed robustness of the workload models",
    "Section 3.3 (methodology check for the synthetic substitution)",
)
def run(options: ExperimentOptions) -> ExperimentResult:
    scale = options.scale
    load_latency = options.resolved_latency(10)
    from repro.workloads.spec92 import DETAILED_FIVE, get_benchmark

    headers = ["benchmark", "policy", "mean MCPI", "+/- 95% CI",
               "spread %", "n"]
    rows: List[List[object]] = []
    run_scale = max(0.02, 0.25 * scale)
    for name in DETAILED_FIVE:
        workload = get_benchmark(name)
        for policy in (mc(1), no_restrict()):
            summary = replicate(
                workload, baseline_config(policy),
                load_latency=load_latency, seeds=SEEDS, scale=run_scale,
            )
            rows.append([
                name, policy.name, summary.mean,
                summary.ci95_half_width,
                round(100 * summary.relative_spread, 1),
                summary.n,
            ])
    return ExperimentResult(
        experiment_id="robustness",
        title="MCPI stability across workload seeds",
        headers=headers,
        rows=rows,
        notes=(
            "Purely strided models (e.g. within tomcatv) are seed-exact; "
            "models with random components (hash tables, hot/cold mixes, "
            "pointer-chase orders) move by a few percent.  No conclusion "
            "in EXPERIMENTS.md is sensitive at this level."
        ),
    )
