"""Figure 4: benchmark characteristics vs scheduled load latency.

The paper's table shows, for the five detailed benchmarks, the minimum
and maximum instruction/load/store reference counts over the load
latency set {1,2,3,6,10,20}, and the latencies at which the extrema
occur -- the counts vary because register allocation happens after
scheduling and different schedules spill differently.

We report counts *per original loop iteration* (the paper's are
absolute millions over full SPEC runs); what is reproduced is the
mechanism: reference counts depend on the scheduled load latency.
"""

from __future__ import annotations

from typing import List

from repro.experiments.base import ExperimentOptions, ExperimentResult, register
from repro.sim.simulator import compile_workload
from repro.sim.sweep import PAPER_LATENCIES
from repro.workloads.spec92 import DETAILED_FIVE, get_benchmark


@register(
    "fig4",
    "Benchmark characteristics: references per iteration vs load latency",
    "Figure 4 (Section 3.3)",
)
def run(options: ExperimentOptions) -> ExperimentResult:
    scale = options.scale
    headers = [
        "benchmark",
        "instr min", "lat", "instr max", "lat",
        "loads min", "lat", "loads max", "lat",
        "stores min", "lat", "stores max", "lat",
        "spilled schedules",
    ]
    rows: List[List[object]] = []
    for name in DETAILED_FIVE:
        workload = get_benchmark(name)
        per_lat = {}
        spilled = 0
        for lat in PAPER_LATENCIES:
            body = compile_workload(workload, lat)
            per_lat[lat] = body.per_original_iteration()
            if body.spill_count:
                spilled += 1

        def extreme(index: int, pick) -> tuple:
            lat = pick(per_lat, key=lambda latency: per_lat[latency][index])
            return per_lat[lat][index], lat

        row: List[object] = [name]
        for idx in range(3):
            lo, lo_lat = extreme(idx, min)
            hi, hi_lat = extreme(idx, max)
            row.extend([round(lo, 2), lo_lat, round(hi, 2), hi_lat])
        row.append(spilled)
        rows.append(row)
    return ExperimentResult(
        experiment_id="fig4",
        title="Benchmark characteristics (per original iteration)",
        headers=headers,
        rows=rows,
        notes=(
            "Paper: reference counts change slightly with the scheduled load "
            "latency because register allocation follows scheduling and "
            "spills differ between schedules.  Reproduced as per-iteration "
            "counts over the same latency set {1,2,3,6,10,20}."
        ),
    )
