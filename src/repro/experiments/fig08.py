"""Figure 8: baseline load miss rates for doduc.

Combined (primary + secondary + structural-stall) load miss rate and
the secondary-miss rate alone, per organization and scheduled load
latency.  The paper uses this figure to explain the MCPI dip at
latency 6: instruction movement and load grouping change the
conflict-miss rate, so the miss rate itself is schedule-dependent.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.policies import baseline_policies
from repro.experiments.base import ExperimentOptions, ExperimentResult, register
from repro.sim.config import baseline_config
from repro.sim.sweep import PAPER_LATENCIES, run_curves
from repro.workloads.spec92 import get_benchmark


@register(
    "fig8",
    "Baseline load miss rate for doduc",
    "Figure 8 (Section 4)",
)
def run(options: ExperimentOptions) -> ExperimentResult:
    scale = options.scale
    benchmark = options.resolved_benchmark("doduc")
    workers = options.workers
    workload = get_benchmark(benchmark)
    policies = baseline_policies()
    sweep = run_curves(workload, policies, latencies=PAPER_LATENCIES,
                       workers=workers,
                       base=baseline_config(), scale=scale)
    headers = (
        ["load latency"]
        + [f"{p.name} all%" for p in policies]
        + [f"{p.name} sec%" for p in policies]
    )
    rows: List[List[object]] = []
    for i, lat in enumerate(sweep.latencies):
        row: List[object] = [lat]
        for policy in policies:
            miss = sweep.results[policy.name][i].miss
            row.append(round(100 * miss.load_miss_rate, 2))
        for policy in policies:
            miss = sweep.results[policy.name][i].miss
            row.append(round(100 * miss.secondary_miss_rate, 2))
        rows.append(row)
    return ExperimentResult(
        experiment_id="fig8",
        title=f"Load miss rates for {benchmark} (combined and secondary)",
        headers=headers,
        rows=rows,
        notes=(
            "Paper: the combined primary+secondary miss rate varies with the "
            "schedule (conflict misses from load grouping); organizations "
            "allowing secondary misses convert some would-be stalls into "
            "secondary misses, raising their measured miss rate."
        ),
    )
