"""The asyncio sweep service: submission, coalescing, progress streams.

A long-lived driver (a notebook, a dashboard, the ``python -m repro
serve`` TCP front end) wants three things the blocking sweep API
doesn't give it: non-blocking submission, progress while a sweep
runs, and -- because sweeps are deterministic and memoized --
*coalescing*: two identical sweeps submitted while the first is
still running should execute once and feed both callers.

:class:`SweepService` provides exactly that on top of the planner:

* :meth:`SweepService.submit` hands a cell list to a
  :class:`SweepJob`.  The coalescing key is the plan fingerprint
  (:func:`repro.sim.wire.plan_fingerprint`) -- an order-independent
  digest of the deduplicated cell fingerprints -- so any request for
  the same *set* of cells, however ordered or duplicated, attaches to
  the in-flight execution.  Each subscriber still receives results in
  its own request order.
* Execution runs the planner in the default executor in batches, so
  the event loop stays responsive and progress events stream as
  batches land.  Every batch goes through
  :func:`repro.sim.planner.execute_cells`, so the result store
  memoizes each batch and a re-submitted sweep is a pure cache read.
* :meth:`SweepJob.progress` is an async iterator that replays the
  job's event history and then follows live events; late subscribers
  see the full story.

Service instances are per event loop (:func:`get_service`): asyncio
primitives are loop-bound, and tests routinely spin up several loops
per process.

``serve_forever`` wraps the service in a newline-delimited-JSON TCP
protocol (request: one ``submit_sweep`` object with wire-encoded
cells; response: a stream of progress objects ending in a
wire-encoded result payload) for `python -m repro serve`.
"""

from __future__ import annotations

import asyncio
import json
import weakref
from typing import Dict, List, Optional, Sequence

from repro.errors import ReproError, WireError
from repro.sim import wire
from repro.sim.parallel import Cell
from repro.sim.resultstore import ResultStore, cell_fingerprint
from repro.sim.stats import SimulationResult

#: Cells per executor batch: small enough that progress events flow
#: during a figure-sized sweep, large enough that planner overhead
#: (store probing, dispatch) stays amortized.
DEFAULT_BATCH_SIZE = 16


class SweepJob:
    """One coalesced sweep execution: state, events, results.

    Created by :meth:`SweepService.submit`; never construct directly.
    """

    def __init__(self, key: str, cells: List[Cell]) -> None:
        self.key = key
        self.cells = cells
        self.total = len(cells)
        self.done_cells = 0
        self.state = "pending"  # pending -> running -> done | failed
        self.subscribers = 1
        self._events: List[Dict] = []
        self._queues: List[asyncio.Queue] = []
        self._finished = asyncio.Event()
        self._results: Optional[Dict[str, SimulationResult]] = None
        self._error: Optional[BaseException] = None

    # - event plumbing --------------------------------------------------------

    def _emit(self, event: Dict) -> None:
        self._events.append(event)
        for q in self._queues:
            q.put_nowait(event)

    async def progress(self):
        """Async-iterate this job's events, history first, then live.

        Terminates after the ``done`` / ``failed`` event.  Multiple
        consumers may iterate concurrently; each gets every event.
        """
        queue: asyncio.Queue = asyncio.Queue()
        history = list(self._events)
        finished = self._finished.is_set()
        if not finished:
            self._queues.append(queue)
        try:
            for event in history:
                yield event
                if event["kind"] in ("done", "failed"):
                    return
            if finished:
                return
            while True:
                event = await queue.get()
                yield event
                if event["kind"] in ("done", "failed"):
                    return
        finally:
            if queue in self._queues:
                self._queues.remove(queue)

    async def wait(self) -> List[SimulationResult]:
        """Block until the job finishes; return results in *this*
        job's submission order (re-raises the failure, if any)."""
        await self._finished.wait()
        return self.results_for(self.cells)

    def results_for(self, cells: Sequence[Cell]) -> List[SimulationResult]:
        """Order results for a (possibly coalesced) caller's cell list."""
        if self._error is not None:
            raise self._error
        if self._results is None:
            raise ReproError("sweep job has not finished")
        return [
            self._results[cell_fingerprint(*cell)]
            for cell in cells
        ]

    # - execution (service-driven) --------------------------------------------

    def _finish(self, error: Optional[BaseException] = None) -> None:
        self._error = error
        if error is None:
            self.state = "done"
            self._emit({"kind": "done", "total": self.total})
        else:
            self.state = "failed"
            self._emit({"kind": "failed", "total": self.total,
                        "message": f"{type(error).__name__}: {error}"})
        self._finished.set()
        self._queues.clear()


class SweepService:
    """Per-event-loop sweep submission with request coalescing."""

    def __init__(
        self,
        *,
        workers: Optional[int] = 1,
        backend: Optional[str] = None,
        store: Optional[ResultStore] = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
    ) -> None:
        if batch_size < 1:
            raise ReproError(f"batch_size must be >= 1, got {batch_size}")
        self._workers = workers
        self._backend = backend
        self._store = store
        self._batch_size = batch_size
        self._inflight: Dict[str, SweepJob] = {}
        self.submitted = 0
        self.coalesced = 0

    def submit(self, cells: Sequence[Cell]) -> SweepJob:
        """Start (or join) the execution of ``cells``.

        Must be called from a running event loop.  Returns the
        :class:`SweepJob`; an identical in-flight cell *set* is
        joined rather than re-executed (``job.subscribers`` counts
        the coalesced callers).  Await ``job.wait()`` for results in
        this call's cell order.
        """
        cells = list(cells)
        key = wire.plan_fingerprint(cells)
        self.submitted += 1
        job = self._inflight.get(key)
        if job is not None and not job._finished.is_set():
            job.subscribers += 1
            self.coalesced += 1
            return job
        job = SweepJob(key, cells)
        self._inflight[key] = job
        loop = asyncio.get_running_loop()
        task = loop.create_task(self._run(job))
        # Keep a reference so the task isn't garbage-collected early.
        job._task = task  # type: ignore[attr-defined]
        return job

    async def submit_and_wait(
        self, cells: Sequence[Cell]
    ) -> List[SimulationResult]:
        """Submit and await: the one-shot convenience wrapper."""
        cells = list(cells)
        job = self.submit(cells)
        await job._finished.wait()
        return job.results_for(cells)

    async def _run(self, job: SweepJob) -> None:
        loop = asyncio.get_running_loop()
        job.state = "running"
        job._emit({"kind": "started", "total": job.total,
                   "plan": job.key})
        # Deduplicate here so progress counts unique work; coalesced
        # callers reassemble duplicates from the fingerprint map.
        unique: Dict[str, Cell] = {}
        for cell in job.cells:
            unique.setdefault(cell_fingerprint(*cell), cell)
        order = list(unique)
        results: Dict[str, SimulationResult] = {}
        try:
            for start in range(0, len(order), self._batch_size):
                batch_keys = order[start:start + self._batch_size]
                batch = [unique[k] for k in batch_keys]
                batch_results = await loop.run_in_executor(
                    None, self._execute_batch, batch)
                for fingerprint, result in zip(batch_keys, batch_results):
                    results[fingerprint] = result
                job.done_cells = min(job.total, start + len(batch))
                job._emit({"kind": "progress",
                           "done": len(results),
                           "total": len(order)})
            job._results = results
            job._finish()
        except BaseException as exc:  # noqa: BLE001 - delivered to waiters
            job._finish(exc)
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                raise
        finally:
            if self._inflight.get(job.key) is job:
                del self._inflight[job.key]

    def _execute_batch(self, batch: List[Cell]) -> List[SimulationResult]:
        from repro.sim.planner import execute_cells

        return execute_cells(batch, workers=self._workers,
                             store=self._store, backend=self._backend)


# -- per-loop service instances ------------------------------------------------


_SERVICES: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def get_service(**kwargs) -> SweepService:
    """The running loop's :class:`SweepService` (created on first use).

    Keyword arguments configure the service *only* on creation; a
    loop's existing service is returned as-is so coalescing state
    survives across calls.
    """
    loop = asyncio.get_running_loop()
    service = _SERVICES.get(loop)
    if service is None:
        service = SweepService(**kwargs)
        _SERVICES[loop] = service
    return service


async def submit_sweep(
    cells: Sequence[Cell],
    *,
    workers: Optional[int] = 1,
    backend: Optional[str] = None,
) -> SweepJob:
    """Submit ``cells`` to the running loop's service; returns the job."""
    service = get_service(workers=workers, backend=backend)
    return service.submit(cells)


# -- the TCP front end ---------------------------------------------------------


async def _handle_client(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    service: SweepService,
) -> None:
    def send(obj: Dict) -> None:
        writer.write(json.dumps(obj).encode("utf-8") + b"\n")

    try:
        while True:
            line = await reader.readline()
            if not line:
                break
            try:
                request = json.loads(line)
                if request.get("kind") != "submit_sweep":
                    raise WireError(
                        f"unknown request kind {request.get('kind')!r}")
                cells = wire.cells_from_wire(request["cells"])
            except (ValueError, KeyError, WireError) as exc:
                send({"kind": "failed", "message": str(exc)})
                await writer.drain()
                continue
            job = service.submit(cells)
            async for event in job.progress():
                if event["kind"] == "done":
                    send({"kind": "done", "total": event["total"],
                          "results": wire.results_to_wire(
                              job.results_for(cells))})
                else:
                    send(event)
                await writer.drain()
    except (ConnectionError, asyncio.IncompleteReadError):
        pass
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, OSError, asyncio.CancelledError):
            # Server shutdown cancels handlers mid-close; the
            # connection is going away either way.
            pass


async def serve_forever(
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    workers: Optional[int] = 1,
    backend: Optional[str] = None,
    ready=None,
) -> None:
    """Run the JSON-lines sweep server until cancelled.

    Prints ``serving on host:port`` once listening, mirroring the
    worker's discovery contract for port 0.  When ``ready`` is an
    ``asyncio.Event``-alike, the bound ``(host, port)`` is stored on
    it as ``ready.address`` before ``ready.set()`` -- in-process
    tests use that instead of parsing stdout.
    """
    service = get_service(workers=workers, backend=backend)
    server = await asyncio.start_server(
        lambda r, w: _handle_client(r, w, service), host, port)
    address = server.sockets[0].getsockname()
    print(f"serving on {address[0]}:{address[1]}", flush=True)
    if ready is not None:
        ready.address = (address[0], address[1])
        ready.set()
    async with server:
        await server.serve_forever()
