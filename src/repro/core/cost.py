"""Hardware cost model for MSHR organizations (paper Section 2).

The paper sizes each organization in storage bits plus comparators, for
a machine with a 48-bit physical address, 32-byte cache lines (43-bit
block request address), 6-bit destination-register addresses (64
possible destinations plus the int/fp bit folded in), and ~5 bits of
format information per miss.  The worked examples are:

* basic implicitly addressed MSHR, 8-byte words, 32-byte line:
  ``(4 x 12) + 44 = 92`` bits (Section 2.2),
* implicitly addressed with 4-byte granularity: ``44 + 96 = 140`` bits,
* explicitly addressed with 4 entries: ``(4 x 17) + 44 = 112`` bits,
* hybrid with 2 sub-blocks of 2 entries: ``44 + (4 x 16)`` bits
  (Section 4.1 -- one address bit is implied by the sub-block
  position).  Note the paper states this total as 106, but its own
  expression evaluates to 108; we reproduce the formula, so the hybrid
  costs 108 bits here.

This module reproduces those formulas exactly (tests pin the numbers
above) and generalizes them to arbitrary geometry, plus the inverted
MSHR and in-cache transit-bit organizations of Sections 2.3-2.4.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

#: Paper's assumed physical address width in bits.
PHYSICAL_ADDRESS_BITS = 48
#: Bits to name a destination (register number incl. int/fp select).
DESTINATION_BITS = 6
#: Format information per miss (width, sign extension, byte lane, ...).
FORMAT_BITS = 5
#: Valid bit.
VALID_BIT = 1


def _log2_exact(n: int, what: str) -> int:
    if n <= 0 or n & (n - 1):
        raise ConfigurationError(f"{what} must be a positive power of two: {n}")
    return n.bit_length() - 1


@dataclass(frozen=True)
class MSHRCost:
    """Cost summary for one MSHR organization instance."""

    #: Organization name (for tables).
    organization: str
    #: Storage bits per MSHR (or per entry for the inverted form).
    bits_per_mshr: int
    #: Number of MSHRs (or entries).
    count: int
    #: Address comparators required (one per associatively searched entry).
    comparators: int
    #: Width of each comparator in bits.
    comparator_bits: int

    @property
    def total_bits(self) -> int:
        """Total storage bits across all MSHRs/entries."""
        return self.bits_per_mshr * self.count


def block_address_bits(
    line_size: int, physical_address_bits: int = PHYSICAL_ADDRESS_BITS
) -> int:
    """Bits needed to store a block request address.

    48-bit physical addresses and 32-byte lines give 43 bits.
    """
    return physical_address_bits - _log2_exact(line_size, "line size")


def implicit_mshr_bits(
    line_size: int = 32,
    subblock_size: int = 8,
    physical_address_bits: int = PHYSICAL_ADDRESS_BITS,
) -> int:
    """Bits in one implicitly addressed MSHR (Figure 1).

    One positionally addressed record (valid + destination + format)
    per sub-block of the line, plus the block request address and its
    valid bit.

    >>> implicit_mshr_bits(32, 8)
    92
    >>> implicit_mshr_bits(32, 4)
    140
    """
    if subblock_size > line_size:
        raise ConfigurationError("sub-block larger than the line")
    n_records = line_size // subblock_size
    record = VALID_BIT + DESTINATION_BITS + FORMAT_BITS
    header = block_address_bits(line_size, physical_address_bits) + VALID_BIT
    return header + n_records * record


def explicit_mshr_bits(
    line_size: int = 32,
    n_entries: int = 4,
    physical_address_bits: int = PHYSICAL_ADDRESS_BITS,
) -> int:
    """Bits in one explicitly addressed MSHR (Figure 2).

    Each entry carries a full byte address within the block.

    >>> explicit_mshr_bits(32, 4)
    112
    """
    if n_entries < 1:
        raise ConfigurationError("explicit MSHR needs at least one entry")
    offset_bits = _log2_exact(line_size, "line size")
    entry = VALID_BIT + DESTINATION_BITS + FORMAT_BITS + offset_bits
    header = block_address_bits(line_size, physical_address_bits) + VALID_BIT
    return header + n_entries * entry


def hybrid_mshr_bits(
    line_size: int = 32,
    n_subblocks: int = 2,
    misses_per_subblock: int = 2,
    physical_address_bits: int = PHYSICAL_ADDRESS_BITS,
) -> int:
    """Bits in a hybrid MSHR: explicit entries within implicit sub-blocks.

    The sub-block position supplies the high address bits, so each
    entry stores only ``log2(line_size) - log2(n_subblocks)`` address
    bits (Section 4.1: the 2x2 hybrid needs one less address bit).
    The paper's expression ``44 + (4 x 16)`` for the 2x2 case equals
    108 (the paper's stated total of 106 is an arithmetic slip).

    >>> hybrid_mshr_bits(32, 2, 2)
    108
    """
    offset_bits = _log2_exact(line_size, "line size")
    sub_bits = _log2_exact(n_subblocks, "sub-block count")
    if sub_bits > offset_bits:
        raise ConfigurationError("more sub-blocks than bytes in the line")
    if misses_per_subblock < 1:
        raise ConfigurationError("need at least one miss per sub-block")
    entry = VALID_BIT + DESTINATION_BITS + FORMAT_BITS + (offset_bits - sub_bits)
    header = block_address_bits(line_size, physical_address_bits) + VALID_BIT
    return header + n_subblocks * misses_per_subblock * entry


def inverted_mshr_entry_bits(
    line_size: int = 32, physical_address_bits: int = PHYSICAL_ADDRESS_BITS
) -> int:
    """Bits in one inverted-MSHR entry (Figure 3).

    One entry exists per possible destination; each holds the block
    request address, a valid bit, format information, and the address
    within the block.
    """
    offset_bits = _log2_exact(line_size, "line size")
    return (
        block_address_bits(line_size, physical_address_bits)
        + VALID_BIT
        + FORMAT_BITS
        + offset_bits
    )


def implicit_mshr_cost(
    line_size: int = 32,
    subblock_size: int = 8,
    n_mshrs: int = 1,
    physical_address_bits: int = PHYSICAL_ADDRESS_BITS,
) -> MSHRCost:
    """Cost of a file of implicitly addressed MSHRs."""
    bits = implicit_mshr_bits(line_size, subblock_size, physical_address_bits)
    return MSHRCost(
        organization=f"implicit({line_size}B line, {subblock_size}B sub-blocks)",
        bits_per_mshr=bits,
        count=n_mshrs,
        comparators=n_mshrs,
        comparator_bits=block_address_bits(line_size, physical_address_bits),
    )


def explicit_mshr_cost(
    line_size: int = 32,
    n_entries: int = 4,
    n_mshrs: int = 1,
    physical_address_bits: int = PHYSICAL_ADDRESS_BITS,
) -> MSHRCost:
    """Cost of a file of explicitly addressed MSHRs."""
    bits = explicit_mshr_bits(line_size, n_entries, physical_address_bits)
    return MSHRCost(
        organization=f"explicit({line_size}B line, {n_entries} entries)",
        bits_per_mshr=bits,
        count=n_mshrs,
        comparators=n_mshrs,
        comparator_bits=block_address_bits(line_size, physical_address_bits),
    )


def hybrid_mshr_cost(
    line_size: int = 32,
    n_subblocks: int = 2,
    misses_per_subblock: int = 2,
    n_mshrs: int = 1,
    physical_address_bits: int = PHYSICAL_ADDRESS_BITS,
) -> MSHRCost:
    """Cost of a file of hybrid implicit/explicit MSHRs."""
    bits = hybrid_mshr_bits(
        line_size, n_subblocks, misses_per_subblock, physical_address_bits
    )
    return MSHRCost(
        organization=(
            f"hybrid({line_size}B line, {n_subblocks}x{misses_per_subblock})"
        ),
        bits_per_mshr=bits,
        count=n_mshrs,
        comparators=n_mshrs,
        comparator_bits=block_address_bits(line_size, physical_address_bits),
    )


def inverted_mshr_cost(
    n_destinations: int = 70,
    line_size: int = 32,
    physical_address_bits: int = PHYSICAL_ADDRESS_BITS,
) -> MSHRCost:
    """Cost of an inverted MSHR (Section 2.4).

    A "typical inverted MSHR might have between 65 and 75 entries": all
    integer and FP registers, write-buffer entries, the PC, and an
    instruction prefetch buffer.  Every entry is associatively
    searched, so each needs a comparator (the same basic circuits as a
    fully associative TLB plus a match-entry encoder).
    """
    if n_destinations < 1:
        raise ConfigurationError("inverted MSHR needs at least one destination")
    bits = inverted_mshr_entry_bits(line_size, physical_address_bits)
    return MSHRCost(
        organization=f"inverted({n_destinations} destinations)",
        bits_per_mshr=bits,
        count=n_destinations,
        comparators=n_destinations,
        comparator_bits=block_address_bits(line_size, physical_address_bits),
    )


def in_cache_storage_cost(cache_size: int = 8 * 1024, line_size: int = 32) -> MSHRCost:
    """Cost of in-cache MSHR storage (Section 2.3).

    Franklin and Sohi's scheme adds one *transit bit* per cache line;
    the line's tag and data array hold the MSHR information while the
    fetch is outstanding.  The incremental storage is one bit per line
    (the comparators already exist in the tag array).
    """
    if cache_size % line_size:
        raise ConfigurationError("line size must divide the cache size")
    n_lines = cache_size // line_size
    return MSHRCost(
        organization=f"in-cache({cache_size // 1024}KB, {line_size}B lines)",
        bits_per_mshr=1,
        count=n_lines,
        comparators=0,
        comparator_bits=0,
    )
