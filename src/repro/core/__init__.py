"""The paper's primary contribution: non-blocking load machinery.

* :mod:`repro.core.policies` -- the restriction space (``mc=``, ``fc=``,
  ``fs=``, field layouts, no-restrict).
* :mod:`repro.core.handler` -- the runtime lockup-free cache model.
* :mod:`repro.core.classify` -- primary / secondary / structural-stall
  miss taxonomy.
* :mod:`repro.core.cost` -- the Section 2 hardware cost formulas.
* :mod:`repro.core.stats` -- miss-level counters and in-flight
  histograms.
"""

from repro.core.classify import AccessOutcome, StructuralCause, is_miss
from repro.core.cost import (
    MSHRCost,
    block_address_bits,
    explicit_mshr_bits,
    explicit_mshr_cost,
    hybrid_mshr_bits,
    hybrid_mshr_cost,
    implicit_mshr_bits,
    implicit_mshr_cost,
    in_cache_storage_cost,
    inverted_mshr_cost,
    inverted_mshr_entry_bits,
)
from repro.core.handler import MissHandler
from repro.core.mshr import (
    DestinationField,
    InvertedMSHRFile,
    MSHRFile,
    RegisterMSHR,
)
from repro.core.policies import (
    UNLIMITED_LAYOUT,
    FieldLayout,
    MSHRPolicy,
    baseline_policies,
    blocking_cache,
    explicit,
    fc,
    fs,
    implicit,
    in_cache,
    inverted,
    mc,
    no_restrict,
    table13_policies,
    with_layout,
)
from repro.core.stats import MissStats

__all__ = [
    "AccessOutcome",
    "StructuralCause",
    "is_miss",
    "MSHRCost",
    "block_address_bits",
    "implicit_mshr_bits",
    "explicit_mshr_bits",
    "hybrid_mshr_bits",
    "inverted_mshr_entry_bits",
    "implicit_mshr_cost",
    "explicit_mshr_cost",
    "hybrid_mshr_cost",
    "inverted_mshr_cost",
    "in_cache_storage_cost",
    "MissHandler",
    "MissStats",
    "RegisterMSHR",
    "MSHRFile",
    "InvertedMSHRFile",
    "DestinationField",
    "FieldLayout",
    "UNLIMITED_LAYOUT",
    "MSHRPolicy",
    "baseline_policies",
    "table13_policies",
    "blocking_cache",
    "mc",
    "fc",
    "fs",
    "in_cache",
    "inverted",
    "no_restrict",
    "with_layout",
    "implicit",
    "explicit",
]
