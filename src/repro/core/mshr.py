"""Register-level MSHR models: Figures 1-3 as executable hardware.

The policy engine (:mod:`repro.core.policies` +
:mod:`repro.core.handler`) captures each organization's *restrictions*
abstractly, which is all the timing study needs.  This module models
the organizations at the register level the paper draws them at: the
actual fields (valid bits, block request address, destination and
format fields), how a probe searches them, and what allocation and
fill do to them.  It exists for three reasons:

* it makes Section 2 executable and testable (the field arithmetic in
  :mod:`repro.core.cost` is derived from exactly these structures);
* it documents precisely which field runs out in each structural-stall
  case the timing model charges for;
* unit tests cross-check it against the policy engine: for any access
  sequence, a file of register-level MSHRs accepts a miss exactly when
  the corresponding abstract policy does.

Addresses handed to these models are byte addresses; widths matter
only through the sub-block a miss lands in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.cost import (
    MSHRCost,
    explicit_mshr_cost,
    hybrid_mshr_cost,
    implicit_mshr_cost,
    inverted_mshr_cost,
)
from repro.core.policies import FieldLayout, MSHRPolicy, UNLIMITED_LAYOUT
from repro.errors import ConfigurationError, SimulationError


@dataclass
class DestinationField:
    """One destination record: valid + destination + format (+ offset).

    Implicit organizations imply the offset from the field's position;
    explicit organizations store it (``offset`` is kept in both cases
    for introspection).
    """

    valid: bool = False
    destination: Optional[int] = None
    offset: Optional[int] = None


class RegisterMSHR:
    """One MSHR: a block request address plus destination fields.

    ``layout`` gives the field organization: ``n_subblocks`` groups of
    ``misses_per_subblock`` fields each (Figure 1 when the group size
    is 1, Figure 2 when there is a single group, hybrids otherwise).
    """

    def __init__(self, line_size: int, layout: FieldLayout) -> None:
        if layout.unlimited:
            raise ConfigurationError(
                "a register-level MSHR needs a finite field layout"
            )
        self.line_size = line_size
        self.layout = layout
        self.block_valid = False
        self.block_address: Optional[int] = None
        per = layout.misses_per_subblock
        assert per is not None
        self.fields: List[List[DestinationField]] = [
            [DestinationField() for _ in range(per)]
            for _ in range(layout.n_subblocks)
        ]
        self._sub_size = line_size // layout.n_subblocks

    # -- the comparator -------------------------------------------------------

    def matches(self, block: int) -> bool:
        """The per-MSHR comparator of Figures 1-2."""
        return self.block_valid and self.block_address == block

    # -- field management ------------------------------------------------------

    def _subblock_of(self, offset: int) -> int:
        if not 0 <= offset < self.line_size:
            raise SimulationError(f"offset {offset} outside the line")
        return offset // self._sub_size

    def free_field(self, offset: int) -> Optional[DestinationField]:
        """The field a miss at ``offset`` would take, if any is free."""
        for candidate in self.fields[self._subblock_of(offset)]:
            if not candidate.valid:
                return candidate
        return None

    def allocate(self, block: int, offset: int, destination: int) -> bool:
        """Record a miss; returns False on a structural field conflict.

        The first allocation claims the MSHR (sets the block request
        address); later ones must match the block.
        """
        if self.block_valid and self.block_address != block:
            raise SimulationError("allocate against a mismatched MSHR")
        slot = self.free_field(offset)
        if slot is None:
            return False
        if not self.block_valid:
            self.block_valid = True
            self.block_address = block
        slot.valid = True
        slot.destination = destination
        slot.offset = offset
        return True

    def fill(self) -> List[int]:
        """Complete the fetch: return waiting destinations, clear all."""
        destinations = [
            f.destination for group in self.fields for f in group
            if f.valid and f.destination is not None
        ]
        self.block_valid = False
        self.block_address = None
        for group in self.fields:
            for f in group:
                f.valid = False
                f.destination = None
                f.offset = None
        return destinations

    @property
    def busy(self) -> bool:
        return self.block_valid

    def occupancy(self) -> int:
        """Number of valid destination fields."""
        return sum(1 for g in self.fields for f in g if f.valid)


class MSHRFile:
    """A bank of register-level MSHRs searched associatively.

    ``probe`` + ``allocate`` implement the Section 2 flow: on a miss,
    every MSHR's comparator is checked; a match merges into that MSHR
    (if a field is free), otherwise a free MSHR is claimed.
    """

    def __init__(self, n_mshrs: int, line_size: int = 32,
                 layout: FieldLayout = FieldLayout(1, 4)) -> None:
        if n_mshrs < 1:
            raise ConfigurationError("an MSHR file needs at least one MSHR")
        self.line_size = line_size
        self.mshrs = [RegisterMSHR(line_size, layout) for _ in range(n_mshrs)]
        self._by_block: Dict[int, RegisterMSHR] = {}

    def probe(self, block: int) -> Optional[RegisterMSHR]:
        """Associative search: the MSHR holding ``block``, if any."""
        return self._by_block.get(block)

    def accepts(self, block: int, offset: int) -> bool:
        """Would a miss be accepted without a structural stall?"""
        matched = self.probe(block)
        if matched is not None:
            return matched.free_field(offset) is not None
        return any(not m.busy for m in self.mshrs)

    def allocate(self, block: int, offset: int, destination: int) -> bool:
        """Record a miss; False means a structural stall."""
        matched = self.probe(block)
        if matched is not None:
            return matched.allocate(block, offset, destination)
        for mshr in self.mshrs:
            if not mshr.busy:
                assert mshr.allocate(block, offset, destination)
                self._by_block[block] = mshr
                return True
        return False

    def fill(self, block: int) -> List[int]:
        """Complete ``block``'s fetch; returns the waiting destinations."""
        mshr = self._by_block.pop(block, None)
        if mshr is None:
            raise SimulationError(f"fill for block {block} with no MSHR")
        return mshr.fill()

    def outstanding_fetches(self) -> int:
        return sum(1 for m in self.mshrs if m.busy)

    def outstanding_misses(self) -> int:
        return sum(m.occupancy() for m in self.mshrs)

    def cost(self) -> MSHRCost:
        """Section 2 storage cost of this file."""
        layout = self.mshrs[0].layout
        if layout.n_subblocks == 1:
            return explicit_mshr_cost(
                self.line_size, layout.misses_per_subblock or 1,
                n_mshrs=len(self.mshrs),
            )
        if layout.misses_per_subblock == 1:
            return implicit_mshr_cost(
                self.line_size, self.line_size // layout.n_subblocks,
                n_mshrs=len(self.mshrs),
            )
        return hybrid_mshr_cost(
            self.line_size, layout.n_subblocks,
            layout.misses_per_subblock or 1, n_mshrs=len(self.mshrs),
        )

    def as_policy(self, name: Optional[str] = None) -> MSHRPolicy:
        """The abstract policy this file implements."""
        layout = self.mshrs[0].layout
        return MSHRPolicy(
            name=name or f"{len(self.mshrs)}x MSHR {layout.describe()}",
            max_fetches=len(self.mshrs),
            layout=layout,
        )


def replay_events(
    file: MSHRFile, events: List[tuple]
) -> List[bool]:
    """Drive a register-level MSHR file over a miss-event stream.

    The replay-facing entry point for fused sweeps' diagnostics and
    the policy cross-check tests: ``events`` is a sequence of
    ``(block, offset, destination)`` miss records (the shape the event
    stream's miss references reduce to), applied in order.  Outstanding
    fetches fill in FIFO order, exactly like the timing model's
    pipelined memory: when an event cannot allocate -- no matching
    MSHR with a free field, or no free MSHR -- the oldest outstanding
    fetch is filled and the event retries, mirroring the handler's
    stall-until-earliest-fill arbitration.

    Returns one flag per event: ``True`` if it was accepted without a
    structural stall, ``False`` if at least one fill was needed first.
    """
    fifo: List[int] = []
    flags: List[bool] = []
    for block, offset, destination in events:
        stalled = False
        while True:
            merging = file.probe(block) is not None
            if file.allocate(block, offset, destination):
                if not merging:
                    fifo.append(block)
                break
            if not fifo:
                raise SimulationError(
                    "miss rejected with no fetch outstanding"
                )
            stalled = True
            file.fill(fifo.pop(0))
        flags.append(not stalled)
    return flags


class InvertedMSHRFile:
    """The inverted organization of Figure 3: one entry per destination.

    Each entry carries (valid, block request address, format, address
    in block); a miss writes the entry for its destination; a fill
    probes all entries (the TLB-style comparators plus the match
    encoder) and returns the matching destinations.
    """

    def __init__(self, n_destinations: int = 70, line_size: int = 32) -> None:
        if n_destinations < 1:
            raise ConfigurationError("need at least one destination entry")
        self.line_size = line_size
        self.n_destinations = n_destinations
        self.valid = [False] * n_destinations
        self.block = [0] * n_destinations
        self.offset = [0] * n_destinations

    def accepts(self, destination: int) -> bool:
        """A miss is representable iff its destination entry exists and
        is free (a pending destination cannot wait on two fetches)."""
        return (0 <= destination < self.n_destinations
                and not self.valid[destination])

    def fetch_needed(self, block: int) -> bool:
        """True when no outstanding entry already covers ``block``."""
        return not any(
            v and b == block for v, b in zip(self.valid, self.block)
        )

    def allocate(self, block: int, offset: int, destination: int) -> bool:
        if not self.accepts(destination):
            return False
        self.valid[destination] = True
        self.block[destination] = block
        self.offset[destination] = offset
        return True

    def fill(self, block: int) -> List[int]:
        """Probe all entries (match encoder) and release the waiters."""
        waiters = []
        for dest in range(self.n_destinations):
            if self.valid[dest] and self.block[dest] == block:
                waiters.append(dest)
                self.valid[dest] = False
        return waiters

    def outstanding_misses(self) -> int:
        return sum(self.valid)

    def cost(self) -> MSHRCost:
        return inverted_mshr_cost(self.n_destinations, self.line_size)
