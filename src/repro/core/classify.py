"""Miss taxonomy used throughout the study (paper Sections 1-2).

The paper divides data-cache misses into three categories:

* **primary miss** -- the first miss to a cache block with a given tag
  (Kroft's terminology).  A primary miss launches a fetch.
* **secondary miss** -- a subsequent miss to a block that is already
  being fetched, when the hardware has a free in-flight-miss resource
  for it.  Secondary misses merge into the outstanding fetch and do not
  stall the processor.
* **structural-stall miss** -- a miss that *would* have been secondary
  (or primary) but stalls the processor because of a structural hazard:
  no free MSHR, no free destination field in the matching MSHR's
  sub-block, too many misses outstanding, or too many fetches
  outstanding to the set.

This module defines the outcome codes shared between the miss handler
and the statistics layer.  The integer values are used in hot-loop
dispatch, so they are stable.
"""

from __future__ import annotations

import enum


class AccessOutcome(enum.IntEnum):
    """Result of presenting a load to the lockup-free cache."""

    #: The block was present: single-cycle access.
    HIT = 0
    #: First miss to the block; a fetch was launched.
    PRIMARY = 1
    #: Merged into an outstanding fetch without stalling.
    SECONDARY = 2
    #: Stalled by a structural hazard before completing.
    STRUCTURAL = 3
    #: Miss on a blocking (lockup) cache; processor stalled for the
    #: full miss penalty.
    BLOCKING = 4


class StructuralCause(enum.IntEnum):
    """Why a structural-stall miss stalled.

    ``NONE`` is used for outcomes other than ``STRUCTURAL``.
    """

    NONE = 0
    #: All MSHRs (fetch slots) were busy and the miss needed a new fetch.
    NO_FETCH_SLOT = 1
    #: The total outstanding-miss limit (``mc=N``) was reached.
    NO_MISS_SLOT = 2
    #: The per-set fetch limit (``fs=N`` / in-cache storage) was reached.
    NO_SET_SLOT = 3
    #: The matching MSHR had no free destination field for the miss's
    #: sub-block (implicit/explicit/hybrid field exhaustion).
    NO_DEST_FIELD = 4


#: Outcomes that count as misses in the load miss rate (Figure 8
#: counts primary plus secondary; structural-stall misses are tallied
#: separately because they occupy no in-flight resources).
MISS_OUTCOMES = (
    AccessOutcome.PRIMARY,
    AccessOutcome.SECONDARY,
    AccessOutcome.STRUCTURAL,
    AccessOutcome.BLOCKING,
)


def is_miss(outcome: AccessOutcome) -> bool:
    """True for any outcome other than a hit."""
    return outcome != AccessOutcome.HIT
