"""The lockup-free cache miss handler: the paper's machinery, executable.

:class:`MissHandler` combines a tag store, a pipelined memory, a write
buffer, and an :class:`repro.core.policies.MSHRPolicy` into the data
side of the paper's machine model.  The processor model calls
:meth:`MissHandler.load` / :meth:`MissHandler.store` with the issue
cycle of each memory instruction and receives back when the instruction
releases the pipeline and when its data becomes valid.

Timing contract (chosen so that the paper's boundary behaviours hold
exactly):

* a load issued at cycle ``t`` that hits produces data usable by an
  instruction issuing at ``t + 1`` ("data cache references that hit in
  the cache require a single cycle", Section 3.1);
* a load miss launches its fetch at the end of its cycle; the whole
  line and *all* waiting registers fill at ``t + 1 + penalty``
  (simultaneous update, the multiple-write-port assumption of
  Section 3.1; ``fill_ports`` serializes this for the Section 6
  ablation, and the in-cache MSHR organization's ``fill_overhead``
  extends every fill by its MSHR read-out time);
* a blocking (``mc=0``) miss stalls the processor until the fill, so
  each miss costs exactly ``penalty`` stall cycles and the blocking
  MCPI is strictly linear in the miss penalty, as Figure 18 observes;
* a structural-stall miss freezes the processor until the earliest
  event that removes the hazard, then replays: if the awaited event was
  its own block's fill the replay completes as a hit; otherwise the
  replay re-arbitrates for the freed resource.

Because the memory is fully pipelined with a constant latency, fetch
completion times are known at launch and are monotone in launch order,
so outstanding fetches form a FIFO and no event queue is needed.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.cache.geometry import CacheGeometry
from repro.cache.memory import PipelinedMemory
from repro.cache.tags import TagStore, make_tag_store
from repro.cache.write_buffer import WriteBuffer
from repro.core.classify import AccessOutcome, StructuralCause
from repro.core.policies import MSHRPolicy
from repro.core.stats import HIST_BUCKETS, MissStats
from repro.errors import SimulationError

#: Sentinel "fill time" meaning no fetch is outstanding: any real cycle
#: number compares below it, so ``cycle < next_fill_time()`` is the
#: complete validity test for the hit fast path.
FAR_FUTURE = 1 << 62


def blocking_end_cycle(
    *,
    instructions: int,
    load_misses: int,
    store_misses: int,
    penalty: int,
    write_allocate_blocking: bool,
) -> int:
    """End cycle of a blocking (``mc=0``) run, in closed form.

    The immediate-install machine has no overlap: every load miss
    stalls for exactly ``penalty`` cycles (the effective miss penalty
    including any ``fill_overhead``), data returns with the pipeline
    release so true-dependency stalls are zero, and with the ideal
    write buffer stores are free (plus, under ``+wma``, a penalty-long
    stall per store miss).  This is the arithmetic shared by
    :meth:`MissHandler.absorb_blocking_run` (which also updates the
    handler's statistics) and the analytical screening tier's bound
    primitives (:mod:`repro.sim.bounds`), which use it both as the
    blocking family's exact value and as the non-blocking families'
    no-overlap upper bound.
    """
    end = instructions + load_misses * penalty
    if write_allocate_blocking:
        end += store_misses * penalty
    return end


class _Fetch:
    """One outstanding line fetch (one occupied MSHR)."""

    __slots__ = ("block", "set_idx", "fill_time", "n_misses", "sub_counts")

    def __init__(self, block: int, set_idx: int, fill_time: int) -> None:
        self.block = block
        self.set_idx = set_idx
        self.fill_time = fill_time
        #: Misses merged into this fetch, including the primary.
        self.n_misses = 1
        #: Per-sub-block miss counts; lazily allocated only when the
        #: policy's field layout is finite.
        self.sub_counts: Optional[List[int]] = None


class MissHandler:
    """Runtime state of a lockup-free data cache under one policy."""

    def __init__(
        self,
        policy: MSHRPolicy,
        geometry: CacheGeometry,
        memory: PipelinedMemory,
        tags: Optional[TagStore] = None,
        write_buffer: Optional[WriteBuffer] = None,
    ) -> None:
        self.policy = policy
        self.geometry = geometry
        self.memory = memory
        self.tags = tags if tags is not None else make_tag_store(geometry)
        self.write_buffer = write_buffer if write_buffer is not None else WriteBuffer()
        self.stats = MissStats()

        self._offset_bits = geometry.offset_bits
        self._penalty = memory.miss_penalty + policy.fill_overhead

        # Outstanding fetches in launch (== fill) order plus a block index.
        self._fifo: List[_Fetch] = []
        self._by_block: Dict[int, _Fetch] = {}
        self._n_misses_out = 0
        # Per-set outstanding fetch counts, kept only under an fs limit.
        self._per_set: Dict[int, int] = {}

        # Field-layout geometry (finite layouts only).
        layout = policy.layout
        self._layout_limited = not layout.unlimited
        self._n_subblocks = layout.n_subblocks
        self._sub_limit = layout.misses_per_subblock
        if self._layout_limited and self._n_subblocks > geometry.line_size:
            raise SimulationError(
                "field layout has more sub-blocks than bytes per line"
            )
        # offset -> sub-block index is offset >> sub_shift.
        sub_size = geometry.line_size // self._n_subblocks
        self._sub_shift = sub_size.bit_length() - 1

        # Histogram integration state.
        self._last_t = 0
        self._line_mask = geometry.line_size - 1

    # -- occupancy histogram integration -------------------------------------

    def _advance(self, t: int) -> None:
        """Integrate in-flight occupancy up to cycle ``t``."""
        dt = t - self._last_t
        if dt <= 0:
            return
        stats = self.stats
        n_f = len(self._fifo)
        n_m = self._n_misses_out
        stats.fetch_inflight_hist[n_f if n_f < HIST_BUCKETS else 7] += dt
        stats.miss_inflight_hist[n_m if n_m < HIST_BUCKETS else 7] += dt
        self._last_t = t

    # -- fill processing -------------------------------------------------------

    def _install(self, block: int) -> None:
        if self.tags.install(block) is not None:
            self.stats.evictions += 1

    def _drain(self, now: int) -> None:
        """Complete every fetch whose fill time has arrived."""
        fifo = self._fifo
        while fifo and fifo[0].fill_time <= now:
            fetch = fifo[0]
            self._advance(fetch.fill_time)
            del fifo[0]
            del self._by_block[fetch.block]
            self._n_misses_out -= fetch.n_misses
            if self._per_set:
                remaining = self._per_set.get(fetch.set_idx, 0) - 1
                if remaining > 0:
                    self._per_set[fetch.set_idx] = remaining
                else:
                    self._per_set.pop(fetch.set_idx, None)
            self._install(fetch.block)

    # -- helpers ----------------------------------------------------------------

    def _earliest_fill(self) -> int:
        return self._fifo[0].fill_time

    def _earliest_fill_in_set(self, set_idx: int) -> int:
        for fetch in self._fifo:
            if fetch.set_idx == set_idx:
                return fetch.fill_time
        raise SimulationError("per-set limit hit with no fetch in the set")

    def _field_free(self, fetch: _Fetch, sub_idx: int) -> bool:
        if not self._layout_limited:
            return True
        counts = fetch.sub_counts
        if counts is None:
            return True
        return counts[sub_idx] < self._sub_limit  # type: ignore[operator]

    def _take_field(self, fetch: _Fetch, sub_idx: int) -> None:
        if not self._layout_limited:
            return
        if fetch.sub_counts is None:
            fetch.sub_counts = [0] * self._n_subblocks
        fetch.sub_counts[sub_idx] += 1

    def _data_ready(self, fetch: _Fetch, position: int) -> int:
        """When the destination at attach ``position`` becomes valid."""
        ports = self.policy.fill_ports
        if ports is None:
            return fetch.fill_time
        return fetch.fill_time + position // ports

    def _launch(self, block: int, set_idx: int, sub_idx: int, t: int) -> _Fetch:
        self._advance(t)
        fetch = _Fetch(block, set_idx, t + 1 + self._penalty)
        self._fifo.append(fetch)
        self._by_block[block] = fetch
        self._n_misses_out += 1
        self._take_field(fetch, sub_idx)
        if self.policy.max_fetches_per_set is not None:
            self._per_set[set_idx] = self._per_set.get(set_idx, 0) + 1
        stats = self.stats
        stats.fetches_launched += 1
        if self._n_misses_out > stats.max_misses_inflight:
            stats.max_misses_inflight = self._n_misses_out
        if len(self._fifo) > stats.max_fetches_inflight:
            stats.max_fetches_inflight = len(self._fifo)
        return fetch

    # -- the access interface ------------------------------------------------

    def load(self, addr: int, now: int) -> Tuple[int, int, AccessOutcome]:
        """Present a load issued at cycle ``now``.

        Returns ``(next_issue, data_ready, outcome)``: the cycle at
        which the next instruction may issue, the cycle at which the
        loaded register becomes valid, and the miss classification.
        Structural and blocking stall cycles are recorded in
        :attr:`stats`; the caller accounts only true-data-dependency
        stalls.
        """
        stats = self.stats
        stats.loads += 1
        block = addr >> self._offset_bits
        self._drain(now)

        if self.tags.access(block):
            stats.load_hits += 1
            return now + 1, now + 1, AccessOutcome.HIT

        policy = self.policy
        if policy.blocking:
            stats.blocking_misses += 1
            stats.blocking_stall_cycles += self._penalty
            ready = now + 1 + self._penalty
            self._install(block)
            return ready, ready, AccessOutcome.BLOCKING

        t = now
        stalled = False
        stall_cause = StructuralCause.NONE
        while True:
            fetch = self._by_block.get(block)
            if fetch is not None:
                sub_idx = (addr & self._line_mask) >> self._sub_shift
                miss_ok = (
                    policy.max_misses is None
                    or self._n_misses_out < policy.max_misses
                )
                if miss_ok and self._field_free(fetch, sub_idx):
                    # Secondary miss: merge into the outstanding fetch.
                    self._advance(t)
                    position = fetch.n_misses
                    fetch.n_misses = position + 1
                    self._n_misses_out += 1
                    self._take_field(fetch, sub_idx)
                    if self._n_misses_out > stats.max_misses_inflight:
                        stats.max_misses_inflight = self._n_misses_out
                    ready = self._data_ready(fetch, position)
                    if stalled:
                        stats.count_structural(stall_cause)
                        stats.structural_stall_cycles += t - now
                        return t + 1, ready, AccessOutcome.STRUCTURAL
                    stats.secondary_misses += 1
                    return t + 1, ready, AccessOutcome.SECONDARY
                # Structural hazard on the merge path.
                if not stalled:
                    stalled = True
                    stall_cause = (
                        StructuralCause.NO_MISS_SLOT
                        if not miss_ok
                        else StructuralCause.NO_DEST_FIELD
                    )
                if not miss_ok:
                    # A miss slot frees at the earliest fill anywhere,
                    # possibly before our block's own fill.
                    t = self._earliest_fill()
                else:
                    # Destination fields free only when the block fills.
                    t = fetch.fill_time
                self._drain(t)
                if self.tags.access(block):
                    # Our block filled while we were stalled: complete
                    # the replay as a hit.
                    stats.count_structural(stall_cause)
                    stats.structural_stall_cycles += t - now
                    return t + 1, t + 1, AccessOutcome.STRUCTURAL
                continue

            # No outstanding fetch for this block: primary-miss path.
            set_idx = block & (self.geometry.num_sets - 1)
            wait_until = t
            cause = StructuralCause.NONE
            if (
                policy.max_fetches is not None
                and len(self._fifo) >= policy.max_fetches
            ):
                wait_until = max(wait_until, self._earliest_fill())
                cause = StructuralCause.NO_FETCH_SLOT
            if (
                policy.max_misses is not None
                and self._n_misses_out >= policy.max_misses
            ):
                wait_until = max(wait_until, self._earliest_fill())
                cause = StructuralCause.NO_MISS_SLOT
            if policy.max_fetches_per_set is not None:
                if self._per_set.get(set_idx, 0) >= policy.max_fetches_per_set:
                    wait_until = max(
                        wait_until, self._earliest_fill_in_set(set_idx)
                    )
                    cause = StructuralCause.NO_SET_SLOT
            if cause is StructuralCause.NONE:
                sub_idx = (addr & self._line_mask) >> self._sub_shift
                fetch = self._launch(block, set_idx, sub_idx, t)
                if stalled:
                    stats.count_structural(stall_cause)
                    stats.structural_stall_cycles += t - now
                    return t + 1, fetch.fill_time, AccessOutcome.STRUCTURAL
                stats.primary_misses += 1
                return t + 1, fetch.fill_time, AccessOutcome.PRIMARY
            if not stalled:
                stalled = True
                stall_cause = cause
            if wait_until <= t:
                raise SimulationError("structural stall made no progress")
            t = wait_until
            self._drain(t)
            # The block cannot have been installed while no fetch for it
            # existed, so loop straight into re-arbitration.

    def store(self, addr: int, now: int) -> Tuple[int, bool]:
        """Present a store issued at cycle ``now``.

        Returns ``(next_issue, hit)``.  The baseline policy is
        write-through with write-around (no-write-allocate), serviced
        by the write buffer, so stores normally complete in one cycle.
        Under ``write_allocate_blocking`` (the ``+wma`` curve) a store
        miss fetches the line and stalls the processor for the full
        miss penalty.
        """
        stats = self.stats
        stats.stores += 1
        block = addr >> self._offset_bits
        self._drain(now)

        hit = self.tags.access(block)
        if hit:
            stats.store_hits += 1
        else:
            stats.store_misses += 1
        wb_stall = self.write_buffer.push(now)
        if wb_stall:
            stats.write_buffer_stall_cycles += wb_stall
        next_issue = now + 1 + wb_stall
        if not hit and self.policy.write_allocate_blocking:
            stats.write_allocate_stall_cycles += self._penalty
            next_issue += self._penalty
            self._install(block)
        return next_issue, hit

    def checkpoint(self, cycle: int) -> MissStats:
        """Snapshot the statistics as of ``cycle`` (for warmup discard).

        Brings fills and histogram integration up to ``cycle`` first so
        the snapshot is exact.
        """
        self._drain(cycle)
        self._advance(cycle)
        snap = self.stats.snapshot()
        snap.observed_cycles = cycle
        return snap

    def finalize(self, end_cycle: int) -> None:
        """Close the books at ``end_cycle``: drain fills, fix histograms."""
        self._drain(end_cycle)
        self._advance(end_cycle)
        self.stats.observed_cycles = end_cycle

    # -- the hit fast path -------------------------------------------------------

    def next_fill_time(self) -> int:
        """Fill time of the earliest outstanding fetch (the fast-path fence).

        Until this cycle, :meth:`load`/:meth:`store` on a *resident*
        block cannot observe any state change -- ``_drain`` would be a
        no-op -- so the engines may account such hits inline.  Returns
        :data:`FAR_FUTURE` when nothing is outstanding.
        """
        fifo = self._fifo
        return fifo[0].fill_time if fifo else FAR_FUTURE

    def absorb_fast_hits(
        self, n_loads: int, n_stores: int, n_store_misses: int = 0
    ) -> None:
        """Credit accesses the engine accounted inline (fast path).

        Every absorbed access was a 1-cycle access issued strictly
        before :meth:`next_fill_time`: load hits and store hits on
        resident blocks, plus -- under write-around with the ideal
        write buffer -- store misses, which launch no fetch and
        install no line, so the only state the slow path would have
        touched is these counters (plus the LRU update, which the tag
        store's ``hit_probe`` already performed, and the ideal write
        buffer's traffic count).
        """
        stats = self.stats
        if n_loads:
            stats.loads += n_loads
            stats.load_hits += n_loads
        if n_stores or n_store_misses:
            stats.stores += n_stores + n_store_misses
            stats.store_hits += n_stores
            stats.store_misses += n_store_misses
            self.write_buffer.pushes += n_stores + n_store_misses

    def replay_hooks(self):
        """The replay kernel's view of this handler, or ``None``.

        Returns ``(hit_probe, next_fill_time, store_mode,
        absorb_fast_hits, pure_resident)`` -- the fast-path contract
        minus ``offset_bits``, which the replay kernel does not need
        because its event stream carries pre-shifted line addresses
        (:mod:`repro.cpu.replay`).  ``None`` means the handler cannot
        support inline hit accounting and the caller must fall back to
        full execution.
        """
        hooks = self.fast_path_hooks()
        if hooks is None:
            return None
        probe, next_fill, store_mode, _offset_bits, absorb, pure = hooks
        return probe, next_fill, store_mode, absorb, pure

    def absorb_blocking_run(
        self,
        *,
        instructions: int,
        load_hits: int,
        load_misses: int,
        store_hits: int,
        store_misses: int,
        evictions: int,
    ) -> Optional[int]:
        """Account a whole blocking-policy run from functional aggregates.

        A blocking (``mc=0``) machine is the immediate-install cache:
        every load miss stalls for exactly the penalty and installs
        before the next instruction issues, loads return data with the
        pipeline release so true-dependency stalls are zero, and with
        the ideal write buffer stores are pure counter updates (plus,
        under ``+wma``, a penalty-long stall per store miss).  The end
        cycle is therefore closed-form and the per-access replay can
        be skipped entirely (:func:`repro.cpu.replay.run_blocking_summary`).

        Returns the run's end cycle after finalizing, or ``None`` when
        the closed form does not apply (non-blocking policy, or a
        finite write buffer whose stalls depend on per-push timing).
        The caller guarantees the aggregates describe the whole run on
        this handler's exact geometry and store-allocation policy.
        """
        if not self.policy.blocking:
            return None
        if type(self.write_buffer) is not WriteBuffer:
            return None
        stats = self.stats
        penalty = self._penalty
        stats.loads += load_hits + load_misses
        stats.load_hits += load_hits
        stats.blocking_misses += load_misses
        stats.blocking_stall_cycles += load_misses * penalty
        end = blocking_end_cycle(
            instructions=instructions,
            load_misses=load_misses,
            store_misses=store_misses,
            penalty=penalty,
            write_allocate_blocking=self.policy.write_allocate_blocking,
        )
        if store_hits or store_misses:
            stats.stores += store_hits + store_misses
            stats.store_hits += store_hits
            stats.store_misses += store_misses
            self.write_buffer.pushes += store_hits + store_misses
            if self.policy.write_allocate_blocking:
                stats.write_allocate_stall_cycles += store_misses * penalty
        stats.evictions += evictions
        self.finalize(end)
        return end

    def fast_path_hooks(self):
        """The engines' inline-hit contract, or ``None`` if unsupported.

        Returns ``(hit_probe, next_fill_time, store_mode,
        offset_bits, absorb_fast_hits, pure_resident)``.

        ``store_mode`` grades how much of the store path is inlinable:
        0 -- none (finite write buffer: occupancy depends on every
        push time); 1 -- hits only (write-miss-allocate: a miss
        fetches and stalls); 2 -- hits *and* misses (write-around with
        the ideal buffer: a store miss launches no fetch and installs
        no line, so both outcomes are 1-cycle counter updates).

        ``pure_resident`` is the resident-block set itself when probing
        has no replacement-state side effect (direct mapped), letting
        the specialized engine batch whole-execution hit checks; it is
        ``None`` for set-associative stores, whose hits must replay
        through ``hit_probe`` one by one to keep LRU order exact.
        """
        probe = getattr(self.tags, "hit_probe", None)
        if probe is None:
            return None
        # Only the ideal buffer's push is time-independent (count-only).
        if type(self.write_buffer) is not WriteBuffer:
            store_mode = 0
        elif self.policy.write_allocate_blocking:
            store_mode = 1
        else:
            store_mode = 2
        pure = self.tags.resident if getattr(
            self.tags, "probe_is_pure", False) else None
        return (probe, self.next_fill_time, store_mode,
                self._offset_bits, self.absorb_fast_hits, pure)

    # -- introspection ----------------------------------------------------------

    @property
    def outstanding_fetches(self) -> int:
        """Number of fetches currently in flight."""
        return len(self._fifo)

    @property
    def outstanding_misses(self) -> int:
        """Number of misses currently in flight (primaries included)."""
        return self._n_misses_out
