"""Miss-level statistics collected by the miss handler.

These counters back three of the paper's result kinds:

* miss-rate curves (Figure 8): primary+secondary combined rate and the
  secondary rate, per load;
* the stall-cycle breakdown (Figure 7): the portion of MCPI caused by
  structural-hazard stalls versus true-data-dependency stalls;
* the in-flight histograms (Figure 6): the cycle-weighted distribution
  of the number of misses and fetches outstanding, the percentage of
  time with at least one in flight, and the maxima.

Histogram buckets follow the paper's table: occupancy 1..6 individually
and ``7+`` pooled (index 7); index 0 is "nothing outstanding".
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.classify import StructuralCause

#: Number of histogram buckets: occupancy 0..6 plus the 7+ bucket.
HIST_BUCKETS = 8


def _new_hist() -> List[int]:
    return [0] * HIST_BUCKETS


@dataclass
class MissStats:
    """Counters owned by one :class:`repro.core.handler.MissHandler`."""

    # -- load outcomes ------------------------------------------------------
    loads: int = 0
    load_hits: int = 0
    primary_misses: int = 0
    secondary_misses: int = 0
    structural_misses: int = 0
    blocking_misses: int = 0
    #: Breakdown of structural-stall misses by cause.
    structural_causes: Dict[StructuralCause, int] = field(default_factory=dict)

    # -- store outcomes -----------------------------------------------------
    stores: int = 0
    store_hits: int = 0
    store_misses: int = 0

    # -- stall cycles attributed to the memory system -----------------------
    structural_stall_cycles: int = 0
    blocking_stall_cycles: int = 0
    write_allocate_stall_cycles: int = 0
    write_buffer_stall_cycles: int = 0

    # -- fetch traffic --------------------------------------------------------
    fetches_launched: int = 0
    evictions: int = 0

    # -- in-flight occupancy histograms (cycle weighted) ---------------------
    miss_inflight_hist: List[int] = field(default_factory=_new_hist)
    fetch_inflight_hist: List[int] = field(default_factory=_new_hist)
    max_misses_inflight: int = 0
    max_fetches_inflight: int = 0
    #: Total cycles covered by the histograms (set by ``finalize``).
    observed_cycles: int = 0

    # -- derived quantities ---------------------------------------------------

    @property
    def load_misses(self) -> int:
        """All loads that did not hit, regardless of classification."""
        return (
            self.primary_misses
            + self.secondary_misses
            + self.structural_misses
            + self.blocking_misses
        )

    @property
    def load_miss_rate(self) -> float:
        """Fraction of loads that missed (primary+secondary+structural)."""
        if not self.loads:
            return 0.0
        return self.load_misses / self.loads

    @property
    def secondary_miss_rate(self) -> float:
        """Fraction of loads that were secondary misses."""
        if not self.loads:
            return 0.0
        return self.secondary_misses / self.loads

    @property
    def memory_stall_cycles(self) -> int:
        """All stall cycles charged to the memory system by the handler."""
        return (
            self.structural_stall_cycles
            + self.blocking_stall_cycles
            + self.write_allocate_stall_cycles
            + self.write_buffer_stall_cycles
        )

    def count_structural(self, cause: StructuralCause) -> None:
        """Record one structural-stall miss with its cause."""
        self.structural_misses += 1
        self.structural_causes[cause] = self.structural_causes.get(cause, 0) + 1

    # -- warmup support ---------------------------------------------------------

    def snapshot(self) -> "MissStats":
        """A deep copy of the counters as they stand now."""
        return copy.deepcopy(self)

    def minus(self, baseline: "MissStats") -> "MissStats":
        """Counters accumulated *since* ``baseline`` was snapshot.

        Used to discard a warmup prefix: every additive counter and
        histogram bucket is differenced.  The in-flight maxima cannot
        be localized to the measurement window, so the post-warmup
        maxima are kept as-is (they are upper bounds for the window).
        """
        out = copy.deepcopy(self)
        for name in (
            "loads", "load_hits", "primary_misses", "secondary_misses",
            "structural_misses", "blocking_misses", "stores", "store_hits",
            "store_misses", "structural_stall_cycles",
            "blocking_stall_cycles", "write_allocate_stall_cycles",
            "write_buffer_stall_cycles", "fetches_launched", "evictions",
            "observed_cycles",
        ):
            setattr(out, name, getattr(self, name) - getattr(baseline, name))
        for cause, count in baseline.structural_causes.items():
            remaining = out.structural_causes.get(cause, 0) - count
            if remaining:
                out.structural_causes[cause] = remaining
            else:
                out.structural_causes.pop(cause, None)
        out.miss_inflight_hist = [
            a - b for a, b in zip(self.miss_inflight_hist,
                                  baseline.miss_inflight_hist)
        ]
        out.fetch_inflight_hist = [
            a - b for a, b in zip(self.fetch_inflight_hist,
                                  baseline.fetch_inflight_hist)
        ]
        return out

    # -- histogram views ------------------------------------------------------

    def _hist_fractions(self, hist: List[int]) -> List[float]:
        busy = sum(hist[1:])
        if not busy:
            return [0.0] * (HIST_BUCKETS - 1)
        return [hist[i] / busy for i in range(1, HIST_BUCKETS)]

    @property
    def pct_time_misses_inflight(self) -> float:
        """Fraction of run time with >0 misses in flight (Figure 6 MIF)."""
        if not self.observed_cycles:
            return 0.0
        return sum(self.miss_inflight_hist[1:]) / self.observed_cycles

    @property
    def pct_time_fetches_inflight(self) -> float:
        """Fraction of run time with >0 fetches in flight."""
        if not self.observed_cycles:
            return 0.0
        return sum(self.fetch_inflight_hist[1:]) / self.observed_cycles

    def miss_inflight_distribution(self) -> List[float]:
        """P(occupancy == k | occupancy > 0) for k = 1..7+ (Figure 6)."""
        return self._hist_fractions(self.miss_inflight_hist)

    def fetch_inflight_distribution(self) -> List[float]:
        """Fetch-count analogue of :meth:`miss_inflight_distribution`."""
        return self._hist_fractions(self.fetch_inflight_hist)
