"""Non-blocking load policies: the hardware restriction space.

The paper's performance curves are labelled by the restriction each
hardware organization imposes on in-flight misses:

* ``mc=0 (+wma)`` -- a lockup (blocking) cache; ``+wma`` additionally
  uses write-miss allocate and stalls on write misses (the topmost
  curve in Figure 5).
* ``mc=N`` -- at most N misses outstanding to the cache, implemented
  with N MSHRs each holding a single explicitly addressed destination
  field.  Either or both of the misses may be primary (Section 4).
* ``fc=N`` -- at most N *fetches* outstanding (N MSHRs), each with an
  unlimited number of destination fields, so one primary miss plus any
  number of secondary misses per MSHR.
* ``fs=N`` -- at most N fetches outstanding per cache *set*, unlimited
  overall: the in-cache MSHR storage organization of Section 2.3
  (``fs=1`` in a direct-mapped cache) and its set-associative
  generalization (Figure 15).
* ``no restrict`` -- the inverted MSHR of Section 2.4: no restriction
  beyond the number of possible destinations, which a single-issue
  machine never reaches.
* hybrid/implicit/explicit field layouts -- a finite number of
  destination fields per MSHR, organized as ``n_subblocks`` positional
  sub-blocks with ``misses_per_subblock`` explicit entries each
  (Figure 14's grid).  A miss that finds its sub-block's fields
  exhausted becomes a structural-stall miss.

:class:`MSHRPolicy` captures all of these in one declarative record
consumed by :class:`repro.core.handler.MissHandler`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class FieldLayout:
    """Destination-field organization within one MSHR.

    ``n_subblocks`` positional sub-blocks, each with
    ``misses_per_subblock`` explicit entries (``None`` = unlimited).
    The pure organizations are special cases:

    * implicitly addressed (Figure 1): one entry per sub-block,
      ``FieldLayout(n_subblocks=words_per_line, misses_per_subblock=1)``
    * explicitly addressed (Figure 2): one sub-block covering the line,
      ``FieldLayout(n_subblocks=1, misses_per_subblock=n_entries)``
    * unrestricted: ``FieldLayout(1, None)``
    """

    n_subblocks: int = 1
    misses_per_subblock: Optional[int] = None

    def __post_init__(self) -> None:
        if self.n_subblocks < 1 or self.n_subblocks & (self.n_subblocks - 1):
            raise ConfigurationError(
                f"sub-block count must be a positive power of two: "
                f"{self.n_subblocks}"
            )
        if self.misses_per_subblock is not None and self.misses_per_subblock < 1:
            raise ConfigurationError("misses per sub-block must be >= 1")

    @property
    def unlimited(self) -> bool:
        """True when the layout imposes no per-fetch restriction."""
        return self.misses_per_subblock is None

    @property
    def total_fields(self) -> Optional[int]:
        """Total destination fields per MSHR (``None`` if unlimited)."""
        if self.misses_per_subblock is None:
            return None
        return self.n_subblocks * self.misses_per_subblock

    def describe(self) -> str:
        per = "inf" if self.misses_per_subblock is None else self.misses_per_subblock
        return f"{self.n_subblocks}x{per}"


#: Layout with no per-fetch restriction at all.
UNLIMITED_LAYOUT = FieldLayout(1, None)


@dataclass(frozen=True)
class MSHRPolicy:
    """Declarative description of a non-blocking load implementation.

    ``None`` limits mean unlimited.  ``fill_ports`` models the
    register-file write-port restriction discussed in Section 6: when
    set, waiting destinations are filled ``fill_ports`` per cycle after
    the block returns instead of simultaneously.
    """

    name: str
    blocking: bool = False
    write_allocate_blocking: bool = False
    max_fetches: Optional[int] = None
    max_misses: Optional[int] = None
    max_fetches_per_set: Optional[int] = None
    layout: FieldLayout = UNLIMITED_LAYOUT
    fill_ports: Optional[int] = None
    #: Extra cycles added to every line fill.  Models the in-cache MSHR
    #: organization's read-out of the MSHR information stored in the
    #: transit line before the fetch data can be written (Section 2.3).
    fill_overhead: int = 0

    def __post_init__(self) -> None:
        for label, limit in (
            ("max_fetches", self.max_fetches),
            ("max_misses", self.max_misses),
            ("max_fetches_per_set", self.max_fetches_per_set),
        ):
            if limit is not None and limit < 1:
                raise ConfigurationError(f"{label} must be >= 1 or None: {limit}")
        if self.fill_ports is not None and self.fill_ports < 1:
            raise ConfigurationError("fill_ports must be >= 1 or None")
        if self.fill_overhead < 0:
            raise ConfigurationError("fill_overhead must be >= 0")
        if self.blocking and (
            self.max_fetches is not None
            or self.max_misses is not None
            or self.max_fetches_per_set is not None
            or not self.layout.unlimited
        ):
            raise ConfigurationError(
                "a blocking cache takes no in-flight restrictions"
            )

    @property
    def is_restricted(self) -> bool:
        """True if any in-flight restriction applies (or blocking)."""
        return (
            self.blocking
            or self.max_fetches is not None
            or self.max_misses is not None
            or self.max_fetches_per_set is not None
            or not self.layout.unlimited
        )

    def renamed(self, name: str) -> "MSHRPolicy":
        """Copy of this policy under a different display name."""
        return replace(self, name=name)


# -- named constructors (the paper's curve labels) --------------------------


def blocking_cache(write_allocate: bool = False) -> MSHRPolicy:
    """``mc=0`` lockup cache; ``write_allocate`` adds the ``+wma`` stall."""
    name = "mc=0+wma" if write_allocate else "mc=0"
    return MSHRPolicy(
        name=name, blocking=True, write_allocate_blocking=write_allocate
    )


def mc(n: int) -> MSHRPolicy:
    """At most ``n`` misses outstanding (``n`` single-field MSHRs).

    ``mc(1)`` is the hit-under-miss scheme of e.g. the HP PA7100.
    A fetch always carries at least one miss, so ``max_misses=n`` also
    bounds outstanding fetches by ``n``.
    """
    if n < 1:
        raise ConfigurationError("use blocking_cache() for mc=0")
    return MSHRPolicy(name=f"mc={n}", max_misses=n)


def fc(n: int) -> MSHRPolicy:
    """At most ``n`` fetches outstanding, unlimited secondary misses."""
    if n < 1:
        raise ConfigurationError("fc requires n >= 1")
    return MSHRPolicy(name=f"fc={n}", max_fetches=n)


def fs(n: int) -> MSHRPolicy:
    """At most ``n`` fetches outstanding per cache set (Section 4.2)."""
    if n < 1:
        raise ConfigurationError("fs requires n >= 1")
    return MSHRPolicy(name=f"fs={n}", max_fetches_per_set=n)


def no_restrict() -> MSHRPolicy:
    """The inverted-MSHR organization: no structural restriction."""
    return MSHRPolicy(name="no restrict")


def inverted(n_destinations: int = 70) -> MSHRPolicy:
    """The inverted MSHR organization, with its true limit (Section 2.4).

    One entry per possible destination of fetch data: the only
    structural restriction is that at most ``n_destinations`` misses
    can be outstanding, one per waiting destination.  (Uniqueness of
    destinations is already enforced by the scoreboard: a second load
    to a register with a pending fill waits for it.)  On the paper's
    single-issue machine a 65-75 entry inverted MSHR is never the
    binding constraint, which is why the paper labels this
    organization "no restrict"; the explicit form exists so small
    hypothetical inverted MSHRs can be studied too.
    """
    if n_destinations < 1:
        raise ConfigurationError("inverted MSHR needs >= 1 destination")
    return MSHRPolicy(name=f"inverted({n_destinations})",
                      max_misses=n_destinations)


def in_cache(extra_fill_cycles: int = 1) -> MSHRPolicy:
    """In-cache MSHR storage in a direct-mapped cache (Section 2.3).

    The cache line being fetched holds the MSHR information (one
    transit bit per line marks it), which gives two structural
    consequences the paper calls out:

    * only one in-flight primary miss per cache set (``fs=1`` in a
      direct-mapped cache), because the set itself stores the MSHR;
    * reading the MSHR information back out when the fetch data
      arrives takes extra cycle(s) -- one, if the implementation
      limits the MSHR record to the cache's read-port width, as the
      paper recommends.
    """
    if extra_fill_cycles < 0:
        raise ConfigurationError("extra fill cycles must be >= 0")
    return MSHRPolicy(
        name=f"in-cache(+{extra_fill_cycles})",
        max_fetches_per_set=1,
        fill_overhead=extra_fill_cycles,
    )


def with_layout(
    n_subblocks: int, misses_per_subblock: Optional[int], name: Optional[str] = None
) -> MSHRPolicy:
    """Unlimited MSHRs, each with a finite field layout (Figure 14).

    This models the Section 4.1 sweep: the only restriction is the
    number and organization of destination fields per outstanding
    fetch.
    """
    layout = FieldLayout(n_subblocks, misses_per_subblock)
    if name is None:
        name = f"layout {layout.describe()}"
    return MSHRPolicy(name=name, layout=layout)


def implicit(line_size: int = 32, subblock_size: int = 8) -> MSHRPolicy:
    """Implicitly addressed MSHRs: one miss per ``subblock_size`` bytes."""
    if line_size % subblock_size:
        raise ConfigurationError("sub-block size must divide the line size")
    n_sub = line_size // subblock_size
    return with_layout(n_sub, 1, name=f"implicit {subblock_size}B")


def explicit(n_entries: int) -> MSHRPolicy:
    """Explicitly addressed MSHRs with ``n_entries`` generic fields."""
    return with_layout(1, n_entries, name=f"explicit {n_entries}")


def baseline_policies() -> Tuple[MSHRPolicy, ...]:
    """The seven curves of the baseline figures (Figures 5, 9, 11, 12).

    Ordered from most to least restricted, matching the typical
    top-to-bottom order of the paper's MCPI plots.
    """
    return (
        blocking_cache(write_allocate=True),
        blocking_cache(),
        mc(1),
        fc(1),
        mc(2),
        fc(2),
        no_restrict(),
    )


def table13_policies() -> Tuple[MSHRPolicy, ...]:
    """The six columns of Figure 13: mc=0, mc=1, mc=2, fc=1, fc=2, inf."""
    return (
        blocking_cache(),
        mc(1),
        mc(2),
        fc(1),
        fc(2),
        no_restrict(),
    )
