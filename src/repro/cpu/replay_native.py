"""Native replay tier: the numpy-vectorized quiescent lane.

The scalar replay kernel (:mod:`repro.cpu.replay`) spends its time in
two regimes.  When fetches are in flight it walks memory slots one at
a time -- that part is an irregular recurrence (every issue time is a
max over data-dependent fill times, every miss mutates MSHR state) and
stays scalar.  But whenever the machine is *quiescent* (``fence ==
FAR_FUTURE``: empty fetch FIFO, every ``lr`` value in the past), a run
of executions whose slots all hit advances the model by pure
arithmetic: ``cycle += body_len * k`` and the hit counters scale by
``k``.  The scalar kernel already exploits this through the turbo
lane, one Python membership test per slot per execution; this module
replaces that detection loop with a *chunked vector scan*:

* the stream's per-slot line buffers are stacked once per
  (stream, geometry) into an ``(executions, slots)`` int64 block
  matrix ``BLK`` with its set projection ``SETS = BLK & setmask``;
* the kernel mirrors the direct-mapped tag state into a numpy array
  ``TAGS`` (one extra store per install, on the miss path only);
* at a quiescent point the lane first confirms a short scalar prefix
  (8 executions -- miss-dense phases stay on the scalar path and pay
  nothing for the vector machinery), then classifies whole chunks with
  ``(TAGS[SETS[i:j]] == BLK[i:j]).all(1)``, doubling the chunk from 64
  up to 65536 executions, and batch-accounts every all-hit row.

Exactness is inherited from the turbo-lane argument rather than
re-proved: a row of the scan is *literally* the turbo chain
(``L[k][it] in res`` for every slot) evaluated against the mirrored
tags, both lanes stop at the first non-all-hit execution, and neither
lane touches machine state while scanning -- so the native kernel
executes the same slow path at the same cycle for every execution the
scalar kernel would.  The equivalence suite and the hypothesis
property test assert bit-identity anyway.

The lane needs probe-free residency (a hit must not reorder state),
which holds for direct-mapped tags only -- an LRU hit performs a
recency touch, so set-associative cells fall back to the scalar fused
tier (``engine.native.fallback.associative``).  Policies outside the
replay envelope itself (finite write buffer, dual issue, perfect
cache) were never replayable and fall back for the same reasons the
fused tier does (``engine.native.fallback.policy``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Tuple

import numpy as np

from repro.core.stats import MissStats
from repro.cpu.replay import (
    _emit,
    build_replay_fn,
    finish_replay,
    replay_supported,
)
from repro.sim.trace import P_LOAD

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.config import MachineConfig
    from repro.sim.stream import EventStream
    from repro.sim.trace import ExpandedTrace

#: Longest scalar prefix confirmed before the vector scan engages.
#: Keeps short batchable runs (1-8 executions, common in miss-dense
#: phases) on the pure-Python path, where per-chunk numpy overhead
#: would exceed the membership tests it saves.
_SCALAR_PREFIX = 8

#: First vector chunk, in executions; grows 4x while rows stay
#: all-hit, so a run of length R costs O(log R) numpy calls.
_CHUNK_START = 32
_CHUNK_GROWTH = 4
_CHUNK_LIMIT = 32768


def native_supported(config: "MachineConfig") -> bool:
    """Whether the vectorized lane models this cell exactly.

    Everything :func:`repro.cpu.replay.replay_supported` requires,
    plus direct-mapped tags (the scan needs residency checks with no
    side effects; an LRU probe reorders the recency stack).
    """
    return replay_supported(config) and config.geometry.is_direct_mapped


def fallback_cause(config: "MachineConfig") -> str:
    """The telemetry cause tag for a cell the native lane declines."""
    if not replay_supported(config):
        return "policy"
    return "associative"


#: Condition-slot misses per body execution above which the vector
#: lane declines a cell as *streaming*.  Measured on the SPEC-shaped
#: workloads: the cells the scan wins (eqntott ~0.25, xlisp ~0.23-0.35,
#: ora/compress/mdljdp2 ~0.8-1.2 misses per execution) sit well below
#: it, the cells where the scan regressed in BENCH_native.json
#: (tomcatv ~7.5, doduc ~5.0, su2cor ~13) sit far above -- quiescent
#: spans shorter than an execution never amortize a chunk scan.
STREAM_DECLINE_DENSITY = 2.0


def streaming_decline(
    stream: "EventStream", workload, load_latency: int, scale: float,
    config: "MachineConfig", unroll_override: int = 0,
) -> bool:
    """Stream-shape heuristic: is this cell too miss-dense to batch?

    Uses the functional summary the stream pass already caches (the
    immediate-install hit/miss classification, vectorized for
    direct-mapped geometries) to estimate quiescent-span density:
    misses on *condition* slots -- loads, plus stores under
    write-miss-allocate -- are the events that end an all-hit span, so
    their count per execution bounds the average span the chunked scan
    could ever batch.  Cells above :data:`STREAM_DECLINE_DENSITY`
    decline to the next tier (``engine.native.fallback.streaming``),
    where the C kernels -- or the scalar replay -- run the recurrence
    without paying for scans that never pan out.
    """
    from repro.sim import stream as stream_mod

    write_allocate = config.policy.write_allocate_blocking
    summary = stream_mod.functional_summary(
        workload, load_latency, scale, config.geometry, write_allocate,
        unroll_override,
    )
    if summary is None:
        return False
    misses = summary.load_misses
    if write_allocate:
        misses += summary.store_misses
    return misses > STREAM_DECLINE_DENSITY * stream.executions


def _lane_columns(stream: "EventStream", smode: int):
    """Split slot columns into batch *conditions* and batch *counts*.

    A batched execution must leave machine state untouched, so every
    slot whose miss would mutate state belongs to the condition set:
    all loads (a load miss launches a fetch), plus stores under
    write-miss-allocate (``smode == 1``: a store miss installs and
    stalls).  Write-around stores (``smode == 2``) are inline and
    state-invariant either way -- a miss neither fetches nor installs
    -- so they never gate a batch; the lane only needs their hit/miss
    *split*, which the scan counts vectorized over the batched span.
    This is the native lane's structural win over the scalar turbo
    lane, whose all-slot chain dies on any streaming store.
    """
    cond, count = [], []
    for k, slot in enumerate(stream.slots):
        if slot.kind == P_LOAD or smode == 1:
            cond.append(k)
        else:
            count.append(k)
    return tuple(cond), tuple(count)


def _native_arrays(stream: "EventStream", num_sets: int, cond, count):
    """The stacked column matrices for one (stream, geometry, smode).

    Cached on the stream object, keyed by set count and column split,
    so policy siblings (same geometry, different MSHR limits) reuse
    them; the raw block matrix is geometry-independent and shared
    across geometries.
    """
    cache = getattr(stream, "_native_arrays", None)
    if cache is None:
        cache = {}
        stream._native_arrays = cache
    blk = cache.get("blk")
    if blk is None:
        blk = np.empty((stream.executions, len(stream.slots)),
                       dtype=np.int64)
        for k, buf in enumerate(stream.lines):
            blk[:, k] = np.frombuffer(buf, dtype=np.int64)
        cache["blk"] = blk
    key = (num_sets, cond)
    arrs = cache.get(key)
    if arrs is None:
        mask = num_sets - 1
        cblk = np.ascontiguousarray(blk[:, list(cond)])
        sblk = np.ascontiguousarray(blk[:, list(count)])
        arrs = (cblk, cblk & mask, sblk, sblk & mask,
                np.full(num_sets, -1, dtype=np.int64))
        cache[key] = arrs
    return arrs


class NativeLane:
    """Codegen plug-in handed to :func:`~repro.cpu.replay.build_replay_fn`.

    Emits the vectorized quiescent lane in place of the scalar turbo
    lane and supplies the numpy arrays the generated code closes over.
    """

    def __init__(self, cond, count, arrays) -> None:
        self._cond = cond
        self._count = count
        # The scalar prefix trades one first-chunk scan (~2us) against
        # per-execution chain evaluations (~80ns per condition slot):
        # narrow bodies need a long run before the scan pays for
        # itself, wide bodies amortize it after a single execution.
        self._prefix = max(1, min(_SCALAR_PREFIX, 32 // max(len(cond), 1)))
        cblk, csets, sblk, ssets, proto = arrays
        self._namespace = {
            "CBLK": cblk, "CSETS": csets, "SBLK": sblk, "SSETS": ssets,
            "TAGS_PROTO": proto,
        }

    def namespace(self) -> dict:
        return self._namespace

    def emit_state(self, w, shape, stream) -> None:
        """Per-run lane state, emitted after the kernel's state init."""
        _emit(w, 2, f"pfx = {self._prefix}")

    def emit_lane(self, w, shape, stream) -> None:
        # Same contract as the turbo lane it replaces: from a
        # quiescent point, advance ``it`` past the maximal run of
        # batchable executions, account the run in O(1), and arm the
        # same 32-execution backoff when the very first one fails.
        cond, count = self._cond, self._count
        prefix = self._prefix
        chain = " and ".join(f"L{k}[it] in res" for k in cond) or "True"
        # ``pfx`` starts at the static prefix and adapts at run time
        # (emitted below): long vector spans collapse it to 1 so a
        # hit-dominated phase goes straight to the scan, short spans
        # restore it.
        _emit(w, 3, f"""
if fence == FAR_FUTURE:
    if skip:
        skip -= 1
    else:
        start = it
        stop = it + pfx
        if stop > it1:
            stop = it1
        while it < stop and {chain}:
""")
        # Scalar-prefix store grading: counted per execution, since
        # unlike the vector span the hit split isn't batchable here.
        for k in count:
            _emit(w, 6, f"""
if L{k}[it] in res:
    fast_stores += 1
else:
    fast_smiss += 1
""")
        _emit(w, 6, "it += 1")
        _emit(w, 5, f"""
if it == stop and it < it1:
    vstart = it
    chunk = {_CHUNK_START}
    while it < it1:
        end = it + chunk
        if end > it1:
            end = it1
        rows = (TAGS[CSETS[it:end]] == CBLK[it:end]).all(1)
        nbad = int(rows.argmin())
        if rows[nbad]:
            it = end
            if chunk < {_CHUNK_LIMIT}:
                chunk *= {_CHUNK_GROWTH}
        else:
            it += nbad
            break
""")
        if count:
            # Store hit/miss split over the whole vector span in one
            # reduction; TAGS is frozen across the span (no installs),
            # so counting after the fact is exact.
            _emit(w, 6, f"""
if it > vstart:
    sh = int((TAGS[SSETS[vstart:it]] == SBLK[vstart:it]).sum())
    fast_stores += sh
    fast_smiss += {len(count)} * (it - vstart) - sh
""")
        if prefix > 1:
            _emit(w, 6, f"""
v = it - vstart
if v >= 16:
    pfx = 1
elif v < 4:
    pfx = {prefix}
""")
        _emit(w, 5, f"""
k = it - start
if k:
    cycle += {stream.body_len} * k
""")
        if stream.n_loads:
            _emit(w, 6, f"fast_loads += {stream.n_loads} * k")
        if count == () and stream.n_stores:
            # smode 1: the chain required every store to hit.
            _emit(w, 6, f"fast_stores += {stream.n_stores} * k")
        _emit(w, 6, """
if it == it1:
    break
""")
        _emit(w, 5, """
else:
    skip = 32
""")


def run_native(
    stream: "EventStream", trace: "ExpandedTrace", config: "MachineConfig"
) -> Optional[Tuple[MissStats, int, int, int]]:
    """Replay one machine through the native kernel; ``None`` = fall back.

    Same contract as :func:`repro.cpu.replay.run_replay` -- the result
    quadruple is bit-identical to every other tier -- and the same
    per-stream kernel cache, under a tier-distinct key so pinning
    engines never aliases kernels.
    """
    if not native_supported(config):
        return None
    key = ("native", config.geometry, config.policy,
           config.effective_penalty)
    fn = stream._replay_fns.get(key)
    if fn is None:
        smode = 1 if config.policy.write_allocate_blocking else 2
        cond, count = _lane_columns(stream, smode)
        arrays = _native_arrays(stream, config.geometry.num_sets,
                                cond, count)
        fn = build_replay_fn(stream, trace, config,
                             native=NativeLane(cond, count, arrays))
        stream._replay_fns[key] = fn
    return finish_replay(stream, fn(stream.executions))
