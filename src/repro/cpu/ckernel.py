"""Generated-C replay kernels: codegen, build, and the on-disk cache.

The scalar replay kernel (:mod:`repro.cpu.replay`) is generated Python;
this module generates the same machine in C, compiles it once per
*policy family*, and memory-maps the shared object for every later
process.  A policy family is the set of codegen-time booleans that
change which clauses exist -- geometry class (direct-mapped vs
set-associative LRU), which MSHR limits are present (``max_misses``,
``max_fetches``, ``max_fetches_per_set``), whether the destination
field layout is limited, whether fills are ported, and the store
grading mode.  Every *numeric* parameter (set mask, ways, the limit
values, penalty, sub-block layout) is a runtime argument, so one
compiled kernel covers every geometry and every limit value in its
family: a full paper sweep needs a handful of ``.so`` files, not one
per cell.

Exactness is inherited from :mod:`repro.cpu.replay`: the C functions
transcribe the generated Python clause for clause (same drain points,
same histogram integration boundaries, same structural causes, same
stall arithmetic).  The scalar turbo lane is deliberately *not*
transcribed -- its own invariant is that an all-hit execution from a
quiescent machine advances the clock by exactly the body length and
counts the same hits, so direct per-slot execution of those runs is
bit-identical, and in C it is fast enough that the detection shortcut
buys nothing.

Build pipeline: probe for a compiler (``REPRO_CC`` overrides; ``cc`` /
``gcc`` / ``clang`` on PATH otherwise), emit the family's source,
``-O2 -shared -fPIC`` it into the kernel cache next to the result
store (``<cache-root>/kernels/``), and load it through cffi in ABI
mode (ctypes when cffi is unavailable -- both just ``dlopen`` the
``.so``).  Cache entries are keyed by a digest of the source text,
the family, and :data:`~repro.sim.simulator.ENGINE_VERSION`, so any
codegen or semantics change invalidates every stale kernel; ``python
-m repro cache gc`` prunes entries whose digest no longer matches.
No compiler, failed build, missing binding: the caller falls back to
the scalar tier (:mod:`repro.cpu.replay_cnative` tags the cause).
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import subprocess
import tempfile
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.config import MachineConfig

#: Bumped when the C template itself changes in a way the source
#: digest would not capture (it always does, so this is belt and
#: braces for the meta schema).
KERNEL_SCHEMA = 1

#: Kernel-cache directory name under the result-store root.
KERNEL_DIR_NAME = "kernels"


class KernelBuildError(SimulationError):
    """A C kernel failed to generate, compile, or load."""


@dataclass(frozen=True)
class KernelFamily:
    """The codegen-time booleans of one replay-kernel specialization.

    Everything numeric about the machine (set mask, ways, limit
    values, penalty, layout geometry) is a runtime parameter of the
    compiled function; only the facts below change which C clauses
    exist.
    """

    #: Direct-mapped tags (no LRU touch) vs set-associative LRU.
    dm: bool
    #: Destination field layout is limited (sub-block merge counting).
    limited: bool
    #: ``policy.max_misses`` present.
    has_maxm: bool
    #: ``policy.max_fetches`` present.
    has_maxf: bool
    #: ``policy.max_fetches_per_set`` present.
    has_maxs: bool
    #: ``policy.fill_ports`` present (ported fill scheduling).
    has_ports: bool
    #: Store grading: 1 = write-miss-allocate, 2 = write-around.
    smode: int

    def label(self) -> str:
        """Short human-readable tag used in filenames and reports."""
        bits = ["dm" if self.dm else "assoc", f"s{self.smode}"]
        if self.limited:
            bits.append("lim")
        if self.has_maxm:
            bits.append("mm")
        if self.has_maxf:
            bits.append("mf")
        if self.has_maxs:
            bits.append("ms")
        if self.has_ports:
            bits.append("pp")
        return "-".join(bits)


def family_of(config: "MachineConfig") -> KernelFamily:
    """The kernel family a machine configuration compiles into."""
    policy = config.policy
    return KernelFamily(
        dm=config.geometry.is_direct_mapped,
        limited=not policy.layout.unlimited,
        has_maxm=policy.max_misses is not None,
        has_maxf=policy.max_fetches is not None,
        has_maxs=policy.max_fetches_per_set is not None,
        has_ports=policy.fill_ports is not None,
        smode=1 if policy.write_allocate_blocking else 2,
    )


# -- C source generation -------------------------------------------------------

#: Runtime parameter block layout (``const i64 *p``); keep in sync
#: with :func:`repro.cpu.replay_cnative._param_block`.
PARAM_SLOTS = (
    "it1", "n_slots", "tail_gap", "setmask", "ways", "maxm", "maxf",
    "maxs", "nsub", "sublim", "line_mask", "sub_shift", "ports",
    "penalty",
)

#: Raw counter block written by the kernel (``i64 *out``).
OUT_SLOTS = 40

_PRELUDE = """\
#include <stdlib.h>
#include <string.h>

typedef long long i64;

#define FAR_FUTURE (((i64)1) << 62)

/* StructuralCause values, mirrored from repro.core.classify. */
#define NO_FETCH_SLOT 1
#define NO_MISS_SLOT  2
#define NO_SET_SLOT   3
#define NO_DEST_FIELD 4

typedef struct {
    i64 setmask, ways, maxm, maxf, maxs, nsub, sublim;
    i64 line_mask, sub_shift, ports, penalty;
    i64 *tags;
    i64 *set_len;
    i64 *fifo;          /* entry: block, set, ready, merged[, counts] */
    i64 head, tail, cap, stride;
    i64 loads, load_hits, primary, secondary, structural;
    i64 causes[5];
    i64 stores, store_hits, store_misses;
    i64 structural_stall, wa_stall, wb_pushes;
    i64 fetches_launched, evictions, max_m, max_f;
    i64 miss_hist[8], fetch_hist[8];
    i64 last_t, n_misses_out, fence;
    i64 fast_loads, fast_stores, fast_smiss;
    i64 err;
} St;

static void advance_to(St *s, i64 t) {
    i64 dt = t - s->last_t;
    if (dt > 0) {
        i64 nf = s->tail - s->head;
        i64 nm = s->n_misses_out;
        s->fetch_hist[nf < 8 ? nf : 7] += dt;
        s->miss_hist[nm < 8 ? nm : 7] += dt;
        s->last_t = t;
    }
}

static i64 *fifo_push(St *s) {
    if (s->tail == s->cap) {
        if (s->head > 0) {
            i64 n = s->tail - s->head;
            memmove(s->fifo, s->fifo + s->head * s->stride,
                    (size_t)(n * s->stride) * sizeof(i64));
            s->head = 0;
            s->tail = n;
        } else {
            i64 ncap = s->cap * 2;
            i64 *grown = (i64 *)realloc(
                s->fifo, (size_t)(ncap * s->stride) * sizeof(i64));
            if (!grown) {
                s->err = 3;
                return s->fifo;
            }
            s->fifo = grown;
            s->cap = ncap;
        }
    }
    return s->fifo + (s->tail++) * s->stride;
}

static i64 *find_block(St *s, i64 b) {
    i64 i;
    for (i = s->head; i < s->tail; i++) {
        i64 *f = s->fifo + i * s->stride;
        if (f[0] == b) return f;
    }
    return 0;
}
"""

_TAGS_DM = """\
static void install(St *s, i64 b) {
    i64 i = b & s->setmask;
    i64 old = s->tags[i];
    if (old != b) {
        s->tags[i] = b;
        if (old != -1) s->evictions += 1;
    }
}

/* Residency probe; direct-mapped tags have no recency state to touch. */
static int access_touch(St *s, i64 b) {
    return s->tags[b & s->setmask] == b;
}
"""

_TAGS_ASSOC = """\
/* Per-set LRU stack, MRU first, mirroring the Python list exactly:
 * a hit moves the block to the front, an install inserts at the
 * front and pops (counting an eviction) when the set overflows. */
static void install(St *s, i64 b) {
    i64 si = b & s->setmask;
    i64 *row = s->tags + si * s->ways;
    i64 len = s->set_len[si];
    i64 j;
    for (j = 0; j < len; j++)
        if (row[j] == b) break;
    if (j < len) {
        memmove(row + 1, row, (size_t)j * sizeof(i64));
        row[0] = b;
    } else {
        if (len == s->ways) {
            s->evictions += 1;
            len -= 1;
        }
        memmove(row + 1, row, (size_t)len * sizeof(i64));
        row[0] = b;
        s->set_len[si] = len + 1;
    }
}

static int access_touch(St *s, i64 b) {
    i64 si = b & s->setmask;
    i64 *row = s->tags + si * s->ways;
    i64 len = s->set_len[si];
    i64 j;
    for (j = 0; j < len; j++) {
        if (row[j] == b) {
            memmove(row + 1, row, (size_t)j * sizeof(i64));
            row[0] = b;
            return 1;
        }
    }
    return 0;
}
"""

_DRAIN = """\
static void drain(St *s, i64 now) {
    while (s->tail > s->head) {
        i64 *f = s->fifo + s->head * s->stride;
        if (f[2] > now) break;
        advance_to(s, f[2]);
        s->head += 1;
        s->n_misses_out -= f[3];
        install(s, f[0]);
    }
    s->fence = (s->tail > s->head)
        ? s->fifo[s->head * s->stride + 2] : FAR_FUTURE;
}
"""


def _gen_miss_load(f: KernelFamily) -> str:
    """Transcribe the generated Python ``miss_load`` closure to C."""
    w: List[str] = []
    sub_arg = ", i64 sub" if f.limited else ""
    w.append(f"static i64 miss_load(St *s, i64 b, i64 now{sub_arg}, "
             "i64 *ready_out) {")
    w.append("    s->loads += 1;")
    w.append("    if (s->fence <= now) drain(s, now);")
    w.append("    if (access_touch(s, b)) {")
    w.append("        s->load_hits += 1;")
    w.append("        *ready_out = now + 1;")
    w.append("        return now + 1;")
    w.append("    }")
    w.append("    i64 t = now;")
    w.append("    int stalled = 0;")
    w.append("    i64 s_cause = 0;")
    w.append("    for (;;) {")
    w.append("        i64 *f = find_block(s, b);")
    w.append("        if (f) {")
    merge_always_ok = not f.has_maxm and not f.limited
    if f.limited:
        w.append("            i64 *counts = f + 4;")
        w.append("            int free_ok = counts[sub] < s->sublim;")
    if f.has_maxm:
        w.append("            int miss_ok = s->n_misses_out < s->maxm;")
    if merge_always_ok:
        cond = "1"
    elif not f.has_maxm:
        cond = "free_ok"
    elif not f.limited:
        cond = "miss_ok"
    else:
        cond = "miss_ok && free_ok"
    w.append(f"            if ({cond}) {{")
    w.append("                advance_to(s, t);")
    w.append("                i64 position = f[3];")
    w.append("                f[3] = position + 1;")
    w.append("                s->n_misses_out += 1;")
    if f.limited:
        w.append("                counts[sub] += 1;")
    w.append("                if (s->n_misses_out > s->max_m)")
    w.append("                    s->max_m = s->n_misses_out;")
    if f.has_ports:
        w.append("                i64 ready = f[2] + position / s->ports;")
    else:
        w.append("                i64 ready = f[2];")
    w.append("                if (stalled) {")
    w.append("                    s->structural += 1;")
    w.append("                    s->causes[s_cause] += 1;")
    w.append("                    s->structural_stall += t - now;")
    w.append("                } else {")
    w.append("                    s->secondary += 1;")
    w.append("                }")
    w.append("                *ready_out = ready;")
    w.append("                return t + 1;")
    w.append("            }")
    if not merge_always_ok:
        if not f.has_maxm:
            cause_expr = "NO_DEST_FIELD"
        elif not f.limited:
            cause_expr = "NO_MISS_SLOT"
        else:
            cause_expr = "miss_ok ? NO_DEST_FIELD : NO_MISS_SLOT"
        w.append("            if (!stalled) {")
        w.append("                stalled = 1;")
        w.append(f"                s_cause = {cause_expr};")
        w.append("            }")
        if not f.has_maxm:
            w.append("            t = f[2];")
        elif not f.limited:
            w.append("            t = s->fence;")
        else:
            w.append("            t = miss_ok ? f[2] : s->fence;")
        w.append("            drain(s, t);")
        w.append("            if (access_touch(s, b)) {")
        w.append("                s->structural += 1;")
        w.append("                s->causes[s_cause] += 1;")
        w.append("                s->structural_stall += t - now;")
        w.append("                *ready_out = t + 1;")
        w.append("                return t + 1;")
        w.append("            }")
        w.append("            continue;")
    w.append("        }")
    w.append("        i64 si = b & s->setmask;")
    launch_always_ok = not (f.has_maxf or f.has_maxm or f.has_maxs)
    if not launch_always_ok:
        w.append("        i64 wait_until = t;")
        w.append("        i64 cause = 0;")
        if f.has_maxf:
            w.append("        if (s->tail - s->head >= s->maxf) {")
            w.append("            if (s->fence > wait_until)")
            w.append("                wait_until = s->fence;")
            w.append("            cause = NO_FETCH_SLOT;")
            w.append("        }")
        if f.has_maxm:
            w.append("        if (s->n_misses_out >= s->maxm) {")
            w.append("            if (s->fence > wait_until)")
            w.append("                wait_until = s->fence;")
            w.append("            cause = NO_MISS_SLOT;")
            w.append("        }")
        if f.has_maxs:
            w.append("        {")
            w.append("            i64 in_set = 0, fs_t = -1, i;")
            w.append("            for (i = s->head; i < s->tail; i++) {")
            w.append("                i64 *f2 = s->fifo + i * s->stride;")
            w.append("                if (f2[1] == si) {")
            w.append("                    in_set += 1;")
            w.append("                    if (fs_t < 0) fs_t = f2[2];")
            w.append("                }")
            w.append("            }")
            w.append("            if (in_set >= s->maxs) {")
            w.append("                if (fs_t < 0) {")
            w.append("                    s->err = 1;")
            w.append("                    *ready_out = t + 1;")
            w.append("                    return t + 1;")
            w.append("                }")
            w.append("                if (fs_t > wait_until)")
            w.append("                    wait_until = fs_t;")
            w.append("                cause = NO_SET_SLOT;")
            w.append("            }")
            w.append("        }")
        w.append("        if (cause == 0) {")
        pad = "            "
    else:
        pad = "        "
    w.append(pad + "advance_to(s, t);")
    w.append(pad + "i64 ft = t + 1 + s->penalty;")
    w.append(pad + "i64 *nf = fifo_push(s);")
    w.append(pad + "if (s->err) { *ready_out = t + 1; return t + 1; }")
    w.append(pad + "nf[0] = b; nf[1] = si; nf[2] = ft; nf[3] = 1;")
    if f.limited:
        w.append(pad + "{ i64 q; for (q = 0; q < s->nsub; q++)"
                 " nf[4 + q] = 0; }")
        w.append(pad + "nf[4 + sub] = 1;")
    w.append(pad + "if (s->tail - s->head == 1) s->fence = ft;")
    w.append(pad + "s->n_misses_out += 1;")
    w.append(pad + "s->fetches_launched += 1;")
    w.append(pad + "if (s->n_misses_out > s->max_m)"
             " s->max_m = s->n_misses_out;")
    w.append(pad + "{ i64 nfl = s->tail - s->head;"
             " if (nfl > s->max_f) s->max_f = nfl; }")
    w.append(pad + "if (stalled) {")
    w.append(pad + "    s->structural += 1;")
    w.append(pad + "    s->causes[s_cause] += 1;")
    w.append(pad + "    s->structural_stall += t - now;")
    w.append(pad + "} else {")
    w.append(pad + "    s->primary += 1;")
    w.append(pad + "}")
    w.append(pad + "*ready_out = ft;")
    w.append(pad + "return t + 1;")
    if not launch_always_ok:
        w.append("        }")
        w.append("        if (!stalled) {")
        w.append("            stalled = 1;")
        w.append("            s_cause = cause;")
        w.append("        }")
        w.append("        if (wait_until <= t) {")
        w.append("            s->err = 2;")
        w.append("            *ready_out = t + 1;")
        w.append("            return t + 1;")
        w.append("        }")
        w.append("        t = wait_until;")
        w.append("        drain(s, t);")
    w.append("    }")
    w.append("}")
    return "\n".join(w)


def _gen_slow_store(f: KernelFamily) -> str:
    w: List[str] = []
    w.append("static i64 slow_store(St *s, i64 b, i64 now) {")
    w.append("    s->stores += 1;")
    w.append("    if (s->fence <= now) drain(s, now);")
    w.append("    int hit = access_touch(s, b);")
    w.append("    if (hit) s->store_hits += 1;")
    w.append("    else s->store_misses += 1;")
    w.append("    s->wb_pushes += 1;")
    if f.smode == 1:
        w.append("    if (!hit) {")
        w.append("        s->wa_stall += s->penalty;")
        w.append("        install(s, b);")
        w.append("        return now + 1 + s->penalty;")
        w.append("    }")
    w.append("    return now + 1;")
    w.append("}")
    return "\n".join(w)


def _gen_run(f: KernelFamily) -> str:
    w: List[str] = []
    w.append("i64 repro_replay(const i64 *p,")
    w.append("                 const i64 *slot_kind, const i64 *slot_lr,")
    w.append("                 const i64 *slot_pregap,")
    w.append("                 const i64 *term_start, const i64 *term_lr,")
    w.append("                 const i64 *term_delta,")
    w.append("                 i64 **lines, i64 **addrs,")
    w.append("                 i64 *tags, i64 *set_len, i64 *lr,")
    w.append("                 i64 *out)")
    w.append("{")
    w.append("    St st;")
    w.append("    memset(&st, 0, sizeof st);")
    w.append("    i64 it1 = p[0];")
    w.append("    i64 n_slots = p[1];")
    w.append("    i64 tail_gap = p[2];")
    w.append("    st.setmask = p[3]; st.ways = p[4]; st.maxm = p[5];")
    w.append("    st.maxf = p[6]; st.maxs = p[7]; st.nsub = p[8];")
    w.append("    st.sublim = p[9]; st.line_mask = p[10];")
    w.append("    st.sub_shift = p[11]; st.ports = p[12];")
    w.append("    st.penalty = p[13];")
    w.append("    st.tags = tags; st.set_len = set_len;")
    if f.limited:
        w.append("    st.stride = 4 + st.nsub;")
    else:
        w.append("    st.stride = 4;")
    w.append("    st.cap = 1024;")
    w.append("    st.fifo = (i64 *)malloc("
             "(size_t)(st.cap * st.stride) * sizeof(i64));")
    w.append("    if (!st.fifo) return 3;")
    w.append("    st.fence = FAR_FUTURE;")
    w.append("    i64 cycle = 0;")
    w.append("    i64 it, k, j;")
    w.append("    for (it = 0; it < it1; it++) {")
    w.append("        for (k = 0; k < n_slots; k++) {")
    w.append("            i64 t = cycle + slot_pregap[k];")
    w.append("            for (j = term_start[k]; j < term_start[k + 1];"
             " j++) {")
    w.append("                i64 v = lr[term_lr[j]] + term_delta[j];")
    w.append("                if (v > t) t = v;")
    w.append("            }")
    w.append("            i64 b = lines[k][it];")
    w.append("            if (slot_kind[k]) {")
    w.append("                if (t < st.fence && access_touch(&st, b)) {")
    w.append("                    st.fast_loads += 1;")
    w.append("                    t += 1;")
    w.append("                    lr[slot_lr[k]] = t;")
    w.append("                    cycle = t;")
    w.append("                } else {")
    w.append("                    i64 rdy = 0;")
    if f.limited:
        w.append("                    i64 sub = (addrs[k][it]"
                 " & st.line_mask) >> st.sub_shift;")
        w.append("                    cycle = miss_load(&st, b, t, sub,"
                 " &rdy);")
    else:
        w.append("                    cycle = miss_load(&st, b, t, &rdy);")
    w.append("                    lr[slot_lr[k]] = rdy;")
    w.append("                }")
    w.append("            } else {")
    if f.smode == 2:
        # Write-around: a miss before the fence is graded inline and
        # neither fetches nor installs, mirroring the scalar kernel.
        w.append("                if (t < st.fence) {")
        w.append("                    if (access_touch(&st, b))"
                 " st.fast_stores += 1;")
        w.append("                    else st.fast_smiss += 1;")
        w.append("                    cycle = t + 1;")
        w.append("                } else {")
        w.append("                    cycle = slow_store(&st, b, t);")
        w.append("                }")
    else:
        w.append("                if (t < st.fence &&"
                 " access_touch(&st, b)) {")
        w.append("                    st.fast_stores += 1;")
        w.append("                    cycle = t + 1;")
        w.append("                } else {")
        w.append("                    cycle = slow_store(&st, b, t);")
        w.append("                }")
    w.append("            }")
    w.append("            if (st.err) {")
    w.append("                i64 e = st.err;")
    w.append("                free(st.fifo);")
    w.append("                return e;")
    w.append("            }")
    w.append("        }")
    w.append("        cycle += tail_gap;")
    w.append("        for (j = term_start[n_slots];"
             " j < term_start[n_slots + 1]; j++) {")
    w.append("            i64 v = lr[term_lr[j]] + term_delta[j];")
    w.append("            if (v > cycle) cycle = v;")
    w.append("        }")
    w.append("    }")
    w.append("    if (st.tail > st.head) drain(&st, cycle);")
    w.append("    advance_to(&st, cycle);")
    w.append("    out[0] = cycle;")
    w.append("    out[1] = st.loads; out[2] = st.load_hits;")
    w.append("    out[3] = st.primary; out[4] = st.secondary;")
    w.append("    out[5] = st.structural;")
    w.append("    for (j = 0; j < 5; j++) out[6 + j] = st.causes[j];")
    w.append("    out[11] = st.stores; out[12] = st.store_hits;")
    w.append("    out[13] = st.store_misses;")
    w.append("    out[14] = st.structural_stall; out[15] = st.wa_stall;")
    w.append("    out[16] = st.wb_pushes;")
    w.append("    out[17] = st.fetches_launched; out[18] = st.evictions;")
    w.append("    for (j = 0; j < 8; j++) out[19 + j] = st.miss_hist[j];")
    w.append("    for (j = 0; j < 8; j++) out[27 + j] = st.fetch_hist[j];")
    w.append("    out[35] = st.max_m; out[36] = st.max_f;")
    w.append("    out[37] = st.fast_loads; out[38] = st.fast_stores;")
    w.append("    out[39] = st.fast_smiss;")
    w.append("    free(st.fifo);")
    w.append("    return 0;")
    w.append("}")
    return "\n".join(w)


def generate_source(family: KernelFamily) -> str:
    """Emit the complete C translation unit for one kernel family."""
    parts = [
        f"/* repro replay kernel, family {family.label()} */",
        _PRELUDE,
        _TAGS_DM if family.dm else _TAGS_ASSOC,
        _DRAIN,
        _gen_miss_load(family),
        "",
        _gen_slow_store(family),
        "",
        _gen_run(family),
        "",
    ]
    return "\n".join(parts)


# -- compiler probe ------------------------------------------------------------

_CC_CACHE: Dict[str, Optional[str]] = {}


def find_compiler() -> Optional[str]:
    """The C compiler to build kernels with, or ``None``.

    ``REPRO_CC`` overrides the probe entirely: its value is resolved
    through PATH, and a value that resolves to nothing means *no
    compiler* (the forced-fallback hook the tests and the
    compiler-less CI job use).  Otherwise the first of ``cc`` /
    ``gcc`` / ``clang`` on PATH wins.  Results are memoized per
    override value; :func:`reset_probe` re-arms the probe for tests.
    """
    key = os.environ.get("REPRO_CC", "")
    if key in _CC_CACHE:
        return _CC_CACHE[key]
    if key:
        cc = shutil.which(key)
    else:
        cc = None
        for candidate in ("cc", "gcc", "clang"):
            cc = shutil.which(candidate)
            if cc:
                break
    _CC_CACHE[key] = cc
    return cc


def reset_probe() -> None:
    """Forget memoized compiler probes and build failures (tests)."""
    _CC_CACHE.clear()
    _BUILD_FAILURES.clear()
    _KERNELS.clear()


# -- on-disk cache -------------------------------------------------------------


def kernel_cache_dir() -> Path:
    """Where compiled kernels live: ``<result-store root>/kernels``.

    Follows ``REPRO_CACHE_DIR`` like the result store, but is *not*
    disabled by ``REPRO_CACHE=0`` -- a shared object must exist on
    disk to be dlopen'd, and a build cache has no staleness problem
    the digest key does not already solve.
    """
    from repro.sim.resultstore import DEFAULT_ROOT

    root = os.environ.get("REPRO_CACHE_DIR") or DEFAULT_ROOT
    return Path(root).expanduser() / KERNEL_DIR_NAME


def _engine_version() -> str:
    from repro.sim.simulator import ENGINE_VERSION

    return ENGINE_VERSION


def kernel_digest(family: KernelFamily, source: str) -> str:
    """Content key: source text + family + engine version + schema."""
    h = hashlib.sha256()
    h.update(_engine_version().encode())
    h.update(repr((KERNEL_SCHEMA, family)).encode())
    h.update(source.encode())
    return h.hexdigest()


def _entry_paths(digest: str, family: KernelFamily) -> Tuple[Path, Path, Path]:
    base = kernel_cache_dir() / f"{family.label()}-{digest[:16]}"
    return (base.with_suffix(".c"), base.with_suffix(".so"),
            base.with_suffix(".json"))


def _atomic_write(path: Path, data: bytes) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=str(path.parent),
                               prefix=path.name + ".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def compile_kernel_so(family: KernelFamily) -> Tuple[Path, float, bool]:
    """Ensure the family's ``.so`` exists; return (path, secs, built).

    ``secs`` is the wall-clock compile time (0.0 on a disk hit) so the
    profiler can report codegen cost separately from execution.
    Concurrent builders race benignly: both produce identical bytes
    and the atomic rename makes the last writer win.
    """
    cc = find_compiler()
    if cc is None:
        raise KernelBuildError("no C compiler (REPRO_CC / cc / gcc / clang)")
    source = generate_source(family)
    digest = kernel_digest(family, source)
    c_path, so_path, meta_path = _entry_paths(digest, family)
    if so_path.exists():
        return so_path, 0.0, False
    started = time.perf_counter()
    _atomic_write(c_path, source.encode())
    fd, tmp_so = tempfile.mkstemp(dir=str(so_path.parent),
                                  prefix=so_path.name + ".tmp")
    os.close(fd)
    try:
        proc = subprocess.run(
            [cc, "-O2", "-shared", "-fPIC", "-o", tmp_so, str(c_path)],
            capture_output=True, text=True,
        )
        if proc.returncode != 0:
            raise KernelBuildError(
                f"{cc} failed for family {family.label()}: "
                f"{proc.stderr.strip()[:500]}"
            )
        os.replace(tmp_so, so_path)
    except BaseException:
        try:
            os.unlink(tmp_so)
        except OSError:
            pass
        raise
    meta = {
        "schema": KERNEL_SCHEMA,
        "engine_version": _engine_version(),
        "family": asdict(family),
        "source_sha256": hashlib.sha256(source.encode()).hexdigest(),
        "digest": digest,
        "cc": cc,
    }
    _atomic_write(meta_path, json.dumps(meta, indent=2).encode())
    return so_path, time.perf_counter() - started, True


# -- bindings ------------------------------------------------------------------

_CDEF = (
    "long long repro_replay(const long long *, const long long *, "
    "const long long *, const long long *, const long long *, "
    "const long long *, const long long *, long long **, long long **, "
    "long long *, long long *, long long *, long long *);"
)


class _CffiBinding:
    """ABI-mode cffi: ``dlopen`` the cached shared object."""

    name = "cffi"

    def __init__(self) -> None:
        import cffi

        self._ffi = cffi.FFI()
        self._ffi.cdef(_CDEF)

    def load(self, path: Path):
        lib = self._ffi.dlopen(str(path))
        return lib.repro_replay

    def pointer(self, arr):
        return self._ffi.cast("long long *", arr.ctypes.data)

    def pointer_array(self, arrs):
        if not arrs:
            return self._ffi.NULL
        return self._ffi.new("long long *[]",
                             [self.pointer(a) for a in arrs])

    @property
    def null(self):
        return self._ffi.NULL


class _CtypesBinding:
    """Stdlib fallback when cffi is unavailable: ``ctypes.CDLL``."""

    name = "ctypes"

    def __init__(self) -> None:
        import ctypes

        self._ctypes = ctypes
        self._pll = ctypes.POINTER(ctypes.c_longlong)
        self._argtypes = ([self._pll] * 7
                          + [ctypes.POINTER(self._pll)] * 2
                          + [self._pll] * 4)

    def load(self, path: Path):
        lib = self._ctypes.CDLL(str(path))
        fn = lib.repro_replay
        fn.restype = self._ctypes.c_longlong
        fn.argtypes = self._argtypes
        return fn

    def pointer(self, arr):
        return self._ctypes.cast(arr.ctypes.data, self._pll)

    def pointer_array(self, arrs):
        if not arrs:
            return None
        return (self._pll * len(arrs))(*[self.pointer(a) for a in arrs])

    @property
    def null(self):
        return None


_BINDING = None


def get_binding():
    """The (memoized) FFI binding: cffi preferred, ctypes fallback."""
    global _BINDING
    if _BINDING is None:
        try:
            _BINDING = _CffiBinding()
        except ImportError:  # pragma: no cover - cffi is in the image
            _BINDING = _CtypesBinding()
    return _BINDING


class LoadedKernel:
    """One dlopen'd replay kernel plus its provenance."""

    def __init__(self, family: KernelFamily, path: Path,
                 compile_seconds: float, built: bool) -> None:
        self.family = family
        self.path = path
        #: Wall-clock compile time paid by *this* process (0.0 when
        #: the shared object came from the disk cache).
        self.compile_seconds = compile_seconds
        #: True when this process ran the compiler.
        self.built = built
        binding = get_binding()
        self._binding = binding
        self._fn = binding.load(path)

    def invoke(self, p, kind, slr, pregap, tstart, tlr, tdelta,
               line_arrs, addr_arrs, tags, set_len, lr, out) -> int:
        b = self._binding
        ptr = b.pointer
        lines_ptr = b.pointer_array(line_arrs)
        addrs_ptr = b.pointer_array(addr_arrs)
        set_len_ptr = ptr(set_len) if set_len is not None else b.null
        return int(self._fn(
            ptr(p), ptr(kind), ptr(slr), ptr(pregap), ptr(tstart),
            ptr(tlr), ptr(tdelta), lines_ptr, addrs_ptr, ptr(tags),
            set_len_ptr, ptr(lr), ptr(out),
        ))


_KERNELS: Dict[KernelFamily, LoadedKernel] = {}
_BUILD_FAILURES: Dict[KernelFamily, str] = {}


def ensure_kernel(family: KernelFamily) -> LoadedKernel:
    """Load (building at most once per process) the family's kernel.

    Raises :class:`KernelBuildError` when no compiler is available or
    the build failed; failures are memoized so a broken toolchain is
    probed once, not once per cell.
    """
    kernel = _KERNELS.get(family)
    if kernel is not None:
        return kernel
    failure = _BUILD_FAILURES.get(family)
    if failure is not None:
        raise KernelBuildError(failure)
    try:
        so_path, secs, built = compile_kernel_so(family)
        kernel = LoadedKernel(family, so_path, secs, built)
    except KernelBuildError as exc:
        _BUILD_FAILURES[family] = str(exc)
        raise
    except OSError as exc:
        _BUILD_FAILURES[family] = f"kernel load failed: {exc}"
        raise KernelBuildError(_BUILD_FAILURES[family]) from exc
    _KERNELS[family] = kernel
    return kernel


def kernels_available() -> bool:
    """Cheap gate for dispatch and tier affinity: can kernels exist?"""
    return find_compiler() is not None


def loaded_kernels() -> Tuple[LoadedKernel, ...]:
    """Kernels dlopen'd by this process (profiling / CLI reporting)."""
    return tuple(_KERNELS.values())


# -- cache maintenance (python -m repro cache) ---------------------------------


def kernel_cache_stats() -> dict:
    """Count and size the on-disk kernel cache for ``cache stats``."""
    root = kernel_cache_dir()
    kernels = 0
    total_bytes = 0
    if root.is_dir():
        for entry in root.iterdir():
            if not entry.is_file():
                continue
            if entry.suffix == ".so":
                kernels += 1
            total_bytes += entry.stat().st_size
    return {
        "path": str(root),
        "kernels": kernels,
        "bytes": total_bytes,
        "compiler": find_compiler(),
        "binding": get_binding().name,
    }


def clear_kernel_cache() -> int:
    """Remove every cached kernel file; returns the count removed."""
    root = kernel_cache_dir()
    removed = 0
    if root.is_dir():
        for entry in list(root.iterdir()):
            if entry.is_file():
                entry.unlink()
                removed += 1
        try:
            root.rmdir()
        except OSError:
            pass
    _KERNELS.clear()
    return removed


def gc_kernel_cache() -> int:
    """Prune stale kernels: wrong engine version, stale source digest,
    or orphaned files with no readable metadata.  Returns the number
    of cache *entries* removed."""
    root = kernel_cache_dir()
    if not root.is_dir():
        return 0
    live_digests = set()
    removed = 0
    metas = sorted(root.glob("*.json"))
    for meta_path in metas:
        stale = True
        try:
            meta = json.loads(meta_path.read_text())
            fam = KernelFamily(**meta["family"])
            source = generate_source(fam)
            if (meta.get("schema") == KERNEL_SCHEMA
                    and meta.get("engine_version") == _engine_version()
                    and meta.get("digest") == kernel_digest(fam, source)):
                stale = False
        except (ValueError, KeyError, TypeError, OSError):
            stale = True
        stem = meta_path.with_suffix("")
        if stale:
            removed += 1
            for suffix in (".c", ".so", ".json"):
                candidate = stem.with_suffix(suffix)
                if candidate.exists():
                    candidate.unlink()
        else:
            live_digests.add(stem.name)
    for entry in list(root.iterdir()):
        if not entry.is_file():
            continue
        if entry.suffix == ".json":
            continue
        if entry.with_suffix(".json").exists():
            continue
        # Orphan .c/.so (or a torn temp file): no metadata, no trust.
        entry.unlink()
        removed += 1
    return removed
