"""Per-trace specialization of the single-issue engine.

The flattened program (:meth:`repro.sim.trace.ExpandedTrace.program`)
is still interpreted: every op pays tuple indexing and a dispatch
chain.  Since the paper's methodology executes one loop body millions
of times, it is worth compiling each trace's program *once* into a
straight-line Python function -- constants (register indices, skip
lengths) folded into the source, address buffers bound as closure
locals, the hit fast path inlined at every memory op -- and then
calling that function for the whole run.  This is the same
specialization trick the standard library uses for ``namedtuple``.

The generated function is exact by construction: it emits, for each
program entry, precisely the statements the interpreter would have
executed, in the same order.  ``tests/sim/test_fastpath_equivalence.py``
checks the result against the reference engine for every policy
family.

Fast-path contract (see ``docs/performance.md``): a load or store may
be accounted inline as a 1-cycle hit iff

* ``cycle < fence`` where ``fence`` is the earliest outstanding fill
  time (:meth:`repro.core.handler.MissHandler.next_fill_time`) -- up
  to that cycle the handler's ``_drain`` is a no-op, so no fill can
  install or evict a line first;
* the block probe succeeds (``hit_probe``: resident-set membership,
  plus the LRU touch for set-associative tag stores); and
* for stores, the write buffer is the ideal count-only one.

Everything else falls through to the handler call, after which the
fence is re-read.  When no hooks are supplied the caller passes
``fence = -1`` and every access takes the handler path, which is how
``fast_path=False`` and wrapped handlers (e.g. the access tracer)
retain exact per-access behaviour.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List

from repro.core.handler import FAR_FUTURE
from repro.sim.trace import P_LOAD, P_SCALAR, P_SKIP, P_STORE

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.trace import ExpandedTrace


def _emit_stall_check(lines: List[str], ind: str, reg: int) -> None:
    """Emit the readiness check the interpreter performs on ``rr[reg]``."""
    lines.append(f"{ind}r = rr[{reg}]")
    lines.append(f"{ind}if r > cycle:")
    lines.append(f"{ind}    truedep += r - cycle")
    lines.append(f"{ind}    cycle = r")


def build_single_issue_fn(trace: "ExpandedTrace") -> Callable:
    """Compile ``trace`` into its specialized single-issue body runner.

    The returned function has signature::

        run(it0, it1, cycle, truedep, rr, do_load, do_store,
            probe, next_fill, smode, ob, fence, res)
            -> (cycle, truedep, fence, fast_loads, fast_stores,
                fast_store_misses)

    executing body iterations ``it0..it1-1``.  ``rr`` (the register
    readiness list) is mutated in place; everything else is threaded
    through arguments and results so a warmup checkpoint can split the
    run in two.  ``smode`` is the hooks' store grading: 0 -- every
    store slow-paths; 1 -- hits inline; 2 -- hits and misses inline
    (write-around with the ideal write buffer launches no fetch on a
    store miss, so both outcomes are pure counter updates).

    ``res`` is the pure resident-block set from the handler's hooks
    (or ``None``).  When it is available and no fetch is outstanding
    (``fence == FAR_FUTURE``), the runner enters the *turbo lane*: a
    single ``and``-chain of set-membership tests decides whether an
    entire body execution hits, and consecutive all-hit executions
    collapse into one arithmetic update.  This is exact because with
    an empty fetch FIFO every register's ready time is already in the
    past (fills only publish future times while their fetch is
    queued), so an all-hit execution can stall nothing, advances the
    clock by exactly the body length, and touches only the hit
    counters.  Register ready times are left stale -- every stale
    value is <= the current cycle, which no later readiness check can
    distinguish from the reference's equally-passed values.
    """
    program = trace.program()
    n_loads = sum(1 for op in program if op[0] == P_LOAD)
    n_stores = sum(1 for op in program if op[0] == P_STORE)
    body_len = len(trace.body)
    lines: List[str] = []
    w = lines.append
    w("def _factory(bufs):")
    buffers = []
    mem_idx: List[int] = []
    for i, op in enumerate(program):
        if op[0] == P_LOAD:
            buffers.append(op[3])
        elif op[0] == P_STORE:
            buffers.append(op[2])
        else:
            continue
        mem_idx.append(i)
        w(f"    A{i} = bufs[{len(buffers) - 1}]")
    w("    def run(it0, it1, cycle, truedep, rr, do_load, do_store,")
    w("            probe, next_fill, smode, ob, fence, res):")
    w("        fast_loads = 0")
    w("        fast_stores = 0")
    w("        fast_smiss = 0")
    w("        smiss_ok = smode == 2")
    w("        sfence = fence if smode else -1")
    if n_stores:
        # Turbo executions account stores inline, so the lane needs
        # the count-only write buffer just like the per-op store path.
        w("        if not smode:")
        w("            res = None")
    w("        skip = 0")
    w("        it = it0")
    w("        while it < it1:")
    if mem_idx:
        # A failed attempt costs up to one probe per memory op, so
        # after a whiff the lane backs off and lets the per-op fast
        # path carry the next executions; probes are pure, so trying
        # (or not trying) the chain never changes the simulation.
        chain = " and ".join(f"(A{i}[it] >> ob) in res" for i in mem_idx)
        w("            if res is not None and fence == FAR_FUTURE:")
        w("                if skip:")
        w("                    skip -= 1")
        w("                else:")
        w("                    start = it")
        w(f"                    while it < it1 and {chain}:")
        w("                        it += 1")
        w("                    k = it - start")
        w("                    if k:")
        w(f"                        cycle += {body_len} * k")
        if n_loads:
            w(f"                        fast_loads += {n_loads} * k")
        if n_stores:
            w(f"                        fast_stores += {n_stores} * k")
        w("                        if it == it1:")
        w("                            break")
        w("                    else:")
        w("                        skip = 32")
    ind = " " * 12
    for i, op in enumerate(program):
        kind = op[0]
        if kind == P_SKIP:
            w(f"{ind}cycle += {op[1]}")
        elif kind == P_LOAD:
            dst, srcs = op[1], op[2]
            for s in srcs:
                _emit_stall_check(lines, ind, s)
            _emit_stall_check(lines, ind, dst)  # WAW on a pending fill
            w(f"{ind}addr = A{i}[it]")
            w(f"{ind}if cycle < fence and probe(addr >> ob):")
            w(f"{ind}    fast_loads += 1")
            w(f"{ind}    cycle += 1")
            w(f"{ind}    rr[{dst}] = cycle")
            w(f"{ind}else:")
            w(f"{ind}    nxt, ready, _o = do_load(addr, cycle)")
            w(f"{ind}    rr[{dst}] = ready")
            w(f"{ind}    cycle = nxt")
            w(f"{ind}    fence = next_fill()")
            w(f"{ind}    sfence = fence if smode else -1")
        elif kind == P_STORE:
            srcs = op[1]
            for s in srcs:
                _emit_stall_check(lines, ind, s)
            # The slow call appears in two arms: a miss under smode<2
            # (the probe, being a miss, touched no replacement state,
            # so the handler may re-access) and any store at/after the
            # fence.
            slow = (f"nxt, _h = do_store(addr, cycle); cycle = nxt; "
                    f"fence = next_fill(); sfence = fence if smode else -1")
            w(f"{ind}addr = A{i}[it]")
            w(f"{ind}if cycle < sfence:")
            w(f"{ind}    if probe(addr >> ob):")
            w(f"{ind}        fast_stores += 1")
            w(f"{ind}        cycle += 1")
            w(f"{ind}    elif smiss_ok:")
            w(f"{ind}        fast_smiss += 1")
            w(f"{ind}        cycle += 1")
            w(f"{ind}    else:")
            w(f"{ind}        {slow}")
            w(f"{ind}else:")
            w(f"{ind}    {slow}")
        else:  # P_SCALAR
            dst, srcs = op[1], op[2]
            for s in srcs:
                _emit_stall_check(lines, ind, s)
            if dst >= 0:
                _emit_stall_check(lines, ind, dst)  # scoreboard WAW
                w(f"{ind}cycle += 1")
                w(f"{ind}rr[{dst}] = cycle")
            else:
                w(f"{ind}cycle += 1")
    w(f"{ind}it += 1")
    w("        return (cycle, truedep, fence, fast_loads, fast_stores,")
    w("                fast_smiss)")
    w("    return run")
    source = "\n".join(lines)
    namespace: dict = {"FAR_FUTURE": FAR_FUTURE}
    exec(compile(source, f"<single-issue:{trace.workload_name}>", "exec"),
         namespace)
    return namespace["_factory"](buffers)


def specialized_single_issue(trace: "ExpandedTrace") -> Callable:
    """The trace's specialized runner, built on first use and cached."""
    fn = trace._single_issue_fn
    if fn is None:
        fn = build_single_issue_fn(trace)
        trace._single_issue_fn = fn
    return fn
