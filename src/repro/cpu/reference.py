"""Reference execution engines: the unoptimized oracle loops.

These are the original (pre fast-path) single- and dual-issue
interpreter loops, kept verbatim as the bit-exactness oracle for the
two-tier engine in :mod:`repro.cpu.pipeline` and
:mod:`repro.cpu.dual_issue`.  Every access -- hit or miss -- goes
through the handler's ``load``/``store`` methods, and the body is
re-dispatched op by op from parallel lists.

``simulate(..., fast_path=False)`` routes here; the equivalence suite
(``tests/sim/test_fastpath_equivalence.py``) asserts the optimized
engines produce byte-identical :class:`~repro.sim.stats.SimulationResult`
objects, and ``tools/perfbench.py`` uses these loops as the baseline
when measuring the optimized engines' speedup.  Do not optimize this
module; its value is being boring.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Tuple

from repro.cpu.isa import NUM_REGS, OpClass

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.trace import ExpandedTrace


def run_single_issue_reference(
    trace: "ExpandedTrace", handler, warmup_executions: int = 0
) -> Tuple[int, int, int]:
    """Execute the trace; returns (cycles, instructions, truedep_stalls).

    Semantics are documented on :func:`repro.cpu.pipeline.run_single_issue`;
    this is the slow every-access-through-the-handler rendition.
    """
    body = trace.body
    n_body = len(body)
    executions = trace.executions

    # Flatten per-op fields into parallel lists for the hot loop.
    kinds = [int(op.op) for op in body]
    dsts = [op.dst if op.dst is not None else -1 for op in body]
    srcs = [op.srcs for op in body]
    addresses = trace.addresses

    load_k = int(OpClass.LOAD)
    store_k = int(OpClass.STORE)

    reg_ready = [0] * NUM_REGS
    cycle = 0
    truedep = 0
    do_load = handler.load
    do_store = handler.store

    if warmup_executions >= executions:
        warmup_executions = max(0, executions - 1)
    base_cycles = base_truedep = 0
    base_stats = None

    for it in range(executions):
        if it == warmup_executions and warmup_executions > 0:
            base_cycles = cycle
            base_truedep = truedep
            base_stats = handler.checkpoint(cycle)
        for j in range(n_body):
            kind = kinds[j]
            for s in srcs[j]:
                r = reg_ready[s]
                if r > cycle:
                    truedep += r - cycle
                    cycle = r
            if kind == load_k:
                d = dsts[j]
                r = reg_ready[d]
                if r > cycle:  # WAW on a pending fill
                    truedep += r - cycle
                    cycle = r
                addr_list = addresses[j]
                nxt, ready, _outcome = do_load(addr_list[it], cycle)
                reg_ready[d] = ready
                cycle = nxt
            elif kind == store_k:
                addr_list = addresses[j]
                nxt, _hit = do_store(addr_list[it], cycle)
                cycle = nxt
            else:
                d = dsts[j]
                if d >= 0:
                    r = reg_ready[d]
                    if r > cycle:  # WAW on a pending fill
                        truedep += r - cycle
                        cycle = r
                    reg_ready[d] = cycle + 1
                cycle += 1

    handler.finalize(cycle)
    if base_stats is not None:
        handler.stats = handler.stats.minus(base_stats)
        measured = executions - warmup_executions
        return cycle - base_cycles, n_body * measured, truedep - base_truedep
    return cycle, n_body * executions, truedep


def run_dual_issue_reference(trace: "ExpandedTrace", handler) -> Tuple[int, int, int]:
    """Execute the trace 2-wide; returns (cycles, instructions, truedep).

    Semantics are documented on :func:`repro.cpu.dual_issue.run_dual_issue`;
    this is the slow every-access-through-the-handler rendition.
    """
    body = trace.body
    n_body = len(body)
    executions = trace.executions

    kinds = [int(op.op) for op in body]
    dsts = [op.dst if op.dst is not None else -1 for op in body]
    srcs = [op.srcs for op in body]
    addresses = trace.addresses

    load_k = int(OpClass.LOAD)
    store_k = int(OpClass.STORE)

    reg_ready = [0] * NUM_REGS
    cycle = 0
    slot = 0
    mem_used = False
    written_this_cycle = [-1, -1]
    truedep = 0
    do_load = handler.load
    do_store = handler.store

    for it in range(executions):
        for j in range(n_body):
            kind = kinds[j]
            is_mem = kind == load_k or kind == store_k
            d = dsts[j]

            # Earliest cycle at which operands (and dst, for WAW) allow issue.
            ready = 0
            for s in srcs[j]:
                r = reg_ready[s]
                if r > ready:
                    ready = r
            if d >= 0:
                r = reg_ready[d]
                if r > ready:
                    ready = r

            # Does this instruction fit in the current cycle?
            fits = slot < 2 and not (is_mem and mem_used)
            if fits and (
                written_this_cycle[0] in srcs[j]
                or written_this_cycle[1] in srcs[j]
                or (d >= 0 and (d == written_this_cycle[0] or d == written_this_cycle[1]))
            ):
                fits = False  # same-cycle dependence: wait for next cycle
            start = cycle if fits else cycle + 1
            if ready > start:
                truedep += ready - start
                start = ready
            if start > cycle:
                slot = 0
                mem_used = False
                written_this_cycle[0] = -1
                written_this_cycle[1] = -1
                cycle = start

            if kind == load_k:
                nxt, data_ready, _outcome = do_load(addresses[j][it], cycle)
                reg_ready[d] = data_ready
                mem_used = True
                written_this_cycle[slot] = d
                slot += 1
                if nxt > cycle + 1:
                    # The handler stalled the machine (structural or
                    # blocking miss): resume single-file at `nxt`.
                    cycle = nxt
                    slot = 0
                    mem_used = False
                    written_this_cycle[0] = -1
                    written_this_cycle[1] = -1
            elif kind == store_k:
                nxt, _hit = do_store(addresses[j][it], cycle)
                mem_used = True
                slot += 1
                if nxt > cycle + 1:
                    cycle = nxt
                    slot = 0
                    mem_used = False
                    written_this_cycle[0] = -1
                    written_this_cycle[1] = -1
            else:
                if d >= 0:
                    reg_ready[d] = cycle + 1
                    written_this_cycle[slot] = d
                slot += 1

    end = cycle + 1  # the final cycle is occupied
    handler.finalize(end)
    return end, n_body * executions, truedep
