"""A minimal RISC-like instruction set for the timing study.

The paper's processor model (Section 3.1) is a single-issue machine with
3-operand instructions, single-cycle instruction latencies, 32 integer
and 32 floating-point registers, separate instruction and data caches
(the I-cache is perfect), no branch-delay slots, and a perfect
branch-target predictor.  The only architected behaviour that matters to
the study is therefore:

* which instructions reference memory (loads and stores),
* the register dataflow between instructions (a use of a load target
  stalls until the fill returns), and
* the byte width of each memory access (it determines which MSHR
  sub-block a miss lands in).

This module defines just enough of an ISA to express that: opcode
classes, a register-file description, and an :class:`Instruction` record
used both by the compiler backend and by the trace expander.

Registers are numbered 0..63: 0..31 are the integer registers
(``r0``..``r31``) and 32..63 are the floating-point registers
(``f0``..``f31``).  Register 0 is *not* hard-wired to zero; the paper's
model does not need one and keeping all 32 allocatable simplifies the
register allocator.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

#: Number of integer registers in the architected register file.
NUM_INT_REGS = 32
#: Number of floating-point registers in the architected register file.
NUM_FP_REGS = 32
#: Total architected registers (integer file followed by FP file).
NUM_REGS = NUM_INT_REGS + NUM_FP_REGS

#: Index of the first floating-point register in the flat 0..63 space.
FP_BASE = NUM_INT_REGS


class OpClass(enum.IntEnum):
    """Coarse instruction classes; all the timing model distinguishes.

    The integer values are stable and used directly in the expanded
    trace arrays consumed by the simulator hot loop, so do not reorder
    them.
    """

    #: Integer ALU operation (add, shift, compare, ...), 1 cycle.
    IALU = 0
    #: Floating-point operation (add, mul, ...), 1 cycle per the paper.
    FALU = 1
    #: Load from the data cache into a register.
    LOAD = 2
    #: Store from a register through the data cache (write-around).
    STORE = 3
    #: Branch; perfect prediction makes it timing-neutral but it still
    #: occupies an issue slot and may read registers.
    BRANCH = 4
    #: No-op; occupies an issue slot (used for explicit padding studies).
    NOP = 5


#: Opcode classes that reference data memory.
MEMORY_CLASSES = (OpClass.LOAD, OpClass.STORE)

#: Legal access widths in bytes for loads and stores.
ACCESS_WIDTHS = (1, 2, 4, 8)


def is_int_reg(reg: int) -> bool:
    """Return True if ``reg`` indexes the integer register file."""
    return 0 <= reg < NUM_INT_REGS


def is_fp_reg(reg: int) -> bool:
    """Return True if ``reg`` indexes the floating-point register file."""
    return FP_BASE <= reg < NUM_REGS


def reg_name(reg: int) -> str:
    """Render a flat register index as an assembly-style name."""
    if is_int_reg(reg):
        return f"r{reg}"
    if is_fp_reg(reg):
        return f"f{reg - FP_BASE}"
    raise ValueError(f"register index out of range: {reg}")


@dataclass(frozen=True)
class Instruction:
    """One scheduled machine instruction.

    ``dst`` is ``None`` for instructions that produce no register value
    (stores, branches, nops).  ``srcs`` lists the registers the
    instruction reads; the simulator stalls at issue until every source
    is valid, which is how true-data-dependency stalls arise.

    Memory instructions carry a ``stream`` identifier naming the
    address stream (see :mod:`repro.workloads.patterns`) that supplies
    their effective addresses at trace-expansion time, plus the access
    ``width`` in bytes.
    """

    op: OpClass
    dst: Optional[int] = None
    srcs: Tuple[int, ...] = ()
    stream: Optional[int] = None
    width: int = 8
    #: Optional label for debugging / disassembly output.
    comment: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if self.op in MEMORY_CLASSES:
            if self.stream is None:
                raise ValueError(f"{self.op.name} requires a stream id")
            if self.width not in ACCESS_WIDTHS:
                raise ValueError(f"illegal access width {self.width}")
        if self.op is OpClass.LOAD and self.dst is None:
            raise ValueError("LOAD requires a destination register")
        if self.op is OpClass.STORE and self.dst is not None:
            raise ValueError("STORE must not have a destination register")
        for reg in self.srcs:
            if not 0 <= reg < NUM_REGS:
                raise ValueError(f"source register out of range: {reg}")
        if self.dst is not None and not 0 <= self.dst < NUM_REGS:
            raise ValueError(f"destination register out of range: {self.dst}")

    @property
    def is_memory(self) -> bool:
        """True for loads and stores."""
        return self.op in MEMORY_CLASSES

    def render(self) -> str:
        """Render in a readable assembly-like syntax (for debugging)."""
        parts = [self.op.name.lower()]
        operands = []
        if self.dst is not None:
            operands.append(reg_name(self.dst))
        operands.extend(reg_name(s) for s in self.srcs)
        if self.stream is not None:
            operands.append(f"[stream{self.stream}:{self.width}B]")
        text = parts[0] + " " + ", ".join(operands)
        if self.comment:
            text += f"  ; {self.comment}"
        return text.rstrip()
