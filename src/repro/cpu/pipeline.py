"""The single-issue processor timing model (paper Section 3.1).

A multistage pipeline reduced to its timing essentials: one
instruction issues per cycle, every instruction has a single-cycle
latency, the I-cache is perfect, branches are perfectly predicted, and
the register file is scoreboarded.  The only stalls are

* **true-data-dependency stalls**: an instruction whose source (or,
  for the write-after-write case, destination) register awaits an
  outstanding load fill waits until the fill returns; and
* **memory-system stalls** raised by the miss handler: structural
  hazards, blocking misses, write-miss-allocate fetches, and (in the
  finite-buffer ablation) write-buffer overflow.

The engine walks the expanded trace body-execution by body-execution.
Register readiness is a 64-entry list of cycle numbers; the handler
returns, for each memory access, when the pipeline resumes and when
the data arrives.  This loop is the simulator's hot path; it trades
abstraction for locals-cached dispatch on the opcode class.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Tuple

from repro.cpu.isa import NUM_REGS, OpClass

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.trace import ExpandedTrace


class PerfectCacheHandler:
    """Stand-in handler where every access hits (for IPC baselines)."""

    def __init__(self) -> None:
        from repro.core.stats import MissStats

        self.stats = MissStats()

    def load(self, addr: int, now: int) -> Tuple[int, int, int]:
        self.stats.loads += 1
        self.stats.load_hits += 1
        return now + 1, now + 1, 0

    def store(self, addr: int, now: int) -> Tuple[int, bool]:
        self.stats.stores += 1
        self.stats.store_hits += 1
        return now + 1, True

    def checkpoint(self, cycle: int):
        snap = self.stats.snapshot()
        snap.observed_cycles = cycle
        return snap

    def finalize(self, end_cycle: int) -> None:
        self.stats.observed_cycles = end_cycle


def run_single_issue(
    trace: "ExpandedTrace", handler, warmup_executions: int = 0
) -> Tuple[int, int, int]:
    """Execute the trace; returns (cycles, instructions, truedep_stalls).

    ``handler`` is a :class:`~repro.core.handler.MissHandler` or
    :class:`PerfectCacheHandler`.  ``warmup_executions`` discards the
    first N body executions from every returned count and from the
    handler's statistics (cache state is kept, so the measured window
    starts warm) -- the control the paper's billion-reference runs
    never needed.
    """
    body = trace.body
    n_body = len(body)
    executions = trace.executions

    # Flatten per-op fields into parallel lists for the hot loop.
    kinds = [int(op.op) for op in body]
    dsts = [op.dst if op.dst is not None else -1 for op in body]
    srcs = [op.srcs for op in body]
    addresses = trace.addresses

    load_k = int(OpClass.LOAD)
    store_k = int(OpClass.STORE)

    reg_ready = [0] * NUM_REGS
    cycle = 0
    truedep = 0
    do_load = handler.load
    do_store = handler.store

    if warmup_executions >= executions:
        warmup_executions = max(0, executions - 1)
    base_cycles = base_truedep = 0
    base_stats = None

    for it in range(executions):
        if it == warmup_executions and warmup_executions > 0:
            base_cycles = cycle
            base_truedep = truedep
            base_stats = handler.checkpoint(cycle)
        for j in range(n_body):
            kind = kinds[j]
            for s in srcs[j]:
                r = reg_ready[s]
                if r > cycle:
                    truedep += r - cycle
                    cycle = r
            if kind == load_k:
                d = dsts[j]
                r = reg_ready[d]
                if r > cycle:  # WAW on a pending fill
                    truedep += r - cycle
                    cycle = r
                addr_list = addresses[j]
                nxt, ready, _outcome = do_load(addr_list[it], cycle)
                reg_ready[d] = ready
                cycle = nxt
            elif kind == store_k:
                addr_list = addresses[j]
                nxt, _hit = do_store(addr_list[it], cycle)
                cycle = nxt
            else:
                d = dsts[j]
                if d >= 0:
                    r = reg_ready[d]
                    if r > cycle:  # WAW on a pending fill
                        truedep += r - cycle
                        cycle = r
                    reg_ready[d] = cycle + 1
                cycle += 1

    handler.finalize(cycle)
    if base_stats is not None:
        handler.stats = handler.stats.minus(base_stats)
        measured = executions - warmup_executions
        return cycle - base_cycles, n_body * measured, truedep - base_truedep
    return cycle, n_body * executions, truedep
