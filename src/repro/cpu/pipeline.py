"""The single-issue processor timing model (paper Section 3.1).

A multistage pipeline reduced to its timing essentials: one
instruction issues per cycle, every instruction has a single-cycle
latency, the I-cache is perfect, branches are perfectly predicted, and
the register file is scoreboarded.  The only stalls are

* **true-data-dependency stalls**: an instruction whose source (or,
  for the write-after-write case, destination) register awaits an
  outstanding load fill waits until the fill returns; and
* **memory-system stalls** raised by the miss handler: structural
  hazards, blocking misses, write-miss-allocate fetches, and (in the
  finite-buffer ablation) write-buffer overflow.

This module holds the *two-tier* execution engine.  Tier 2 is the
flattened interpreter: the engine walks the trace's pre-compiled
dispatch program (:meth:`repro.sim.trace.ExpandedTrace.program`), in
which non-interacting scalar runs are single clock-advance entries.
Tier 1 is the hit fast path: when the handler publishes fast-path
hooks, a load/store whose block is resident -- and which issues before
the earliest outstanding fill could change tag state -- is accounted
inline as a 1-cycle hit with direct counter increments, and only the
remaining accesses pay the full ``MissHandler.load``/``store`` call.
The timing contract is bit-identical to the reference loop in
:mod:`repro.cpu.reference`; ``tests/sim/test_fastpath_equivalence.py``
asserts it across every policy family.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Tuple

from repro.cpu.isa import NUM_REGS
from repro.core.handler import FAR_FUTURE

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.trace import ExpandedTrace


class _Universe:
    """A "set" containing every block -- the perfect cache's residency."""

    def __contains__(self, block: int) -> bool:
        return True


_UNIVERSE = _Universe()


class PerfectCacheHandler:
    """Stand-in handler where every access hits (for IPC baselines)."""

    def __init__(self) -> None:
        from repro.core.stats import MissStats

        self.stats = MissStats()

    def load(self, addr: int, now: int) -> Tuple[int, int, int]:
        self.stats.loads += 1
        self.stats.load_hits += 1
        return now + 1, now + 1, 0

    def store(self, addr: int, now: int) -> Tuple[int, bool]:
        self.stats.stores += 1
        self.stats.store_hits += 1
        return now + 1, True

    def absorb_fast_hits(
        self, n_loads: int, n_stores: int, n_store_misses: int = 0
    ) -> None:
        self.stats.loads += n_loads
        self.stats.load_hits += n_loads
        self.stats.stores += n_stores
        self.stats.store_hits += n_stores

    def fast_path_hooks(self):
        """Every access hits, so the fast path is unconditional."""
        return (_UNIVERSE.__contains__, (lambda: FAR_FUTURE), 2, 0,
                self.absorb_fast_hits, _UNIVERSE)

    def checkpoint(self, cycle: int):
        snap = self.stats.snapshot()
        snap.observed_cycles = cycle
        return snap

    def finalize(self, end_cycle: int) -> None:
        self.stats.observed_cycles = end_cycle


def _no_fill() -> int:
    """next_fill stand-in when no fast-path hooks are active."""
    return -1


def run_single_issue(
    trace: "ExpandedTrace",
    handler,
    warmup_executions: int = 0,
    fast_path: bool = True,
) -> Tuple[int, int, int]:
    """Execute the trace; returns (cycles, instructions, truedep_stalls).

    ``handler`` is a :class:`~repro.core.handler.MissHandler` or
    :class:`PerfectCacheHandler`.  ``warmup_executions`` discards the
    first N body executions from every returned count and from the
    handler's statistics (cache state is kept, so the measured window
    starts warm) -- the control the paper's billion-reference runs
    never needed.  ``fast_path=False`` disables the inline hit probe
    (every access goes through the handler); the result is identical
    either way, only slower.

    The body loop itself is specialized per trace by
    :mod:`repro.cpu.codegen`; this wrapper resolves the handler's
    fast-path hooks, splits the run around the warmup checkpoint, and
    settles the inline hit counters into the handler's statistics.
    """
    from repro.cpu.codegen import specialized_single_issue

    executions = trace.executions
    n_body = len(trace.body)
    run = specialized_single_issue(trace)

    reg_ready = [0] * NUM_REGS
    do_load = handler.load
    do_store = handler.store

    hooks = getattr(handler, "fast_path_hooks", None) if fast_path else None
    hooks = hooks() if hooks is not None else None
    if hooks is not None:
        probe, next_fill, store_mode, offset_bits, absorb, res = hooks
        fence = next_fill()
    else:
        probe = absorb = res = None
        next_fill = _no_fill
        store_mode = 0
        offset_bits = 0
        fence = -1  # cycle < fence is never true: every access slow-paths

    if warmup_executions >= executions:
        warmup_executions = max(0, executions - 1)
    base_cycles = base_truedep = 0
    base_stats = None

    cycle = truedep = 0
    if warmup_executions > 0:
        cycle, truedep, fence, fast_loads, fast_stores, fast_smiss = run(
            0, warmup_executions, cycle, truedep, reg_ready,
            do_load, do_store, probe, next_fill, store_mode, offset_bits,
            fence, res,
        )
        if absorb is not None and (fast_loads or fast_stores or fast_smiss):
            absorb(fast_loads, fast_stores, fast_smiss)
        base_cycles = cycle
        base_truedep = truedep
        base_stats = handler.checkpoint(cycle)
    cycle, truedep, fence, fast_loads, fast_stores, fast_smiss = run(
        warmup_executions, executions, cycle, truedep, reg_ready,
        do_load, do_store, probe, next_fill, store_mode, offset_bits,
        fence, res,
    )
    if absorb is not None and (fast_loads or fast_stores or fast_smiss):
        absorb(fast_loads, fast_stores, fast_smiss)

    handler.finalize(cycle)
    if base_stats is not None:
        handler.stats = handler.stats.minus(base_stats)
        measured = executions - warmup_executions
        return cycle - base_cycles, n_body * measured, truedep - base_truedep
    return cycle, n_body * executions, truedep
