"""Policy replay: one compiled timing kernel per (stream, machine) pair.

The second half of policy-sibling fusion (see :mod:`repro.sim.stream`
and ``docs/performance.md``).  A group of sweep cells that share
(workload, load latency, scale, line size) also share their
instruction stream, address stream, and dependency structure; only
the MSHR policy and cache geometry differ.  The stream pass captures
the shared part once; this module compiles, per sibling, a *replay
kernel* -- a specialized function over the stream's memory slots that
advances that sibling's whole timing model (tag state, fetch FIFO,
miss merging, structural arbitration, fill scheduling, occupancy
histograms) with every policy limit folded in as a constant, no
:class:`~repro.core.handler.MissHandler` call in the loop.

Exactness is by construction, mirrored clause for clause:

* each memory slot issues at ``max(cycle + pregap, max(ready[lr] +
  delta))`` -- the closed form of the interpreter's stall checks
  between two memory ops (advances are compile-time constants, stall
  checks are maxima, and composing "advance then max" chains yields
  this single max; the stream pass records which load slots can reach
  each check and with what cumulative advance);
* the hit fast path, store grading, fence discipline, and turbo lane
  are verbatim from the specialized engine
  (:mod:`repro.cpu.codegen`), so every slow access happens at the
  same cycle in both engines;
* the slow paths transcribe :meth:`MissHandler.load` /
  :meth:`MissHandler.store` statement for statement -- same drain
  points, same histogram integration boundaries, same structural
  causes, same stall arithmetic -- with the handler's attribute
  traffic replaced by closure locals;
* true-dependency stalls are not metered per check: the single-issue
  accounting identity (``cycles == instructions + truedep +
  memory_stall_cycles``, asserted by ``verify_accounting`` on every
  run) recovers the total exactly from the final cycle count.

Kernels require the ideal write buffer (a finite buffer's stalls
depend on per-push timing the fast path cannot absorb) and a
non-blocking policy; blocking policies short-circuit further -- their
machine *is* the immediate-install cache, so a
:class:`~repro.sim.stream.FunctionalSummary` plus
:meth:`~repro.core.handler.MissHandler.absorb_blocking_run`
reproduces the whole run in O(1).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List, Optional, Tuple

from repro.core.classify import StructuralCause
from repro.core.handler import FAR_FUTURE, MissHandler
from repro.core.stats import MissStats
from repro.errors import SimulationError
from repro.sim.trace import P_LOAD

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.config import MachineConfig
    from repro.sim.stream import EventStream, FunctionalSummary
    from repro.sim.trace import ExpandedTrace


def _emit(lines: List[str], indent: int, block: str) -> None:
    """Append a template block, re-indented, blank lines dropped."""
    pad = "    " * indent
    for raw in block.strip("\n").split("\n"):
        if raw.strip():
            lines.append(pad + raw)


def _emit_issue_time(lines: List[str], indent: int, pregap: int, terms) -> None:
    """Emit ``t = max(cycle + pregap, max(lr<m> + d))`` for one slot."""
    pad = "    " * indent
    if pregap:
        lines.append(f"{pad}t = cycle + {pregap}")
    else:
        lines.append(f"{pad}t = cycle")
    for m, d in terms:
        lines.append(f"{pad}v = lr{m} + {d}" if d else f"{pad}v = lr{m}")
        lines.append(f"{pad}if v > t:")
        lines.append(f"{pad}    t = v")


class _KernelShape:
    """The codegen-time constants of one (geometry, policy) machine."""

    def __init__(self, config: "MachineConfig") -> None:
        geometry = config.geometry
        policy = config.policy
        self.dm = geometry.is_direct_mapped
        self.setmask = geometry.num_sets - 1
        self.ways = geometry.ways
        self.maxm = policy.max_misses
        self.maxf = policy.max_fetches
        self.maxs = policy.max_fetches_per_set
        layout = policy.layout
        self.limited = not layout.unlimited
        self.nsub = layout.n_subblocks
        self.sublim = layout.misses_per_subblock
        if self.limited and self.nsub > geometry.line_size:
            raise SimulationError(
                "field layout has more sub-blocks than bytes per line"
            )
        sub_size = geometry.line_size // self.nsub
        self.sub_shift = sub_size.bit_length() - 1
        self.line_mask = geometry.line_size - 1
        self.ports = policy.fill_ports
        self.penalty = config.effective_penalty + policy.fill_overhead
        #: Store grading with the ideal write buffer: 1 -- hits inline
        #: (write-miss-allocate fetches and stalls); 2 -- hits and
        #: misses inline (write-around stores never fetch or install).
        self.smode = 1 if policy.write_allocate_blocking else 2
        #: Set by :func:`build_replay_fn` when the native lane is in
        #: play: DM installs then also mirror into the numpy tag array
        #: the vectorized scan reads (:mod:`repro.cpu.replay_native`).
        self.native = False


def _emit_state_init(w, shape: "_KernelShape", n_loads: int) -> None:
    _emit(w, 2, """
loads = 0
load_hits = 0
primary = 0
secondary = 0
structural = 0
causes = {}
stores = 0
store_hits = 0
store_misses = 0
structural_stall = 0
wa_stall = 0
wb_pushes = 0
fetches_launched = 0
evictions = 0
max_m = 0
max_f = 0
miss_hist = [0] * 8
fetch_hist = [0] * 8
last_t = 0
n_misses_out = 0
fifo = []
by_block = {}
fence = FAR_FUTURE
fast_loads = 0
fast_stores = 0
fast_smiss = 0
skip = 0
cycle = 0
it = 0
""")
    if shape.maxs is not None:
        w.append("        per_set = {}")
    if shape.dm:
        w.append(f"        tags_ = [None] * {shape.setmask + 1}")
        w.append("        res = set()")
        if shape.native:
            w.append("        TAGS = TAGS_PROTO.copy()")
    else:
        w.append(f"        S = [[] for _ in range({shape.setmask + 1})]")
    for j in range(n_loads):
        w.append(f"        lr{j} = 0")


def _emit_advance(w, indent: int) -> None:
    """The handler's ``_advance(t)`` with ``t`` in local ``t``."""
    _emit(w, indent, """
dt = t - last_t
if dt > 0:
    nf = len(fifo)
    nm = n_misses_out
    fetch_hist[nf if nf < 8 else 7] += dt
    miss_hist[nm if nm < 8 else 7] += dt
    last_t = t
""")


def _emit_install(w, indent: int, shape: "_KernelShape") -> None:
    """``tags.install(b)`` with eviction counting, block in ``b``."""
    if shape.dm:
        mirror = "\n    TAGS[i] = b" if shape.native else ""
        _emit(w, indent, f"""
i = b & {shape.setmask}
old = tags_[i]
if old != b:
    tags_[i] = b{mirror}
    if old is not None:
        res.discard(old)
        evictions += 1
    res.add(b)
""")
    else:
        _emit(w, indent, f"""
ways = S[b & {shape.setmask}]
if b in ways:
    ways.remove(b)
    ways.insert(0, b)
else:
    ways.insert(0, b)
    if len(ways) > {shape.ways}:
        ways.pop()
        evictions += 1
""")


def _emit_drain(w, shape: "_KernelShape") -> None:
    """The handler's ``_drain`` as a closure maintaining ``fence``."""
    _emit(w, 2, """
def drain(now):
    nonlocal last_t, n_misses_out, evictions, fence
    while fifo and fifo[0][2] <= now:
        f = fifo[0]
        t = f[2]
""")
    _emit_advance(w, 4)
    _emit(w, 4, """
del fifo[0]
b = f[0]
del by_block[b]
n_misses_out -= f[3]
""")
    if shape.maxs is not None:
        _emit(w, 4, """
si = f[1]
rem = per_set.get(si, 0) - 1
if rem > 0:
    per_set[si] = rem
else:
    per_set.pop(si, None)
""")
    _emit_install(w, 4, shape)
    _emit(w, 3, """
fence = fifo[0][2] if fifo else FAR_FUTURE
""")


def _emit_access(w, indent: int, shape: "_KernelShape", hit_block: str) -> None:
    """``tags.access(b)``: on hit run ``hit_block``, else fall through."""
    if shape.dm:
        _emit(w, indent, "if b in res:")
        _emit(w, indent + 1, hit_block)
    else:
        _emit(w, indent, f"""
ways = S[b & {shape.setmask}]
if b in ways:
    ways.remove(b)
    ways.insert(0, b)
""")
        _emit(w, indent + 1, hit_block)


def _emit_miss_load(w, shape: "_KernelShape") -> None:
    """Transcribe ``MissHandler.load`` (non-blocking) as a closure.

    ``now`` is the post-stall issue cycle; returns ``(next_issue,
    data_ready)``.  Every policy limit is folded: absent limits drop
    their checks, an unlimited field layout drops the sub-block
    machinery (and the ``sub`` argument with it), and unreachable
    structural arms are not emitted at all.
    """
    sub_arg = ", sub" if shape.limited else ""
    _emit(w, 2, f"""
def miss_load(b, now{sub_arg}):
    nonlocal loads, load_hits, secondary, primary, structural
    nonlocal structural_stall, fetches_launched, max_m, max_f
    nonlocal n_misses_out, last_t, fence, evictions
    loads += 1
    if fence <= now:
        drain(now)
""")
    _emit_access(w, 3, shape, """
load_hits += 1
return now + 1, now + 1
""")
    _emit(w, 3, """
t = now
stalled = False
s_cause = None
while True:
    f = by_block.get(b)
    if f is not None:
""")
    # -- merge (secondary-miss) path, handler.load's first arm --------
    merge_always_ok = shape.maxm is None and not shape.limited
    if shape.limited:
        _emit(w, 5, """
counts = f[4]
free = counts is None or counts[sub] < %d
""" % shape.sublim)
    if shape.maxm is not None:
        _emit(w, 5, f"miss_ok = n_misses_out < {shape.maxm}")
    if merge_always_ok:
        _emit(w, 5, "if True:")
    elif shape.maxm is None:
        _emit(w, 5, "if free:")
    elif not shape.limited:
        _emit(w, 5, "if miss_ok:")
    else:
        _emit(w, 5, "if miss_ok and free:")
    _emit_advance(w, 6)
    _emit(w, 6, """
position = f[3]
f[3] = position + 1
n_misses_out += 1
""")
    if shape.limited:
        _emit(w, 6, """
if counts is None:
    counts = [0] * %d
    f[4] = counts
counts[sub] += 1
""" % shape.nsub)
    _emit(w, 6, """
if n_misses_out > max_m:
    max_m = n_misses_out
""")
    if shape.ports is None:
        _emit(w, 6, "ready = f[2]")
    else:
        _emit(w, 6, f"ready = f[2] + position // {shape.ports}")
    _emit(w, 6, """
if stalled:
    structural += 1
    causes[s_cause] = causes.get(s_cause, 0) + 1
    structural_stall += t - now
    return t + 1, ready
secondary += 1
return t + 1, ready
""")
    if not merge_always_ok:
        # Structural hazard on the merge path.
        if shape.maxm is None:
            cause_expr = "NO_DEST_FIELD"
        elif not shape.limited:
            cause_expr = "NO_MISS_SLOT"
        else:
            cause_expr = "NO_MISS_SLOT if not miss_ok else NO_DEST_FIELD"
        _emit(w, 5, f"""
if not stalled:
    stalled = True
    s_cause = {cause_expr}
""")
        if shape.maxm is None:
            _emit(w, 5, "t = f[2]")
        elif not shape.limited:
            _emit(w, 5, "t = fence")
        else:
            _emit(w, 5, """
if not miss_ok:
    t = fence
else:
    t = f[2]
""")
        _emit(w, 5, "drain(t)")
        _emit_access(w, 5, shape, """
structural += 1
causes[s_cause] = causes.get(s_cause, 0) + 1
structural_stall += t - now
return t + 1, t + 1
""")
        _emit(w, 5, "continue")
    # -- primary-miss path -------------------------------------------
    _emit(w, 4, f"si = b & {shape.setmask}")
    launch_always_ok = (
        shape.maxf is None and shape.maxm is None and shape.maxs is None
    )
    if not launch_always_ok:
        _emit(w, 4, """
wait_until = t
cause = None
""")
        if shape.maxf is not None:
            _emit(w, 4, f"""
if len(fifo) >= {shape.maxf}:
    if fence > wait_until:
        wait_until = fence
    cause = NO_FETCH_SLOT
""")
        if shape.maxm is not None:
            _emit(w, 4, f"""
if n_misses_out >= {shape.maxm}:
    if fence > wait_until:
        wait_until = fence
    cause = NO_MISS_SLOT
""")
        if shape.maxs is not None:
            _emit(w, 4, f"""
if per_set.get(si, 0) >= {shape.maxs}:
    fs_t = -1
    for f2 in fifo:
        if f2[1] == si:
            fs_t = f2[2]
            break
    if fs_t < 0:
        raise SimulationError(
            "per-set limit hit with no fetch in the set")
    if fs_t > wait_until:
        wait_until = fs_t
    cause = NO_SET_SLOT
""")
        _emit(w, 4, "if cause is None:")
        launch_indent = 5
    else:
        launch_indent = 4
    _emit_advance(w, launch_indent)
    _emit(w, launch_indent, f"ft = t + 1 + {shape.penalty}")
    if shape.limited:
        _emit(w, launch_indent, f"""
counts = [0] * {shape.nsub}
counts[sub] = 1
f = [b, si, ft, 1, counts]
""")
    else:
        _emit(w, launch_indent, "f = [b, si, ft, 1, None]")
    _emit(w, launch_indent, """
if not fifo:
    fence = ft
fifo.append(f)
by_block[b] = f
n_misses_out += 1
""")
    if shape.maxs is not None:
        _emit(w, launch_indent, "per_set[si] = per_set.get(si, 0) + 1")
    _emit(w, launch_indent, """
fetches_launched += 1
if n_misses_out > max_m:
    max_m = n_misses_out
nf = len(fifo)
if nf > max_f:
    max_f = nf
if stalled:
    structural += 1
    causes[s_cause] = causes.get(s_cause, 0) + 1
    structural_stall += t - now
    return t + 1, ft
primary += 1
return t + 1, ft
""")
    if not launch_always_ok:
        _emit(w, 4, """
if not stalled:
    stalled = True
    s_cause = cause
if wait_until <= t:
    raise SimulationError("structural stall made no progress")
t = wait_until
drain(t)
""")


def _emit_slow_store(w, shape: "_KernelShape") -> None:
    """Transcribe ``MissHandler.store`` (ideal write buffer)."""
    _emit(w, 2, """
def slow_store(b, now):
    nonlocal stores, store_hits, store_misses, wb_pushes
    nonlocal last_t, n_misses_out, evictions, fence, wa_stall
    stores += 1
    if fence <= now:
        drain(now)
""")
    if shape.dm:
        _emit(w, 3, "hit = b in res")
    else:
        _emit(w, 3, f"""
ways = S[b & {shape.setmask}]
if b in ways:
    ways.remove(b)
    ways.insert(0, b)
    hit = True
else:
    hit = False
""")
    _emit(w, 3, """
if hit:
    store_hits += 1
else:
    store_misses += 1
wb_pushes += 1
""")
    if shape.smode == 1:
        _emit(w, 3, f"""
if not hit:
    wa_stall += {shape.penalty}
""")
        _emit_install(w, 4, shape)
        _emit(w, 4, f"return now + 1 + {shape.penalty}")
    _emit(w, 3, "return now + 1")


def _emit_probe_hit(w, indent: int, shape, hit_body: str,
                    miss_body: str) -> None:
    """The per-slot fast-path probe: ``t < fence`` plus a tag hit.

    Mirrors the engine's ``if cycle < fence and probe(addr >> ob)``:
    the probe is only evaluated before the fence, and for
    set-associative tags a probe that hits performs the LRU touch
    (a probe that misses touches nothing, and the slow path's
    re-access after its no-op drain misses again, exactly like
    ``do_load`` after a failed ``hit_probe``).
    """
    if shape.dm:
        _emit(w, indent, "if t < fence and b in res:")
        _emit(w, indent + 1, hit_body)
        _emit(w, indent, "else:")
        _emit(w, indent + 1, miss_body)
    else:
        _emit(w, indent, f"""
if t < fence:
    ways = S[b & {shape.setmask}]
    if b in ways:
        ways.remove(b)
        ways.insert(0, b)
""")
        _emit(w, indent + 2, hit_body)
        _emit(w, indent + 1, "else:")
        _emit(w, indent + 2, miss_body)
        _emit(w, indent, "else:")
        _emit(w, indent + 1, miss_body)


def build_replay_fn(
    stream: "EventStream", trace: "ExpandedTrace", config: "MachineConfig",
    native=None,
) -> Callable:
    """Compile one sibling's replay kernel over ``stream``.

    The returned function has signature ``run(it1) -> tuple`` --
    replay executions ``0..it1-1`` from a cold machine and return the
    raw counter tuple :func:`run_replay` folds into a
    :class:`~repro.core.stats.MissStats`.

    ``native`` (a lane object from :mod:`repro.cpu.replay_native`,
    direct-mapped machines only) swaps the scalar turbo lane for the
    numpy-vectorized quiescent scan and mirrors DM installs into the
    lane's tag array; the generated slow paths are byte-for-byte the
    same either way, so the two kernels differ only in how all-hit
    runs are *detected*, never in what any execution computes.
    """
    shape = _KernelShape(config)
    shape.native = native is not None
    slots = stream.slots
    n_loads = stream.n_loads
    n_stores = stream.n_stores
    body_len = stream.body_len
    w: List[str] = []
    w.append("def _factory(lbufs, abufs):")
    byte_bufs: List = []
    for k, slot in enumerate(slots):
        w.append(f"    L{k} = lbufs[{k}]")
        if shape.limited:
            w.append(f"    A{k} = abufs[{k}]")
    if shape.limited:
        byte_bufs = [trace.addresses[s.body_index] for s in slots]
    w.append("    def run(it1):")
    _emit_state_init(w, shape, n_loads)
    if native is not None:
        native.emit_state(w, shape, stream)
    _emit_drain(w, shape)
    _emit_miss_load(w, shape)
    if n_stores:
        _emit_slow_store(w, shape)
    w.append("        while it < it1:")
    if shape.dm and native is not None:
        native.emit_lane(w, shape, stream)
    elif shape.dm:
        # Turbo lane, verbatim from the specialized engine: with no
        # fetch outstanding every lr value is already in the past, so
        # an all-hit execution stalls nothing and advances by exactly
        # the body length.
        chain = " and ".join(
            f"L{k}[it] in res" for k in range(len(slots)))
        _emit(w, 3, f"""
if fence == FAR_FUTURE:
    if skip:
        skip -= 1
    else:
        start = it
        while it < it1 and {chain}:
            it += 1
        k = it - start
        if k:
            cycle += {body_len} * k
""")
        if n_loads:
            _emit(w, 6, f"fast_loads += {n_loads} * k")
        if n_stores:
            _emit(w, 6, f"fast_stores += {n_stores} * k")
        _emit(w, 6, """
if it == it1:
    break
""")
        _emit(w, 5, """
else:
    skip = 32
""")
    for k, slot in enumerate(slots):
        _emit_issue_time(w, 3, slot.pregap, slot.terms)
        w.append(f"            b = L{k}[it]")
        if shape.limited:
            sub = f", (A{k}[it] & {shape.line_mask}) >> {shape.sub_shift}"
        else:
            sub = ""
        if slot.kind == P_LOAD:
            j = slot.lr_index
            _emit_probe_hit(
                w, 3, shape,
                f"fast_loads += 1\nt += 1\nlr{j} = t\ncycle = t",
                f"cycle, lr{j} = miss_load(b, t{sub})",
            )
        elif shape.smode == 2:
            # Write-around: a store miss before the fence launches no
            # fetch and installs nothing, so both outcomes are inline.
            if shape.dm:
                _emit(w, 3, """
if t < fence:
    if b in res:
        fast_stores += 1
    else:
        fast_smiss += 1
    cycle = t + 1
else:
    cycle = slow_store(b, t)
""")
            else:
                _emit(w, 3, f"""
if t < fence:
    ways = S[b & {shape.setmask}]
    if b in ways:
        ways.remove(b)
        ways.insert(0, b)
        fast_stores += 1
    else:
        fast_smiss += 1
    cycle = t + 1
else:
    cycle = slow_store(b, t)
""")
        else:
            # Write-miss allocate: only store hits are inline.
            _emit_probe_hit(
                w, 3, shape,
                "fast_stores += 1\ncycle = t + 1",
                "cycle = slow_store(b, t)",
            )
    # Per-execution tail: advances and stall sites after the last
    # memory op.  Emitted inside the loop so ``cycle`` at the loop top
    # always equals the interpreter's, which the turbo arithmetic
    # depends on.
    if stream.tail_gap:
        w.append(f"            cycle += {stream.tail_gap}")
    for m, d in stream.tail_terms:
        w.append(f"            v = lr{m} + {d}" if d else
                 f"            v = lr{m}")
        w.append("            if v > cycle:")
        w.append("                cycle = v")
    w.append("            it += 1")
    # Finalize: drain arrived fills, integrate the histograms to the
    # end cycle (handler.finalize equivalent).
    _emit(w, 2, """
if fifo:
    drain(cycle)
t = cycle
""")
    _emit_advance(w, 2)
    _emit(w, 2, """
return (cycle, loads, load_hits, primary, secondary, structural,
        causes, stores, store_hits, store_misses, structural_stall,
        wa_stall, wb_pushes, fetches_launched, evictions, miss_hist,
        fetch_hist, max_m, max_f, fast_loads, fast_stores, fast_smiss)
""")
    w.append("    return run")
    source = "\n".join(w)
    namespace: dict = {
        "FAR_FUTURE": FAR_FUTURE,
        "SimulationError": SimulationError,
        "NO_MISS_SLOT": StructuralCause.NO_MISS_SLOT,
        "NO_DEST_FIELD": StructuralCause.NO_DEST_FIELD,
        "NO_FETCH_SLOT": StructuralCause.NO_FETCH_SLOT,
        "NO_SET_SLOT": StructuralCause.NO_SET_SLOT,
    }
    label = "replay-native" if native is not None else "replay"
    if native is not None:
        namespace.update(native.namespace())
    exec(compile(source, f"<{label}:{stream.workload_name}>", "exec"),
         namespace)
    return namespace["_factory"](stream.lines, byte_bufs)


def replay_supported(config: "MachineConfig") -> bool:
    """Whether a replay kernel models this machine exactly.

    Blocking policies take the closed form instead; a finite write
    buffer's stalls depend on per-push timing the inline store path
    cannot absorb, so those cells fall back to full execution.
    """
    return (
        not config.policy.blocking
        and config.write_buffer_depth is None
        and config.issue_width == 1
        and not config.perfect_cache
    )


def run_replay(
    stream: "EventStream", trace: "ExpandedTrace", config: "MachineConfig"
) -> Optional[Tuple[MissStats, int, int, int]]:
    """Replay one machine over the stream; ``None`` means fall back.

    Returns ``(stats, cycles, instructions, truedep)`` bit-identical
    to what full execution through
    :func:`repro.cpu.pipeline.run_single_issue` would produce for the
    same cell.
    """
    if not replay_supported(config):
        return None
    key = (config.geometry, config.policy, config.effective_penalty)
    fn = stream._replay_fns.get(key)
    if fn is None:
        fn = build_replay_fn(stream, trace, config)
        stream._replay_fns[key] = fn
    return finish_replay(stream, fn(stream.executions))


def finish_replay(
    stream: "EventStream", raw: Tuple
) -> Tuple[MissStats, int, int, int]:
    """Fold a kernel's raw counter tuple into the result quadruple.

    Shared by the scalar and native tiers -- both kernel families
    return the same 22-counter tuple, so the accounting fold (and the
    ``verify_accounting`` identity downstream) is engine-independent.
    """
    (cycle, loads, load_hits, primary, secondary, structural, causes,
     stores, store_hits, store_misses, structural_stall, wa_stall,
     wb_pushes, fetches_launched, evictions, miss_hist, fetch_hist,
     max_m, max_f, fast_loads, fast_stores, fast_smiss) = raw
    stats = MissStats()
    stats.loads = loads + fast_loads
    stats.load_hits = load_hits + fast_loads
    stats.primary_misses = primary
    stats.secondary_misses = secondary
    stats.structural_misses = structural
    stats.structural_causes = causes
    stats.stores = stores + fast_stores + fast_smiss
    stats.store_hits = store_hits + fast_stores
    stats.store_misses = store_misses + fast_smiss
    stats.structural_stall_cycles = structural_stall
    stats.write_allocate_stall_cycles = wa_stall
    stats.fetches_launched = fetches_launched
    stats.evictions = evictions
    stats.miss_inflight_hist = miss_hist
    stats.fetch_inflight_hist = fetch_hist
    stats.max_misses_inflight = max_m
    stats.max_fetches_inflight = max_f
    stats.observed_cycles = cycle
    instructions = stream.instructions
    truedep = cycle - instructions - stats.memory_stall_cycles
    return stats, cycle, instructions, truedep


def run_blocking_summary(
    summary: "FunctionalSummary", handler: MissHandler
) -> Optional[Tuple[int, int, int]]:
    """Reproduce a blocking policy's run from functional aggregates.

    A blocking machine installs every missed line before the next
    instruction issues, so its tag state is the immediate-install
    cache the functional pass simulated; each load miss costs exactly
    the penalty, dependent loads never stall (the data arrives with
    the pipeline release), and the run collapses to arithmetic.
    Returns ``None`` when the handler cannot absorb the closed form
    (non-blocking policy or a finite write buffer).
    """
    end = handler.absorb_blocking_run(
        instructions=summary.instructions,
        load_hits=summary.load_hits,
        load_misses=summary.load_misses,
        store_hits=summary.store_hits,
        store_misses=summary.store_misses,
        evictions=summary.evictions,
    )
    if end is None:
        return None
    return end, summary.instructions, 0
