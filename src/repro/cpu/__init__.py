"""Processor models: ISA, single-issue pipeline, dual-issue pipeline."""

from repro.cpu.dual_issue import run_dual_issue
from repro.cpu.isa import (
    FP_BASE,
    NUM_FP_REGS,
    NUM_INT_REGS,
    NUM_REGS,
    Instruction,
    OpClass,
    is_fp_reg,
    is_int_reg,
    reg_name,
)
from repro.cpu.pipeline import PerfectCacheHandler, run_single_issue

__all__ = [
    "Instruction",
    "OpClass",
    "NUM_REGS",
    "NUM_INT_REGS",
    "NUM_FP_REGS",
    "FP_BASE",
    "is_int_reg",
    "is_fp_reg",
    "reg_name",
    "run_single_issue",
    "run_dual_issue",
    "PerfectCacheHandler",
]
