"""A dual-issue in-order processor model (paper Section 6).

Section 6 gauges a scaling rule for superscalar machines by comparing
dual-issue simulations against single-issue simulations with the miss
penalty and scheduled load latency multiplied by the dual-issue
machine's average IPC.  This module provides the dual-issue side.

Issue rules (a conventional early-1990s dual-issue core):

* up to two instructions issue per cycle, in order;
* results are available in the next cycle, so the second slot may not
  read (or overwrite) the first slot's destination;
* one memory port: at most one load or store per cycle;
* any stall (register not ready, structural hazard, blocking miss)
  freezes both slots until resolved.

MCPI on this machine is computed against a perfect-cache run of the
same trace (``(cycles - perfect_cycles) / instructions``); see
:func:`repro.analysis.scaling.dual_issue_mcpi`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Tuple

from repro.cpu.isa import NUM_REGS, OpClass

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.trace import ExpandedTrace


def run_dual_issue(trace: "ExpandedTrace", handler) -> Tuple[int, int, int]:
    """Execute the trace 2-wide; returns (cycles, instructions, truedep).

    ``truedep`` counts cycles in which issue was delayed purely by
    register readiness (approximate on this model; the headline
    quantity for Section 6 is the cycle count itself).
    """
    body = trace.body
    n_body = len(body)
    executions = trace.executions

    kinds = [int(op.op) for op in body]
    dsts = [op.dst if op.dst is not None else -1 for op in body]
    srcs = [op.srcs for op in body]
    addresses = trace.addresses

    load_k = int(OpClass.LOAD)
    store_k = int(OpClass.STORE)

    reg_ready = [0] * NUM_REGS
    #: Destination written in the current issue cycle (at most two).
    cycle = 0
    slot = 0
    mem_used = False
    written_this_cycle = [-1, -1]
    truedep = 0
    do_load = handler.load
    do_store = handler.store

    for it in range(executions):
        for j in range(n_body):
            kind = kinds[j]
            is_mem = kind == load_k or kind == store_k
            d = dsts[j]

            # Earliest cycle at which operands (and dst, for WAW) allow issue.
            ready = 0
            for s in srcs[j]:
                r = reg_ready[s]
                if r > ready:
                    ready = r
            if d >= 0:
                r = reg_ready[d]
                if r > ready:
                    ready = r

            # Does this instruction fit in the current cycle?
            fits = slot < 2 and not (is_mem and mem_used)
            if fits and (
                written_this_cycle[0] in srcs[j]
                or written_this_cycle[1] in srcs[j]
                or (d >= 0 and (d == written_this_cycle[0] or d == written_this_cycle[1]))
            ):
                fits = False  # same-cycle dependence: wait for next cycle
            start = cycle if fits else cycle + 1
            if ready > start:
                truedep += ready - start
                start = ready
            if start > cycle:
                slot = 0
                mem_used = False
                written_this_cycle[0] = -1
                written_this_cycle[1] = -1
                cycle = start

            if kind == load_k:
                nxt, data_ready, _outcome = do_load(addresses[j][it], cycle)
                reg_ready[d] = data_ready
                mem_used = True
                written_this_cycle[slot] = d
                slot += 1
                if nxt > cycle + 1:
                    # The handler stalled the machine (structural or
                    # blocking miss): resume single-file at `nxt`.
                    cycle = nxt
                    slot = 0
                    mem_used = False
                    written_this_cycle[0] = -1
                    written_this_cycle[1] = -1
            elif kind == store_k:
                nxt, _hit = do_store(addresses[j][it], cycle)
                mem_used = True
                slot += 1
                if nxt > cycle + 1:
                    cycle = nxt
                    slot = 0
                    mem_used = False
                    written_this_cycle[0] = -1
                    written_this_cycle[1] = -1
            else:
                if d >= 0:
                    reg_ready[d] = cycle + 1
                    written_this_cycle[slot] = d
                slot += 1

    end = cycle + 1  # the final cycle is occupied
    handler.finalize(end)
    return end, n_body * executions, truedep
