"""A dual-issue in-order processor model (paper Section 6).

Section 6 gauges a scaling rule for superscalar machines by comparing
dual-issue simulations against single-issue simulations with the miss
penalty and scheduled load latency multiplied by the dual-issue
machine's average IPC.  This module provides the dual-issue side.

Issue rules (a conventional early-1990s dual-issue core):

* up to two instructions issue per cycle, in order;
* results are available in the next cycle, so the second slot may not
  read (or overwrite) the first slot's destination;
* one memory port: at most one load or store per cycle;
* any stall (register not ready, structural hazard, blocking miss)
  freezes both slots until resolved.

MCPI on this machine is computed against a perfect-cache run of the
same trace (``(cycles - perfect_cycles) / instructions``); see
:func:`repro.analysis.scaling.dual_issue_mcpi`.

Like the single-issue engine, this loop probes the handler's hit fast
path inline: a memory access to a resident block issued before the
earliest outstanding fill completes takes one cycle and a pair of
counter increments instead of the full handler call.  The reference
rendition lives in :mod:`repro.cpu.reference`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Tuple

from repro.cpu.isa import NUM_REGS, OpClass

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.trace import ExpandedTrace


def run_dual_issue(
    trace: "ExpandedTrace", handler, fast_path: bool = True
) -> Tuple[int, int, int]:
    """Execute the trace 2-wide; returns (cycles, instructions, truedep).

    ``truedep`` counts cycles in which issue was delayed purely by
    register readiness (approximate on this model; the headline
    quantity for Section 6 is the cycle count itself).
    ``fast_path=False`` disables the inline hit probe.
    """
    body = trace.body
    n_body = len(body)
    executions = trace.executions

    kinds = [int(op.op) for op in body]
    dsts = [op.dst if op.dst is not None else -1 for op in body]
    srcs = [op.srcs for op in body]
    addresses = trace.addresses

    load_k = int(OpClass.LOAD)
    store_k = int(OpClass.STORE)

    reg_ready = [0] * NUM_REGS
    #: Destination written in the current issue cycle (at most two).
    cycle = 0
    slot = 0
    mem_used = False
    written_this_cycle = [-1, -1]
    truedep = 0
    do_load = handler.load
    do_store = handler.store

    hooks = getattr(handler, "fast_path_hooks", None) if fast_path else None
    hooks = hooks() if hooks is not None else None
    if hooks is not None:
        probe, next_fill, store_mode, offset_bits, absorb, _pure = hooks
        fence = next_fill()
    else:
        probe = next_fill = absorb = None
        store_mode = 0
        offset_bits = 0
        fence = -1  # cycle < fence is never true: slow path only
    fast_loads = 0
    fast_stores = 0
    fast_store_misses = 0

    for it in range(executions):
        for j in range(n_body):
            kind = kinds[j]
            is_mem = kind == load_k or kind == store_k
            d = dsts[j]

            # Earliest cycle at which operands (and dst, for WAW) allow issue.
            ready = 0
            for s in srcs[j]:
                r = reg_ready[s]
                if r > ready:
                    ready = r
            if d >= 0:
                r = reg_ready[d]
                if r > ready:
                    ready = r

            # Does this instruction fit in the current cycle?
            fits = slot < 2 and not (is_mem and mem_used)
            if fits and (
                written_this_cycle[0] in srcs[j]
                or written_this_cycle[1] in srcs[j]
                or (d >= 0 and (d == written_this_cycle[0] or d == written_this_cycle[1]))
            ):
                fits = False  # same-cycle dependence: wait for next cycle
            start = cycle if fits else cycle + 1
            if ready > start:
                truedep += ready - start
                start = ready
            if start > cycle:
                slot = 0
                mem_used = False
                written_this_cycle[0] = -1
                written_this_cycle[1] = -1
                cycle = start

            if kind == load_k:
                addr = addresses[j][it]
                if cycle < fence and probe(addr >> offset_bits):
                    # Fast-path hit: one cycle, data next cycle.
                    fast_loads += 1
                    reg_ready[d] = cycle + 1
                    mem_used = True
                    written_this_cycle[slot] = d
                    slot += 1
                    continue
                nxt, data_ready, _outcome = do_load(addr, cycle)
                if next_fill is not None:
                    fence = next_fill()
                reg_ready[d] = data_ready
                mem_used = True
                written_this_cycle[slot] = d
                slot += 1
                if nxt > cycle + 1:
                    # The handler stalled the machine (structural or
                    # blocking miss): resume single-file at `nxt`.
                    cycle = nxt
                    slot = 0
                    mem_used = False
                    written_this_cycle[0] = -1
                    written_this_cycle[1] = -1
            elif kind == store_k:
                addr = addresses[j][it]
                if store_mode and cycle < fence:
                    if probe(addr >> offset_bits):
                        fast_stores += 1
                        mem_used = True
                        slot += 1
                        continue
                    if store_mode == 2:
                        # Write-around, ideal buffer: a miss is also a
                        # 1-cycle counter update (no fetch, no fill).
                        fast_store_misses += 1
                        mem_used = True
                        slot += 1
                        continue
                nxt, _hit = do_store(addr, cycle)
                if next_fill is not None:
                    fence = next_fill()
                mem_used = True
                slot += 1
                if nxt > cycle + 1:
                    cycle = nxt
                    slot = 0
                    mem_used = False
                    written_this_cycle[0] = -1
                    written_this_cycle[1] = -1
            else:
                if d >= 0:
                    reg_ready[d] = cycle + 1
                    written_this_cycle[slot] = d
                slot += 1

    end = cycle + 1  # the final cycle is occupied
    if absorb is not None and (fast_loads or fast_stores or fast_store_misses):
        absorb(fast_loads, fast_stores, fast_store_misses)
    handler.finalize(end)
    return end, n_body * executions, truedep
