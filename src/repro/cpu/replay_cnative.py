"""The ``cnative`` replay tier: compiled-C execution of the full recurrence.

Where the numpy lane (:mod:`repro.cpu.replay_native`) vectorizes only
the quiescent all-hit spans of a direct-mapped machine, this tier runs
the *entire* irregular recurrence -- MSHR occupancy, primary/secondary
merging, structural arbitration, fill scheduling, LRU recency touches
-- inside a C kernel generated and compiled once per policy family
(:mod:`repro.cpu.ckernel`).  It therefore accepts every cell the
scalar replay kernel accepts, including exactly the ones the vector
lane declines: set-associative geometries, store-gated
(write-miss-allocate) models, and streaming models whose quiescent
spans never form.

The stream's static structure (slot kinds, readiness terms, pregaps)
is flattened once per stream into int64 tables; per-call state (tags,
load-ready registers, the output counter block) is allocated fresh so
a kernel invocation is a pure function of ``(stream, machine)``, like
every other tier.  The C function returns the same raw 22-counter
tuple the generated Python kernels produce, folded through
:func:`repro.cpu.replay.finish_replay`, so bit-identity is checked by
the same equivalence matrix and accounting identity as the rest of
the registry.

Fallback is transparent and cause-tagged: ``policy`` for machines the
replay contract itself excludes, ``nocc`` when no C compiler is
available (``REPRO_CC`` override included), ``build`` when
compilation or loading failed.  All three degrade to the scalar fused
tier with bit-identical results.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

import numpy as np

from repro.core.classify import StructuralCause
from repro.core.stats import MissStats
from repro.cpu import ckernel
from repro.cpu.replay import finish_replay, replay_supported
from repro.errors import SimulationError
from repro.sim.trace import P_LOAD

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.config import MachineConfig
    from repro.sim.stream import EventStream
    from repro.sim.trace import ExpandedTrace

#: Kernel error codes (see the generated C) -> messages matching the
#: scalar kernel's SimulationError sites.
_KERNEL_ERRORS = {
    1: "per-set limit hit with no fetch in the set",
    2: "structural stall made no progress",
    3: "replay kernel allocation failed",
}

#: Cause order used when folding the C cause counters back into the
#: scalar kernel's ``causes`` dict.
_CAUSES = (
    StructuralCause.NO_FETCH_SLOT,
    StructuralCause.NO_MISS_SLOT,
    StructuralCause.NO_SET_SLOT,
    StructuralCause.NO_DEST_FIELD,
)


def cnative_supported(config: "MachineConfig") -> bool:
    """Whether the C tier models this cell (= the replay contract).

    The generated C transcribes the whole scalar kernel, so the
    envelope is exactly :func:`repro.cpu.replay.replay_supported`;
    compiler availability is a separate, per-process question
    (:func:`repro.cpu.ckernel.kernels_available`).
    """
    return replay_supported(config)


def _count_fallback(cause: str) -> None:
    from repro.sim import engines as engines_mod

    engines_mod.count_cnative_fallback(cause)


def _as_i64(buf) -> np.ndarray:
    return np.frombuffer(buf, dtype=np.int64)


def _stream_tables(stream: "EventStream"):
    """Flatten the stream's static structure into C-readable tables.

    Cached on the stream object (like the kernel and native-array
    caches) so policy siblings share one flattening.
    """
    tables = getattr(stream, "_cnative_tables", None)
    if tables is not None:
        return tables
    slots = stream.slots
    n = len(slots)
    kind = np.fromiter(
        (1 if s.kind == P_LOAD else 0 for s in slots), dtype=np.int64,
        count=n,
    )
    slr = np.fromiter((s.lr_index for s in slots), dtype=np.int64, count=n)
    pregap = np.fromiter((s.pregap for s in slots), dtype=np.int64, count=n)
    term_start = np.zeros(n + 2, dtype=np.int64)
    term_lr: List[int] = []
    term_delta: List[int] = []
    for k, slot in enumerate(slots):
        term_start[k] = len(term_lr)
        for m, d in slot.terms:
            term_lr.append(m)
            term_delta.append(d)
    term_start[n] = len(term_lr)
    for m, d in stream.tail_terms:
        term_lr.append(m)
        term_delta.append(d)
    term_start[n + 1] = len(term_lr)
    tlr = np.asarray(term_lr, dtype=np.int64)
    tdelta = np.asarray(term_delta, dtype=np.int64)
    lines = [_as_i64(buf) for buf in stream.lines]
    tables = (kind, slr, pregap, term_start, tlr, tdelta, lines)
    stream._cnative_tables = tables
    return tables


def _addr_tables(stream: "EventStream", trace: "ExpandedTrace"):
    """Per-slot byte-address columns (limited field layouts only)."""
    addrs = getattr(stream, "_cnative_addrs", None)
    if addrs is None:
        addrs = [_as_i64(trace.addresses[s.body_index])
                 for s in stream.slots]
        stream._cnative_addrs = addrs
    return addrs


def _param_block(stream: "EventStream", config: "MachineConfig"):
    """The runtime parameter array (layout: ``ckernel.PARAM_SLOTS``)."""
    geometry = config.geometry
    policy = config.policy
    layout = policy.layout
    limited = not layout.unlimited
    nsub = layout.n_subblocks if limited else 1
    sub_size = geometry.line_size // nsub
    p = np.zeros(len(ckernel.PARAM_SLOTS), dtype=np.int64)
    p[1] = len(stream.slots)
    p[2] = stream.tail_gap
    p[3] = geometry.num_sets - 1
    p[4] = geometry.ways
    p[5] = -1 if policy.max_misses is None else policy.max_misses
    p[6] = -1 if policy.max_fetches is None else policy.max_fetches
    p[7] = (-1 if policy.max_fetches_per_set is None
            else policy.max_fetches_per_set)
    p[8] = nsub
    p[9] = 0 if layout.misses_per_subblock is None else \
        layout.misses_per_subblock
    p[10] = geometry.line_size - 1
    p[11] = sub_size.bit_length() - 1
    p[12] = 1 if policy.fill_ports is None else policy.fill_ports
    p[13] = config.effective_penalty + policy.fill_overhead
    return p


def _fold_raw(out: np.ndarray) -> Tuple:
    """Map the C output block onto the shared 22-counter raw tuple."""
    causes = {}
    for cause in _CAUSES:
        n = int(out[6 + int(cause)])
        if n:
            causes[cause] = n
    return (
        int(out[0]),                       # cycle
        int(out[1]), int(out[2]),          # loads, load_hits
        int(out[3]), int(out[4]), int(out[5]),  # primary/secondary/structural
        causes,
        int(out[11]), int(out[12]), int(out[13]),  # stores / hits / misses
        int(out[14]), int(out[15]), int(out[16]),  # struct/wa stall, wb
        int(out[17]), int(out[18]),        # fetches_launched, evictions
        [int(x) for x in out[19:27]],      # miss_hist
        [int(x) for x in out[27:35]],      # fetch_hist
        int(out[35]), int(out[36]),        # max_m, max_f
        int(out[37]), int(out[38]), int(out[39]),  # fast counters
    )


def build_cnative_fn(
    stream: "EventStream", trace: "ExpandedTrace", config: "MachineConfig"
):
    """Bind one (stream, machine) pair to its compiled family kernel.

    Raises :class:`~repro.cpu.ckernel.KernelBuildError` when the
    kernel cannot be built; callers translate that into a cause-tagged
    fallback.
    """
    family = ckernel.family_of(config)
    kernel = ckernel.ensure_kernel(family)
    kind, slr, pregap, term_start, tlr, tdelta, lines = \
        _stream_tables(stream)
    addrs = _addr_tables(stream, trace) if family.limited else []
    p = _param_block(stream, config)
    geometry = config.geometry
    num_sets = geometry.num_sets
    if family.dm:
        tags_len = num_sets
        make_set_len = None
    else:
        tags_len = num_sets * geometry.ways
        make_set_len = num_sets
    n_loads = stream.n_loads

    def run(it1: int) -> Tuple:
        p[0] = it1
        tags = np.full(tags_len, -1, dtype=np.int64)
        set_len = (np.zeros(make_set_len, dtype=np.int64)
                   if make_set_len is not None else None)
        lr = np.zeros(max(n_loads, 1), dtype=np.int64)
        out = np.zeros(ckernel.OUT_SLOTS, dtype=np.int64)
        rc = kernel.invoke(p, kind, slr, pregap, term_start, tlr,
                           tdelta, lines, addrs, tags, set_len, lr, out)
        if rc != 0:
            raise SimulationError(
                _KERNEL_ERRORS.get(rc, f"replay kernel error {rc}"))
        return _fold_raw(out)

    return run


def run_cnative(
    stream: "EventStream", trace: "ExpandedTrace", config: "MachineConfig"
) -> Optional[Tuple[MissStats, int, int, int]]:
    """Replay one machine through the C kernel; ``None`` = fall back.

    Same contract and per-stream kernel cache as
    :func:`repro.cpu.replay.run_replay`, under a tier-distinct key.
    Declines (unsupported policy, no compiler, failed build) are
    counted under ``engine.cnative.fallback.*`` when telemetry is on.
    """
    if not replay_supported(config):
        _count_fallback("policy")
        return None
    key = ("cnative", config.geometry, config.policy,
           config.effective_penalty)
    fn = stream._replay_fns.get(key)
    if fn is None:
        if not ckernel.kernels_available():
            _count_fallback("nocc")
            return None
        try:
            fn = build_cnative_fn(stream, trace, config)
        except ckernel.KernelBuildError:
            _count_fallback("build")
            return None
        stream._replay_fns[key] = fn
    return finish_replay(stream, fn(stream.executions))
