"""Exception hierarchy for the repro package.

All exceptions raised deliberately by this package derive from
:class:`ReproError`, so callers can catch package-level failures with a
single ``except`` clause while letting genuine programming errors
propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """A simulation, cache, or MSHR configuration is invalid.

    Examples: a cache whose size is not a power of two, a negative miss
    penalty, or an MSHR policy with zero destination fields.
    """


class CompilationError(ReproError):
    """The kernel compiler could not produce a legal schedule.

    Examples: a dependence cycle within a single iteration, or register
    pressure that cannot be satisfied even with spilling.
    """


class WorkloadError(ReproError):
    """A workload or address-stream definition is malformed.

    Examples: an unknown benchmark name, or a stream referenced by a
    kernel op that was never declared.
    """


class SimulationError(ReproError):
    """The simulator reached an inconsistent internal state.

    This indicates a bug in the timing model rather than bad user input;
    it is raised by internal consistency checks (e.g. a fill completing
    for a block that was never fetched).
    """


class ExperimentError(ReproError):
    """An experiment id is unknown or its parameters are invalid."""


class CellExecutionError(ReproError):
    """One sweep cell failed inside the process pool.

    The message names the (workload, policy, load latency, scale) cell
    that died plus the original error, because a pool worker's bare
    traceback otherwise gives no hint which of a few hundred dispatched
    cells was responsible.  Kept to a single string argument so it
    pickles cleanly across the process boundary.
    """


class WireError(ReproError):
    """A wire payload could not be decoded.

    Raised for malformed frames, unknown type tags, and -- most
    importantly -- schema or engine-version mismatches: a coordinator
    and worker running different timing-model revisions must refuse to
    exchange cells rather than silently mix incompatible results.
    """


class FabricError(ReproError):
    """The distributed sweep fabric could not complete a dispatch.

    Examples: no reachable workers for the socket backend, a protocol
    handshake failure, or a shard that exhausted every reassignment
    path.  Worker *loss* alone does not raise -- lost shards are
    reassigned or run locally -- so seeing this means the fabric had
    no healthy execution path left.
    """
