"""Loop unrolling with virtual-register renaming.

The paper's load-latency sweep only pays off if the compiler can find
independent instructions to hoist between a load and its use; for loop
kernels that parallelism comes from unrolling ("[tomcatv] contains two
nested loops which are unrolled many times by the compiler",
Section 4).  Unrolling by ``factor`` concatenates ``factor`` renamed
copies of the body.  Renaming gives each copy fresh destinations so the
copies are independent except where the original kernel had genuine
loop-carried dependences, which are re-linked copy-to-copy:

* an intra-iteration use in copy *k* reads copy *k*'s definition;
* a loop-carried use in copy *k* reads copy *k-1*'s definition, and in
  copy 0 reads the *last* copy's definition (the dependence now crosses
  the unrolled loop's back edge);
* invariant vregs are shared by all copies.

Branches interior to the unrolled body are dropped (the copies fall
through); only the final copy keeps its loop-closing branch.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List

from repro.compiler.ir import Kernel, VOp
from repro.cpu.isa import OpClass
from repro.errors import CompilationError


def unroll(kernel: Kernel, factor: int) -> Kernel:
    """Return ``kernel`` unrolled ``factor`` times.

    ``factor == 1`` returns the kernel unchanged.
    """
    if factor < 1:
        raise CompilationError(f"unroll factor must be >= 1: {factor}")
    if factor == 1:
        return kernel

    defs = kernel.defs()
    defined = set(defs)
    classes = dict(kernel.vreg_classes)
    next_vreg = max(classes) + 1 if classes else 0

    # Fresh names for every defined vreg in every copy.
    renames: List[Dict[int, int]] = []
    for _ in range(factor):
        mapping: Dict[int, int] = {}
        for vreg in defined:
            mapping[vreg] = next_vreg
            classes[next_vreg] = kernel.vreg_classes[vreg]
            next_vreg += 1
        renames.append(mapping)

    new_ops: List[VOp] = []
    last_copy = factor - 1
    for copy in range(factor):
        mapping = renames[copy]
        prev_mapping = renames[copy - 1] if copy > 0 else renames[last_copy]
        for idx, op in enumerate(kernel.ops):
            if op.op is OpClass.BRANCH and copy != last_copy:
                continue  # interior branches fall through
            srcs = []
            for src in op.srcs:
                if src not in defined:
                    srcs.append(src)  # invariant, shared
                elif defs[src] < idx:
                    srcs.append(mapping[src])  # intra-iteration
                else:
                    srcs.append(prev_mapping[src])  # loop-carried
            dst = mapping[op.dst] if op.dst is not None else None
            new_ops.append(replace(op, dst=dst, srcs=tuple(srcs)))

    return Kernel(
        name=f"{kernel.name}*{factor}",
        ops=new_ops,
        vreg_classes=classes,
        num_streams=kernel.num_streams,
    )
