"""From-scratch kernel compiler: IR, unrolling, scheduling, allocation.

Models the software side of the paper's methodology (a Multiflow-style
trace scheduler with a *scheduled load latency* parameter, followed by
register allocation whose spills change the reference counts).
"""

from repro.compiler.check import verify_allocation, verify_compiled_body
from repro.compiler.ir import Kernel, KernelBuilder, RegClass, VOp
from repro.compiler.pipelining import (
    ROTATION_RESERVE,
    rotate_schedule,
    rotation_budget,
)
from repro.compiler.pipeline import (
    CompiledBody,
    compile_kernel,
    unroll_factor_for,
)
from repro.compiler.regalloc import AllocatedBody, allocate
from repro.compiler.scheduler import Schedule, list_schedule, load_use_distances
from repro.compiler.unroll import unroll

__all__ = [
    "Kernel",
    "KernelBuilder",
    "RegClass",
    "VOp",
    "CompiledBody",
    "compile_kernel",
    "unroll_factor_for",
    "AllocatedBody",
    "allocate",
    "verify_allocation",
    "verify_compiled_body",
    "ROTATION_RESERVE",
    "rotate_schedule",
    "rotation_budget",
    "Schedule",
    "list_schedule",
    "load_use_distances",
    "unroll",
]
