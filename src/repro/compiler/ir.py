"""Kernel intermediate representation for the workload compiler.

Workloads are expressed as *kernels*: the body of an innermost loop,
written over virtual registers, that the compiler unrolls, schedules
for a target load latency, and register-allocates -- the same pipeline
the paper drove with the Multiflow compiler (Section 3.2).

A kernel body is a list of :class:`VOp` records over virtual registers.
Dataflow is implicit in the operand structure, with three source kinds:

* **intra-iteration**: the source vreg is defined by an *earlier* op in
  the body -- an ordinary true dependence;
* **loop-carried**: the source vreg is defined by the same or a *later*
  op in the body -- the value comes from the previous iteration (e.g.
  accumulators, induction variables, pointer-chase links);
* **invariant**: the source vreg is never defined in the body -- a
  loop-invariant value such as a base address, always ready.

Virtual registers carry a class (integer or floating point) so the
register allocator can map them onto the two architected files.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cpu.isa import ACCESS_WIDTHS, OpClass
from repro.errors import CompilationError, WorkloadError


#: Scratch registers reserved per class for spill reloads/stores; the
#: allocator keeps them out of its pools and the scheduler keeps them
#: out of its pressure budget.
NUM_SCRATCH = 3


class RegClass(enum.Enum):
    """Register class of a virtual register."""

    INT = "int"
    FP = "fp"


@dataclass(frozen=True)
class VOp:
    """One kernel operation over virtual registers."""

    op: OpClass
    dst: Optional[int] = None
    srcs: Tuple[int, ...] = ()
    stream: Optional[int] = None
    width: int = 8
    comment: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if self.op in (OpClass.LOAD, OpClass.STORE):
            if self.stream is None:
                raise WorkloadError(f"{self.op.name} requires a stream")
            if self.width not in ACCESS_WIDTHS:
                raise WorkloadError(f"illegal access width {self.width}")
        if self.op is OpClass.LOAD and self.dst is None:
            raise WorkloadError("LOAD requires a destination vreg")
        if self.op is OpClass.STORE and self.dst is not None:
            raise WorkloadError("STORE has no destination vreg")


@dataclass
class Kernel:
    """A loop body: ops, vreg classes, and the streams it references.

    ``stream_widths`` records the access width declared for each
    stream so the trace expander can honour sub-word accesses.
    """

    name: str
    ops: List[VOp]
    vreg_classes: Dict[int, RegClass]
    num_streams: int

    def __post_init__(self) -> None:
        self.validate()

    def fingerprint(self) -> Tuple:
        """A stable, hashable identity for this kernel's content.

        Used as a cache key by :mod:`repro.sim.simulator` in place of
        ``id(kernel)`` (object ids can be reused after garbage
        collection, silently aliasing cache entries).  Two kernels with
        equal fingerprints compile identically.  Computed once and
        memoized; kernels are treated as immutable after construction.
        """
        cached = getattr(self, "_fingerprint", None)
        if cached is None:
            cached = (
                self.name,
                self.num_streams,
                tuple(
                    (op.op, op.dst, op.srcs, op.stream, op.width)
                    for op in self.ops
                ),
                tuple(sorted(
                    (vreg, cls.value) for vreg, cls in self.vreg_classes.items()
                )),
            )
            self._fingerprint = cached
        return cached

    # -- structural queries ---------------------------------------------------

    def defs(self) -> Dict[int, int]:
        """Map vreg -> index of the op defining it (single def expected)."""
        out: Dict[int, int] = {}
        for idx, op in enumerate(self.ops):
            if op.dst is not None:
                if op.dst in out:
                    raise CompilationError(
                        f"vreg v{op.dst} defined twice in kernel '{self.name}'"
                    )
                out[op.dst] = idx
        return out

    def invariant_vregs(self) -> List[int]:
        """Vregs read but never defined in the body (loop invariants)."""
        defined = {op.dst for op in self.ops if op.dst is not None}
        seen: List[int] = []
        for op in self.ops:
            for src in op.srcs:
                if src not in defined and src not in seen:
                    seen.append(src)
        return seen

    def loop_carried_pairs(self) -> List[Tuple[int, int]]:
        """(def_index, use_index) pairs whose dependence crosses iterations.

        A use at index ``u`` reading a vreg defined at index ``d`` with
        ``d >= u`` takes the previous iteration's value.
        """
        defs = self.defs()
        pairs: List[Tuple[int, int]] = []
        for use_idx, op in enumerate(self.ops):
            for src in op.srcs:
                def_idx = defs.get(src)
                if def_idx is not None and def_idx >= use_idx:
                    pairs.append((def_idx, use_idx))
        return pairs

    def memory_ops(self) -> List[int]:
        """Indices of loads and stores in body order."""
        return [
            i
            for i, op in enumerate(self.ops)
            if op.op in (OpClass.LOAD, OpClass.STORE)
        ]

    def validate(self) -> None:
        """Raise on malformed kernels (bad streams, bad vreg classes)."""
        if not self.ops:
            raise WorkloadError(f"kernel '{self.name}' has no ops")
        for op in self.ops:
            if op.stream is not None and not 0 <= op.stream < self.num_streams:
                raise WorkloadError(
                    f"kernel '{self.name}' references undeclared stream "
                    f"{op.stream}"
                )
            for vreg in (op.srcs if op.dst is None else (*op.srcs, op.dst)):
                if vreg not in self.vreg_classes:
                    raise WorkloadError(
                        f"kernel '{self.name}' uses vreg v{vreg} with no "
                        f"declared register class"
                    )
        self.defs()  # raises on double definition

    # -- rendering --------------------------------------------------------------

    def render(self) -> str:
        """Readable listing of the kernel body (for debugging)."""
        lines = [f"kernel {self.name}:"]
        for idx, op in enumerate(self.ops):
            operands = []
            if op.dst is not None:
                operands.append(f"v{op.dst}")
            operands.extend(f"v{s}" for s in op.srcs)
            if op.stream is not None:
                operands.append(f"[s{op.stream}:{op.width}B]")
            text = f"  {idx:3d}: {op.op.name.lower():6s} " + ", ".join(operands)
            if op.comment:
                text += f"  ; {op.comment}"
            lines.append(text)
        return "\n".join(lines)


class KernelBuilder:
    """Fluent builder for kernels.

    Methods return virtual-register handles that can be fed to later
    ops, so a kernel reads like straight-line code::

        b = KernelBuilder("dot")
        sa = b.declare_stream()
        sb = b.declare_stream()
        x = b.load(sa)
        y = b.load(sb)
        acc = b.vreg(RegClass.FP)           # loop-carried accumulator
        acc2 = b.fop(x, y, acc, dst=acc)    # acc = x*y + acc  -- dst reuse
        kernel = b.build()

    Loop-carried values are expressed by passing ``dst=`` an existing
    vreg handle that is *used before* it is defined, or by building the
    op order so the definition follows the use.
    """

    def __init__(self, name: str, loop_overhead: bool = True) -> None:
        self.name = name
        self._ops: List[VOp] = []
        self._classes: Dict[int, RegClass] = {}
        self._next_vreg = 0
        self._num_streams = 0
        self._loop_overhead = loop_overhead

    # -- declarations -----------------------------------------------------------

    def vreg(self, cls: RegClass = RegClass.INT) -> int:
        """Declare a fresh virtual register."""
        vreg = self._next_vreg
        self._next_vreg += 1
        self._classes[vreg] = cls
        return vreg

    def declare_stream(self) -> int:
        """Declare an address stream; returns its kernel-local id."""
        sid = self._num_streams
        self._num_streams += 1
        return sid

    # -- op emission --------------------------------------------------------------

    def load(
        self,
        stream: int,
        cls: RegClass = RegClass.FP,
        width: int = 8,
        addr_src: Optional[int] = None,
        dst: Optional[int] = None,
        comment: str = "",
    ) -> int:
        """Emit a load; returns the destination vreg.

        ``addr_src`` optionally names a vreg the address depends on
        (e.g. a pointer loaded by a previous op), creating the
        pointer-chase dependence shape.  Passing ``dst=addr_src`` with
        the same pre-declared vreg yields the classic loop-carried
        pointer chase ``p = p->next``.
        """
        if dst is None:
            dst = self.vreg(cls)
        srcs = (addr_src,) if addr_src is not None else ()
        self._ops.append(
            VOp(OpClass.LOAD, dst=dst, srcs=srcs, stream=stream, width=width,
                comment=comment)
        )
        return dst

    def store(
        self,
        stream: int,
        value: int,
        width: int = 8,
        addr_src: Optional[int] = None,
        comment: str = "",
    ) -> None:
        """Emit a store of vreg ``value``."""
        srcs = (value,) if addr_src is None else (value, addr_src)
        self._ops.append(
            VOp(OpClass.STORE, srcs=srcs, stream=stream, width=width,
                comment=comment)
        )

    def _alu(
        self,
        op: OpClass,
        cls: RegClass,
        srcs: Sequence[int],
        dst: Optional[int],
        comment: str,
    ) -> int:
        if dst is None:
            dst = self.vreg(cls)
        self._ops.append(VOp(op, dst=dst, srcs=tuple(srcs), comment=comment))
        return dst

    def iop(self, *srcs: int, dst: Optional[int] = None, comment: str = "") -> int:
        """Emit an integer ALU op reading ``srcs``; returns the dst vreg."""
        return self._alu(OpClass.IALU, RegClass.INT, srcs, dst, comment)

    def fop(self, *srcs: int, dst: Optional[int] = None, comment: str = "") -> int:
        """Emit a floating-point op reading ``srcs``; returns the dst vreg."""
        return self._alu(OpClass.FALU, RegClass.FP, srcs, dst, comment)

    def branch(self, *srcs: int, comment: str = "") -> None:
        """Emit the loop-closing branch (perfectly predicted)."""
        self._ops.append(VOp(OpClass.BRANCH, srcs=tuple(srcs), comment=comment))

    # -- assembly ------------------------------------------------------------------

    def build(self) -> Kernel:
        """Finish the kernel, appending loop overhead if requested.

        The default overhead is the paper-model loop control: an
        induction-variable increment (loop-carried integer add) and the
        loop branch reading it.
        """
        ops = list(self._ops)
        classes = dict(self._classes)
        if self._loop_overhead:
            induction = self._next_vreg
            classes[induction] = RegClass.INT
            # The increment reads its own previous-iteration value
            # (src == dst, a loop-carried dependence).
            ops.append(
                VOp(OpClass.IALU, dst=induction, srcs=(induction,),
                    comment="induction")
            )
            ops.append(
                VOp(OpClass.BRANCH, srcs=(induction,), comment="loop branch")
            )
        return Kernel(
            name=self.name,
            ops=ops,
            vreg_classes=classes,
            num_streams=self._num_streams,
        )
