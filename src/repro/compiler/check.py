"""Compiler correctness verifier: does the compiled body compute the
same dataflow as the kernel?

The simulator is timing-only, so a compiler bug (a misallocated
register, an illegal reordering) would not crash anything -- it would
silently change the dependence structure and therefore the results.
This module verifies, instruction by instruction, that a compiled body
is a faithful implementation of its kernel:

1. **Shape**: stripping spill traffic, the compiled instructions
   correspond one-to-one, in order, with the scheduled kernel ops
   (same op class, stream, and access width).
2. **Dataflow**: replaying the body over the physical register file
   with symbolic values, every instruction reads exactly the values
   its kernel op's virtual sources denote -- including loop-carried
   sources, which must carry the *previous* iteration's value (the
   verifier replays several iterations to check the steady state).
3. **Spill consistency**: every spill reload is preceded (dynamically)
   by a spill store of the same value.

Rotated (software-pipelined) loads are handled naturally: rotation
makes their consumers read the previous iteration's value *by design*,
which is exactly what the replay observes once the load follows its
consumer in the body.

The verifier raises :class:`~repro.errors.CompilationError` with a
precise message on the first violation; ``compile_kernel`` can run it
inline via ``validate=True`` (tests do; the default skips it for
speed).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.compiler.ir import Kernel
from repro.compiler.scheduler import Schedule
from repro.cpu.isa import NUM_REGS, Instruction, OpClass
from repro.errors import CompilationError

#: Symbolic value: (iteration, kernel op index) of the defining op, or
#: a special tag for invariants / uninitialized registers.
Token = Tuple[int, int]

_INVARIANT_ITER = -1
_UNDEF = (-2, -2)


def _scheduled_ops(kernel: Kernel, schedule: Schedule) -> List[int]:
    return list(schedule.order)


def verify_allocation(
    kernel: Kernel,
    schedule: Schedule,
    instructions: Tuple[Instruction, ...],
    spill_stream: int,
    iterations: int = 3,
) -> None:
    """Raise :class:`CompilationError` unless the body is faithful."""
    order = _scheduled_ops(kernel, schedule)
    core = [
        (pos, instr) for pos, instr in enumerate(instructions)
        if not (instr.is_memory and instr.stream == spill_stream)
    ]
    if len(core) != len(order):
        raise CompilationError(
            f"compiled body has {len(core)} non-spill instructions for "
            f"{len(order)} scheduled ops"
        )

    # -- shape check ---------------------------------------------------------
    for (pos, instr), op_idx in zip(core, order):
        op = kernel.ops[op_idx]
        if instr.op is not op.op:
            raise CompilationError(
                f"instr {pos}: class {instr.op.name} != kernel op "
                f"{op.op.name} (kernel index {op_idx})"
            )
        if op.op in (OpClass.LOAD, OpClass.STORE):
            if instr.stream != op.stream or instr.width != op.width:
                raise CompilationError(
                    f"instr {pos}: memory attributes differ from kernel "
                    f"op {op_idx}"
                )

    # -- dataflow replay --------------------------------------------------------
    defs = kernel.defs()

    # The position of each kernel op within the *emitted body order*:
    # whether a def has executed yet this iteration is a property of
    # the schedule, not of kernel indices (software pipelining legally
    # places a load after its consumer).
    body_pos = {op_idx: k for k, op_idx in enumerate(order)}

    def expected_source(src: int, op_idx: int, iteration: int) -> Token:
        """The (iteration, def) token a kernel source should carry."""
        def_idx = defs.get(src)
        if def_idx is None:
            return (_INVARIANT_ITER, src)
        # A source whose definition is emitted later in the body takes
        # the previous iteration's value (loop-carried / rotated).
        if body_pos[def_idx] < body_pos[op_idx]:
            producing_iter = iteration
        else:
            producing_iter = iteration - 1
        if producing_iter < 0:
            return _UNDEF  # prologue: no earlier iteration exists
        return (producing_iter, def_idx)

    regs: List[Token] = [_UNDEF] * NUM_REGS
    # Invariants live in whatever registers the allocator chose; learn
    # them from first use (they are never written).
    invariant_binding: Dict[int, Token] = {}
    # Spilled values by virtual register (the allocator labels its
    # spill code: "spill vN" / "reload vN").
    spill_slots: Dict[str, Token] = {}

    last_value: Dict[int, Token] = {}

    for iteration in range(iterations):
        core_iter = iter(zip(core, order))
        idx_in_body = 0
        for (pos, instr) in ((p, i) for p, i in enumerate(instructions)):
            if instr.is_memory and instr.stream == spill_stream:
                tag = instr.comment.split()[-1] if instr.comment else ""
                if instr.op is OpClass.STORE:
                    spill_slots[tag] = regs[instr.srcs[0]]
                else:
                    if tag not in spill_slots:
                        raise CompilationError(
                            f"instr {pos}: reload of {tag or '<unknown>'} "
                            f"with no spilled value"
                        )
                    regs[instr.dst] = spill_slots[tag]
                continue
            (_pos, _instr), op_idx = next(core_iter)
            op = kernel.ops[op_idx]

            # Check each physical source carries the expected token.
            for vsrc, psrc in zip(op.srcs, instr.srcs):
                expected = expected_source(vsrc, op_idx, iteration)
                actual = regs[psrc]
                if expected == _UNDEF:
                    continue  # prologue reads are free in a timing model
                if expected[0] == _INVARIANT_ITER:
                    bound = invariant_binding.setdefault(vsrc, actual)
                    if bound != actual:
                        raise CompilationError(
                            f"iter {iteration}, instr {pos}: invariant "
                            f"v{vsrc} read from a clobbered register"
                        )
                    continue
                if actual != expected:
                    raise CompilationError(
                        f"iter {iteration}, instr {pos} "
                        f"({instr.render()}): source v{vsrc} expected "
                        f"value from kernel op {expected[1]} of iteration "
                        f"{expected[0]}, found {actual}"
                    )
            if instr.dst is not None:
                token = (iteration, op_idx)
                regs[instr.dst] = token
                last_value[op_idx] = token
            idx_in_body += 1
        # All scheduled ops must have been consumed this iteration.
        if next(core_iter, None) is not None:
            raise CompilationError("scheduled ops left over after replay")


def verify_compiled_body(kernel: Kernel, compiled) -> None:
    """Convenience wrapper over a :class:`CompiledBody`.

    ``kernel`` is the *original* kernel; the verifier re-unrolls it to
    the compiled factor (unrolling is deterministic) so the schedule's
    op indices resolve.
    """
    from repro.compiler.unroll import unroll

    body = unroll(kernel, compiled.unroll_factor)
    verify_allocation(
        body,
        compiled.schedule,
        compiled.instructions,
        compiled.spill_stream,
    )
