"""Software pipelining: cross-iteration load scheduling.

The paper's compiler conclusion (Section 7) is that aggressive trace
scheduling is "crucial to getting enough flexibility to schedule for
the longer cache miss latencies".  In-body list scheduling can hoist a
load at most to the top of the loop body; when the consumer sits close
behind the load, the residual miss exposure is unavoidable *within*
one iteration.  Trace and modulo schedulers fix this by issuing
iteration *i+1*'s loads during iteration *i*.

This pass implements that transform on the *scheduled virtual-register
order*, before register allocation.  Moving a load to just after its
(single) consumer makes the consumer read the **previous** iteration's
value: the dependence becomes loop-carried, the cyclic load-to-use
distance becomes nearly the whole body, and the register allocator --
which already pins loop-carried values -- automatically gives the
rotated value a register that lives across the back edge.

Candidates must be loads with no source registers (plain stream
accesses, not pointer chases) and exactly one intra-iteration reader.
Because every rotated value claims a dedicated register for the whole
loop, rotation is rationed to a per-class register budget; the loads
with the smallest (most exposed) load-use distances are rotated first.

Iteration 0's consumer reads an undefined register, which in a
timing-only model costs nothing (a real compiler emits a one-iteration
prologue).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.compiler.ir import NUM_SCRATCH, Kernel, RegClass
from repro.compiler.scheduler import Schedule
from repro.cpu.isa import NUM_INT_REGS, OpClass

#: Registers per class set aside for rotated values.  The scheduler is
#: told to keep this many out of its pressure budget
#: (``list_schedule(..., reserve_registers=ROTATION_RESERVE)``), so
#: rotation never forces the allocator to spill the very values being
#: overlapped.
ROTATION_RESERVE = 8


def rotation_budget(kernel: Kernel) -> Dict[RegClass, int]:
    """How many values per class may acquire loop-long registers.

    Bounded by :data:`ROTATION_RESERVE` (the registers the scheduler
    held back) and by what remains of the file after invariants and
    existing loop-carried values take theirs.
    """
    permanent = set(kernel.invariant_vregs())
    for def_idx, _use in kernel.loop_carried_pairs():
        vreg = kernel.ops[def_idx].dst
        if vreg is not None:
            permanent.add(vreg)
    remaining = {
        RegClass.INT: NUM_INT_REGS - NUM_SCRATCH,
        RegClass.FP: NUM_INT_REGS - NUM_SCRATCH,
    }
    for vreg in permanent:
        remaining[kernel.vreg_classes[vreg]] -= 1
    return {
        cls: max(0, min(ROTATION_RESERVE, left - ROTATION_RESERVE))
        for cls, left in remaining.items()
    }


def rotate_schedule(
    kernel: Kernel,
    schedule: Schedule,
    min_gain_fraction: float = 0.5,
) -> Tuple[Schedule, int]:
    """Rotate eligible loads past their consumers in the schedule.

    Returns a new :class:`Schedule` (same ops, new order) and the
    number of loads rotated.  A load is rotated only when its in-body
    distance to its single use is below ``min_gain_fraction`` of the
    body length -- otherwise the in-body placement is already as good
    as the cyclic one.
    """
    order = list(schedule.order)
    n = len(order)
    if n < 4:
        return schedule, 0
    position = {op_idx: pos for pos, op_idx in enumerate(order)}
    defs = kernel.defs()

    # Intra-iteration readers per load (pre-allocation: vregs are
    # single-definition, so this is exact).
    readers: Dict[int, List[int]] = {}
    for use_idx, op in enumerate(kernel.ops):
        for src in op.srcs:
            def_idx = defs.get(src)
            if def_idx is None or def_idx >= use_idx:
                continue
            if kernel.ops[def_idx].op is OpClass.LOAD:
                readers.setdefault(def_idx, []).append(use_idx)

    budget = rotation_budget(kernel)
    threshold = max(2, int(min_gain_fraction * n))
    candidates: List[Tuple[int, int, int]] = []  # (distance, load, use)
    for load_idx, use_list in readers.items():
        op = kernel.ops[load_idx]
        if op.srcs:
            continue  # address-dependent load (pointer chase)
        if len(use_list) != 1:
            continue
        use_idx = use_list[0]
        distance = position[use_idx] - position[load_idx]
        if 0 < distance < threshold:
            candidates.append((distance, load_idx, use_idx))

    candidates.sort()
    rotated: List[Tuple[int, int]] = []  # (load, use)
    for _distance, load_idx, use_idx in candidates:
        cls = kernel.vreg_classes[kernel.ops[load_idx].dst]  # type: ignore[index]
        if budget[cls] <= 0:
            continue
        budget[cls] -= 1
        rotated.append((load_idx, use_idx))

    if not rotated:
        return schedule, 0

    # Re-emit the order with each rotated load just after its reader.
    attach: Dict[int, List[int]] = {}
    moving = set()
    for load_idx, use_idx in rotated:
        attach.setdefault(use_idx, []).append(load_idx)
        moving.add(load_idx)
    new_order: List[int] = []
    for op_idx in order:
        if op_idx in moving:
            continue
        new_order.append(op_idx)
        for load_idx in attach.get(op_idx, ()):
            new_order.append(load_idx)
    assert len(new_order) == n

    # Cycle numbers are informational; keep them monotone.
    return (
        Schedule(order=tuple(new_order), cycles=tuple(range(n)),
                 load_latency=schedule.load_latency),
        len(rotated),
    )
