"""Linear-scan register allocation with spill-code insertion.

The paper notes (Section 3.3, Figure 4) that "register allocation
occurs after instruction scheduling", so schedules prepared with
different load latencies have different register-use profiles and
spill different amounts -- which is why the benchmark reference counts
in Figure 4 vary with the load latency.  This allocator reproduces the
mechanism:

* it runs *after* list scheduling, over the scheduled order;
* loop-invariant vregs (base addresses) and loop-carried vregs
  (accumulators, induction variables, pointer-chase links) get
  dedicated registers for the whole loop;
* remaining vregs are allocated by linear scan over their scheduled
  live interval; when a register file is exhausted the current
  interval is spilled: its definition is followed by a store to the
  spill area and every use is preceded by a reload.

Spill traffic goes to a dedicated *spill stream* (a small stack
region), so spills both lengthen the instruction stream and add data
references -- exactly the Figure 4 effect.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.compiler.ir import NUM_SCRATCH, Kernel, RegClass
from repro.compiler.scheduler import Schedule
from repro.cpu.isa import FP_BASE, NUM_INT_REGS, Instruction, OpClass
from repro.errors import CompilationError


@dataclass(frozen=True)
class AllocatedBody:
    """The register-allocated, spill-expanded loop body."""

    instructions: Tuple[Instruction, ...]
    #: Stream id used by spill loads/stores (``kernel.num_streams``);
    #: only meaningful when ``spill_count > 0``.
    spill_stream: int
    #: Number of vregs that were spilled.
    spill_count: int

    @property
    def num_instructions(self) -> int:
        return len(self.instructions)

    @property
    def num_loads(self) -> int:
        return sum(1 for i in self.instructions if i.op is OpClass.LOAD)

    @property
    def num_stores(self) -> int:
        return sum(1 for i in self.instructions if i.op is OpClass.STORE)


class _Pool:
    """Free-list of physical registers for one class."""

    def __init__(self, base: int, count: int) -> None:
        self._free = list(range(base, base + count))
        self.base = base
        self.count = count

    def take(self) -> Optional[int]:
        if self._free:
            return self._free.pop()
        return None

    def release(self, reg: int) -> None:
        self._free.append(reg)


def allocate(kernel: Kernel, schedule: Schedule) -> AllocatedBody:
    """Map the scheduled kernel body onto the architected registers."""
    ops = [kernel.ops[i] for i in schedule.order]
    n = len(ops)
    defs = kernel.defs()

    # Positions in the scheduled order.
    position = {op_idx: pos for pos, op_idx in enumerate(schedule.order)}

    # -- classify vregs ------------------------------------------------------
    def_pos: Dict[int, int] = {v: position[i] for v, i in defs.items()}
    last_use: Dict[int, int] = {}
    crosses_back_edge: Dict[int, bool] = {}
    for pos, op in enumerate(ops):
        for src in op.srcs:
            if src in def_pos:
                # A use at or before its definition (including the
                # self-loop ``i = i + 1``, where use and def share the
                # position) reads the previous iteration's value: the
                # register must survive the back edge.
                if pos <= def_pos[src]:
                    crosses_back_edge[src] = True
                prev = last_use.get(src, -1)
                if pos > prev:
                    last_use[src] = pos

    invariants = kernel.invariant_vregs()
    permanent = set(invariants)
    for vreg in def_pos:
        if crosses_back_edge.get(vreg):
            permanent.add(vreg)

    # -- register pools --------------------------------------------------------
    usable_int = NUM_INT_REGS - NUM_SCRATCH
    usable_fp = NUM_INT_REGS - NUM_SCRATCH  # FP file is the same size
    int_pool = _Pool(0, usable_int)
    fp_pool = _Pool(FP_BASE, usable_fp)
    int_scratch = list(range(usable_int, NUM_INT_REGS))
    fp_scratch = list(range(FP_BASE + usable_fp, FP_BASE + NUM_INT_REGS))

    def pool_for(vreg: int) -> _Pool:
        return int_pool if kernel.vreg_classes[vreg] is RegClass.INT else fp_pool

    assignment: Dict[int, int] = {}
    for vreg in sorted(permanent):
        reg = pool_for(vreg).take()
        if reg is None:
            raise CompilationError(
                f"kernel '{kernel.name}': too many loop-carried/invariant "
                f"values for the register file"
            )
        assignment[vreg] = reg

    # -- linear scan over temporaries -------------------------------------------
    spilled: set = set()
    # Intervals sorted by definition position.
    temporaries = sorted(
        (v for v in def_pos if v not in permanent), key=lambda v: def_pos[v]
    )
    active: List[Tuple[int, int]] = []  # (last_use_pos, vreg), kept sorted

    for vreg in temporaries:
        start = def_pos[vreg]
        end = last_use.get(vreg, start)
        while active and active[0][0] < start:
            _, expired = active.pop(0)
            pool_for(expired).release(assignment[expired])
        reg = pool_for(vreg).take()
        if reg is None:
            spilled.add(vreg)
            continue
        assignment[vreg] = reg
        # Insertion keeping `active` sorted by expiry.
        lo = 0
        while lo < len(active) and active[lo][0] <= end:
            lo += 1
        active.insert(lo, (end, vreg))

    # -- emit, expanding spill code ------------------------------------------------
    spill_stream = kernel.num_streams
    out: List[Instruction] = []
    scratch_rr = {RegClass.INT: 0, RegClass.FP: 0}

    def take_scratch(cls: RegClass) -> int:
        bank = int_scratch if cls is RegClass.INT else fp_scratch
        idx = scratch_rr[cls]
        scratch_rr[cls] = (idx + 1) % NUM_SCRATCH
        return bank[idx]

    for op in ops:
        srcs: List[int] = []
        for src in op.srcs:
            if src in spilled:
                cls = kernel.vreg_classes[src]
                scratch = take_scratch(cls)
                out.append(
                    Instruction(
                        OpClass.LOAD,
                        dst=scratch,
                        stream=spill_stream,
                        width=8,
                        comment=f"reload v{src}",
                    )
                )
                srcs.append(scratch)
            else:
                srcs.append(assignment[src])
        dst: Optional[int] = None
        spill_after: Optional[int] = None
        if op.dst is not None:
            if op.dst in spilled:
                cls = kernel.vreg_classes[op.dst]
                dst = take_scratch(cls)
                spill_after = dst
            else:
                dst = assignment[op.dst]
        out.append(
            Instruction(
                op.op,
                dst=dst,
                srcs=tuple(srcs),
                stream=op.stream,
                width=op.width,
                comment=op.comment,
            )
        )
        if spill_after is not None:
            out.append(
                Instruction(
                    OpClass.STORE,
                    srcs=(spill_after,),
                    stream=spill_stream,
                    width=8,
                    comment=f"spill v{op.dst}",
                )
            )

    return AllocatedBody(
        instructions=tuple(out),
        spill_stream=spill_stream,
        spill_count=len(spilled),
    )
