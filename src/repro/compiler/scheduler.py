"""Latency-driven, pressure-aware list scheduling.

"The load latency is the time in cycles that the compiler assumes is
required to fetch data from the cache on a cache hit ... This parameter
indicates to the compiler how many instructions it should try to insert
between the load instruction and the first use." (Section 3.3.)

The scheduler builds a dependence graph over the (unrolled) kernel
body, weights load-to-use edges with the *assumed* load latency, and
performs critical-path list scheduling for a single-issue machine.  The
output is an instruction *order*: the machine is interlocked, so no
NOPs are emitted -- exactly the Multiflow setup the paper used, where
the simulator always resolves hits in one cycle and the schedule only
determines how much miss latency can be hidden.

Edges:

* true dependences (def before use in the body): latency equals the
  assumed ``load_latency`` when the producer is a load, 1 otherwise;
* loop-carried dependences (use at or before its def in the body):
  an ordering edge from the use to the def with latency 1, keeping the
  consumer of the previous iteration's value ahead of the redefinition.

Register pressure: hoisting every load to the top of the body would
exceed the 32-register files and force the allocator to spill the very
values being overlapped, so -- like any production trace scheduler --
the selection step tracks live temporaries per register class and,
once a class approaches its budget, prefers ready instructions that do
not grow that class's live set.  The budget accounts for registers
permanently claimed by loop invariants and loop-carried values.

Just-in-time load placement: a pure critical-path scheduler hoists
*every* load to the top of the body (all loads are source nodes), which
both bunches misses into convoys and maximizes register lifetime.  The
paper's knob is "how many instructions to insert between the load and
the first use" -- the target distance is the scheduled latency, not
infinity.  We therefore give each load an ALAP-derived release time:
it may not issue more than the assumed load latency (plus a small
slack) before its earliest use would allow, which spreads loads through
the body the way a latency-directed trace scheduler does.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.compiler.ir import NUM_SCRATCH, Kernel, RegClass
from repro.cpu.isa import NUM_INT_REGS, OpClass
from repro.errors import CompilationError

#: Head-room left under the hard register budget when throttling.
PRESSURE_MARGIN = 2

#: Extra cycles a load may be hoisted beyond its latency-directed
#: just-in-time slot (scheduling slack).
HOIST_SLACK = 2


@dataclass(frozen=True)
class Schedule:
    """Result of scheduling one kernel body."""

    #: Op indices (into the kernel body) in emission order.
    order: Tuple[int, ...]
    #: Issue cycle the scheduler assigned to each emitted op
    #: (parallel to ``order``; informational).
    cycles: Tuple[int, ...]
    #: The load latency the schedule was prepared for.
    load_latency: int

    @property
    def makespan(self) -> int:
        """Scheduler's estimate of one iteration's length in cycles."""
        return self.cycles[-1] + 1 if self.cycles else 0


def _build_edges(
    kernel: Kernel, load_latency: int
) -> Tuple[List[List[Tuple[int, int]]], List[int]]:
    """Return (successor lists with latencies, predecessor counts)."""
    n = len(kernel.ops)
    succs: List[List[Tuple[int, int]]] = [[] for _ in range(n)]
    preds = [0] * n
    defs = kernel.defs()
    for use_idx, op in enumerate(kernel.ops):
        for src in op.srcs:
            def_idx = defs.get(src)
            if def_idx is None:
                continue  # invariant: always ready
            if def_idx < use_idx:
                producer = kernel.ops[def_idx]
                lat = load_latency if producer.op is OpClass.LOAD else 1
                succs[def_idx].append((use_idx, lat))
                preds[use_idx] += 1
            elif def_idx > use_idx:
                # Loop-carried: keep the use ahead of the redefinition.
                succs[use_idx].append((def_idx, 1))
                preds[def_idx] += 1
            # def_idx == use_idx (e.g. ``i = i + 1``) is loop-carried
            # to itself: no intra-iteration ordering constraint.
    return succs, preds


def _priorities(
    n: int, succs: List[List[Tuple[int, int]]], preds: List[int]
) -> List[int]:
    """Critical-path priorities (longest latency path to any sink)."""
    counts = list(preds)
    stack = [i for i in range(n) if counts[i] == 0]
    topo: List[int] = []
    while stack:
        node = stack.pop()
        topo.append(node)
        for succ, _lat in succs[node]:
            counts[succ] -= 1
            if counts[succ] == 0:
                stack.append(succ)
    if len(topo) != n:
        raise CompilationError("dependence cycle within one iteration")
    prio = [1] * n
    for node in reversed(topo):
        best = 1
        for succ, lat in succs[node]:
            candidate = lat + prio[succ]
            if candidate > best:
                best = candidate
        prio[node] = best
    return prio


def _register_budgets(
    kernel: Kernel, reserve_registers: int = 0
) -> Dict[RegClass, int]:
    """Live-temporary budget per class, net of permanent registers.

    ``reserve_registers`` holds back additional registers per class for
    a later pass (the software-pipelining rotation gives loop-long
    registers to rotated values, which must not be double-booked by
    in-flight temporaries).
    """
    defs = kernel.defs()
    permanent: set = set(kernel.invariant_vregs())
    for def_idx, _use_idx in kernel.loop_carried_pairs():
        vreg = kernel.ops[def_idx].dst
        if vreg is not None:
            permanent.add(vreg)
    usable = NUM_INT_REGS - NUM_SCRATCH - PRESSURE_MARGIN - reserve_registers
    budgets = {RegClass.INT: usable, RegClass.FP: usable}
    for vreg in permanent:
        cls = kernel.vreg_classes[vreg]
        budgets[cls] -= 1
    for cls in budgets:
        if budgets[cls] < 4:
            budgets[cls] = 4  # always allow a little scheduling freedom
    return budgets


def list_schedule(
    kernel: Kernel, load_latency: int, reserve_registers: int = 0
) -> Schedule:
    """Schedule ``kernel`` for a single-issue machine.

    ``load_latency`` is the compiler's *assumption* about load latency
    (the paper's code-scheduling parameter), not a machine property.
    ``reserve_registers`` tightens the pressure budget on behalf of the
    software-pipelining pass.
    """
    if load_latency < 1:
        raise CompilationError(f"load latency must be >= 1: {load_latency}")
    n = len(kernel.ops)
    succs, preds = _build_edges(kernel, load_latency)
    prio = _priorities(n, succs, preds)
    defs = kernel.defs()
    budgets = _register_budgets(kernel, reserve_registers)

    # Permanent vregs are excluded from live-pressure tracking.
    permanent: set = set(kernel.invariant_vregs())
    for def_idx, _use_idx in kernel.loop_carried_pairs():
        vreg = kernel.ops[def_idx].dst
        if vreg is not None:
            permanent.add(vreg)

    # Remaining intra-iteration uses per temp vreg (for kill detection).
    remaining_uses: Dict[int, int] = {}
    for use_idx, op in enumerate(kernel.ops):
        for src in op.srcs:
            def_idx = defs.get(src)
            if def_idx is None or def_idx >= use_idx or src in permanent:
                continue
            remaining_uses[src] = remaining_uses.get(src, 0) + 1

    def pressure_delta(op_idx: int) -> Dict[RegClass, int]:
        """Net live-set change per class if ``op_idx`` issues now."""
        op = kernel.ops[op_idx]
        delta: Dict[RegClass, int] = {}
        if op.dst is not None and op.dst not in permanent:
            cls = kernel.vreg_classes[op.dst]
            delta[cls] = delta.get(cls, 0) + 1
        for src in set(op.srcs):
            if src in remaining_uses and remaining_uses[src] == _op_uses(op, src):
                cls = kernel.vreg_classes[src]
                delta[cls] = delta.get(cls, 0) - 1
        return delta

    def _op_uses(op, src: int) -> int:
        return sum(1 for s in op.srcs if s == src)

    earliest = [0] * n
    # Just-in-time release times for loads: a load may be hoisted at
    # most ``load_latency + HOIST_SLACK`` slots above its position in
    # the original body.  Uses stay anchored near their program
    # position by their own dependences, so this caps the achieved
    # load-use distance near the scheduled latency -- the paper's
    # definition of the knob -- and spreads the otherwise symmetric
    # unrolled copies instead of bunching every load at the top.
    hoist_window = load_latency + HOIST_SLACK
    first_use: Dict[int, int] = {}
    for use_idx, op in enumerate(kernel.ops):
        for src in op.srcs:
            def_idx = defs.get(src)
            if def_idx is not None and def_idx < use_idx:
                if def_idx not in first_use:
                    first_use[def_idx] = use_idx
    for i, op in enumerate(kernel.ops):
        if op.op is OpClass.LOAD:
            # Anchor the release to the *use's* program position, so
            # loads whose consumers sit together are hoisted together
            # (the burst shape real latency-directed schedules have).
            anchor = first_use.get(i, i)
            release = anchor - hoist_window
            if release > 0:
                earliest[i] = release
    remaining_preds = list(preds)
    waiting: List[Tuple[int, int, int]] = []  # (earliest, -prio, idx)
    ready: List[int] = []  # plain list; selection scans it
    for i in range(n):
        if remaining_preds[i] == 0:
            heapq.heappush(waiting, (earliest[i], -prio[i], i))

    live = {RegClass.INT: 0, RegClass.FP: 0}
    order: List[int] = []
    cycles: List[int] = []
    cycle = 0
    scheduled = 0
    while scheduled < n:
        while waiting and waiting[0][0] <= cycle:
            _, _neg, idx = heapq.heappop(waiting)
            ready.append(idx)
        if not ready:
            if not waiting:
                raise CompilationError("scheduler deadlock (corrupt graph)")
            cycle = waiting[0][0]
            continue

        saturated = [cls for cls in live if live[cls] >= budgets[cls]]
        best = -1
        best_key = None
        for idx in ready:
            if saturated:
                delta = pressure_delta(idx)
                if any(delta.get(cls, 0) > 0 for cls in saturated):
                    continue
            key = (prio[idx], -idx)
            if best_key is None or key > best_key:
                best_key = key
                best = idx
        if best < 0:
            # Every ready op grows a saturated class; take the most
            # critical one anyway (the allocator will spill).
            for idx in ready:
                key = (prio[idx], -idx)
                if best_key is None or key > best_key:
                    best_key = key
                    best = idx
        ready.remove(best)

        # Update live pressure.
        op = kernel.ops[best]
        if op.dst is not None and op.dst not in permanent:
            live[kernel.vreg_classes[op.dst]] += 1
        for src in set(op.srcs):
            if src in remaining_uses:
                remaining_uses[src] -= _op_uses(op, src)
                if remaining_uses[src] <= 0:
                    del remaining_uses[src]
                    live[kernel.vreg_classes[src]] -= 1

        order.append(best)
        cycles.append(cycle)
        scheduled += 1
        for succ, lat in succs[best]:
            when = cycle + lat
            if when > earliest[succ]:
                earliest[succ] = when
            remaining_preds[succ] -= 1
            if remaining_preds[succ] == 0:
                heapq.heappush(waiting, (earliest[succ], -prio[succ], succ))
        cycle += 1

    return Schedule(order=tuple(order), cycles=tuple(cycles),
                    load_latency=load_latency)


def load_use_distances(kernel: Kernel, schedule: Schedule) -> Dict[int, int]:
    """Achieved distance (in instructions) from each load to its first use.

    Keyed by the load's body index; loads whose value is only consumed
    in the next iteration are omitted.  This is the quantity the
    ``load_latency`` knob tries to drive up, and what tests assert on.
    """
    position = {op_idx: pos for pos, op_idx in enumerate(schedule.order)}
    defs = kernel.defs()
    first_use: Dict[int, int] = {}
    for use_idx, op in enumerate(kernel.ops):
        for src in op.srcs:
            def_idx = defs.get(src)
            if def_idx is None or def_idx >= use_idx:
                continue
            if kernel.ops[def_idx].op is not OpClass.LOAD:
                continue
            dist = position[use_idx] - position[def_idx]
            if def_idx not in first_use or dist < first_use[def_idx]:
                first_use[def_idx] = dist
    return first_use
