"""The compiler driver: unroll, schedule, allocate.

This is the software half of the paper's methodology.  The hardware
sweep varies MSHR resources; the software sweep varies the *scheduled
load latency* handed to this pipeline ("It is important to note that
the load latency is a code-scheduling parameter and not a system
parameter", Section 3.3).

Unrolling policy: trace-scheduling compilers unroll inner loops enough
to fill the latency window they are scheduling for.  We model that by
growing the unroll factor with the scheduled load latency, capped per
kernel (numeric kernels tolerate deep unrolling; pointer-bound integer
kernels do not benefit and real compilers leave them nearly alone).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.compiler.ir import Kernel
from repro.compiler.pipelining import ROTATION_RESERVE, rotate_schedule
from repro.compiler.regalloc import AllocatedBody, allocate
from repro.compiler.scheduler import Schedule, list_schedule
from repro.compiler.unroll import unroll
from repro.cpu.isa import Instruction, OpClass
from repro.errors import CompilationError


def unroll_factor_for(load_latency: int, max_unroll: int) -> int:
    """Unroll factor used when scheduling for ``load_latency``.

    Grows roughly with the latency window (one extra copy per two
    cycles of assumed latency) and is clamped to ``max_unroll``.
    Latency 1 always means no unrolling: a compiler scheduling for
    cache hits has no reason to enlarge the body.
    """
    if load_latency <= 1:
        return 1
    factor = 1 + load_latency // 2
    return max(1, min(max_unroll, factor))


@dataclass(frozen=True)
class CompiledBody:
    """A fully compiled loop body ready for trace expansion."""

    kernel_name: str
    instructions: Tuple[Instruction, ...]
    #: Streams the body references: the kernel's streams plus, at index
    #: ``spill_stream``, the spill area (present only if spills occurred).
    num_streams: int
    spill_stream: int
    spill_count: int
    load_latency: int
    unroll_factor: int
    schedule: Schedule
    #: Loads moved past their consumers by the software-pipelining pass.
    rotated_loads: int = 0

    @property
    def num_instructions(self) -> int:
        """Instructions per execution of the (unrolled) body."""
        return len(self.instructions)

    @property
    def num_loads(self) -> int:
        return sum(1 for i in self.instructions if i.op is OpClass.LOAD)

    @property
    def num_stores(self) -> int:
        return sum(1 for i in self.instructions if i.op is OpClass.STORE)

    def per_original_iteration(self) -> Tuple[float, float, float]:
        """(instructions, loads, stores) per *original* loop iteration."""
        u = self.unroll_factor
        return (
            self.num_instructions / u,
            self.num_loads / u,
            self.num_stores / u,
        )

    def render(self) -> str:
        """Disassembly-style listing of the compiled body."""
        header = (
            f"{self.kernel_name}: latency {self.load_latency}, "
            f"unroll {self.unroll_factor}, {self.num_instructions} instrs, "
            f"{self.spill_count} spills, {self.rotated_loads} rotated"
        )
        lines = [header]
        for idx, instr in enumerate(self.instructions):
            lines.append(f"  {idx:4d}: {instr.render()}")
        return "\n".join(lines)


def compile_kernel(
    kernel: Kernel,
    load_latency: int,
    max_unroll: int = 8,
    unroll_override: int = 0,
    software_pipeline: bool = False,
    validate: bool = False,
) -> CompiledBody:
    """Run the full pipeline on ``kernel``.

    ``unroll_override`` forces a specific unroll factor (0 = use
    :func:`unroll_factor_for`).  ``software_pipeline`` additionally
    rotates single-use streaming loads past their consumers (see
    :mod:`repro.compiler.pipelining`), modelling a trace scheduler that
    issues the next iteration's loads early.  Like the unroll policy,
    it only engages when the schedule targets miss latencies
    (``load_latency > 1``).  ``validate=True`` additionally replays the
    compiled body through the dataflow verifier
    (:mod:`repro.compiler.check`) and raises on any divergence from the
    kernel's semantics.
    """
    if max_unroll < 1:
        raise CompilationError(f"max_unroll must be >= 1: {max_unroll}")
    factor = unroll_override or unroll_factor_for(load_latency, max_unroll)
    body = unroll(kernel, factor)
    pipelining = software_pipeline and load_latency > 1
    reserve = ROTATION_RESERVE if pipelining else 0
    schedule = list_schedule(body, load_latency, reserve_registers=reserve)
    rotated = 0
    if pipelining:
        schedule, rotated = rotate_schedule(body, schedule)
    allocated: AllocatedBody = allocate(body, schedule)
    instructions = allocated.instructions
    num_streams = kernel.num_streams
    if allocated.spill_count:
        num_streams += 1
    if validate:
        from repro.compiler.check import verify_allocation

        verify_allocation(body, schedule, instructions,
                          allocated.spill_stream)
    return CompiledBody(
        kernel_name=kernel.name,
        instructions=instructions,
        num_streams=num_streams,
        spill_stream=allocated.spill_stream,
        spill_count=allocated.spill_count,
        load_latency=load_latency,
        unroll_factor=factor,
        schedule=schedule,
        rotated_loads=rotated,
    )
