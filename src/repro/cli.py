"""The ``python -m repro`` command line.

Three subcommands cover the interactive workflows:

``simulate``
    Run one benchmark under one or more hardware policies and print
    MCPI with its decomposition::

        python -m repro simulate tomcatv --policy mc=1 --policy "no restrict"
        python -m repro simulate doduc --cache-kb 64 --latency 20

``audit``
    Print a workload model's static profile (reference mix, stream
    footprints, estimated vs measured miss rate).

``trace``
    Print the first N accesses as the miss handler resolves them.

``sweep``
    Benchmarks x policies MCPI table, fanned across a process pool::

        python -m repro sweep --policy mc=1 --policy fc=2 --workers 4
        REPRO_WORKERS=8 python -m repro sweep tomcatv doduc --scale 0.5

``cache``
    Inspect or maintain the on-disk memoized-result store that backs
    every sweep (see ``docs/caching.md``)::

        python -m repro cache stats [--json]
        python -m repro cache clear
        python -m repro cache gc --max-mb 256 --max-age-days 30

``engines``
    Print the execution-engine registry (reference / fastpath / fused
    / native) and what the current environment resolves to; see
    ``docs/timing_model.md``.  ``simulate`` and ``sweep`` take
    ``--engine`` to pin a tier for the run::

        python -m repro engines
        python -m repro sweep --engine fused

``screen``
    Analytical MCPI bounds from the stream pass alone -- no replay;
    without benchmarks, print the fidelity ladder (screen / auto /
    exact) and what the current environment resolves to.  ``sweep``
    takes ``--fidelity`` (or ``REPRO_FIDELITY``) to pick the tier;
    see the screening section of ``docs/performance.md``::

        python -m repro screen
        python -m repro screen eqntott compress --policy mc=1
        python -m repro sweep --fidelity auto

``backends``
    Print the dispatch-backend registry (inline / pool / socket) and
    what the current environment resolves to; see
    ``docs/distributed.md``.  ``sweep`` takes ``--backend`` to pin
    one for the run::

        python -m repro backends
        python -m repro sweep --backend pool --workers 4

``worker`` / ``serve``
    The distributed sweep fabric: ``worker`` runs a socket worker a
    coordinator can ship shards to, ``serve`` runs the asyncio sweep
    service front end (progress streaming, request coalescing)::

        python -m repro worker --port 7071
        REPRO_FABRIC_WORKERS=127.0.0.1:7071 python -m repro sweep --backend socket
        python -m repro serve --port 7080

``telemetry``
    Inspect the sweep engine's metrics and span traces (see
    ``docs/observability.md``)::

        python -m repro telemetry summary [--json]
        python -m repro telemetry export [--last-run] [--out metrics.prom]
        python -m repro telemetry export --trace-in trace.jsonl --out t.json
        python -m repro telemetry validate --trace-in trace.jsonl
        python -m repro telemetry reset

Policies are named with the paper's labels: ``mc=0``, ``mc=0+wma``,
``mc=N``, ``fc=N``, ``fs=N``, ``no restrict`` (or ``none``),
``in-cache``, ``inverted(N)``, or a field layout like ``layout 2x2``.
The experiments have their own driver: ``python -m repro.experiments``.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from typing import List, Optional

from repro.analysis import format_table
from repro.cache.geometry import FULLY_ASSOCIATIVE, CacheGeometry
from repro.core.policies import (
    MSHRPolicy,
    blocking_cache,
    fc,
    fs,
    in_cache,
    inverted,
    mc,
    no_restrict,
    with_layout,
)
from repro.errors import ConfigurationError, ReproError
from repro.sim import engines as engines_mod
from repro.sim.config import MachineConfig
from repro.sim.simulator import simulate
from repro.workloads.spec92 import benchmark_names, get_benchmark


def parse_policy(text: str) -> MSHRPolicy:
    """Parse a paper-style policy label into an :class:`MSHRPolicy`."""
    label = text.strip().lower().replace("_", " ")
    if label in ("no restrict", "none", "unrestricted", "norestrict"):
        return no_restrict()
    if label in ("mc=0+wma", "wma"):
        return blocking_cache(write_allocate=True)
    if label == "mc=0":
        return blocking_cache()
    if label in ("in-cache", "incache", "in cache"):
        return in_cache()
    match = re.fullmatch(r"(mc|fc|fs)=(\d+)", label)
    if match:
        kind, n = match.group(1), int(match.group(2))
        if n == 0:
            raise ConfigurationError("only mc=0 denotes a blocking cache")
        return {"mc": mc, "fc": fc, "fs": fs}[kind](n)
    match = re.fullmatch(r"inverted\((\d+)\)", label)
    if match:
        return inverted(int(match.group(1)))
    match = re.fullmatch(r"layout (\d+)x(\d+|inf)", label)
    if match:
        per = None if match.group(2) == "inf" else int(match.group(2))
        return with_layout(int(match.group(1)), per)
    raise ConfigurationError(
        f"unrecognized policy '{text}'; examples: mc=0, mc=1, fc=2, fs=1, "
        f"'no restrict', in-cache, inverted(70), 'layout 2x2'"
    )


def build_config(args: argparse.Namespace, policy: MSHRPolicy) -> MachineConfig:
    assoc = FULLY_ASSOCIATIVE if args.assoc == 0 else args.assoc
    geometry = CacheGeometry(
        size=args.cache_kb * 1024, line_size=args.line, associativity=assoc
    )
    return MachineConfig(
        geometry=geometry,
        policy=policy,
        miss_penalty=args.penalty,
        issue_width=args.issue,
    )


def _add_machine_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--cache-kb", type=int, default=8,
                        help="data cache size in KB (default 8)")
    parser.add_argument("--line", type=int, default=32,
                        help="line size in bytes (default 32)")
    parser.add_argument("--assoc", type=int, default=1,
                        help="ways per set; 0 = fully associative")
    parser.add_argument("--penalty", type=int, default=16,
                        help="miss penalty in cycles (default 16)")
    parser.add_argument("--issue", type=int, default=1, choices=(1, 2),
                        help="issue width (default 1)")
    parser.add_argument("--latency", type=int, default=10,
                        help="scheduled load latency (compiler knob)")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="run-length multiplier")
    parser.add_argument("--warmup", type=float, default=0.0,
                        help="fraction of the run discarded as cold start")


def _add_engine_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--engine", choices=engines_mod.engine_names(),
                        default=None,
                        help="execution tier (bit-identical results; "
                             "default: REPRO_ENGINE or auto)")


def _add_fidelity_arg(parser: argparse.ArgumentParser) -> None:
    from repro.analysis.screen import fidelity_names

    parser.add_argument("--fidelity", choices=fidelity_names(),
                        default=None,
                        help="evaluation tier: screen = analytical "
                             "[lower,upper] MCPI bounds without replay, "
                             "auto = screen + simulate the rest, exact = "
                             "simulate everything (default: "
                             "REPRO_FIDELITY or exact)")


def cmd_simulate(args: argparse.Namespace) -> int:
    workload = get_benchmark(args.benchmark)
    labels = args.policy or ["mc=0", "mc=1", "mc=2", "fc=2", "no restrict"]
    rows = []
    for label in labels:
        policy = parse_policy(label)
        config = build_config(args, policy)
        result = simulate(workload, config, load_latency=args.latency,
                          scale=args.scale, warmup=args.warmup,
                          engine=args.engine)
        if args.issue == 1:
            rows.append([
                policy.name,
                result.mcpi,
                result.truedep_mcpi,
                result.structural_mcpi,
                round(100 * result.miss.load_miss_rate, 2),
                result.miss.primary_misses,
                result.miss.secondary_misses,
                result.miss.structural_misses,
            ])
        else:
            rows.append([
                policy.name, round(result.ipc, 3), result.cycles,
                None, None, result.miss.primary_misses,
                result.miss.secondary_misses, result.miss.structural_misses,
            ])
    headers = (["policy", "MCPI", "truedep", "structural", "miss %",
                "primary", "secondary", "struct-stall"]
               if args.issue == 1 else
               ["policy", "IPC", "cycles", "-", "-",
                "primary", "secondary", "struct-stall"])
    print(f"{workload.name} on "
          f"{build_config(args, no_restrict()).describe()}, "
          f"scheduled latency {args.latency}\n")
    print(format_table(headers, rows))
    return 0


def cmd_audit(args: argparse.Namespace) -> int:
    from repro.workloads.audit import audit_workload

    workload = get_benchmark(args.benchmark)
    audit = audit_workload(workload, load_latency=args.latency)
    print(audit.describe())
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.sim.tracelog import format_access_log, record_accesses

    workload = get_benchmark(args.benchmark)
    policy = parse_policy(args.policy[0] if args.policy else "no restrict")
    config = build_config(args, policy)
    records = record_accesses(workload, config, load_latency=args.latency,
                              limit=args.count)
    print(f"{workload.name} under {policy.name}: "
          f"first {len(records)} accesses\n")
    print(format_access_log(records))
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.benchreport import benchmark_report

    workload = get_benchmark(args.benchmark)
    print(benchmark_report(workload, scale=args.scale,
                           focus_latency=args.latency,
                           fidelity=args.fidelity))
    return 0


def cmd_benchmarks(_args: argparse.Namespace) -> int:
    for name in benchmark_names():
        workload = get_benchmark(name)
        kind = "fp " if workload.is_fp else "int"
        print(f"{name:10s} [{kind}] {workload.description}")
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    from repro.analysis.screen import resolve_fidelity, run_screen_table
    from repro.sim import planner
    from repro.sim.parallel import default_workers
    from repro.sim.sweep import run_table

    names = args.benchmark or list(benchmark_names())
    workloads = [get_benchmark(name) for name in names]
    labels = args.policy or ["mc=0", "mc=1", "mc=2", "fc=2", "no restrict"]
    policies = [parse_policy(label) for label in labels]
    base = build_config(args, policies[0])
    fidelity = resolve_fidelity(args.fidelity, default="exact")
    # The sweep fans across pool workers, so a pinned engine travels
    # as REPRO_ENGINE (workers inherit the environment); every tier is
    # bit-identical, so this only affects speed.
    saved_engine = os.environ.get("REPRO_ENGINE")
    if args.engine is not None:
        os.environ["REPRO_ENGINE"] = args.engine
    try:
        workers = args.workers if args.workers else default_workers()
        if fidelity.name == "exact":
            table = run_table(
                workloads, policies, load_latency=args.latency, base=base,
                scale=args.scale, workers=workers, backend=args.backend,
            )
        else:
            table = run_screen_table(
                workloads, policies, load_latency=args.latency, base=base,
                scale=args.scale, workers=workers, backend=args.backend,
                fidelity=fidelity.name,
            )
    finally:
        if args.engine is not None:
            if saved_engine is None:
                os.environ.pop("REPRO_ENGINE", None)
            else:
                os.environ["REPRO_ENGINE"] = saved_engine
    headers = ["benchmark"] + [p.name for p in policies]
    rows = []
    if fidelity.name == "screen":
        from repro.analysis.tables import format_interval

        for workload in workloads:
            row = [workload.name]
            for p in policies:
                low, high = table.bounds(workload.name, p.name)
                row.append(format_interval(low, high))
            rows.append(row)
        print(f"benchmarks x policies at scheduled latency {args.latency}, "
              f"MCPI bounds (screen fidelity: low~high brackets, "
              f"no replay)\n")
    else:
        for workload in workloads:
            rows.append([workload.name]
                        + [table.mcpi(workload.name, p.name)
                           for p in policies])
        print(f"benchmarks x policies at scheduled latency {args.latency}, "
              f"MCPI\n")
    print(format_table(headers, rows))
    if fidelity.name != "exact" and table.report is not None:
        print(f"\nscreen: {table.report.describe()}")
    if planner.last_report is not None and fidelity.name != "screen":
        print(f"\nplan: {planner.last_report.describe()}")
    return 0


def cmd_engines(_args: argparse.Namespace) -> int:
    current = engines_mod.resolve_engine()
    rows = []
    for name in engines_mod.ENGINE_ORDER:
        engine = engines_mod.ENGINES[name]
        rows.append([name, "<-" if engine is current else "",
                     engine.description])
    print("execution engines, slowest tier first "
          "(every tier is bit-identical)\n")
    print(format_table(["engine", "now", "description"], rows))
    env = os.environ.get("REPRO_ENGINE")
    if env is not None:
        source = f"REPRO_ENGINE={env}"
    elif os.environ.get("REPRO_FASTPATH", "1") == "0":
        source = "legacy REPRO_FASTPATH=0 (deprecated; use REPRO_ENGINE)"
    elif os.environ.get("REPRO_FUSION", "1") == "0":
        source = "legacy REPRO_FUSION=0 (deprecated; use REPRO_ENGINE)"
    else:
        source = "default (auto = fastest applicable per cell)"
    print(f"\nresolved: {current.name}  [{source}]")
    from repro.cpu import ckernel

    compiler = ckernel.find_compiler()
    if compiler is None:
        probe = "none found (cnative degrades to native; set REPRO_CC)"
    else:
        probe = compiler
    kstats = ckernel.kernel_cache_stats()
    print(f"C compiler: {probe}")
    print(f"kernel cache: {kstats['kernels']} compiled kernels, "
          f"{kstats['bytes'] / 1024:.1f} KiB at {kstats['path']} "
          f"[{kstats['binding']} binding]")
    print("cells outside a tier's envelope fall back to the next tier; "
          "see docs/timing_model.md")
    return 0


def cmd_screen(args: argparse.Namespace) -> int:
    from repro.analysis import screen as screen_mod
    from repro.analysis.tables import format_interval

    if not args.benchmark:
        current = screen_mod.resolve_fidelity()
        rows = []
        for name in screen_mod.FIDELITY_ORDER:
            fid = screen_mod.FIDELITIES[name]
            rows.append([name, "<-" if fid is current else "",
                         fid.description])
        print("evaluation fidelities, cheapest first\n")
        print(format_table(["fidelity", "now", "description"], rows))
        env = os.environ.get(screen_mod.FIDELITY_ENV)
        if env is not None:
            source = f"{screen_mod.FIDELITY_ENV}={env}"
        else:
            source = "default (exact; design-space queries default to auto)"
        print(f"\nresolved: {current.name}  [{source}]")
        print("selection: fidelity argument > REPRO_FIDELITY > default; "
              "screened bounds are sound (lower <= exact MCPI <= upper), "
              "closed-form families exact; see docs/performance.md")
        print("give benchmarks to screen them: "
              "python -m repro screen eqntott compress --policy mc=1")
        return 0

    workloads = [get_benchmark(name) for name in args.benchmark]
    labels = args.policy or ["mc=0", "mc=1", "mc=2", "fc=2", "no restrict"]
    policies = [parse_policy(label) for label in labels]
    base = build_config(args, policies[0])
    table = screen_mod.run_screen_table(
        workloads, policies, load_latency=args.latency, base=base,
        scale=args.scale, workers=args.workers, backend=args.backend,
        fidelity="screen",
    )
    headers = ["benchmark"] + [p.name for p in policies]
    rows = []
    for workload in workloads:
        row = [workload.name]
        for p in policies:
            low, high = table.bounds(workload.name, p.name)
            row.append(format_interval(low, high))
        rows.append(row)
    print(f"analytical MCPI bounds at scheduled latency {args.latency} "
          f"(no replay; low~high brackets are sound, "
          f"point values exact)\n")
    print(format_table(headers, rows))
    if table.report is not None:
        print(f"\nscreen: {table.report.describe()}")
    return 0


def cmd_backends(_args: argparse.Namespace) -> int:
    from repro.sim import parallel

    # Importing the fabric registers the socket backend.
    from repro.sim import fabric  # noqa: F401

    current = parallel.resolve_backend()
    rows = []
    for name in parallel.BACKEND_ORDER:
        backend = parallel.get_backend(name)
        rows.append([name, "<-" if backend is current else "",
                     backend.capabilities.describe(), backend.description])
    print("dispatch backends (every backend is bit-identical)\n")
    print(format_table(["backend", "now", "capabilities", "description"],
                       rows))
    env = os.environ.get("REPRO_BACKEND")
    if env is not None:
        source = f"REPRO_BACKEND={env}"
    else:
        source = "default (auto = inline when serial, else pool)"
    print(f"\nresolved: {current.name}  [{source}]")
    fabric_env = os.environ.get("REPRO_FABRIC_WORKERS")
    if fabric_env:
        print(f"fabric workers: {fabric_env}")
    else:
        print("fabric workers: none (socket backend needs "
              "REPRO_FABRIC_WORKERS=host:port[,host:port...])")
    print("selection: backend argument > REPRO_BACKEND > auto; "
          "see docs/distributed.md")
    return 0


def cmd_worker(args: argparse.Namespace) -> int:
    from repro.sim.fabric import run_worker

    run_worker(host=args.host, port=args.port)
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve import serve_forever

    try:
        asyncio.run(serve_forever(
            host=args.host, port=args.port,
            workers=args.workers, backend=args.backend,
        ))
    except KeyboardInterrupt:
        pass
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    import json as _json

    from repro.cpu import ckernel
    from repro.sim.resultstore import ResultStore

    store = ResultStore.from_env()
    if args.action == "stats":
        stats = store.stats()
        kstats = ckernel.kernel_cache_stats()
        if args.json:
            payload = stats.to_dict()
            payload["kernels"] = kstats
            print(_json.dumps(payload, indent=2))
        else:
            print(stats.describe())
            compiler = kstats["compiler"] or "no compiler"
            print(f"kernel cache at {kstats['path']}: "
                  f"{kstats['kernels']} compiled kernels, "
                  f"{kstats['bytes'] / 1024:.1f} KiB [{compiler}]")
    elif args.action == "clear":
        # Count kernel files before the store clear: the store owns
        # the whole cache root, so its rmtree takes kernels/ with it.
        kernels = ckernel.clear_kernel_cache()
        removed = store.clear()
        print(f"cleared {removed} cached results from {store.root}")
        print(f"cleared {kernels} compiled kernel files")
    elif args.action == "gc":
        max_bytes = (None if args.max_mb is None
                     else int(args.max_mb * 1024 * 1024))
        removed = store.gc(max_bytes=max_bytes,
                           max_age_days=args.max_age_days)
        kernels = ckernel.gc_kernel_cache()
        print(f"garbage-collected {removed} cached results from {store.root}")
        print(f"garbage-collected {kernels} stale kernel files")
    return 0


def cmd_telemetry(args: argparse.Namespace) -> int:
    import json as _json

    from repro import telemetry
    from repro.telemetry import state as telemetry_state

    if args.action == "summary":
        state = telemetry_state.read_state()
        if args.json:
            print(_json.dumps(state, indent=2))
        else:
            print(telemetry_state.render_summary(state))
    elif args.action == "export":
        if args.trace_in:
            out = args.out or "trace.json"
            events = telemetry.export_chrome_trace(args.trace_in, out)
            print(f"wrote {events} events to {out} "
                  f"(load in chrome://tracing or ui.perfetto.dev)")
            return 0
        state = telemetry_state.read_state()
        section = "last_run" if args.last_run else "cumulative"
        snapshot = (state.get("last_run", {}).get("snapshot", {})
                    if args.last_run else state.get("cumulative", {}))
        text = telemetry.render_prometheus(snapshot)
        if args.out:
            with open(args.out, "w", encoding="utf-8") as fh:
                fh.write(text)
            print(f"wrote {section} metrics to {args.out}")
        else:
            print(text, end="")
    elif args.action == "validate":
        if not args.trace_in:
            print("error: validate needs --trace-in FILE", file=sys.stderr)
            return 2
        try:
            events = telemetry.validate_trace_file(args.trace_in)
        except (OSError, ValueError) as exc:
            print(f"error: invalid trace: {exc}", file=sys.stderr)
            return 1
        print(f"{args.trace_in}: {events} valid trace events")
    elif args.action == "reset":
        removed = telemetry_state.reset_state()
        path = telemetry_state.state_path()
        print(f"{'removed' if removed else 'nothing recorded at'} {path}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Non-blocking load study (Farkas & Jouppi, ISCA 1994).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("simulate", help="run a benchmark under policies")
    sim.add_argument("benchmark")
    sim.add_argument("--policy", action="append",
                     help="policy label (repeatable); default: the spectrum")
    _add_machine_args(sim)
    _add_engine_arg(sim)
    sim.set_defaults(func=cmd_simulate)

    audit = sub.add_parser("audit", help="static profile of a model")
    audit.add_argument("benchmark")
    audit.add_argument("--latency", type=int, default=10)
    audit.set_defaults(func=cmd_audit)

    trace = sub.add_parser("trace", help="access-by-access log")
    trace.add_argument("benchmark")
    trace.add_argument("--policy", action="append")
    trace.add_argument("--count", type=int, default=30)
    _add_machine_args(trace)
    trace.set_defaults(func=cmd_trace)

    report = sub.add_parser(
        "report", help="full dossier: audit + curves + decomposition"
    )
    report.add_argument("benchmark")
    report.add_argument("--scale", type=float, default=0.5)
    report.add_argument("--latency", type=int, default=10)
    _add_fidelity_arg(report)
    report.set_defaults(func=cmd_report)

    bench = sub.add_parser("benchmarks", help="list the workload models")
    bench.set_defaults(func=cmd_benchmarks)

    sweep = sub.add_parser(
        "sweep", help="benchmarks x policies MCPI table (parallel)"
    )
    sweep.add_argument("benchmark", nargs="*",
                       help="benchmarks to sweep (default: all)")
    sweep.add_argument("--policy", action="append",
                       help="policy label (repeatable); default: the spectrum")
    sweep.add_argument("--workers", type=int, default=None,
                       help="process pool size (default: REPRO_WORKERS "
                            "if set, else half the CPUs)")
    sweep.add_argument("--backend", default=None,
                       help="dispatch backend: inline, pool, socket, or "
                            "auto (default: REPRO_BACKEND or auto)")
    _add_machine_args(sweep)
    _add_engine_arg(sweep)
    _add_fidelity_arg(sweep)
    sweep.set_defaults(func=cmd_sweep)

    engines = sub.add_parser(
        "engines",
        help="list execution engines and the current resolution",
    )
    engines.set_defaults(func=cmd_engines)

    screen = sub.add_parser(
        "screen",
        help="analytical MCPI bounds without replay "
             "(no benchmarks: list the fidelity ladder)",
    )
    screen.add_argument("benchmark", nargs="*",
                        help="benchmarks to screen (default: show ladder)")
    screen.add_argument("--policy", action="append",
                        help="policy label (repeatable)")
    screen.add_argument("--workers", type=int, default=1,
                        help="workers for cause-tagged fallback cells")
    screen.add_argument("--backend", default=None,
                        help="dispatch backend for fallback cells")
    _add_machine_args(screen)
    screen.set_defaults(func=cmd_screen)

    backends = sub.add_parser(
        "backends",
        help="list the dispatch backends and the current resolution")
    backends.set_defaults(func=cmd_backends)

    worker = sub.add_parser(
        "worker", help="run a sweep fabric socket worker")
    worker.add_argument("--host", default="127.0.0.1",
                        help="interface to bind (default 127.0.0.1)")
    worker.add_argument("--port", type=int, default=0,
                        help="port to bind (default 0 = kernel-assigned; "
                             "the chosen port is printed on stdout)")
    worker.set_defaults(func=cmd_worker)

    serve = sub.add_parser(
        "serve", help="run the asyncio sweep service (JSON lines over TCP)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="interface to bind (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=0,
                       help="port to bind (default 0 = kernel-assigned)")
    serve.add_argument("--workers", type=int, default=1,
                       help="pool size for executed sweeps (default 1)")
    serve.add_argument("--backend", default=None,
                       help="dispatch backend for executed sweeps "
                            "(default: REPRO_BACKEND or auto)")
    serve.set_defaults(func=cmd_serve)

    cache = sub.add_parser(
        "cache", help="manage the on-disk simulation result store"
    )
    cache.add_argument("action", choices=("stats", "clear", "gc"),
                       help="stats: entries + hit counters; clear: remove "
                            "everything; gc: prune by size/age")
    cache.add_argument("--json", action="store_true",
                       help="(stats) machine-readable output")
    cache.add_argument("--max-mb", type=float, default=None,
                       help="(gc) evict oldest entries beyond this footprint")
    cache.add_argument("--max-age-days", type=float, default=None,
                       help="(gc) drop entries older than this")
    cache.set_defaults(func=cmd_cache)

    tele = sub.add_parser(
        "telemetry",
        help="inspect sweep-engine metrics and traces "
             "(see docs/observability.md)",
    )
    tele.add_argument(
        "action", choices=("summary", "export", "validate", "reset"),
        help="summary: last-run + cumulative metrics; export: "
             "Prometheus text (or --trace-in JSONL -> chrome trace); "
             "validate: check a JSONL trace against the schema; "
             "reset: drop the recorded state",
    )
    tele.add_argument("--json", action="store_true",
                      help="(summary) raw state file as JSON")
    tele.add_argument("--last-run", action="store_true",
                      help="(export) export the last run instead of "
                           "the cumulative totals")
    tele.add_argument("--trace-in", type=str, default=None,
                      help="a REPRO_TRACE_FILE JSONL stream to "
                           "validate or convert")
    tele.add_argument("--out", type=str, default=None,
                      help="(export) write to this file instead of stdout")
    tele.set_defaults(func=cmd_telemetry)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # stdout went away (e.g. `... | head`); exit quietly like any
        # well-behaved filter.  Detach stdout so interpreter shutdown
        # does not try to flush the dead pipe.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
