"""The stable public API of the ``repro`` package.

This module is the **single supported entry point** for programmatic
use.  Internal modules (``repro.sim``, ``repro.experiments``, ...)
keep working, but their layout may shift between releases; everything
re-exported or defined here is covered by the compatibility promise in
``docs/api.md``.  Import it as::

    from repro import api

    result = api.simulate("tomcatv", policy="mc=1")
    table = api.sweep(["doduc", "xlisp"], policies=["mc=1", "no restrict"])
    report = api.run_experiment("fig5", scale=0.1)

Three groups of names:

* **simulation** -- :func:`simulate` (memoized, accepts benchmark
  names or :class:`~repro.workloads.workload.Workload` objects and
  policy labels or :class:`~repro.core.policies.MSHRPolicy` objects),
  :func:`sweep`, the :class:`MachineConfig` /
  :class:`SimulationResult` types, :func:`baseline_config`,
  :func:`get_benchmark`, :func:`benchmark_names`, and
  :func:`parse_policy`;
* **experiments** -- :func:`run_experiment`, :func:`list_experiments`,
  :class:`ExperimentOptions`, :class:`ExperimentResult`;
* **dispatch lifecycle** -- :func:`backend_names`,
  :func:`shutdown_pool`, and :func:`pool_stats` for the dispatch
  backends (inline / pool / socket; see ``docs/distributed.md`` and
  the "Trace plane and pool lifecycle" section of
  ``docs/performance.md``);
* **sweep service** -- :func:`submit_sweep` and :func:`sweep_service`
  for asynchronous submission with progress streaming and request
  coalescing (``docs/distributed.md``);
* **telemetry** -- :func:`telemetry_enabled`, :func:`metrics_snapshot`,
  :func:`telemetry_summary`, :func:`flush_telemetry`, and the
  :func:`span` context manager (see ``docs/observability.md``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

from repro.core.policies import MSHRPolicy
from repro.errors import ReproError
from repro.experiments.base import (
    Experiment,
    ExperimentOptions,
    ExperimentResult,
)
from repro.sim.config import MachineConfig, baseline_config
from repro.sim.stats import SimulationResult
from repro.sim.sweep import TableSweep
from repro.workloads.spec92 import benchmark_names, get_benchmark
from repro.workloads.workload import Workload
from repro import telemetry as _telemetry
from repro.telemetry import span

__all__ = [
    # simulation
    "simulate",
    "sweep",
    "MachineConfig",
    "SimulationResult",
    "MSHRPolicy",
    "Workload",
    "baseline_config",
    "get_benchmark",
    "benchmark_names",
    "parse_policy",
    "engine_names",
    "backend_names",
    "fidelity_names",
    # experiments
    "run_experiment",
    "list_experiments",
    "Experiment",
    "ExperimentOptions",
    "ExperimentResult",
    # dispatch lifecycle
    "shutdown_pool",
    "pool_stats",
    # sweep service
    "submit_sweep",
    "sweep_service",
    # telemetry
    "span",
    "telemetry_enabled",
    "metrics_snapshot",
    "telemetry_summary",
    "flush_telemetry",
    # errors
    "ReproError",
]

#: What callers may pass wherever a workload is expected.
WorkloadLike = Union[str, Workload]
#: What callers may pass wherever a policy is expected.
PolicyLike = Union[str, MSHRPolicy]


def _resolve_workload(workload: WorkloadLike) -> Workload:
    if isinstance(workload, str):
        return get_benchmark(workload)
    return workload


def parse_policy(policy: PolicyLike) -> MSHRPolicy:
    """Resolve a paper-style policy label (``"mc=1"``, ``"no
    restrict"``, ``"layout 2x2"``, ...) or pass a policy through."""
    if isinstance(policy, MSHRPolicy):
        return policy
    from repro.cli import parse_policy as _parse

    return _parse(policy)


def engine_names() -> Sequence[str]:
    """Valid ``engine=`` / ``REPRO_ENGINE`` values, ``auto`` included.

    The tiers (reference / fastpath / fused / native / cnative) are
    catalogued
    in ``docs/timing_model.md``; ``python -m repro engines`` prints
    the registry with the current resolution.
    """
    from repro.sim.engines import engine_names as _names

    return _names()


def backend_names() -> Sequence[str]:
    """Valid ``backend=`` / ``REPRO_BACKEND`` values, ``auto`` included.

    Dispatch backends (inline / pool / socket) pick *where* sweep
    cells execute, exactly as engine tiers pick *how*; every backend
    is bit-identical.  ``python -m repro backends`` prints the
    registry with each backend's capabilities and the current
    resolution; ``docs/distributed.md`` covers the socket fabric.
    """
    from repro.sim.parallel import backend_names as _names

    return _names()


def fidelity_names() -> Sequence[str]:
    """Valid ``fidelity=`` / ``REPRO_FIDELITY`` values, cheapest first.

    The ladder (``screen`` / ``auto`` / ``exact``) picks *how
    precisely* sweep cells are evaluated: analytical interval bounds,
    screening plus exact simulation of the cells that matter, or
    exhaustive simulation.  ``python -m repro screen`` prints the
    ladder with the current resolution; see the "Analytical screening
    tier" section of ``docs/performance.md``.
    """
    from repro.analysis.screen import fidelity_names as _names

    return _names()


def simulate(
    workload: WorkloadLike,
    policy: Optional[PolicyLike] = None,
    config: Optional[MachineConfig] = None,
    load_latency: int = 10,
    scale: float = 1.0,
    cached: bool = True,
    engine: Optional[str] = None,
) -> SimulationResult:
    """Simulate one benchmark on one machine; memoized by default.

    ``workload`` is a benchmark name or a custom
    :class:`~repro.workloads.workload.Workload`.  Either give a full
    ``config`` or just a ``policy`` (label or object) applied to the
    paper's baseline machine.  ``cached=True`` serves repeated cells
    from the on-disk result store (bit-identical to a fresh run);
    ``cached=False`` always simulates.  ``engine`` names an execution
    tier from :func:`engine_names` (default: resolve via
    ``REPRO_ENGINE`` / ``auto``); every tier returns bit-identical
    results, so it is purely a speed knob and cached entries are
    engine-independent.
    """
    resolved = _resolve_workload(workload)
    if config is None:
        config = baseline_config()
    if policy is not None:
        config = config.with_policy(parse_policy(policy))
    if cached:
        from repro.sim.planner import cached_simulate

        return cached_simulate(resolved, config, load_latency=load_latency,
                               scale=scale, engine=engine)
    from repro.sim.simulator import simulate as _simulate

    return _simulate(resolved, config, load_latency=load_latency,
                     scale=scale, engine=engine)


def sweep(
    benchmarks: Optional[Sequence[WorkloadLike]] = None,
    policies: Optional[Sequence[PolicyLike]] = None,
    load_latency: int = 10,
    scale: float = 1.0,
    workers: Optional[int] = 1,
    base: Optional[MachineConfig] = None,
    backend: Optional[str] = None,
    fidelity: Optional[str] = None,
):
    """A benchmarks x policies MCPI table through the unified planner.

    Defaults to all 18 benchmark models and the paper's baseline
    policy spectrum.  Cells are deduplicated, served from the result
    store where possible, and the misses dispatched across
    ``workers`` processes on the selected ``backend``
    (:func:`backend_names`; default: resolve via ``REPRO_BACKEND`` /
    ``auto``); results are bit-identical to serial ``simulate`` calls
    whichever backend runs them.

    ``fidelity`` picks the evaluation tier (:func:`fidelity_names`;
    default: resolve via ``REPRO_FIDELITY`` / ``exact``).  ``exact``
    returns a :class:`~repro.sim.sweep.TableSweep` as always.
    ``screen`` returns a
    :class:`~repro.analysis.screen.ScreenedTable` of analytical
    ``[lower, upper]`` MCPI brackets with **no replay at all** (bar
    cause-tagged fallback cells); ``auto`` returns the same table
    fully resolved -- closed-form cells analytically, the rest
    simulated -- so its ``mcpi()`` agrees with ``exact`` everywhere.
    """
    from repro.analysis.screen import resolve_fidelity, run_screen_table
    from repro.core.policies import baseline_policies
    from repro.sim.sweep import run_table

    if benchmarks is None:
        workloads = [get_benchmark(name) for name in benchmark_names()]
    else:
        workloads = [_resolve_workload(b) for b in benchmarks]
    if policies is None:
        resolved_policies = list(baseline_policies())
    else:
        resolved_policies = [parse_policy(p) for p in policies]
    fid = resolve_fidelity(fidelity, default="exact")
    if fid.name != "exact":
        return run_screen_table(workloads, resolved_policies,
                                load_latency=load_latency, base=base,
                                scale=scale, workers=workers,
                                backend=backend, fidelity=fid.name)
    return run_table(workloads, resolved_policies,
                     load_latency=load_latency, base=base, scale=scale,
                     workers=workers, backend=backend)


def run_experiment(
    experiment_id: str,
    options: Optional[ExperimentOptions] = None,
    **kwargs,
) -> ExperimentResult:
    """Regenerate one paper figure/table by id (``"fig5"``, ...).

    Keyword options are validated against
    :class:`ExperimentOptions`; unknown names raise
    :class:`~repro.errors.ExperimentError` with a did-you-mean hint.
    """
    from repro.experiments import get_experiment

    return get_experiment(experiment_id).run(options=options, **kwargs)


def list_experiments() -> List[Experiment]:
    """Every registered experiment, sorted as the paper orders them."""
    from repro.experiments import all_experiments

    return all_experiments()


# -- pool lifecycle ------------------------------------------------------------


def shutdown_pool() -> bool:
    """Release every dispatch backend's resources; True if any were live.

    Covers the persistent process pool (``workers > 1`` sweeps share
    one lazily created, process-wide pool so worker compile/trace
    caches stay warm across consecutive sweeps) and any other
    registered backend holding state.  The pool also retires itself
    after ``REPRO_POOL_IDLE`` seconds of disuse (default 120) and at
    interpreter exit; long-lived services should call this when a
    burst of sweeps finishes instead of keeping idle workers around.
    A later sweep transparently reacquires whatever it needs.
    """
    from repro.sim.parallel import shutdown_pool as _shutdown

    return _shutdown()


def pool_stats(backend: Optional[str] = None) -> Dict:
    """Advisory per-backend dispatch state for this process.

    ``"backend"`` is the resolved selection (``backend`` argument,
    else ``REPRO_BACKEND``, else ``auto``) and ``"backends"`` maps
    every registered backend to its own stats -- so the answer is
    honest even when the inline or socket backend, not the process
    pool, is doing the work.  The historical process-pool keys
    (``active``, ``workers``, ``created``, ``reused``,
    ``shutdowns``) remain at top level and always describe the
    process pool.
    """
    from repro.sim.parallel import pool_stats as _stats

    return _stats(backend)


# -- telemetry accessors -------------------------------------------------------


def telemetry_enabled() -> bool:
    """Whether the telemetry subsystem records anything right now."""
    return _telemetry.enabled()


def metrics_snapshot() -> Dict:
    """A JSON-compatible copy of this process's metrics registry."""
    return _telemetry.snapshot()


def telemetry_summary() -> str:
    """The rendered cross-run summary (``telemetry summary`` output)."""
    from repro.telemetry import state

    return state.render_summary(state.read_state())


def flush_telemetry() -> bool:
    """Persist this process's metrics into the telemetry state file."""
    return _telemetry.flush()


# -- sweep service -------------------------------------------------------------


def sweep_service(**kwargs):
    """The running event loop's :class:`repro.serve.SweepService`.

    Must be called inside a running loop.  Keyword arguments
    (``workers``, ``backend``, ``store``, ``batch_size``) configure
    the service only when this loop creates it; afterwards the
    existing instance -- and its coalescing state -- is returned
    as-is.
    """
    from repro.serve import get_service

    return get_service(**kwargs)


async def submit_sweep(cells, *, workers: Optional[int] = 1,
                       backend: Optional[str] = None):
    """Submit a cell list to the loop's sweep service (non-blocking).

    ``cells`` are ``(workload, config, load_latency, scale)`` tuples.
    Returns a :class:`repro.serve.SweepJob`: iterate
    ``job.progress()`` for streamed events, ``await job.wait()`` for
    ordered results.  Identical in-flight cell *sets* coalesce into a
    single execution, and every batch lands in the memoized result
    store, so a re-submitted sweep is a pure cache read.
    """
    from repro.serve import submit_sweep as _submit

    return await _submit(cells, workers=workers, backend=backend)
