"""Span-based tracing with a Chrome-trace-compatible JSONL sink.

``with span("simulate", workload="doduc"):`` times a region, feeds the
duration into the metrics registry (histogram ``span.<name>.seconds``,
which is where the CLI's per-phase wall-time summary comes from), and
-- when a trace sink is active -- appends one *complete event* line to
a JSONL file.

Each line is a standalone JSON object in the Chrome ``traceEvents``
format (``ph: "X"`` complete events, microsecond ``ts``/``dur``,
``pid``/``tid``, span attributes under ``args``).  ``python -m repro
telemetry export --trace-in FILE`` wraps the lines into the
``{"traceEvents": [...]}`` array that ``chrome://tracing`` and the
Perfetto UI load directly; Perfetto also ingests the raw line
stream.  Workers in a sweep pool inherit ``REPRO_TRACE_FILE`` and
append to the same file -- every event carries its writer's pid, so
the viewer separates the tracks.

Span nesting is tracked per thread; every event records its parent
span's name under ``args._parent`` so flattened JSONL consumers can
rebuild the hierarchy without relying on timestamps.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Dict, IO, List, Optional

#: Environment variable naming the JSONL sink; unset disables tracing.
TRACE_FILE_ENV = "REPRO_TRACE_FILE"

#: Keys every trace event must carry (the JSONL schema; see
#: :func:`validate_trace_line`).
REQUIRED_EVENT_KEYS = ("name", "cat", "ph", "ts", "dur", "pid", "tid",
                       "args")

_local = threading.local()


def _span_stack() -> List[str]:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = []
        _local.stack = stack
    return stack


def current_span() -> Optional[str]:
    """The innermost active span name on this thread, if any."""
    stack = _span_stack()
    return stack[-1] if stack else None


class TraceSink:
    """An append-only JSONL event writer (one process, one handle)."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._lock = threading.Lock()
        self._fh: Optional[IO[str]] = None

    def _handle(self) -> IO[str]:
        if self._fh is None:
            self._fh = open(self.path, "a", encoding="utf-8")
        return self._fh

    def write_event(self, event: Dict) -> None:
        line = json.dumps(event, separators=(",", ":"), sort_keys=True)
        try:
            with self._lock:
                fh = self._handle()
                fh.write(line + "\n")
                fh.flush()
        except OSError:
            # A broken sink must never break a sweep.
            pass

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                try:
                    self._fh.close()
                except OSError:
                    pass
                self._fh = None


_sink: Optional[TraceSink] = None
_sink_path: Optional[str] = None
_sink_lock = threading.Lock()


def active_sink() -> Optional[TraceSink]:
    """The sink the environment selects, opened lazily per process.

    Re-resolved whenever ``REPRO_TRACE_FILE`` changes (tests flip it),
    and keyed by pid-independent state: forked pool workers inherit the
    parent's sink object but ``open(..., "a")`` happens lazily in the
    child, so each process owns its file handle.
    """
    global _sink, _sink_path
    path = os.environ.get(TRACE_FILE_ENV)
    if not path:
        if _sink is not None:
            with _sink_lock:
                if _sink is not None:
                    _sink.close()
                    _sink = None
                    _sink_path = None
        return None
    if _sink is None or _sink_path != path:
        with _sink_lock:
            if _sink is None or _sink_path != path:
                if _sink is not None:
                    _sink.close()
                _sink = TraceSink(path)
                _sink_path = path
    return _sink


#: ``span.<name>.seconds`` histogram objects cached per span name and
#: revalidated against the registry generation; a span opens and
#: closes once per simulation cell, so the locked name lookup it would
#: otherwise pay on every exit is measurable telemetry overhead.
_histograms: Dict[str, tuple] = {}


def _span_histogram(name: str):
    from repro import telemetry

    registry = telemetry.metrics()
    generation = registry.generation
    cached = _histograms.get(name)
    if cached is not None and cached[0] == generation:
        return cached[1]
    histogram = registry.histogram(
        f"span.{name}.seconds",
        help=f"wall time inside '{name}' spans",
    )
    _histograms[name] = (generation, histogram)
    return histogram


class span:
    """Time a region: metrics always, a JSONL trace event when sinked.

    ``with span("plan", cells=len(cells)) as args:`` yields the
    (possibly empty) ``args`` dict of the would-be event so callers
    can attach late attributes (``args["simulated"] = ...``).  A plain
    context-manager class rather than ``@contextmanager``: spans wrap
    individual simulation cells, and the generator machinery is a
    measurable share of the per-cell telemetry budget.
    """

    __slots__ = ("_name", "_args", "_enabled", "_wall_start", "_start")

    def __init__(self, name: str, **attrs):
        self._name = name
        self._args = attrs

    def __enter__(self):
        from repro import telemetry

        self._enabled = telemetry.enabled()
        if not self._enabled:
            self._args = {}
            return self._args
        stack = _span_stack()
        if stack:
            self._args["_parent"] = stack[-1]
        stack.append(self._name)
        self._wall_start = time.time()
        self._start = time.perf_counter()
        return self._args

    def __exit__(self, exc_type, exc, tb):
        if not self._enabled:
            return False
        duration = time.perf_counter() - self._start
        _span_stack().pop()
        _span_histogram(self._name).observe(duration)
        sink = active_sink()
        if sink is not None:
            sink.write_event({
                "name": self._name,
                "cat": "repro",
                "ph": "X",
                "ts": int(self._wall_start * 1e6),
                "dur": int(duration * 1e6),
                "pid": os.getpid(),
                "tid": threading.get_ident(),
                "args": self._args,
            })
        return False


# -- JSONL schema validation ---------------------------------------------------


def validate_trace_line(line: str) -> Dict:
    """Parse and validate one JSONL trace line; raises ``ValueError``."""
    event = json.loads(line)
    if not isinstance(event, dict):
        raise ValueError(f"event is not an object: {line[:80]!r}")
    for key in REQUIRED_EVENT_KEYS:
        if key not in event:
            raise ValueError(f"event missing {key!r}: {line[:80]!r}")
    if not isinstance(event["name"], str) or not event["name"]:
        raise ValueError("event name must be a non-empty string")
    if event["ph"] != "X":
        raise ValueError(f"unsupported phase {event['ph']!r} (want 'X')")
    for key in ("ts", "dur"):
        if not isinstance(event[key], (int, float)) or event[key] < 0:
            raise ValueError(f"event {key} must be a non-negative number")
    for key in ("pid", "tid"):
        if not isinstance(event[key], int):
            raise ValueError(f"event {key} must be an integer")
    if not isinstance(event["args"], dict):
        raise ValueError("event args must be an object")
    return event


def validate_trace_file(path) -> int:
    """Validate every line of a JSONL trace; returns the event count.

    Raises ``ValueError`` naming the first offending line.
    """
    events = 0
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            if not line.strip():
                continue
            try:
                validate_trace_line(line)
            except ValueError as exc:
                raise ValueError(f"{path}:{lineno}: {exc}") from None
            events += 1
    return events


def export_chrome_trace(jsonl_path, out_path) -> int:
    """Convert a JSONL event stream into a ``traceEvents`` JSON file.

    The output loads directly in ``chrome://tracing`` and the Perfetto
    UI.  Returns the number of events written.
    """
    events = []
    with open(jsonl_path, "r", encoding="utf-8") as fh:
        for line in fh:
            if line.strip():
                events.append(validate_trace_line(line))
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump({"traceEvents": events, "displayTimeUnit": "ms"}, fh)
        fh.write("\n")
    return len(events)
