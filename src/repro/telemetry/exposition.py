"""Prometheus-style text exposition of a metrics snapshot.

Renders the snapshot dicts produced by
:meth:`repro.telemetry.registry.MetricsRegistry.snapshot` in the
Prometheus text format (version 0.0.4): ``# TYPE`` lines, sanitized
metric names, ``_bucket``/``_sum``/``_count`` series with cumulative
``le`` labels for histograms.  A scrape endpoint can serve this
verbatim; ``python -m repro telemetry export`` writes it to a file or
stdout.
"""

from __future__ import annotations

import re
from typing import Dict, List

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def sanitize_name(name: str) -> str:
    """Map a dotted metric name onto the Prometheus grammar."""
    cleaned = _NAME_RE.sub("_", name)
    if cleaned and cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned or "_"


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def render_prometheus(snapshot: Dict, prefix: str = "repro_") -> str:
    """The snapshot as Prometheus exposition text."""
    lines: List[str] = []

    for name in sorted(snapshot.get("counters", {})):
        metric = prefix + sanitize_name(name)
        value = snapshot["counters"][name]
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_format_value(value)}")

    for name in sorted(snapshot.get("gauges", {})):
        metric = prefix + sanitize_name(name)
        value = snapshot["gauges"][name]
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(value)}")

    for name in sorted(snapshot.get("histograms", {})):
        metric = prefix + sanitize_name(name)
        data = snapshot["histograms"][name]
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for edge, count in zip(data["bounds"], data["counts"]):
            cumulative += count
            lines.append(
                f'{metric}_bucket{{le="{_format_value(edge)}"}} {cumulative}'
            )
        cumulative += data["counts"][len(data["bounds"])]
        lines.append(f'{metric}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{metric}_sum {_format_value(data['sum'])}")
        lines.append(f"{metric}_count {data['count']}")

    return "\n".join(lines) + ("\n" if lines else "")
