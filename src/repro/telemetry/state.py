"""On-disk telemetry state: how short-lived CLI runs leave a trail.

Every entry point in this repository is a fresh process (``python -m
repro.experiments fig5``, ``python -m repro sweep``), so purely
process-local metrics would evaporate before ``python -m repro
telemetry summary`` could read them.  This module persists the
process's final snapshot into a small JSON state file:

* ``last_run`` -- the most recent process's full snapshot (what
  ``summary`` leads with: a warm sweep re-run shows store hits equal to
  its cells and zero simulations *for that run*);
* ``cumulative`` -- every flushed snapshot merged together (counters
  add), surviving until ``telemetry reset``.

The file lives at ``$REPRO_TELEMETRY_DIR/telemetry.json``, falling
back to the result store's root (``$REPRO_CACHE_DIR`` or
``.repro-cache``) so one directory holds all sweep-engine state.
Writes are read-modify-write with an atomic replace, same as the
store's ``counters.json``; a lost update under concurrent runs skews
only advisory statistics.

Flushing is automatic: :mod:`repro.telemetry` registers an ``atexit``
hook in the process that first touches a metric.  Pool workers never
double-flush -- their deltas return to the parent over the result
channel, and multiprocessing children exit via ``os._exit`` without
running ``atexit`` hooks (the hook also pins the registering pid as a
belt-and-braces guard).
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.telemetry.registry import (
    merge_snapshots,
    snapshot_diff,
    snapshot_is_empty,
)

#: State file schema; bump on layout changes and old files are ignored.
STATE_SCHEMA = 1

#: Environment override for the state file's directory.
TELEMETRY_DIR_ENV = "REPRO_TELEMETRY_DIR"

_EMPTY: Dict = {"counters": {}, "gauges": {}, "histograms": {}}


def state_dir() -> Path:
    """The directory holding ``telemetry.json`` (see module docstring)."""
    for env in (TELEMETRY_DIR_ENV, "REPRO_CACHE_DIR"):
        override = os.environ.get(env)
        if override:
            return Path(override)
    return Path(".repro-cache")


def state_path() -> Path:
    return state_dir() / "telemetry.json"


def read_state(path: Optional[Path] = None) -> Dict:
    """The parsed state file, or an empty skeleton on any problem."""
    if path is None:
        path = state_path()
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
        if data.get("schema") != STATE_SCHEMA:
            raise ValueError("schema mismatch")
        return data
    except Exception:
        return {
            "schema": STATE_SCHEMA,
            "updated": None,
            "last_run": {"snapshot": dict(_EMPTY)},
            "cumulative": dict(_EMPTY),
        }


def write_state(state: Dict, path: Optional[Path] = None) -> bool:
    """Atomically persist the state dict; best-effort, returns success."""
    if path is None:
        path = state_path()
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(prefix=".tmp-telemetry-",
                                   suffix=".json", dir=str(path.parent))
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(state, fh)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return True
    except OSError:
        return False


def flush_snapshot(run_snapshot: Dict, delta: Dict,
                   path: Optional[Path] = None) -> bool:
    """Fold one process's activity into the state file.

    ``run_snapshot`` becomes (or extends) ``last_run``; ``delta`` -- the
    activity since this process's previous flush -- adds into
    ``cumulative``.
    """
    if snapshot_is_empty(delta) and snapshot_is_empty(run_snapshot):
        return False
    state = read_state(path)
    state["updated"] = time.time()
    state["last_run"] = {"pid": os.getpid(), "snapshot": run_snapshot}
    state["cumulative"] = merge_snapshots(state["cumulative"], delta)
    return write_state(state, path)


def reset_state(path: Optional[Path] = None) -> bool:
    """Delete the state file; returns True when something was removed."""
    if path is None:
        path = state_path()
    try:
        os.unlink(path)
        return True
    except OSError:
        return False


# -- summary rendering ---------------------------------------------------------


def _format_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f} s"
    return f"{seconds * 1e3:.1f} ms"


def render_snapshot_summary(snapshot: Dict, indent: str = "  ") -> List[str]:
    """Human-readable lines for one snapshot: phases, then counters."""
    lines: List[str] = []
    spans = {
        name[len("span."):-len(".seconds")]: data
        for name, data in sorted(snapshot.get("histograms", {}).items())
        if name.startswith("span.") and name.endswith(".seconds")
    }
    if spans:
        lines.append(f"{indent}phases (wall time):")
        width = max(len(name) for name in spans)
        for name, data in spans.items():
            count = data["count"]
            total = data["sum"]
            mean = total / count if count else 0.0
            lines.append(
                f"{indent}  {name:<{width}}  {count:>6} x  "
                f"{_format_seconds(total):>10} total  "
                f"(avg {_format_seconds(mean)})"
            )
    counters = snapshot.get("counters", {})
    if counters:
        lines.append(f"{indent}counters:")
        width = max(len(name) for name in counters)
        for name in sorted(counters):
            value = counters[name]
            shown = int(value) if float(value).is_integer() else value
            lines.append(f"{indent}  {name:<{width}}  {shown}")
    gauges = snapshot.get("gauges", {})
    if gauges:
        lines.append(f"{indent}gauges:")
        width = max(len(name) for name in gauges)
        for name in sorted(gauges):
            lines.append(f"{indent}  {name:<{width}}  {gauges[name]:.3f}")
    other_hists = {
        name: data
        for name, data in sorted(snapshot.get("histograms", {}).items())
        if not (name.startswith("span.") and name.endswith(".seconds"))
    }
    if other_hists:
        lines.append(f"{indent}distributions:")
        width = max(len(name) for name in other_hists)
        for name, data in other_hists.items():
            count = data["count"]
            mean = data["sum"] / count if count else 0.0
            lines.append(
                f"{indent}  {name:<{width}}  n={count}  mean={mean:.4g}  "
                f"sum={data['sum']:.4g}"
            )
    if not lines:
        lines.append(f"{indent}(no recorded activity)")
    return lines


def render_summary(state: Dict, path: Optional[Path] = None) -> str:
    """The ``python -m repro telemetry summary`` text."""
    if path is None:
        path = state_path()
    lines = [f"telemetry state at {path}"]
    updated = state.get("updated")
    if updated:
        age = max(0.0, time.time() - updated)
        lines[0] += f" (updated {age:.0f}s ago)"
    lines.append("")
    lines.append("last run:")
    lines.extend(
        render_snapshot_summary(state.get("last_run", {}).get("snapshot",
                                                              _EMPTY))
    )
    lines.append("")
    lines.append("cumulative (since last reset):")
    lines.extend(render_snapshot_summary(state.get("cumulative", _EMPTY)))
    return "\n".join(lines)
