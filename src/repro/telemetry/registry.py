"""Process-local metrics registry: counters, gauges, histograms.

The sweep engine's observability layer needs three metric kinds and
nothing more:

* **counters** -- monotonically increasing totals (cells simulated,
  store hits, instructions executed);
* **gauges** -- last-write-wins level readings (pool utilization of the
  most recent sweep);
* **histograms** -- fixed-boundary bucket counts plus a running sum
  (per-cell simulation seconds, pool group sizes, queue waits).

Everything is zero-dependency and thread-safe (one lock per registry;
the hot operations are a dict lookup and an integer add).  Cross-
*process* aggregation works by value, not by sharing: a worker takes a
:func:`MetricsRegistry.snapshot` before and after its task, sends the
:func:`snapshot_diff` back over the pool's result channel, and the
parent folds it in with :func:`MetricsRegistry.merge` -- so a parallel
sweep's metrics are exactly the sum of the equivalent serial runs (the
tests assert this).

Snapshots are plain JSON-compatible dicts, which makes them the single
interchange format for the pool, the on-disk telemetry state file, the
Prometheus exposition writer, and the ``BENCH_*.json`` embeds.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError

#: Default histogram boundaries for durations in seconds: micro-cells
#: through multi-minute experiment phases.
DURATION_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0, 300.0
)

#: Default histogram boundaries for small cardinalities (pool group
#: sizes, cells per plan).
SIZE_BUCKETS: Tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 512)


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "help", "_value", "_lock")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name} cannot decrease (inc {amount})"
            )
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A level reading; the last write wins, merges included."""

    __slots__ = ("name", "help", "_value", "_lock")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed-boundary bucket counts plus a running sum and count.

    ``bounds`` are the inclusive upper edges of the finite buckets; one
    implicit overflow bucket catches everything above the last edge.
    Boundaries are fixed at creation so that snapshots from different
    processes merge bucket-for-bucket.
    """

    __slots__ = ("name", "help", "bounds", "_counts", "_sum", "_count",
                 "_lock")

    def __init__(self, name: str, bounds: Sequence[float],
                 help: str = "") -> None:
        edges = tuple(float(b) for b in bounds)
        if not edges or list(edges) != sorted(set(edges)):
            raise ConfigurationError(
                f"histogram {name} needs strictly increasing bounds: {bounds}"
            )
        self.name = name
        self.help = help
        self.bounds = edges
        self._counts = [0] * (len(edges) + 1)
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        index = len(self.bounds)
        for i, edge in enumerate(self.bounds):
            if value <= edge:
                index = i
                break
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def counts(self) -> List[int]:
        return list(self._counts)

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0


class MetricsRegistry:
    """A named collection of metrics with snapshot/merge by value."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, object] = {}
        self._generation = 0

    @property
    def generation(self) -> int:
        """Bumped by :meth:`reset`.

        Hot instrumentation sites cache metric objects against this
        value (:class:`repro.telemetry.MetricHandles`) instead of
        paying a locked name lookup per emission; the bump is what
        keeps a cached handle from outliving its registration.
        """
        return self._generation

    # -- creation ------------------------------------------------------------

    def _get_or_create(self, name: str, kind, factory):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = factory()
                self._metrics[name] = metric
            elif not isinstance(metric, kind):
                raise ConfigurationError(
                    f"metric {name!r} already registered as "
                    f"{type(metric).__name__}, not {kind.__name__}"
                )
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(name, Counter,
                                   lambda: Counter(name, help))

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(name, Gauge, lambda: Gauge(name, help))

    def histogram(self, name: str, bounds: Optional[Sequence[float]] = None,
                  help: str = "") -> Histogram:
        chosen = DURATION_BUCKETS if bounds is None else bounds
        metric = self._get_or_create(
            name, Histogram, lambda: Histogram(name, chosen, help)
        )
        return metric

    # -- introspection -------------------------------------------------------

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._metrics)

    def get(self, name: str):
        """The metric registered under ``name``, or ``None``."""
        with self._lock:
            return self._metrics.get(name)

    def __len__(self) -> int:
        return len(self._metrics)

    # -- snapshot / merge ----------------------------------------------------

    def snapshot(self) -> Dict:
        """A JSON-compatible copy of every metric's current value."""
        counters: Dict[str, float] = {}
        gauges: Dict[str, float] = {}
        histograms: Dict[str, Dict] = {}
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            if isinstance(metric, Counter):
                counters[metric.name] = metric.value
            elif isinstance(metric, Gauge):
                gauges[metric.name] = metric.value
            elif isinstance(metric, Histogram):
                histograms[metric.name] = {
                    "bounds": list(metric.bounds),
                    "counts": metric.counts,
                    "sum": metric.sum,
                    "count": metric.count,
                }
        return {"counters": counters, "gauges": gauges,
                "histograms": histograms}

    def merge(self, snapshot: Dict) -> None:
        """Fold a snapshot (typically a worker delta) into this registry.

        Counters and histogram buckets add; gauges take the snapshot's
        value.  Histograms created here on demand adopt the snapshot's
        boundaries; an existing histogram with different boundaries is
        a configuration error.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, data in snapshot.get("histograms", {}).items():
            hist = self.histogram(name, bounds=data["bounds"])
            if list(hist.bounds) != [float(b) for b in data["bounds"]]:
                raise ConfigurationError(
                    f"histogram {name!r} boundary mismatch on merge"
                )
            with hist._lock:
                for i, count in enumerate(data["counts"]):
                    hist._counts[i] += count
                hist._sum += data["sum"]
                hist._count += data["count"]

    def reset(self) -> None:
        """Drop every metric (tests and ``telemetry reset`` use this)."""
        with self._lock:
            self._metrics.clear()
            self._generation += 1


def snapshot_diff(before: Dict, after: Dict) -> Dict:
    """The activity between two snapshots of the same registry.

    Counters and histograms subtract; gauges report ``after``'s value.
    Metrics absent from ``before`` (created in between) pass through
    unchanged.  Zero-activity metrics are dropped, so an empty diff is
    exactly ``{}``-shaped sections.
    """
    counters: Dict[str, float] = {}
    for name, value in after.get("counters", {}).items():
        delta = value - before.get("counters", {}).get(name, 0.0)
        if delta:
            counters[name] = delta
    gauges = dict(after.get("gauges", {}))
    histograms: Dict[str, Dict] = {}
    for name, data in after.get("histograms", {}).items():
        prior = before.get("histograms", {}).get(name)
        if prior is None:
            if data["count"]:
                histograms[name] = data
            continue
        count = data["count"] - prior["count"]
        if not count:
            continue
        histograms[name] = {
            "bounds": list(data["bounds"]),
            "counts": [a - b for a, b in zip(data["counts"],
                                             prior["counts"])],
            "sum": data["sum"] - prior["sum"],
            "count": count,
        }
    return {"counters": counters, "gauges": gauges,
            "histograms": histograms}


def snapshot_is_empty(snapshot: Dict) -> bool:
    """True when a snapshot records no activity at all."""
    return (not any(snapshot.get("counters", {}).values())
            and not snapshot.get("gauges", {})
            and not any(h["count"]
                        for h in snapshot.get("histograms", {}).values()))


def merge_snapshots(base: Dict, delta: Dict) -> Dict:
    """Pure-dict merge (counters/buckets add, gauges replace)."""
    registry = MetricsRegistry()
    registry.merge(base)
    registry.merge(delta)
    return registry.snapshot()
