"""Telemetry: metrics, spans, and tracing for the sweep engine.

The engine's observability layer, always-on-capable and zero-
dependency.  Three pieces:

* a process-local **metrics registry**
  (:mod:`repro.telemetry.registry`): counters, gauges, and fixed-bucket
  histograms, thread-safe in process and aggregated *by value* across
  the sweep worker pool;
* **span tracing** (:mod:`repro.telemetry.spans`): ``with
  span("simulate", ...):`` feeds per-phase wall-time histograms and,
  when ``REPRO_TRACE_FILE`` names a sink, a Chrome-trace/Perfetto
  compatible JSONL event stream;
* **surfacing**: an on-disk state file for ``python -m repro telemetry
  summary`` (:mod:`repro.telemetry.state`) and a Prometheus text
  writer (:mod:`repro.telemetry.exposition`).

Instrumentation rides the coarse layers only (one simulation cell, one
plan, one pool group, one experiment) -- never the per-instruction hot
loops -- so results stay bit-identical and the overhead is unmeasurable
at sweep granularity; ``tools/perfbench.py`` asserts the bound.

Environment knobs:

* ``REPRO_TELEMETRY=0`` disables everything (metric sites become a
  single boolean check);
* ``REPRO_TRACE_FILE=<path>`` streams span events as JSONL;
* ``REPRO_TELEMETRY_DIR`` relocates the summary state file (defaults
  to the result store's directory).

See ``docs/observability.md`` for the metric catalog and span names.
"""

from __future__ import annotations

import atexit
import os
from typing import Dict, Optional

from repro.telemetry.registry import (
    Counter,
    DURATION_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    SIZE_BUCKETS,
    merge_snapshots,
    snapshot_diff,
    snapshot_is_empty,
)
from repro.telemetry.spans import (
    TRACE_FILE_ENV,
    current_span,
    export_chrome_trace,
    span,
    validate_trace_file,
    validate_trace_line,
)
from repro.telemetry.exposition import render_prometheus
from repro.telemetry import state as _state

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricHandles",
    "DURATION_BUCKETS",
    "SIZE_BUCKETS",
    "enabled",
    "set_enabled",
    "metrics",
    "counter",
    "gauge",
    "histogram",
    "snapshot",
    "merge",
    "reset",
    "flush",
    "span",
    "current_span",
    "validate_trace_file",
    "validate_trace_line",
    "export_chrome_trace",
    "render_prometheus",
    "snapshot_diff",
    "snapshot_is_empty",
    "merge_snapshots",
    "TRACE_FILE_ENV",
    "TELEMETRY_ENV",
]

#: Environment variable switching the whole subsystem off.
TELEMETRY_ENV = "REPRO_TELEMETRY"

#: Programmatic override for :func:`enabled`; ``None`` defers to the
#: environment.  Tests and the ``ExperimentOptions.telemetry`` flag use
#: :func:`set_enabled`.
_enabled_override: Optional[bool] = None

_REGISTRY = MetricsRegistry()

#: What the registry looked like at the previous :func:`flush`, so
#: repeated flushes add each increment into the state file exactly once.
_last_flushed: Dict = _REGISTRY.snapshot()

#: The pid that owns the atexit hook (forked children must not flush).
_owner_pid = os.getpid()


def enabled() -> bool:
    """Whether telemetry records anything in this process."""
    if _enabled_override is not None:
        return _enabled_override
    return os.environ.get(TELEMETRY_ENV, "1") != "0"


def set_enabled(value: Optional[bool]) -> None:
    """Force telemetry on/off, or ``None`` to follow the environment."""
    global _enabled_override
    _enabled_override = value


def metrics() -> MetricsRegistry:
    """The process-global registry every instrumentation site uses."""
    return _REGISTRY


class MetricHandles:
    """A cached bundle of metric objects for one hot instrumentation site.

    Every registry lookup takes the registry lock; a site that emits a
    dozen metrics per simulation cell pays that lock-and-hash cost on
    each one, which is most of the telemetry overhead budget.  This
    caches whatever ``build(registry)`` returns and revalidates it
    against :attr:`MetricsRegistry.generation`, which ``reset()``
    bumps — so a cached handle can never keep feeding a metric that
    was dropped from the registry.
    """

    __slots__ = ("_build", "_generation", "_handles")

    def __init__(self, build):
        self._build = build
        self._generation = None
        self._handles = None

    def get(self):
        generation = _REGISTRY._generation
        if self._handles is None or self._generation != generation:
            self._handles = self._build(_REGISTRY)
            self._generation = generation
        return self._handles


def counter(name: str, help: str = "") -> Counter:
    return _REGISTRY.counter(name, help=help)


def gauge(name: str, help: str = "") -> Gauge:
    return _REGISTRY.gauge(name, help=help)


def histogram(name: str, bounds=None, help: str = "") -> Histogram:
    return _REGISTRY.histogram(name, bounds=bounds, help=help)


def snapshot() -> Dict:
    """A JSON-compatible copy of the global registry."""
    return _REGISTRY.snapshot()


def merge(delta: Dict) -> None:
    """Fold a worker delta into the global registry."""
    _REGISTRY.merge(delta)


def reset() -> None:
    """Drop every in-process metric and the flush baseline (tests)."""
    global _last_flushed
    _REGISTRY.reset()
    _last_flushed = _REGISTRY.snapshot()


def flush() -> bool:
    """Persist this process's activity into the telemetry state file.

    Safe to call repeatedly: each call writes only the activity since
    the previous one into the cumulative section, while ``last_run``
    always reflects the whole process.  Called automatically at
    interpreter exit.
    """
    global _last_flushed
    if not enabled():
        return False
    current = _REGISTRY.snapshot()
    delta = snapshot_diff(_last_flushed, current)
    if snapshot_is_empty(current):
        return False
    _last_flushed = current
    return _state.flush_snapshot(current, delta)


def _atexit_flush() -> None:
    if os.getpid() != _owner_pid:
        return
    try:
        flush()
    except Exception:
        # Telemetry must never turn a clean exit into a traceback.
        pass


atexit.register(_atexit_flush)
