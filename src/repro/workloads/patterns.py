"""Deterministic address-stream generators.

The paper drove its simulator with the actual data reference streams of
the SPEC92 benchmarks.  Those streams are proprietary, so the workload
models in :mod:`repro.workloads.spec92` synthesize streams with the
properties that drive the paper's results: spatial locality (stride and
element size relative to the 32-byte line), working-set size relative
to the 8KB cache, set-conflict structure (power-of-two array spacing),
and randomness (hash tables, allocators).

Every pattern is a pure, seeded generator: :meth:`AddressPattern.generate`
produces the first ``n`` byte addresses of the stream as a numpy int64
array, identically for identical seeds.  Patterns never hold mutable
state, so a stream can be re-expanded for any run length.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.errors import WorkloadError


class AddressPattern:
    """Interface: a reproducible infinite address sequence."""

    def generate(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """First ``n`` byte addresses of the stream (int64 array).

        ``rng`` supplies any randomness; callers seed it from the
        workload seed plus the stream id, so streams are independent
        but reproducible.
        """
        raise NotImplementedError

    def touched_bytes(self) -> int:
        """Approximate footprint of the stream in bytes (for docs)."""
        raise NotImplementedError


@dataclass(frozen=True)
class Strided(AddressPattern):
    """Sequential walk: ``base + (i * stride) % region``.

    With ``stride`` equal to the element size this is the classic
    unit-stride vector stream; a stride at or above the line size makes
    every access a primary miss when the region exceeds the cache.
    """

    base: int
    stride: int
    region: int

    def __post_init__(self) -> None:
        if self.stride <= 0:
            raise WorkloadError(f"stride must be positive: {self.stride}")
        if self.region < self.stride:
            raise WorkloadError("region smaller than one stride")

    def generate(self, n: int, rng: np.random.Generator) -> np.ndarray:
        idx = np.arange(n, dtype=np.int64)
        return self.base + (idx * self.stride) % self.region

    def touched_bytes(self) -> int:
        return self.region


@dataclass(frozen=True)
class Nested(AddressPattern):
    """Two-level walk, the shape of a 2-D array traversal.

    ``inner_count`` consecutive elements ``inner_stride`` bytes apart,
    then a jump of ``outer_stride``; the outer level wraps after
    ``outer_count`` groups.  A column-major walk of a FORTRAN array
    with a power-of-two leading dimension is ``inner_stride = row
    bytes`` (large, conflict-prone) -- the access shape behind su2cor's
    same-set clustering.
    """

    base: int
    inner_count: int
    inner_stride: int
    outer_count: int
    outer_stride: int

    def __post_init__(self) -> None:
        if self.inner_count < 1 or self.outer_count < 1:
            raise WorkloadError("nested pattern counts must be >= 1")

    def generate(self, n: int, rng: np.random.Generator) -> np.ndarray:
        idx = np.arange(n, dtype=np.int64)
        inner = idx % self.inner_count
        outer = (idx // self.inner_count) % self.outer_count
        return self.base + outer * self.outer_stride + inner * self.inner_stride

    def touched_bytes(self) -> int:
        return (
            (self.outer_count - 1) * self.outer_stride
            + (self.inner_count - 1) * self.inner_stride
            + self.inner_stride
        )


@dataclass(frozen=True)
class PointerChase(AddressPattern):
    """A random permutation walk over ``n_nodes`` fixed node slots.

    Each pass visits every node exactly once in a random but fixed
    order -- the address shape of traversing a linked structure whose
    nodes were allocated over time.  The *timing* dependence of a chase
    (next address needs the previous load's value) is expressed in the
    kernel via register dataflow; this pattern supplies the address
    sequence such a traversal touches.
    """

    base: int
    n_nodes: int
    node_stride: int

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise WorkloadError("pointer chase needs at least one node")
        if self.node_stride <= 0:
            raise WorkloadError("node stride must be positive")

    def generate(self, n: int, rng: np.random.Generator) -> np.ndarray:
        perm = rng.permutation(self.n_nodes).astype(np.int64)
        idx = np.arange(n, dtype=np.int64)
        return self.base + perm[idx % self.n_nodes] * self.node_stride

    def touched_bytes(self) -> int:
        return self.n_nodes * self.node_stride


@dataclass(frozen=True)
class RandomUniform(AddressPattern):
    """Independent uniform accesses over a region (hash-table shape)."""

    base: int
    region: int
    align: int = 8

    def __post_init__(self) -> None:
        if self.region < self.align:
            raise WorkloadError("region smaller than the alignment")

    def generate(self, n: int, rng: np.random.Generator) -> np.ndarray:
        slots = self.region // self.align
        picks = rng.integers(0, slots, size=n, dtype=np.int64)
        return self.base + picks * self.align

    def touched_bytes(self) -> int:
        return self.region


@dataclass(frozen=True)
class HotCold(AddressPattern):
    """Skewed accesses: a hot region hit with probability ``hot_fraction``.

    Models the hit-dominated references of codes with a resident
    working set plus occasional excursions (symbol tables, stacks).
    """

    base: int
    hot_region: int
    cold_region: int
    hot_fraction: float
    align: int = 8

    def __post_init__(self) -> None:
        if not 0.0 <= self.hot_fraction <= 1.0:
            raise WorkloadError("hot_fraction must lie in [0, 1]")
        if self.hot_region < self.align or self.cold_region < self.align:
            raise WorkloadError("regions smaller than the alignment")

    def generate(self, n: int, rng: np.random.Generator) -> np.ndarray:
        hot = rng.random(n) < self.hot_fraction
        hot_slots = self.hot_region // self.align
        cold_slots = self.cold_region // self.align
        picks = np.where(
            hot,
            rng.integers(0, hot_slots, size=n, dtype=np.int64),
            hot_slots + rng.integers(0, cold_slots, size=n, dtype=np.int64),
        )
        return self.base + picks * self.align

    def touched_bytes(self) -> int:
        return self.hot_region + self.cold_region


@dataclass(frozen=True)
class Zipfian(AddressPattern):
    """Skewed accesses with a power-law popularity distribution.

    Real symbol tables and hash workloads are not uniform: a few slots
    take most of the traffic.  Slot ``k`` (0-based, hottest first) is
    chosen with probability proportional to ``1 / (k + 1) ** alpha``.
    ``alpha = 0`` degenerates to uniform; common table skews sit near
    ``alpha = 1``.
    """

    base: int
    region: int
    alpha: float = 1.0
    align: int = 8

    def __post_init__(self) -> None:
        if self.region < self.align:
            raise WorkloadError("region smaller than the alignment")
        if self.alpha < 0:
            raise WorkloadError("alpha must be non-negative")

    def generate(self, n: int, rng: np.random.Generator) -> np.ndarray:
        slots = self.region // self.align
        ranks = np.arange(1, slots + 1, dtype=np.float64)
        weights = ranks ** -self.alpha
        weights /= weights.sum()
        picks = rng.choice(slots, size=n, p=weights)
        # Scatter the popularity ranks over the region deterministically
        # so the hottest slots are not physically adjacent (real tables
        # hash keys, they do not sort them by popularity).
        placement = np.random.default_rng(self.base & 0xFFFF).permutation(slots)
        return self.base + placement[picks].astype(np.int64) * self.align

    def touched_bytes(self) -> int:
        return self.region


@dataclass(frozen=True)
class Interleaved(AddressPattern):
    """Deterministic round-robin interleaving of several sub-patterns.

    Useful when a single kernel load alternates among data structures.
    """

    patterns: Tuple[AddressPattern, ...]

    def __post_init__(self) -> None:
        if not self.patterns:
            raise WorkloadError("Interleaved needs at least one pattern")

    def generate(self, n: int, rng: np.random.Generator) -> np.ndarray:
        k = len(self.patterns)
        per = -(-n // k)
        parts = [p.generate(per, rng) for p in self.patterns]
        out = np.empty(per * k, dtype=np.int64)
        for i, part in enumerate(parts):
            out[i::k] = part
        return out[:n]

    def touched_bytes(self) -> int:
        return sum(p.touched_bytes() for p in self.patterns)


def stack_pattern(base: int = 0x7F000000, frame: int = 512) -> AddressPattern:
    """The spill-area pattern: a tiny, hot, strided stack region.

    Spill stores and reloads land here; the region fits easily in any
    cache studied, so spill traffic mostly hits -- its cost is the
    extra instructions and occasional cold misses, matching the
    Figure 4 discussion.
    """
    return Strided(base=base, stride=8, region=frame)


def segment_base(index: int) -> int:
    """Non-overlapping 16MB virtual segments for stream placement.

    Each segment is additionally skewed by a different number of cache
    lines: without the skew every segment base would be a multiple of
    every studied cache size, making *all* streams alias to the same
    sets (the accidental-thrashing bug real power-of-two allocators
    exhibit).  Streams that must alias deliberately use
    :func:`aliasing_bases` instead.
    """
    if index < 0:
        raise WorkloadError("segment index must be non-negative")
    # The skew unit is chosen so that segment bases land on distinct
    # set ranges of BOTH studied caches: modulo 8KB it contributes
    # 1184 bytes (37 lines) per segment, modulo 64KB about 17.2KB.
    return 0x1000000 * (index + 1) + index * (16 * 1024 + 37 * 32)


def placed_base(index: int, set_offset: int = 0) -> int:
    """A segment base with an exact cache-set placement.

    Unlike :func:`segment_base` (which skews segments to avoid
    accidental aliasing), this returns a base that is a multiple of
    every studied cache size plus ``set_offset`` bytes, so a workload
    can lay out several small hot regions in *disjoint* set ranges of
    the baseline cache (e.g. one region at offset 0, the next at
    offset 4096).
    """
    if index < 0:
        raise WorkloadError("segment index must be non-negative")
    if set_offset < 0:
        raise WorkloadError("set offset must be non-negative")
    return 0x1000000 * (index + 1) + set_offset


def aliasing_bases(
    segment: int, count: int, cache_size: int = 8 * 1024, skew: int = 0
) -> Sequence[int]:
    """``count`` bases mapping to the same cache sets.

    Consecutive bases are ``cache_size`` (plus ``skew``) bytes apart,
    the classic power-of-two leading-dimension alignment that produces
    su2cor-style concurrent same-set misses on a direct-mapped cache.
    """
    base = segment_base(segment)
    return [base + i * (cache_size + skew) for i in range(count)]
