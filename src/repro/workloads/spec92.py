"""Models of the 18 SPEC92 benchmarks the paper simulates.

The real benchmarks (and the paper's object-code translation of them)
are not reproducible here, so each benchmark is modelled as a loop
kernel over synthetic address streams -- see DESIGN.md for the
substitution argument.  Each model is built from the dependence-shape
templates in :mod:`repro.workloads.kernels` and address patterns in
:mod:`repro.workloads.patterns`, with parameters chosen to match:

* the benchmark's loads/stores per instruction (Figure 4 where given),
* its baseline-cache MCPI under ``mc=0`` (Figure 13's first column),
* and, most importantly, the *shape* of its response to non-blocking
  hardware: the MCPI ratio columns of Figure 13.

``PAPER_FIG13`` embeds the paper's Figure 13 numbers; the calibration
test-bench and EXPERIMENTS.md compare our measured table against it.

Iteration counts are set so a scale-1.0 run executes roughly 60-120k
instructions; sweeps pass ``scale`` to grow or shrink runs.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.errors import WorkloadError
from repro.workloads.kernels import (
    chase_kernel,
    hash_kernel,
    mixed_kernel,
    reduction_kernel,
    serial_chain_kernel,
    stencil_kernel,
    vector_kernel,
)
from repro.workloads.patterns import (
    HotCold,
    Interleaved,
    Nested,
    PointerChase,
    RandomUniform,
    Strided,
    aliasing_bases,
    placed_base,
    segment_base,
)
from repro.workloads.workload import Workload

#: Cache size the conflict-structured models alias against (the
#: baseline 8KB cache; Section 5.1's 64KB cache de-aliases them, which
#: is physically accurate behaviour for power-of-two array spacings).
BASE_CACHE = 8 * 1024

#: Figure 13 of the paper: baseline MCPI per benchmark and policy
#: (load latency 10, 8KB DM cache, 32B lines, 16-cycle penalty).
PAPER_FIG13: Dict[str, Dict[str, float]] = {
    "alvinn": {"mc=0": 0.494, "mc=1": 0.398, "mc=2": 0.371, "fc=1": 0.394, "fc=2": 0.367, "no restrict": 0.365},
    "doduc": {"mc=0": 0.346, "mc=1": 0.245, "mc=2": 0.147, "fc=1": 0.197, "fc=2": 0.109, "no restrict": 0.084},
    "ear": {"mc=0": 0.094, "mc=1": 0.067, "mc=2": 0.050, "fc=1": 0.067, "fc=2": 0.050, "no restrict": 0.048},
    "fpppp": {"mc=0": 0.434, "mc=1": 0.234, "mc=2": 0.119, "fc=1": 0.197, "fc=2": 0.091, "no restrict": 0.062},
    "hydro2d": {"mc=0": 0.708, "mc=1": 0.466, "mc=2": 0.246, "fc=1": 0.457, "fc=2": 0.242, "no restrict": 0.189},
    "mdljdp2": {"mc=0": 0.314, "mc=1": 0.231, "mc=2": 0.193, "fc=1": 0.227, "fc=2": 0.190, "no restrict": 0.167},
    "mdljsp2": {"mc=0": 0.154, "mc=1": 0.088, "mc=2": 0.057, "fc=1": 0.070, "fc=2": 0.052, "no restrict": 0.046},
    "nasa7": {"mc=0": 1.865, "mc=1": 1.452, "mc=2": 0.753, "fc=1": 1.360, "fc=2": 0.670, "no restrict": 0.519},
    "ora": {"mc=0": 1.000, "mc=1": 1.000, "mc=2": 1.000, "fc=1": 1.000, "fc=2": 1.000, "no restrict": 1.000},
    "su2cor": {"mc=0": 1.266, "mc=1": 1.055, "mc=2": 0.437, "fc=1": 1.002, "fc=2": 0.394, "no restrict": 0.093},
    "swm256": {"mc=0": 0.297, "mc=1": 0.110, "mc=2": 0.070, "fc=1": 0.109, "fc=2": 0.069, "no restrict": 0.067},
    "spice2g6": {"mc=0": 1.092, "mc=1": 0.958, "mc=2": 0.903, "fc=1": 0.945, "fc=2": 0.896, "no restrict": 0.891},
    "tomcatv": {"mc=0": 1.140, "mc=1": 0.714, "mc=2": 0.310, "fc=1": 0.649, "fc=2": 0.219, "no restrict": 0.066},
    "wave5": {"mc=0": 0.277, "mc=1": 0.194, "mc=2": 0.132, "fc=1": 0.183, "fc=2": 0.126, "no restrict": 0.107},
    "compress": {"mc=0": 0.453, "mc=1": 0.354, "mc=2": 0.349, "fc=1": 0.351, "fc=2": 0.348, "no restrict": 0.348},
    "eqntott": {"mc=0": 0.108, "mc=1": 0.078, "mc=2": 0.073, "fc=1": 0.078, "fc=2": 0.073, "no restrict": 0.073},
    "espresso": {"mc=0": 0.209, "mc=1": 0.176, "mc=2": 0.170, "fc=1": 0.174, "fc=2": 0.170, "no restrict": 0.169},
    "xlisp": {"mc=0": 0.211, "mc=1": 0.185, "mc=2": 0.176, "fc=1": 0.181, "fc=2": 0.176, "no restrict": 0.176},
}

#: The five benchmarks the paper discusses in detail (Figure 4).
DETAILED_FIVE: Tuple[str, ...] = ("doduc", "eqntott", "su2cor", "tomcatv", "xlisp")

#: Figure 13's row order.
BENCHMARK_ORDER: Tuple[str, ...] = tuple(PAPER_FIG13)

_BIG = 4 * 1024 * 1024  # streaming regions far beyond any studied cache


def _make_tomcatv() -> Workload:
    """Vectorizable mesh relaxation: the paper's extreme streaming case.

    Six unit-stride row streams (two arrays, three mesh rows each, the
    stencil shape) -- every row is a distinct cache line stream, so
    misses cluster across *blocks* and multiple primary misses pay off
    enormously (Figure 13's 17x spread).  One row is read at two
    adjacent offsets, supplying the same-line secondary misses that
    give ``fc=`` organizations their edge over ``mc=1``.
    """
    kernel, roles = vector_kernel(
        "tomcatv", n_load_streams=6, loads_per_stream=1,
        n_store_streams=1, stores_per_stream=1,
        extra_flops=2, pad_chains=2, pad_depth=2,
    )
    row = 4096 + 64  # bytes per mesh row (skewed: real leading dims rarely alias)
    x = segment_base(0)
    y = segment_base(1)
    patterns = {
        roles["load0"]: Strided(x, 8, _BIG),            # X(i, j)
        roles["load1"]: Strided(x + 8, 8, _BIG),        # X(i+1, j)
        roles["load2"]: Strided(x + row + 16, 8, _BIG),  # X(i, j+1)
        roles["load3"]: Strided(y, 8, _BIG),            # Y(i, j)
        roles["load4"]: Strided(y + row + 16, 8, _BIG),  # Y(i, j+1)
        roles["load5"]: Strided(y + 2 * row + 8, 8, _BIG),
        roles["store0"]: Strided(segment_base(2), 8, _BIG),
    }
    return Workload(
        name="tomcatv", kernel=kernel, patterns=patterns,
        iterations=4000, max_unroll=16, software_pipeline=True, is_fp=True,
        description="2-D mesh relaxation; six unit-stride row streams",
    )

def _make_su2cor() -> Workload:
    """Quantum-physics kernels with power-of-two array aliasing.

    Two of the four streamed arrays sit exactly one cache size apart,
    so on the baseline direct-mapped cache they thrash the same sets
    *and* want concurrent fetches to one set -- the behaviour behind
    Figure 15's ``fs=`` study.  The misses come in same-copy pairs, so
    ``mc=2`` is the big step (Figure 13: 1.055 -> 0.437).
    """
    kernel, roles = reduction_kernel(
        "su2cor", n_load_streams=4, loads_per_stream=1,
        stores_per_iteration=2, pad_chains=6, pad_depth=3,
    )
    alias_a, alias_b = aliasing_bases(0, 2, cache_size=BASE_CACHE)
    patterns = {
        roles["load0"]: Strided(alias_a, 32, _BIG),
        roles["load1"]: Strided(alias_b, 32, _BIG),
        roles["load2"]: Strided(segment_base(1), 8, _BIG),
        roles["load3"]: HotCold(placed_base(2, 0), 2048, 512 * 1024, 0.95),
        roles["store"]: Strided(segment_base(3), 8, _BIG),
    }
    return Workload(
        name="su2cor", kernel=kernel, patterns=patterns,
        iterations=4000, max_unroll=12, is_fp=True,
        description="inner products over arrays with power-of-two aliasing",
    )

def _make_doduc() -> Workload:
    """Monte-Carlo nuclear reactor model: moderate, bursty miss traffic.

    Two 4-byte data streams read in adjacent-element pairs plus a hot
    working set.  Stream 0's pairs are 4 bytes apart (the same 8-byte
    word: the Figure 14 sub-block granularity hazard); stream 1's pairs
    are 8 bytes apart (they split across 16-byte lines half the time:
    the Figure 17 line-size effect).  Both streams loop over 32KB
    working sets, so a 64KB cache absorbs them (Figure 16) while the
    8KB baseline streams through.
    """
    kernel, roles = mixed_kernel(
        "doduc", stream_loads=4, stream_width=4, hot_loads=2,
        chain_depth=2, stores_per_iteration=1, pad_chains=11, pad_depth=2,
    )
    patterns = {
        # Pairs (8k, 8k+4): both halves of one 8-byte word.
        roles["stream0"]: Nested(segment_base(0), 2, 4, 2048, 8),
        # Pairs (16k+12, 16k+20): same 32B line half the time, never
        # the same 16B line (the Figure 17 lever).
        roles["stream1"]: Nested(segment_base(1) + 12, 2, 8, 1024, 16),
        roles["hot"]: HotCold(placed_base(2, 0), 2048, 256 * 1024, 0.98),
        roles["out"]: HotCold(placed_base(3, 2048), 2048, 256 * 1024, 0.95),
    }
    return Workload(
        name="doduc", kernel=kernel, patterns=patterns,
        iterations=12000, max_unroll=8, is_fp=True,
        description="paired 4-byte reads over 16KB working sets",
    )


def _make_xlisp() -> Workload:
    """Lisp interpreter: a pointer chase over a heap that self-aliases.

    The chase region is slightly larger than the baseline cache, so the
    direct-mapped cache suffers self-conflict misses that full
    associativity removes (Figure 10 cuts xlisp's MCPI 2-3x); the
    chase's serial dependence means extra MSHRs barely help (Figure 13
    ratios ~1).  Store traffic is heavy, as in the real interpreter's
    allocator, but write-around stores never stall.
    """
    kernel, roles = chase_kernel(
        "xlisp", n_chains=1, work_per_load=3, stores_per_iteration=2,
        aux_loads=1, pad_chains=1, pad_depth=2,
    )
    patterns = {
        # The main heap fits the cache, but a hot allocation region
        # sits exactly one cache size above its first sets: the chase
        # alternates between them, so a direct-mapped cache conflicts
        # where a fully associative one does not (Figure 10).
        roles["chase0"]: Interleaved((
            PointerChase(placed_base(0, 0), 96, 64),
            PointerChase(placed_base(0, 0) + BASE_CACHE, 12, 64),
        )),
        roles["aux"]: HotCold(placed_base(1, 6144), 1024, 64 * 1024, 0.98),
        roles["store"]: HotCold(placed_base(2, 7168), 1024, 64 * 1024, 0.9),
    }
    return Workload(
        name="xlisp", kernel=kernel, patterns=patterns,
        iterations=7000, max_unroll=1, is_fp=False,
        description="self-aliasing pointer chase with heavy stores",
    )

def _make_eqntott() -> Workload:
    """Boolean equation translator: short loads, dependence-bound.

    Unit-stride 2-byte loads (a 6% miss rate) whose addresses are
    computed a couple of instructions earlier; structural stalls are
    negligible (<1% of MCPI, Section 4).
    """
    kernel, roles = hash_kernel(
        "eqntott", n_probes=2, addr_depth=2, work_depth=3,
        stores_per_iteration=1, load_width=2, pad_chains=1, pad_depth=1,
    )
    patterns = {
        roles["table"]: Strided(segment_base(0), 2, _BIG),
        roles["store"]: HotCold(placed_base(1, 0), 2048, 32 * 1024, 0.95),
    }
    return Workload(
        name="eqntott", kernel=kernel, patterns=patterns,
        iterations=6000, max_unroll=2, is_fp=False,
        description="unit-stride halfword scans with address-generation limits",
    )

def _make_ora() -> Workload:
    """Ray tracing through an optical system: fully serial misses.

    One load per 16 instructions, every load a miss, and the next
    address depends on the end of the compute chain: no organization
    overlaps anything, so MCPI is identical (1.0) across the whole
    hardware spectrum, exactly as Figure 13 reports.
    """
    kernel, roles = serial_chain_kernel("ora", compute_depth=13)
    patterns = {
        roles["chain"]: Strided(segment_base(0), 64, _BIG),
    }
    return Workload(
        name="ora", kernel=kernel, patterns=patterns,
        iterations=6000, max_unroll=1, is_fp=True,
        description="serial dependent misses; non-blocking hardware is moot",
    )


def _make_compress() -> Workload:
    """LZW compression: hash-table probes gated by address generation."""
    kernel, roles = hash_kernel(
        "compress", n_probes=1, addr_depth=2, work_depth=5,
        stores_per_iteration=1, pad_chains=1, pad_depth=2,
    )
    patterns = {
        roles["table"]: RandomUniform(segment_base(0), 12 * 1024),
        roles["store"]: HotCold(placed_base(1, 0), 2048, 64 * 1024, 0.9),
    }
    return Workload(
        name="compress", kernel=kernel, patterns=patterns,
        iterations=6000, max_unroll=2, is_fp=False,
        description="random hash-table probes; hit-under-miss suffices",
    )

def _make_espresso() -> Workload:
    """Logic minimization: hit-dominated cube scans."""
    kernel, roles = hash_kernel(
        "espresso", n_probes=2, addr_depth=2, work_depth=3,
        stores_per_iteration=1, load_width=4, pad_chains=1, pad_depth=2,
    )
    patterns = {
        roles["table"]: HotCold(placed_base(0, 0), 4096, 512 * 1024, 0.94),
        roles["store"]: HotCold(placed_base(1, 4096), 2048, 32 * 1024, 0.95),
    }
    return Workload(
        name="espresso", kernel=kernel, patterns=patterns,
        iterations=6000, max_unroll=2, is_fp=False,
        description="mostly-resident working set with occasional excursions",
    )

def _make_alvinn() -> Workload:
    """Neural-net training: one big weight stream plus hot activations.

    Misses come singly from the weight stream and the forward pass is
    dependence-bound (each layer feeds the next), so only a few cycles
    of each miss can be hidden and everything past ``mc=1`` is nearly
    flat -- the 1.4/1.1/1.0 ratio shape of Figure 13.
    """
    kernel, roles = vector_kernel(
        "alvinn", n_load_streams=2, loads_per_stream=1, load_width=4,
        n_store_streams=1, stores_per_stream=1, extra_flops=4,
        pad_chains=1, pad_depth=2,
    )
    patterns = {
        roles["load0"]: Strided(segment_base(0), 10, _BIG),
        roles["load1"]: HotCold(placed_base(1, 0), 1024, 128 * 1024, 0.98),
        roles["store0"]: HotCold(placed_base(2, 1024), 1024, 64 * 1024, 0.97),
    }
    return Workload(
        name="alvinn", kernel=kernel, patterns=patterns,
        iterations=7000, max_unroll=1, is_fp=True,
        description="single weight stream; dependence-bound forward pass",
    )

def _make_ear() -> Workload:
    """Ear model (FFT-ish): small resident working set, low MCPI.

    The hot regions are laid out in disjoint set ranges (placed_base),
    as a tuned signal-processing code's buffers would be, so the only
    misses are the occasional excursions.
    """
    kernel, roles = vector_kernel(
        "ear", n_load_streams=2, loads_per_stream=1, load_width=8,
        n_store_streams=1, stores_per_stream=1, extra_flops=3,
        pad_chains=2, pad_depth=2,
    )
    patterns = {
        roles["load0"]: HotCold(placed_base(0, 0), 3072, 256 * 1024, 0.988),
        roles["load1"]: HotCold(placed_base(1, 3072), 3072, 256 * 1024, 0.988),
        roles["store0"]: HotCold(placed_base(2, 6144), 2048, 64 * 1024, 0.97),
    }
    return Workload(
        name="ear", kernel=kernel, patterns=patterns,
        iterations=7000, max_unroll=8, is_fp=True,
        description="hit-dominated signal processing",
    )

def _make_fpppp() -> Workload:
    """Quantum chemistry: huge basic blocks, highly overlappable misses.

    Two streams read in adjacent-element pairs (same-line secondary
    misses -> ``fc=1`` beats ``mc=1``) inside a compute-dense body;
    with deep unrolling nearly all latency hides, giving the 7.1x
    ``mc=0`` ratio of Figure 13.
    """
    kernel, roles = vector_kernel(
        "fpppp", n_load_streams=4, loads_per_stream=1, load_width=8,
        n_store_streams=1, stores_per_stream=1, extra_flops=4,
        pad_chains=3, pad_depth=3,
    )
    patterns = {
        roles["load0"]: Strided(segment_base(0), 8, _BIG),
        roles["load1"]: Strided(segment_base(0) + 8, 8, _BIG),
        roles["load2"]: Strided(segment_base(1), 8, _BIG),
        roles["load3"]: Strided(segment_base(2), 8, _BIG),
        roles["store0"]: HotCold(placed_base(3, 0), 2048, 64 * 1024, 0.95),
    }
    return Workload(
        name="fpppp", kernel=kernel, patterns=patterns,
        iterations=4000, max_unroll=16, software_pipeline=True, is_fp=True,
        description="compute-dense body with paired stream reads",
    )

def _make_hydro2d() -> Workload:
    """Hydrodynamics stencil: four distinct row streams.

    Every miss is to a distinct line (rows are separate streams), and
    the streams cross line boundaries on the same iterations, so misses
    cluster in same-copy groups: ``mc=2`` and ``fc=2`` are the big
    steps while ``fc=1`` buys almost nothing over ``mc=1``, matching
    hydro2d's Figure 13 row.
    """
    kernel, roles = vector_kernel(
        "hydro2d", n_load_streams=4, loads_per_stream=1, load_width=8,
        n_store_streams=1, stores_per_stream=1, extra_flops=3,
        pad_chains=3, pad_depth=2,
    )
    row = 4096
    patterns = {
        roles["load0"]: Strided(segment_base(0), 8, _BIG),
        roles["load1"]: Strided(segment_base(0) + row + 16, 8, _BIG),
        roles["load2"]: Strided(segment_base(1), 8, _BIG),
        roles["load3"]: Strided(segment_base(1) + row + 16, 8, _BIG),
        roles["store0"]: Strided(segment_base(2), 8, _BIG),
    }
    return Workload(
        name="hydro2d", kernel=kernel, patterns=patterns,
        iterations=5000, max_unroll=12, is_fp=True,
        description="Navier-Stokes stencil over distinct row streams",
    )

def _make_mdljdp2() -> Workload:
    """Molecular dynamics (double precision): neighbour-list gathers."""
    kernel, roles = vector_kernel(
        "mdljdp2", n_load_streams=2, loads_per_stream=1, load_width=8,
        n_store_streams=1, stores_per_stream=1, extra_flops=7,
        pad_chains=0, pad_depth=1,
    )
    patterns = {
        roles["load0"]: HotCold(placed_base(0, 0), 4096, 256 * 1024, 0.90),
        roles["load1"]: HotCold(placed_base(1, 4096), 2048, 128 * 1024, 0.98),
        roles["store0"]: HotCold(placed_base(2, 6144), 2048, 64 * 1024, 0.96),
    }
    return Workload(
        name="mdljdp2", kernel=kernel, patterns=patterns,
        iterations=6500, max_unroll=2, is_fp=True,
        description="random particle gathers with a hot core",
    )

def _make_mdljsp2() -> Workload:
    """Molecular dynamics (single precision): lighter miss traffic.

    4-byte coordinates read pairwise from one stream: the same-line
    pairs give ``fc=1`` its visible edge over ``mc=1`` (0.070 vs 0.088
    in Figure 13).
    """
    kernel, roles = vector_kernel(
        "mdljsp2", n_load_streams=2, loads_per_stream=1, load_width=4,
        n_store_streams=1, stores_per_stream=1, extra_flops=6,
        pad_chains=2, pad_depth=3,
    )
    patterns = {
        roles["load0"]: Strided(segment_base(0), 4, _BIG),
        roles["load1"]: HotCold(placed_base(1, 0), 2048, 128 * 1024, 0.99),
        roles["store0"]: HotCold(placed_base(2, 2048), 2048, 64 * 1024, 0.97),
    }
    return Workload(
        name="mdljsp2", kernel=kernel, patterns=patterns,
        iterations=6500, max_unroll=8, is_fp=True,
        description="4-byte streaming with a mostly-hot working set",
    )

def _make_nasa7() -> Workload:
    """NASA kernels: matrix walks with terrible strides.

    A column-major walk whose inner stride exceeds the line size makes
    every access a primary miss on top of unit-stride streams -- the
    highest MCPI of the numeric set, and misses too frequent for even
    the unrestricted organization to hide fully (Figure 13: 0.519
    residual).
    """
    kernel, roles = vector_kernel(
        "nasa7", n_load_streams=3, loads_per_stream=1, load_width=8,
        n_store_streams=1, stores_per_stream=1, extra_flops=1,
        pad_chains=0, pad_depth=1,
    )
    patterns = {
        roles["load0"]: Nested(segment_base(0), 64, 2048 + 32, 256, 8),
        roles["load1"]: Strided(segment_base(1), 8, _BIG),
        roles["load2"]: Strided(segment_base(2), 8, _BIG),
        roles["store0"]: Strided(segment_base(3), 8, _BIG),
    }
    return Workload(
        name="nasa7", kernel=kernel, patterns=patterns,
        iterations=6000, max_unroll=4, is_fp=True,
        description="large-stride matrix walks plus streaming",
    )

def _make_spice2g6() -> Workload:
    """Circuit simulation: sparse-matrix indirection, serial misses."""
    kernel, roles = hash_kernel(
        "spice2g6", n_probes=1, addr_depth=1, work_depth=4,
        stores_per_iteration=1, pad_chains=1, pad_depth=2,
    )
    patterns = {
        roles["table"]: RandomUniform(segment_base(0), 64 * 1024),
        roles["store"]: HotCold(placed_base(1, 0), 2048, 64 * 1024, 0.9),
    }
    return Workload(
        name="spice2g6", kernel=kernel, patterns=patterns,
        iterations=5000, max_unroll=2, is_fp=True,
        description="sparse indirection; misses serialized by dependences",
    )

def _make_swm256() -> Workload:
    """Shallow water model: modest streaming, near-total overlap.

    One unit-stride stream inside a compute-dense body: misses are far
    apart and almost fully hidden by hit-under-miss alone (Figure 13:
    ``mc=1`` already within 1.6x of unrestricted).
    """
    kernel, roles = vector_kernel(
        "swm256", n_load_streams=2, loads_per_stream=1, load_width=8,
        n_store_streams=1, stores_per_stream=1, extra_flops=6,
        pad_chains=3, pad_depth=2,
    )
    patterns = {
        roles["load0"]: Strided(segment_base(0), 8, _BIG),
        roles["load1"]: HotCold(placed_base(1, 0), 2048, 256 * 1024, 0.98),
        roles["store0"]: Strided(segment_base(2), 8, _BIG),
    }
    return Workload(
        name="swm256", kernel=kernel, patterns=patterns,
        iterations=6000, max_unroll=12, software_pipeline=True, is_fp=True,
        description="stencil streaming diluted by computation",
    )

def _make_wave5() -> Workload:
    """Plasma physics: streaming field arrays plus particle gathers."""
    kernel, roles = vector_kernel(
        "wave5", n_load_streams=3, loads_per_stream=1, load_width=8,
        n_store_streams=1, stores_per_stream=1, extra_flops=5,
        pad_chains=3, pad_depth=3,
    )
    patterns = {
        roles["load0"]: Strided(segment_base(0), 8, _BIG),
        roles["load1"]: HotCold(placed_base(1, 4096), 2048, 128 * 1024, 0.96),
        roles["load2"]: HotCold(placed_base(2, 0), 2048, 128 * 1024, 0.98),
        roles["store0"]: HotCold(placed_base(3, 2048), 2048, 64 * 1024, 0.95),
    }
    return Workload(
        name="wave5", kernel=kernel, patterns=patterns,
        iterations=6000, max_unroll=4, is_fp=True,
        description="field streaming plus particle gathers",
    )

_FACTORIES: Dict[str, Callable[[], Workload]] = {
    "alvinn": _make_alvinn,
    "doduc": _make_doduc,
    "ear": _make_ear,
    "fpppp": _make_fpppp,
    "hydro2d": _make_hydro2d,
    "mdljdp2": _make_mdljdp2,
    "mdljsp2": _make_mdljsp2,
    "nasa7": _make_nasa7,
    "ora": _make_ora,
    "su2cor": _make_su2cor,
    "swm256": _make_swm256,
    "spice2g6": _make_spice2g6,
    "tomcatv": _make_tomcatv,
    "wave5": _make_wave5,
    "compress": _make_compress,
    "eqntott": _make_eqntott,
    "espresso": _make_espresso,
    "xlisp": _make_xlisp,
}

_INSTANCES: Dict[str, Workload] = {}
_CUSTOM: Dict[str, Workload] = {}


def benchmark_names() -> List[str]:
    """All 18 benchmark names in Figure 13 order, plus custom models."""
    return list(BENCHMARK_ORDER) + sorted(_CUSTOM)


def register_workload(workload: Workload, replace: bool = False) -> None:
    """Make a user-built workload addressable by name.

    Registered workloads resolve through :func:`get_benchmark`, so the
    CLI (``python -m repro simulate <name>``), the sweep harness, and
    the per-benchmark report all accept them.  SPEC92 model names are
    reserved; re-registering a custom name requires ``replace=True``.
    """
    name = workload.name
    if name in _FACTORIES:
        raise WorkloadError(
            f"'{name}' is a built-in SPEC92 model and cannot be replaced"
        )
    if name in _CUSTOM and not replace:
        raise WorkloadError(
            f"a workload named '{name}' is already registered "
            f"(pass replace=True to overwrite)"
        )
    _CUSTOM[name] = workload


def unregister_workload(name: str) -> None:
    """Remove a previously registered custom workload (tests use this)."""
    _CUSTOM.pop(name, None)


def get_benchmark(name: str) -> Workload:
    """The (cached) workload model for ``name``.

    Caching matters: the simulator's compile/trace caches key on the
    kernel object, so repeated sweeps over the same benchmark reuse
    schedules.  Custom workloads registered with
    :func:`register_workload` resolve here too.
    """
    if name in _CUSTOM:
        return _CUSTOM[name]
    try:
        factory = _FACTORIES[name]
    except KeyError:
        known = ", ".join(list(_FACTORIES) + sorted(_CUSTOM))
        raise WorkloadError(
            f"unknown benchmark '{name}'; known: {known}"
        ) from None
    workload = _INSTANCES.get(name)
    if workload is None:
        workload = factory()
        _INSTANCES[name] = workload
    return workload


def all_benchmarks() -> List[Workload]:
    """All 18 models, Figure 13 order."""
    return [get_benchmark(name) for name in BENCHMARK_ORDER]


def detailed_benchmarks() -> List[Workload]:
    """The five benchmarks the paper examines in detail."""
    return [get_benchmark(name) for name in DETAILED_FIVE]
