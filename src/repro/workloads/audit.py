"""Workload audits: what a model looks like before simulating it.

Calibrating the SPEC92 models (and building new workloads) needs quick
answers to structural questions: how many loads/stores per instruction
does the compiled body have, what does each stream's footprint look
like against a cache geometry, and roughly what miss rate should the
baseline cache see?  This module computes those analytically (plus one
cheap measured number), so model changes can be sanity-checked without
a full sweep.

The miss-rate estimate is deliberately first-order -- unit-stride
streams miss once per line, random accesses miss by footprint ratio --
and is reported next to a short *measured* rate so disagreements jump
out (they usually indicate set conflicts the estimate cannot see).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cache.geometry import CacheGeometry
from repro.cpu.isa import OpClass
from repro.workloads.patterns import (
    AddressPattern,
    HotCold,
    Interleaved,
    Nested,
    PointerChase,
    RandomUniform,
    Strided,
)
from repro.workloads.workload import Workload


@dataclass(frozen=True)
class StreamAudit:
    """Static profile of one address stream in a workload."""

    stream: int
    pattern: str
    footprint_bytes: int
    loads_per_body: int
    stores_per_body: int
    #: First-order baseline miss-rate estimate for this stream's loads.
    estimated_miss_rate: Optional[float]

    @property
    def fits_cache(self) -> bool:
        """Whether the footprint fits the baseline 8KB cache."""
        return self.footprint_bytes <= 8 * 1024


@dataclass(frozen=True)
class WorkloadAudit:
    """Structural summary of a compiled workload."""

    workload: str
    load_latency: int
    unroll_factor: int
    body_instructions: int
    loads_per_instruction: float
    stores_per_instruction: float
    streams: List[StreamAudit]
    #: Weighted first-order miss-rate estimate over all load streams.
    estimated_miss_rate: Optional[float]
    #: Short-run measured baseline miss rate (blocking cache).
    measured_miss_rate: float

    def describe(self) -> str:
        lines = [
            f"workload {self.workload} (latency {self.load_latency}, "
            f"unroll {self.unroll_factor})",
            f"  body: {self.body_instructions} instrs, "
            f"{self.loads_per_instruction:.3f} loads/instr, "
            f"{self.stores_per_instruction:.3f} stores/instr",
        ]
        for stream in self.streams:
            est = ("-" if stream.estimated_miss_rate is None
                   else f"{100 * stream.estimated_miss_rate:.1f}%")
            lines.append(
                f"  stream {stream.stream}: {stream.pattern:14s} "
                f"{stream.footprint_bytes:>9d}B  "
                f"{stream.loads_per_body}L/{stream.stores_per_body}S "
                f"per body, est mr {est}"
            )
        est = ("-" if self.estimated_miss_rate is None
               else f"{100 * self.estimated_miss_rate:.1f}%")
        lines.append(
            f"  load miss rate: estimated {est}, "
            f"measured {100 * self.measured_miss_rate:.1f}%"
        )
        return "\n".join(lines)


def _estimate_stream_miss_rate(
    pattern: AddressPattern, geometry: CacheGeometry
) -> Optional[float]:
    """First-order per-load miss-rate estimate for one pattern.

    Ignores inter-stream conflicts and warmup; ``None`` when the
    pattern kind has no simple closed form.
    """
    line = geometry.line_size
    capacity = geometry.size
    if isinstance(pattern, Strided):
        if pattern.region <= capacity:
            return 0.0  # resident after the first pass
        return min(1.0, pattern.stride / line)
    if isinstance(pattern, Nested):
        if pattern.touched_bytes() <= capacity:
            return 0.0
        inner = min(1.0, abs(pattern.inner_stride) / line)
        return inner  # the inner walk dominates
    if isinstance(pattern, PointerChase):
        footprint = pattern.touched_bytes()
        if footprint <= capacity:
            return 0.0
        return min(1.0, (footprint - capacity) / footprint)
    if isinstance(pattern, RandomUniform):
        footprint = pattern.region
        if footprint <= capacity:
            return 0.0
        return min(1.0, (footprint - capacity) / footprint)
    if isinstance(pattern, HotCold):
        cold = 1.0 - pattern.hot_fraction
        cold_mr = _estimate_stream_miss_rate(
            RandomUniform(pattern.base, max(pattern.cold_region,
                                            pattern.align)),
            geometry,
        ) or 0.0
        # Hot accesses mostly hit; cold accesses miss by footprint.
        return cold * max(cold_mr, 0.5)
    if isinstance(pattern, Interleaved):
        parts = [
            _estimate_stream_miss_rate(sub, geometry)
            for sub in pattern.patterns
        ]
        known = [p for p in parts if p is not None]
        if not known:
            return None
        return sum(known) / len(known)
    return None


def audit_workload(
    workload: Workload,
    load_latency: int = 10,
    geometry: Optional[CacheGeometry] = None,
    measure_scale: float = 0.05,
) -> WorkloadAudit:
    """Profile ``workload`` statically plus one cheap measured point."""
    # Imported here: the sim layer imports the workloads package, so a
    # module-level import would be circular.
    from repro.sim.config import baseline_config
    from repro.sim.simulator import compile_workload, simulate

    if geometry is None:
        geometry = CacheGeometry()
    compiled = compile_workload(workload, load_latency)

    loads_per_stream: Dict[int, int] = {}
    stores_per_stream: Dict[int, int] = {}
    for instr in compiled.instructions:
        if instr.op is OpClass.LOAD:
            loads_per_stream[instr.stream] = (
                loads_per_stream.get(instr.stream, 0) + 1
            )
        elif instr.op is OpClass.STORE:
            stores_per_stream[instr.stream] = (
                stores_per_stream.get(instr.stream, 0) + 1
            )

    streams: List[StreamAudit] = []
    weighted = 0.0
    weight_total = 0
    estimable = True
    for sid in range(workload.kernel.num_streams):
        pattern = workload.patterns[sid]
        estimate = _estimate_stream_miss_rate(pattern, geometry)
        loads = loads_per_stream.get(sid, 0)
        if loads:
            if estimate is None:
                estimable = False
            else:
                weighted += loads * estimate
                weight_total += loads
        streams.append(StreamAudit(
            stream=sid,
            pattern=type(pattern).__name__,
            footprint_bytes=pattern.touched_bytes(),
            loads_per_body=loads,
            stores_per_body=stores_per_stream.get(sid, 0),
            estimated_miss_rate=estimate,
        ))

    estimated = (
        weighted / weight_total if (estimable and weight_total) else None
    )

    from repro.core.policies import blocking_cache

    measured = simulate(
        workload, baseline_config(blocking_cache()),
        load_latency=load_latency, scale=measure_scale,
    ).miss.load_miss_rate

    n = compiled.num_instructions
    return WorkloadAudit(
        workload=workload.name,
        load_latency=load_latency,
        unroll_factor=compiled.unroll_factor,
        body_instructions=n,
        loads_per_instruction=compiled.num_loads / n,
        stores_per_instruction=compiled.num_stores / n,
        streams=streams,
        estimated_miss_rate=estimated,
        measured_miss_rate=measured,
    )
