"""Kernel templates: the dependence shapes behind the SPEC92 models.

Each template builds a :class:`repro.compiler.ir.Kernel` with a
characteristic dataflow shape and returns it together with a role map
naming its streams, so the benchmark definitions in
:mod:`repro.workloads.spec92` can attach address patterns by role.

The shapes, and what each one exercises:

* :func:`vector_kernel` -- independent loads from several arrays feed a
  combining tree and stores: the numeric streaming shape (tomcatv,
  swm256, hydro2d ...).  Plenty of independent misses, so performance
  tracks the allowed in-flight miss count.
* :func:`reduction_kernel` -- loads feed a loop-carried accumulator:
  streaming with a serial spine (su2cor-style inner products).
* :func:`chase_kernel` -- loop-carried pointer chases plus dependent
  integer work: the Lisp/allocator shape where non-blocking hardware
  barely helps because each miss's address needs the previous miss.
* :func:`serial_chain_kernel` -- one chase whose next address depends on
  a fixed-depth compute chain: misses are isolated and fully exposed in
  *every* organization (the ora shape).
* :func:`hash_kernel` -- address computed shortly before each probe
  load: hoisting is limited by address generation, not by MSHRs
  (compress/eqntott shape).

Every template accepts ``pad_chains``/``pad_depth``: independent chains
of single-cycle ops that dilute the memory-reference density to the
benchmark's measured loads-per-instruction and give the scheduler real
(but bounded) material for hiding latency.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.compiler.ir import Kernel, KernelBuilder, RegClass
from repro.errors import WorkloadError

#: Role map: role name -> stream id within the kernel.
Roles = Dict[str, int]


def _add_padding(
    b: KernelBuilder, pad_chains: int, pad_depth: int, cls: RegClass
) -> None:
    """Emit ``pad_chains`` independent chains of ``pad_depth`` ALU ops."""
    emit = b.fop if cls is RegClass.FP else b.iop
    seed = b.vreg(RegClass.INT)  # invariant: read, never written
    for _ in range(pad_chains):
        cur = emit(seed)
        for _ in range(pad_depth - 1):
            cur = emit(cur)


def vector_kernel(
    name: str,
    n_load_streams: int = 2,
    loads_per_stream: int = 1,
    load_width: int = 8,
    n_store_streams: int = 1,
    stores_per_stream: int = 1,
    extra_flops: int = 0,
    pad_chains: int = 0,
    pad_depth: int = 1,
) -> Tuple[Kernel, Roles]:
    """Streaming numeric loop: independent loads, FALU tree, stores.

    Roles: ``load0``..``load{n-1}`` and ``store0``..``store{m-1}``.
    """
    if n_load_streams < 1 or loads_per_stream < 1:
        raise WorkloadError("vector kernel needs at least one load")
    b = KernelBuilder(name)
    roles: Roles = {}
    load_streams = []
    for i in range(n_load_streams):
        sid = b.declare_stream()
        roles[f"load{i}"] = sid
        load_streams.append(sid)
    store_streams = []
    for i in range(n_store_streams):
        sid = b.declare_stream()
        roles[f"store{i}"] = sid
        store_streams.append(sid)

    values: List[int] = []
    for sid in load_streams:
        for _ in range(loads_per_stream):
            values.append(b.load(sid, cls=RegClass.FP, width=load_width))

    # Pairwise combining tree over the loaded values.
    level = list(values)
    while len(level) > 1:
        nxt: List[int] = []
        for i in range(0, len(level) - 1, 2):
            nxt.append(b.fop(level[i], level[i + 1]))
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    result = level[0]
    for _ in range(extra_flops):
        result = b.fop(result)

    for sid in store_streams:
        for _ in range(stores_per_stream):
            b.store(sid, result)

    if pad_chains:
        _add_padding(b, pad_chains, pad_depth, RegClass.FP)
    return b.build(), roles


def reduction_kernel(
    name: str,
    n_load_streams: int = 2,
    loads_per_stream: int = 1,
    load_width: int = 8,
    stores_per_iteration: int = 0,
    pad_chains: int = 0,
    pad_depth: int = 1,
) -> Tuple[Kernel, Roles]:
    """Inner product: loads multiply pairwise into a carried accumulator.

    Roles: ``load0``..``load{n-1}``, optional ``store``.
    """
    b = KernelBuilder(name)
    roles: Roles = {}
    streams = []
    for i in range(n_load_streams):
        sid = b.declare_stream()
        roles[f"load{i}"] = sid
        streams.append(sid)

    carried = b.vreg(RegClass.FP)  # loop-carried accumulator
    terms: List[int] = []
    for sid in streams:
        for _ in range(loads_per_stream):
            terms.append(b.load(sid, cls=RegClass.FP, width=load_width))
    partials: List[int] = []
    for i in range(0, len(terms) - 1, 2):
        partials.append(b.fop(terms[i], terms[i + 1]))
    if len(terms) % 2:
        partials.append(terms[-1])
    # Sum the partial products into the carried accumulator; only the
    # final add redefines it (single definition per body).
    acc = carried
    for partial in partials[:-1]:
        acc = b.fop(partial, acc)
    b.fop(partials[-1], acc, dst=carried)

    if stores_per_iteration:
        st = b.declare_stream()
        roles["store"] = st
        for i in range(stores_per_iteration):
            # Store a partial product (running sums are kept in
            # registers; partial results spill to memory).
            b.store(st, partials[i % len(partials)])

    if pad_chains:
        _add_padding(b, pad_chains, pad_depth, RegClass.FP)
    return b.build(), roles


def chase_kernel(
    name: str,
    n_chains: int = 1,
    work_per_load: int = 2,
    stores_per_iteration: int = 0,
    aux_loads: int = 0,
    pad_chains: int = 0,
    pad_depth: int = 1,
) -> Tuple[Kernel, Roles]:
    """Loop-carried pointer chases with dependent integer work.

    Roles: ``chase0``..``chase{n-1}``, optional ``aux`` (independent
    scan loads) and ``store`` streams.
    """
    if n_chains < 1:
        raise WorkloadError("chase kernel needs at least one chain")
    b = KernelBuilder(name)
    roles: Roles = {}
    tails: List[int] = []
    for i in range(n_chains):
        sid = b.declare_stream()
        roles[f"chase{i}"] = sid
        link = b.vreg(RegClass.INT)
        b.load(sid, cls=RegClass.INT, addr_src=link, dst=link,
               comment=f"p{i} = p{i}->next")
        cur = link
        for _ in range(work_per_load):
            cur = b.iop(cur)
        tails.append(cur)

    if aux_loads:
        sid = b.declare_stream()
        roles["aux"] = sid
        for _ in range(aux_loads):
            v = b.load(sid, cls=RegClass.INT)
            b.iop(v)

    if stores_per_iteration:
        sid = b.declare_stream()
        roles["store"] = sid
        for i in range(stores_per_iteration):
            b.store(sid, tails[i % len(tails)])

    if pad_chains:
        _add_padding(b, pad_chains, pad_depth, RegClass.INT)
    return b.build(), roles


def serial_chain_kernel(
    name: str,
    compute_depth: int = 14,
    load_width: int = 8,
) -> Tuple[Kernel, Roles]:
    """A single dependent load per ``compute_depth`` chained FP ops.

    The next load's address depends on the end of the compute chain,
    so no organization can overlap its miss with anything: the ora
    shape, whose MCPI the paper reports as identical (1.000) for every
    hardware configuration.

    Roles: ``chain``.
    """
    if compute_depth < 1:
        raise WorkloadError("compute depth must be >= 1")
    # No separate loop overhead: the loop branch itself reads the chain
    # so that *nothing* in the body is independent of the load.
    b = KernelBuilder(name, loop_overhead=False)
    sid = b.declare_stream()
    roles: Roles = {"chain": sid}
    link = b.vreg(RegClass.INT)
    value = b.load(sid, cls=RegClass.FP, addr_src=link, width=load_width,
                   comment="chain load")
    cur = value
    for _ in range(compute_depth):
        cur = b.fop(cur)
    # Close the address chain: the next iteration's address comes from
    # the end of this iteration's computation.
    b.iop(cur, dst=link, comment="next address")
    b.branch(link, comment="loop branch")
    return b.build(), roles


def hash_kernel(
    name: str,
    n_probes: int = 2,
    addr_depth: int = 2,
    work_depth: int = 3,
    stores_per_iteration: int = 1,
    load_width: int = 8,
    pad_chains: int = 0,
    pad_depth: int = 1,
) -> Tuple[Kernel, Roles]:
    """Table probes whose addresses are computed ``addr_depth`` ops early.

    The hash state threads through the probes, so consecutive probes
    serialize on each other (extra MSHRs buy nothing beyond
    hit-under-miss) while each probe's miss can still overlap the
    surrounding independent padding -- the compress/eqntott shape,
    where ``mc=1`` captures essentially all of the benefit and the
    hoisting distance is bounded by address generation.

    Roles: ``table``, optional ``store``.
    """
    if n_probes < 1:
        raise WorkloadError("hash kernel needs at least one probe")
    b = KernelBuilder(name)
    sid = b.declare_stream()
    roles: Roles = {"table": sid}
    carried = b.vreg(RegClass.INT)  # running hash state, loop-carried

    results: List[int] = []
    state = carried
    for _ in range(n_probes):
        addr = state
        for _ in range(addr_depth):
            addr = b.iop(addr)
        v = b.load(sid, cls=RegClass.INT, width=load_width, addr_src=addr)
        cur = v
        for _ in range(work_depth):
            cur = b.iop(cur)
        results.append(cur)
        state = cur
    b.iop(state, dst=carried, comment="hash state update")

    if stores_per_iteration:
        st = b.declare_stream()
        roles["store"] = st
        for i in range(stores_per_iteration):
            b.store(st, results[i % len(results)])

    if pad_chains:
        _add_padding(b, pad_chains, pad_depth, RegClass.INT)
    return b.build(), roles


def stencil_kernel(
    name: str,
    taps: int = 5,
    load_width: int = 8,
    n_arrays: int = 2,
    stores_per_iteration: int = 1,
    extra_flops: int = 2,
    pad_chains: int = 0,
    pad_depth: int = 1,
) -> Tuple[Kernel, Roles]:
    """Relaxation stencil: ``taps`` neighbour loads per array, one store.

    Neighbour loads from one array land near each other (secondary-miss
    fodder); separate arrays supply independent primary misses.  Roles:
    ``array0``..``array{n-1}``, ``out``.
    """
    if taps < 1 or n_arrays < 1:
        raise WorkloadError("stencil needs at least one tap and one array")
    b = KernelBuilder(name)
    roles: Roles = {}
    arrays = []
    for i in range(n_arrays):
        sid = b.declare_stream()
        roles[f"array{i}"] = sid
        arrays.append(sid)
    out = b.declare_stream()
    roles["out"] = out

    values: List[int] = []
    for sid in arrays:
        for _ in range(taps):
            values.append(b.load(sid, cls=RegClass.FP, width=load_width))
    level = list(values)
    while len(level) > 1:
        nxt: List[int] = []
        for i in range(0, len(level) - 1, 2):
            nxt.append(b.fop(level[i], level[i + 1]))
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    result = level[0]
    for _ in range(extra_flops):
        result = b.fop(result)
    for _ in range(stores_per_iteration):
        b.store(out, result)

    if pad_chains:
        _add_padding(b, pad_chains, pad_depth, RegClass.FP)
    return b.build(), roles


def mixed_kernel(
    name: str,
    stream_loads: int = 2,
    stream_width: int = 8,
    hot_loads: int = 2,
    chain_depth: int = 2,
    stores_per_iteration: int = 1,
    pad_chains: int = 1,
    pad_depth: int = 2,
    second_stream: bool = True,
) -> Tuple[Kernel, Roles]:
    """A blend: streaming loads, hot working-set loads, dependent work.

    The doduc-like shape: a moderate miss rate whose misses arrive in
    small bursts from more than one array, so two primary misses in
    flight (``mc=2``) beats unlimited secondaries to one block
    (``fc=1``).  Roles: ``stream0`` (optionally ``stream1``), ``hot``,
    ``out``.
    """
    b = KernelBuilder(name)
    roles: Roles = {}
    s0 = b.declare_stream()
    roles["stream0"] = s0
    streams = [s0]
    if second_stream:
        s1 = b.declare_stream()
        roles["stream1"] = s1
        streams.append(s1)
    hot = b.declare_stream()
    roles["hot"] = hot
    out = b.declare_stream()
    roles["out"] = out

    values: List[int] = []
    for i in range(stream_loads):
        values.append(
            b.load(streams[i % len(streams)], cls=RegClass.FP, width=stream_width)
        )
    for _ in range(hot_loads):
        values.append(b.load(hot, cls=RegClass.FP, width=stream_width))

    level = list(values)
    while len(level) > 1:
        nxt: List[int] = []
        for i in range(0, len(level) - 1, 2):
            nxt.append(b.fop(level[i], level[i + 1]))
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    cur = level[0]
    for _ in range(chain_depth):
        cur = b.fop(cur)
    for _ in range(stores_per_iteration):
        b.store(out, cur)

    if pad_chains:
        _add_padding(b, pad_chains, pad_depth, RegClass.FP)
    return b.build(), roles
