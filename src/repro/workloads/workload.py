"""The workload container: a kernel plus its address streams.

A :class:`Workload` binds a compiler kernel to concrete address
patterns for each stream it references, an iteration count, and
compilation hints (how aggressively the loop may be unrolled).  The
simulator front end (:mod:`repro.sim.simulator`) compiles the kernel
for a scheduled load latency and expands the streams to per-op address
arrays.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

import numpy as np

from repro.compiler.ir import Kernel
from repro.workloads.patterns import AddressPattern, stack_pattern
from repro.errors import WorkloadError


@dataclass(frozen=True)
class Workload:
    """A complete, runnable workload model."""

    name: str
    kernel: Kernel
    #: Stream id -> address pattern; must cover 0..kernel.num_streams-1.
    patterns: Dict[int, AddressPattern]
    #: Original (pre-unroll) loop iterations at scale 1.0.
    iterations: int
    #: Cap on the compiler's unroll factor for this workload.
    max_unroll: int = 8
    #: Let the compiler rotate streaming loads across the back edge
    #: (software pipelining); real trace schedulers do this for the
    #: deeply-unrolled numeric loops.
    software_pipeline: bool = False
    #: True for the floating-point (numeric) benchmarks.
    is_fp: bool = True
    description: str = ""
    seed: int = 1994
    #: Pattern used for spill traffic if the allocator spills.
    spill_pattern: AddressPattern = field(default_factory=stack_pattern)

    def __post_init__(self) -> None:
        missing = [
            s for s in range(self.kernel.num_streams) if s not in self.patterns
        ]
        if missing:
            raise WorkloadError(
                f"workload '{self.name}' lacks patterns for streams {missing}"
            )
        if self.iterations < 1:
            raise WorkloadError("iterations must be >= 1")
        if self.max_unroll < 1:
            raise WorkloadError("max_unroll must be >= 1")

    def scaled(self, scale: float) -> "Workload":
        """Copy with the iteration count multiplied by ``scale``."""
        if scale <= 0:
            raise WorkloadError(f"scale must be positive: {scale}")
        return replace(self, iterations=max(1, int(self.iterations * scale)))

    def pattern_for(self, stream: int, spill_stream: int) -> AddressPattern:
        """Pattern for ``stream``, including the implicit spill stream."""
        if stream == spill_stream and stream not in self.patterns:
            return self.spill_pattern
        try:
            return self.patterns[stream]
        except KeyError:
            raise WorkloadError(
                f"workload '{self.name}' has no pattern for stream {stream}"
            ) from None

    def rng_for_stream(self, stream: int) -> np.random.Generator:
        """Independent, reproducible RNG for one stream's generation."""
        return np.random.default_rng((self.seed, stream))
