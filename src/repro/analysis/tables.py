"""Plain-text table rendering in the paper's style.

Every experiment renders its output through these helpers so the
regenerated tables read like the paper's figures (MCPI columns, ratio
columns marked with 'x', latency-indexed curve tables).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

Cell = Union[str, int, float, None]


def format_cell(value: Cell, precision: int = 3) -> str:
    """Render one table cell; floats get fixed precision."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    precision: int = 3,
    title: Optional[str] = None,
) -> str:
    """Render an aligned plain-text table."""
    rendered: List[List[str]] = [
        [format_cell(c, precision) for c in row] for row in rows
    ]
    cols = len(headers)
    widths = [len(h) for h in headers]
    for row in rendered:
        if len(row) != cols:
            raise ValueError(
                f"row has {len(row)} cells, expected {cols}: {row}"
            )
        for i, cell in enumerate(row):
            if len(cell) > widths[i]:
                widths[i] = len(cell)

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.rjust(widths[i]) for i, c in enumerate(cells))

    out: List[str] = []
    if title:
        out.append(title)
    out.append(line(list(headers)))
    out.append("  ".join("-" * w for w in widths))
    out.extend(line(row) for row in rendered)
    return "\n".join(out)


def format_interval(
    low: float, high: float, precision: int = 3
) -> str:
    """Render a screened MCPI bracket honestly.

    An exact value (zero-width bracket) renders like any point cell; an
    interval renders as ``low~high (±width/2)`` so a reader can never
    mistake a bound for a measurement.  Used wherever screened sweeps
    print cells the analytical tier did not resolve exactly.
    """
    if low == high:
        return format_cell(low, precision)
    half = (high - low) / 2
    return (f"{low:.{precision}f}~{high:.{precision}f} "
            f"(±{half:.{precision}f})")


def ratio(value: float, reference: float) -> float:
    """MCPI ratio as the paper reports it (reference = unrestricted)."""
    if reference == 0:
        return float("inf") if value > 0 else 1.0
    return value / reference


def format_ratio(value: float) -> str:
    """Paper-style ratio rendering: two significant-ish digits."""
    if value == float("inf"):
        return "inf"
    if value >= 10:
        return f"{value:.0f}"
    return f"{value:.1f}"


def curve_table(
    latencies: Sequence[int],
    series: Sequence[tuple],
    value_name: str = "MCPI",
    precision: int = 3,
) -> str:
    """Render MCPI-vs-latency curves as a latency-indexed table.

    ``series`` is a sequence of ``(label, values)`` pairs, values
    parallel to ``latencies``.  This is the textual equivalent of the
    paper's curve figures.
    """
    headers = ["load latency"] + [label for label, _ in series]
    rows = []
    for i, lat in enumerate(latencies):
        rows.append([lat] + [values[i] for _, values in series])
    return format_table(headers, rows, precision=precision,
                        title=f"{value_name} vs scheduled load latency")
