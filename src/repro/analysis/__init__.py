"""Result analysis: paper-style tables and the Section 6 scaling rules."""

from repro.analysis.ascii_plot import render_curves, render_sweep
from repro.analysis.benchreport import benchmark_report
from repro.analysis.designspace import (
    DesignPoint,
    best_under_budget,
    design_catalogue,
    evaluate_designs,
    marginal_utilities,
    pareto_frontier,
)
from repro.analysis.scaling import (
    ScalingComparison,
    dual_issue_mcpi,
    nearest_latency,
    predicted_dual_issue_mcpi,
    scaled_parameters,
)
from repro.analysis.screen import (
    ScreenedTable,
    ScreenedValue,
    ScreenReport,
    fidelity_names,
    resolve_fidelity,
    run_band,
    run_screen_table,
    screen_cells,
)
from repro.analysis.tables import (
    curve_table,
    format_cell,
    format_interval,
    format_ratio,
    format_table,
    ratio,
)

__all__ = [
    "render_curves",
    "render_sweep",
    "benchmark_report",
    "DesignPoint",
    "design_catalogue",
    "evaluate_designs",
    "pareto_frontier",
    "best_under_budget",
    "marginal_utilities",
    "ScreenedTable",
    "ScreenedValue",
    "ScreenReport",
    "fidelity_names",
    "resolve_fidelity",
    "run_band",
    "run_screen_table",
    "screen_cells",
    "format_table",
    "format_cell",
    "format_interval",
    "format_ratio",
    "curve_table",
    "ratio",
    "ScalingComparison",
    "dual_issue_mcpi",
    "predicted_dual_issue_mcpi",
    "nearest_latency",
    "scaled_parameters",
]
