"""The complexity/performance tradeoff as a queryable design space.

The paper's title question -- how much non-blocking performance does
each increment of MSHR hardware buy -- becomes, for a downstream user,
a concrete design problem: *given a storage budget, which organization
should I build for my workload?*  This module prices a catalogue of
practical designs with the Section 2 cost model, measures each on a
workload, and answers budget and frontier queries.

The catalogue spans the paper's whole spectrum: a lockup cache,
``mc=N`` banks of single-field MSHRs, ``fc=N`` banks of explicitly
addressed MSHRs, implicit/hybrid field layouts, the in-cache
transit-bit organization, and the inverted MSHR.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.analysis.screen import run_band
from repro.core.cost import (
    explicit_mshr_bits,
    hybrid_mshr_bits,
    implicit_mshr_bits,
    in_cache_storage_cost,
    inverted_mshr_cost,
)
from repro.core.policies import (
    MSHRPolicy,
    blocking_cache,
    fc,
    in_cache,
    mc,
    no_restrict,
    with_layout,
)
from repro.errors import ConfigurationError
from repro.sim.config import MachineConfig, baseline_config
from repro.workloads.workload import Workload


@dataclass(frozen=True)
class DesignPoint:
    """One priced, measured hardware design.

    ``mcpi`` is the point's reportable value: the true MCPI when the
    design was resolved exactly, or the sound **upper bound** when the
    screening tier pruned it without simulation (so frontier and
    budget queries stay conservative).  ``mcpi_low``/``mcpi_high``
    carry the bracket when one was computed; ``fidelity`` says which
    kind of value this is (``exact`` or ``screen``).
    """

    description: str
    policy: MSHRPolicy
    storage_bits: int
    mcpi: float
    mcpi_low: Optional[float] = None
    mcpi_high: Optional[float] = None
    fidelity: str = "exact"

    @property
    def exact(self) -> bool:
        return self.fidelity == "exact"

    @property
    def bound_width(self) -> float:
        """Width of the MCPI bracket (0.0 for exact points)."""
        if self.mcpi_low is None or self.mcpi_high is None:
            return 0.0
        return self.mcpi_high - self.mcpi_low

    def dominates(self, other: "DesignPoint") -> bool:
        """Pareto dominance on (bits, MCPI), at least one strict."""
        return (
            self.storage_bits <= other.storage_bits
            and self.mcpi <= other.mcpi
            and (self.storage_bits < other.storage_bits
                 or self.mcpi < other.mcpi)
        )


def design_catalogue(
    line_size: int = 32, cache_size: int = 8 * 1024
) -> List[tuple]:
    """(description, policy, storage bits) for the studied designs.

    Unlimited-MSHR layout policies are priced at sixteen MSHRs -- the
    most a 16-cycle-penalty single-issue machine can occupy.
    """
    catalogue: List[tuple] = [
        ("lockup cache", blocking_cache(), 0),
    ]
    for n in (1, 2, 4):
        catalogue.append((
            f"{n} single-field MSHR{'s' if n > 1 else ''}",
            mc(n), n * explicit_mshr_bits(line_size, 1),
        ))
    for n in (1, 2, 4):
        catalogue.append((
            f"{n} four-field explicit MSHR{'s' if n > 1 else ''}",
            fc(n), n * explicit_mshr_bits(line_size, 4),
        ))
    catalogue.append((
        "in-cache transit bits", in_cache(1),
        in_cache_storage_cost(cache_size, line_size).total_bits,
    ))
    words = line_size // 8
    catalogue.append((
        "16 implicit MSHRs (8B words)", with_layout(words, 1),
        16 * implicit_mshr_bits(line_size, 8),
    ))
    catalogue.append((
        "16 implicit MSHRs (4B words)", with_layout(2 * words, 1),
        16 * implicit_mshr_bits(line_size, 4),
    ))
    catalogue.append((
        "16 hybrid 2x2 MSHRs", with_layout(2, 2),
        16 * hybrid_mshr_bits(line_size, 2, 2),
    ))
    catalogue.append((
        "inverted MSHR (70 dest)", no_restrict(),
        inverted_mshr_cost(70, line_size).total_bits,
    ))
    return catalogue


def evaluate_designs(
    workload: Workload,
    base: Optional[MachineConfig] = None,
    load_latency: int = 10,
    scale: float = 0.25,
    catalogue: Optional[Sequence[tuple]] = None,
    fidelity: Optional[str] = None,
    workers: Optional[int] = 1,
    backend: Optional[str] = None,
) -> List[DesignPoint]:
    """Measure every catalogue design on ``workload``.

    Runs through the multi-fidelity screening front end
    (:mod:`repro.analysis.screen`); the default ``auto`` fidelity
    screens the catalogue analytically and exact-simulates only the
    cells that can still reach the Pareto frontier, so frontier and
    budget queries are identical to an exhaustive run at a fraction of
    the simulations.  Pass ``fidelity="exact"`` (or set
    ``REPRO_FIDELITY``) for the exhaustive behaviour; either way every
    simulation goes through the planner's memoized store and the
    selected dispatch backend.
    """
    if base is None:
        base = baseline_config()
    if catalogue is None:
        catalogue = design_catalogue(
            line_size=base.geometry.line_size, cache_size=base.geometry.size
        )
    cells = [
        (workload, base.with_policy(policy), load_latency, scale)
        for _, policy, _ in catalogue
    ]
    bits = [b for _, _, b in catalogue]
    entries, _ = run_band(cells, bits, fidelity=fidelity, default="auto",
                          workers=workers, backend=backend)
    points: List[DesignPoint] = []
    for entry, (description, policy, storage_bits) in zip(entries, catalogue):
        if entry.result is not None:
            mcpi = entry.result.mcpi
            points.append(DesignPoint(
                description=description, policy=policy,
                storage_bits=storage_bits, mcpi=mcpi,
                mcpi_low=mcpi, mcpi_high=mcpi, fidelity="exact",
            ))
            continue
        bounds = entry.bounds
        points.append(DesignPoint(
            description=description, policy=policy,
            storage_bits=storage_bits, mcpi=bounds.mcpi_high,
            mcpi_low=bounds.mcpi_low, mcpi_high=bounds.mcpi_high,
            fidelity="exact" if bounds.exact else "screen",
        ))
    return points


def pareto_frontier(points: Sequence[DesignPoint]) -> List[DesignPoint]:
    """The non-dominated designs, cheapest first."""
    frontier = [
        p for p in points
        if not any(q.dominates(p) for q in points)
    ]
    return sorted(frontier, key=lambda p: (p.storage_bits, p.mcpi))


def best_under_budget(
    points: Sequence[DesignPoint], bit_budget: int
) -> DesignPoint:
    """The lowest-MCPI design whose storage fits ``bit_budget``."""
    affordable = [p for p in points if p.storage_bits <= bit_budget]
    if not affordable:
        raise ConfigurationError(
            f"no design fits a {bit_budget}-bit budget "
            f"(the lockup cache costs 0 bits; is the catalogue empty?)"
        )
    return min(affordable, key=lambda p: (p.mcpi, p.storage_bits))


def marginal_utilities(frontier: Sequence[DesignPoint]) -> List[float]:
    """MCPI improvement per extra kilobit along the frontier.

    Parallel to ``frontier[1:]``: how much each upgrade buys per 1024
    added bits -- the paper's cost-effectiveness reading of its tables.
    """
    utilities: List[float] = []
    for prev, nxt in zip(frontier, frontier[1:]):
        extra_bits = nxt.storage_bits - prev.storage_bits
        gain = prev.mcpi - nxt.mcpi
        utilities.append(gain / (extra_bits / 1024) if extra_bits else 0.0)
    return utilities
