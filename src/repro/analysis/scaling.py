"""Section 6: applying the single-issue results to other machines.

The paper's scaling rule for superscalar machines: multiply the miss
penalty and the scheduled load latency by the machine's average IPC,
look up the single-issue result at those scaled parameters, and use it
as a first-order MCPI approximation.  Because the compiler sweep only
produced schedules for latencies {1,2,3,6,10,20}, the scaled latency is
rounded to the nearest member of that set and the penalty to the
nearest integer -- exactly the coarseness the paper describes.

Dual-issue MCPI itself is measured against a perfect-cache run of the
same trace: the extra cycles per instruction caused by the data cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.errors import ConfigurationError
from repro.sim.stats import SimulationResult
from repro.sim.sweep import PAPER_LATENCIES


def nearest_latency(
    value: float, available: Sequence[int] = PAPER_LATENCIES
) -> int:
    """The compiled-for latency closest to a scaled value.

    Ties go to the larger latency (the paper rounded 15.9 -> 20).
    """
    if not available:
        raise ConfigurationError("no latencies available")
    return min(sorted(available, reverse=True), key=lambda lat: abs(lat - value))


def scaled_parameters(
    ipc: float,
    load_latency: int = 10,
    miss_penalty: int = 16,
    available: Sequence[int] = PAPER_LATENCIES,
) -> Tuple[int, int]:
    """(scaled latency, scaled penalty) for the Section 6 rule."""
    if ipc <= 0:
        raise ConfigurationError(f"IPC must be positive: {ipc}")
    lat = nearest_latency(ipc * load_latency, available)
    penalty = max(1, round(ipc * miss_penalty))
    return lat, penalty


def dual_issue_mcpi(real: SimulationResult, perfect: SimulationResult) -> float:
    """Measured dual-issue MCPI: cache-induced cycles per instruction."""
    if real.instructions != perfect.instructions:
        raise ConfigurationError(
            "real and perfect runs must execute the same trace"
        )
    if not real.instructions:
        return 0.0
    return (real.cycles - perfect.cycles) / real.instructions


def predicted_dual_issue_mcpi(single_issue_mcpi: float, ipc: float) -> float:
    """Predict dual-issue MCPI from a scaled single-issue result.

    The scaled single-issue run counts stalls in single-issue cycles
    (one instruction each); a dual-issue cycle is worth ``ipc``
    instructions, so the predicted dual-issue MCPI is the scaled
    single-issue MCPI divided by the IPC.
    """
    if ipc <= 0:
        raise ConfigurationError(f"IPC must be positive: {ipc}")
    return single_issue_mcpi / ipc


@dataclass(frozen=True)
class ScalingComparison:
    """One Figure 19 row for one hardware organization."""

    workload: str
    policy: str
    ipc: float
    scaled_latency: int
    scaled_penalty: int
    measured_mcpi: float
    predicted_mcpi: float

    @property
    def error_pct(self) -> float:
        """Signed prediction error in percent (paper's '%' columns)."""
        if self.measured_mcpi == 0:
            return 0.0
        return 100.0 * (self.predicted_mcpi - self.measured_mcpi) / self.measured_mcpi
