"""The multi-fidelity front end: screen cells, simulate only the band.

Design-space sweeps ask a thousand cells the same question -- *where is
the cost/performance frontier?* -- and most cells only need enough
precision to prove they are not on it.  This module stacks the
analytical bracket of :mod:`repro.sim.bounds` in front of the exact
engines as a **fidelity ladder**:

``screen``
    Interval bounds only: no cell is simulated (except the few whose
    summary cannot be bounded, which fall back cause-tagged).  Results
    are honest ``[lower, upper]`` brackets; closed-form families
    (blocking, perfect cache, no memory ops) come back exact.
``auto``
    Screen first, then exact-simulate only the cells that still
    matter.  For priced design spaces this runs the *running-frontier*
    loop: simulate the cheapest undominated survivors, feed their true
    values back into the proof-dominance test, and repeat until every
    remaining cell is provably off the frontier.  For flat tables
    (no storage pricing) it simulates exactly the non-closed-form
    cells, so the table equals the ``exact`` one with fewer replays.
``exact``
    Today's behaviour: every cell through the planner and engines.

Selection mirrors the engine registry's single resolution path
(:mod:`repro.sim.engines`): an explicit ``fidelity=`` argument beats
``REPRO_FIDELITY`` beats the caller's default.

**Soundness of the pruning rule.**  Cell ``B`` is pruned only when some
cell ``A`` has ``bits_A <= bits_B`` and ``upper_A <= lower_B`` with at
least one strict (upper/lower are end-cycle bounds; resolved cells use
their exact value for both).  Since ``true_A <= upper_A <= lower_B <=
true_B``, the true point of ``A`` dominates the true point of ``B``;
chaining grounds in a resolved cell, so **no true-frontier cell is
ever pruned** and -- with pruned cells reported at their conservative
upper bound -- the Pareto frontier over the returned points equals the
exhaustive one.  Bound comparisons are exact integer cross products of
``(cycles - instructions, instructions)`` pairs, never floats.

Telemetry lands under ``screen.*`` (cells, exact, interval, fallbacks
by cause, pruned, simulated, frontier overlap, bound-width histogram);
see ``docs/observability.md``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro import telemetry
from repro.core.policies import no_restrict
from repro.errors import ConfigurationError
from repro.sim.bounds import CellBounds, cell_bounds, screen_support
from repro.sim.config import MachineConfig, baseline_config
from repro.sim.parallel import Cell
from repro.sim.planner import execute_cells
from repro.sim.stats import SimulationResult
from repro.workloads.workload import Workload

# -- the fidelity ladder -------------------------------------------------------


@dataclass(frozen=True)
class Fidelity:
    """One rung of the fidelity ladder."""

    name: str
    description: str


SCREEN = Fidelity(
    "screen",
    "interval bounds only; no simulation (cause-tagged fallback aside)",
)
AUTO = Fidelity(
    "auto",
    "screen first, exact-simulate only the surviving frontier band",
)
EXACT = Fidelity(
    "exact",
    "every cell through the planner and exact engines",
)

#: Ladder order, cheapest first.
FIDELITY_ORDER: Tuple[str, ...] = ("screen", "auto", "exact")

FIDELITIES: Dict[str, Fidelity] = {
    f.name: f for f in (SCREEN, AUTO, EXACT)
}

#: Environment variable consulted when no explicit fidelity is given.
FIDELITY_ENV = "REPRO_FIDELITY"


def fidelity_names() -> Tuple[str, ...]:
    """Valid ``fidelity=`` / ``--fidelity`` / ``REPRO_FIDELITY`` values."""
    return FIDELITY_ORDER


def get_fidelity(name: str) -> Fidelity:
    """Look up one fidelity by name."""
    label = name.strip().lower()
    fidelity = FIDELITIES.get(label)
    if fidelity is None:
        raise ConfigurationError(
            f"unknown fidelity '{name}'; valid fidelities: "
            f"{', '.join(fidelity_names())}"
        )
    return fidelity


def resolve_fidelity(
    name: Optional[str] = None, default: str = "exact"
) -> Fidelity:
    """The single selection path: argument, ``REPRO_FIDELITY``, default.

    ``default`` is the call site's own fallback: design-space
    evaluation defaults to ``auto`` (its outputs are frontier queries,
    which screening preserves exactly), while plain sweeps default to
    ``exact`` (their outputs are the per-cell numbers themselves).
    """
    if name is not None:
        return get_fidelity(name)
    env = os.environ.get(FIDELITY_ENV)
    if env is not None:
        return get_fidelity(env)
    return get_fidelity(default)


# -- screening cells -----------------------------------------------------------


@dataclass(frozen=True)
class ScreenedCell:
    """One cell's screening outcome: a bracket or a fallback cause."""

    cell: Cell
    bounds: Optional[CellBounds]
    cause: Optional[str]


#: Width histogram edges, in MCPI units.
WIDTH_BUCKETS: Tuple[float, ...] = (
    0.0, 0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0
)

_SCREEN_METRICS = telemetry.MetricHandles(lambda m: {
    "cells": m.counter("screen.cells"),
    "exact": m.counter("screen.exact"),
    "interval": m.counter("screen.interval"),
    "fallbacks": m.counter("screen.fallbacks"),
    "fallback.dual_issue": m.counter("screen.fallback.dual_issue"),
    "fallback.fill_ports": m.counter("screen.fallback.fill_ports"),
    "fallback.wma_nonblocking": m.counter("screen.fallback.wma_nonblocking"),
    "pruned": m.counter("screen.pruned"),
    "simulated": m.counter("screen.simulated"),
    "frontier_overlap": m.counter("screen.frontier_overlap"),
    "width": m.histogram("screen.bound_width", bounds=WIDTH_BUCKETS),
})


def screen_cell(cell: Cell) -> ScreenedCell:
    """Bracket one cell analytically (no telemetry; see screen_cells)."""
    workload, config, load_latency, scale = cell
    cause = screen_support(config)
    if cause is not None:
        return ScreenedCell(cell=cell, bounds=None, cause=cause)
    bounds = cell_bounds(workload, config, load_latency, scale)
    return ScreenedCell(cell=cell, bounds=bounds, cause=None)


def screen_cells(cells: Sequence[Cell]) -> List[ScreenedCell]:
    """Bracket every cell, recording the ``screen.*`` telemetry."""
    screened = [screen_cell(cell) for cell in cells]
    if telemetry.enabled():
        handles = _SCREEN_METRICS.get()
        handles["cells"].inc(len(screened))
        for s in screened:
            if s.cause is not None:
                handles["fallbacks"].inc()
                handles[f"fallback.{s.cause}"].inc()
            elif s.bounds.exact:
                handles["exact"].inc()
                handles["width"].observe(0.0)
            else:
                handles["interval"].inc()
                handles["width"].observe(s.bounds.width)
    return screened


# -- exact interval comparisons ------------------------------------------------


def _stall_le(cyc_a: int, instr_a: int, cyc_b: int, instr_b: int) -> bool:
    """``(cyc_a-instr_a)/instr_a <= (cyc_b-instr_b)/instr_b`` exactly."""
    return (cyc_a - instr_a) * instr_b <= (cyc_b - instr_b) * instr_a


def _stall_lt(cyc_a: int, instr_a: int, cyc_b: int, instr_b: int) -> bool:
    return (cyc_a - instr_a) * instr_b < (cyc_b - instr_b) * instr_a


# -- the frontier band ---------------------------------------------------------

#: Canonical unrestricted policy: the scenario floor donor.
_UNRESTRICTED = no_restrict()


@dataclass
class _Entry:
    """Internal per-cell state of the multi-fidelity loop."""

    index: int
    cell: Cell
    bits: int
    bounds: Optional[CellBounds]
    cause: Optional[str]
    result: Optional[SimulationResult] = None
    pruned: bool = False
    #: Dynamic refinement of the analytical lower bound: once the
    #: scenario's unrestricted sibling resolves at ``v`` cycles, every
    #: restricted sibling's true end cycle is ``>= v`` (restrictions
    #: only add max-plus delays), so ``v`` tightens the floor.
    lower_floor_cycles: Optional[int] = None

    @property
    def resolved(self) -> bool:
        """True when the exact value is known (simulated or closed form)."""
        return self.result is not None or (
            self.bounds is not None and self.bounds.exact
        )

    def _point(self) -> Tuple[int, int]:
        if self.result is not None:
            return self.result.cycles, self.result.instructions
        b = self.bounds
        return b.upper_cycles, b.instructions

    @property
    def upper(self) -> Tuple[int, int]:
        """(cycles, instructions) of the best sound upper value."""
        return self._point()

    @property
    def lower(self) -> Tuple[int, int]:
        if self.result is not None:
            return self.result.cycles, self.result.instructions
        b = self.bounds
        low = b.lower_cycles
        if self.lower_floor_cycles is not None:
            low = max(low, self.lower_floor_cycles)
        return low, b.instructions


def _prune_pass(entries: List[_Entry]) -> int:
    """Mark every entry proof-dominated by a cheaper one; return count.

    ``B`` is pruned iff some ``A`` has ``bits_A <= bits_B`` and
    ``upper_A <= lower_B`` with at least one strict.  A single sweep in
    bits order with two running minima covers both strictness branches;
    already-pruned entries still prune others (the dominance chain
    grounds in a resolved cell, so transitivity is sound).
    """
    candidates = [e for e in entries if e.cause is None]
    candidates.sort(key=lambda e: e.bits)
    newly = 0
    best_lt: Optional[Tuple[int, int]] = None  # min upper, bits strictly below
    best_le: Optional[Tuple[int, int]] = None  # min upper, bits at or below
    i = 0
    while i < len(candidates):
        j = i
        while (j < len(candidates)
               and candidates[j].bits == candidates[i].bits):
            j += 1
        group = candidates[i:j]
        group_best: Optional[Tuple[int, int]] = None
        for e in group:
            up = e.upper
            if group_best is None or _stall_lt(*up, *group_best):
                group_best = up
        for e in group:
            if e.pruned or e.resolved:
                continue
            lo_c, lo_i = e.lower
            if best_lt is not None and _stall_le(*best_lt, lo_c, lo_i):
                e.pruned = True
                newly += 1
            elif _stall_lt(*group_best, lo_c, lo_i):
                # Same bits: strict value dominance is required (an
                # entry never strictly dominates itself, so including
                # its own upper in the group minimum is harmless).
                e.pruned = True
                newly += 1
        if best_le is None or _stall_lt(*group_best, *best_le):
            best_le = group_best
        best_lt = best_le
        i = j
    return newly


def _wave(entries: List[_Entry]) -> List[_Entry]:
    """The unresolved cells on the (bits, lower) staircase.

    These overlap the running frontier band no matter how the open
    intervals resolve, so they are the cells worth exact simulation
    next.  Sorted by bits; an entry joins the wave when its lower
    bound is strictly below every cheaper wave member's.
    """
    open_entries = [
        e for e in entries
        if e.cause is None and not e.resolved and not e.pruned
    ]
    open_entries.sort(key=lambda e: (e.bits, e.lower[0]))
    wave: List[_Entry] = []
    best: Optional[Tuple[int, int]] = None
    for e in open_entries:
        lo = e.lower
        if best is None or _stall_lt(*lo, *best):
            wave.append(e)
            best = lo
    return wave


@dataclass
class ScreenReport:
    """What the screening front end did to one batch of cells."""

    fidelity: str
    cells: int = 0
    exact_screened: int = 0
    interval: int = 0
    fallbacks: Dict[str, int] = field(default_factory=dict)
    pruned: int = 0
    simulated: int = 0
    waves: int = 0

    @property
    def avoided(self) -> int:
        """Cells that never reached an exact engine."""
        return self.cells - self.simulated

    @property
    def prune_rate(self) -> float:
        """Fraction of cells resolved without exact simulation."""
        return self.avoided / self.cells if self.cells else 0.0

    def describe(self) -> str:
        causes = ", ".join(
            f"{k}={v}" for k, v in sorted(self.fallbacks.items())
        ) or "none"
        return (
            f"fidelity={self.fidelity}: {self.cells} cells, "
            f"{self.exact_screened} closed-form, {self.interval} interval, "
            f"{self.pruned} pruned, {self.simulated} simulated "
            f"({self.waves} waves), fallbacks: {causes}"
        )


#: The most recent band run's report, for the CLI and tests (mirrors
#: ``repro.sim.planner.last_report``).
last_report: Optional[ScreenReport] = None


def run_band(
    cells: Sequence[Cell],
    bits: Sequence[int],
    fidelity: Optional[str] = None,
    default: str = "auto",
    workers: Optional[int] = 1,
    backend: Optional[str] = None,
    store=None,
) -> Tuple[List[_Entry], ScreenReport]:
    """Resolve a priced cell list at the requested fidelity.

    Returns one entry per cell (same order) carrying the bracket, the
    exact result when one was computed, and the pruned flag -- plus the
    :class:`ScreenReport`.  ``exact`` simulates everything through the
    planner (memoized store, dispatch backends); ``screen`` simulates
    only the unboundable cells; ``auto`` runs the running-frontier
    loop documented in the module docstring.
    """
    global last_report
    if len(bits) != len(cells):
        raise ConfigurationError(
            f"run_band needs one storage price per cell "
            f"({len(cells)} cells, {len(bits)} prices)"
        )
    fid = resolve_fidelity(fidelity, default=default)
    if fid.name == "exact":
        entries = [
            _Entry(index=i, cell=cell, bits=b, bounds=None, cause=None)
            for i, (cell, b) in enumerate(zip(cells, bits))
        ]
        results = execute_cells(list(cells), workers=workers,
                                backend=backend, store=store)
        for e, r in zip(entries, results):
            e.result = r
        report = ScreenReport(fidelity="exact", cells=len(entries),
                              simulated=len(entries))
        last_report = report
        return entries, report

    screened = screen_cells(cells)
    entries = [
        _Entry(index=i, cell=s.cell, bits=b, bounds=s.bounds, cause=s.cause)
        for i, (s, b) in enumerate(zip(screened, bits))
    ]
    report = ScreenReport(fidelity=fid.name, cells=len(entries))
    for e in entries:
        if e.cause is not None:
            report.fallbacks[e.cause] = report.fallbacks.get(e.cause, 0) + 1
        elif e.bounds.exact:
            report.exact_screened += 1
        else:
            report.interval += 1

    def _simulate(batch: List[_Entry]) -> None:
        if not batch:
            return
        results = execute_cells([e.cell for e in batch], workers=workers,
                                backend=backend, store=store)
        for e, r in zip(batch, results):
            e.result = r
        report.simulated += len(batch)

    # Unboundable cells are exact-simulated under every fidelity.
    _simulate([e for e in entries if e.cause is not None])

    # Scenario groups: cells that differ only in policy.  Each group's
    # unrestricted member is a *floor donor* -- every structural
    # restriction is a pure max-plus delay over the unrestricted
    # machine, so its exact end cycle is a sound lower bound for all
    # its siblings, far tighter than the analytical floor when the
    # workload has non-compulsory misses.
    groups: Dict[object, List[_Entry]] = {}
    donors: Dict[object, _Entry] = {}
    for e in entries:
        workload, config, load_latency, scale = e.cell
        key = (id(workload), replace(config, policy=_UNRESTRICTED),
               load_latency, scale)
        groups.setdefault(key, []).append(e)
        if config.policy == _UNRESTRICTED:
            donors[key] = e

    def _propagate_floors() -> None:
        for key, donor in donors.items():
            if donor.result is not None:
                v_cycles = donor.result.cycles
                v_instr = donor.result.instructions
            elif donor.bounds is not None and donor.bounds.exact:
                v_cycles = donor.bounds.upper_cycles
                v_instr = donor.bounds.instructions
            else:
                continue
            for e in groups[key]:
                if e is donor or e.resolved or e.cause is not None:
                    continue
                if e.bounds.instructions != v_instr:
                    continue
                if (e.lower_floor_cycles is None
                        or v_cycles > e.lower_floor_cycles):
                    e.lower_floor_cycles = v_cycles

    if fid.name == "auto":
        first = True
        while True:
            _propagate_floors()
            _prune_pass(entries)
            wave = _wave(entries)
            if first:
                # Resolve large groups' donors up front: one exact
                # value per scenario unlocks floor-based pruning of
                # the whole price ladder above it.
                first = False
                in_wave = set(id(e) for e in wave)
                for key, donor in donors.items():
                    open_cells = sum(
                        1 for e in groups[key]
                        if e.cause is None and not e.resolved
                        and not e.pruned
                    )
                    if (open_cells > 4 and donor.cause is None
                            and not donor.resolved and not donor.pruned
                            and id(donor) not in in_wave):
                        wave.append(donor)
            if not wave:
                break
            report.waves += 1
            _simulate(wave)
    report.pruned = sum(1 for e in entries if e.pruned)

    if telemetry.enabled():
        handles = _SCREEN_METRICS.get()
        handles["pruned"].inc(report.pruned)
        handles["simulated"].inc(report.simulated)
        handles["frontier_overlap"].inc(
            sum(1 for e in entries
                if e.cause is None and not e.resolved and not e.pruned)
        )
    last_report = report
    return entries, report


# -- screened tables (api.sweep fidelity) --------------------------------------


@dataclass(frozen=True)
class ScreenedValue:
    """One table cell: a point value or an honest interval."""

    mcpi_low: float
    mcpi_high: float
    #: ``exact`` when the value is the true MCPI (simulated or closed
    #: form), ``screen`` when only the interval is known.
    fidelity: str
    #: How the value was obtained: a bound method from
    #: :class:`repro.sim.bounds.CellBounds`, or ``simulated``.
    method: str
    cause: Optional[str] = None

    @property
    def exact(self) -> bool:
        return self.mcpi_low == self.mcpi_high

    @property
    def width(self) -> float:
        return self.mcpi_high - self.mcpi_low

    @property
    def mcpi(self) -> float:
        """The conservative point reading: the upper bound."""
        return self.mcpi_high


@dataclass
class ScreenedTable:
    """Benchmarks x policies with per-cell fidelity (Figure 13 shape)."""

    load_latency: int
    fidelity: str
    policy_names: Tuple[str, ...]
    #: workload name -> policy name -> value.
    rows: Dict[str, Dict[str, ScreenedValue]] = field(default_factory=dict)
    report: Optional[ScreenReport] = None

    def value(self, workload: str, policy: str) -> ScreenedValue:
        return self.rows[workload][policy]

    def mcpi(self, workload: str, policy: str) -> float:
        """Conservative MCPI (exact where resolved, upper bound else)."""
        return self.rows[workload][policy].mcpi

    def bounds(self, workload: str, policy: str) -> Tuple[float, float]:
        v = self.rows[workload][policy]
        return v.mcpi_low, v.mcpi_high


def _entry_value(e: _Entry) -> ScreenedValue:
    if e.result is not None:
        mcpi = e.result.mcpi
        return ScreenedValue(mcpi, mcpi, "exact", "simulated",
                             cause=e.cause)
    b = e.bounds
    fidelity = "exact" if b.exact else "screen"
    return ScreenedValue(b.mcpi_low, b.mcpi_high, fidelity, b.method)


def run_screen_table(
    workloads: Sequence[Workload],
    policies: Sequence,
    load_latency: int = 10,
    base: Optional[MachineConfig] = None,
    scale: float = 1.0,
    workers: Optional[int] = 1,
    backend: Optional[str] = None,
    fidelity: str = "screen",
    store=None,
) -> ScreenedTable:
    """The screened counterpart of :func:`repro.sim.sweep.run_table`.

    ``screen`` fills every cell with its bracket (closed forms come
    back exact); ``auto`` additionally simulates the interval cells,
    so ``mcpi()`` agrees with the exact table everywhere while the
    closed-form cells never touch an engine.  Tables carry no storage
    pricing, so no cell is ever pruned here.
    """
    if base is None:
        base = baseline_config()
    fid = get_fidelity(fidelity)
    if fid.name == "exact":
        raise ConfigurationError(
            "run_screen_table is the screen/auto path; "
            "use repro.sim.sweep.run_table for exact sweeps"
        )
    cells: List[Cell] = [
        (workload, base.with_policy(policy), load_latency, scale)
        for workload in workloads
        for policy in policies
    ]
    screened = screen_cells(cells)
    entries = [
        _Entry(index=i, cell=s.cell, bits=0, bounds=s.bounds, cause=s.cause)
        for i, s in enumerate(screened)
    ]
    report = ScreenReport(fidelity=fid.name, cells=len(entries))
    for e in entries:
        if e.cause is not None:
            report.fallbacks[e.cause] = report.fallbacks.get(e.cause, 0) + 1
        elif e.bounds.exact:
            report.exact_screened += 1
        else:
            report.interval += 1
    to_run = [e for e in entries if e.cause is not None]
    if fid.name == "auto":
        to_run += [
            e for e in entries if e.cause is None and not e.bounds.exact
        ]
    if to_run:
        results = execute_cells([e.cell for e in to_run], workers=workers,
                                backend=backend, store=store)
        for e, r in zip(to_run, results):
            e.result = r
        report.simulated += len(to_run)
    if telemetry.enabled():
        _SCREEN_METRICS.get()["simulated"].inc(report.simulated)

    global last_report
    last_report = report
    table = ScreenedTable(
        load_latency=load_latency,
        fidelity=fid.name,
        policy_names=tuple(p.name for p in policies),
        report=report,
    )
    index = 0
    for workload in workloads:
        row: Dict[str, ScreenedValue] = {}
        for policy in policies:
            row[policy.name] = _entry_value(entries[index])
            index += 1
        table.rows[workload.name] = row
    return table
