"""ASCII curve plots: the paper's figures, in a terminal.

The paper's results are mostly line plots (MCPI vs scheduled load
latency, one curve per hardware organization).  This module renders
that family as fixed-width character plots so `python -m
repro.experiments` output can show curve *shape*, not just numbers.

The renderer is deliberately simple: linear y-axis, x positions taken
from the sample index (the paper's latency axis {1,2,3,6,10,20} is
also index-spaced in its figures), one marker letter per series, and a
legend mapping letters to series labels.  Colliding points print the
marker of the later series.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.errors import ConfigurationError

#: Marker letters assigned to series in order.
MARKERS = "abcdefghijklmnopqrstuvwxyz"


def render_curves(
    x_values: Sequence[float],
    series: Sequence[Tuple[str, Sequence[float]]],
    height: int = 16,
    width_per_point: int = 6,
    y_label: str = "MCPI",
    x_label: str = "scheduled load latency",
) -> str:
    """Render line series as an ASCII plot with a legend.

    ``series`` is ``(label, values)`` pairs, each ``values`` parallel
    to ``x_values``.
    """
    if not series:
        raise ConfigurationError("render_curves needs at least one series")
    if height < 4:
        raise ConfigurationError("plot height must be at least 4 rows")
    if len(series) > len(MARKERS):
        raise ConfigurationError("too many series to label")
    n = len(x_values)
    for label, values in series:
        if len(values) != n:
            raise ConfigurationError(
                f"series '{label}' has {len(values)} points, expected {n}"
            )

    y_max = max(max(values) for _, values in series)
    y_min = min(min(values) for _, values in series)
    if y_max == y_min:
        y_max = y_min + 1.0  # flat curves still render

    def row_of(value: float) -> int:
        frac = (value - y_min) / (y_max - y_min)
        return (height - 1) - round(frac * (height - 1))

    width = (n - 1) * width_per_point + 1
    grid: List[List[str]] = [[" "] * width for _ in range(height)]
    for series_idx, (label, values) in enumerate(series):
        marker = MARKERS[series_idx]
        for i, value in enumerate(values):
            grid[row_of(value)][i * width_per_point] = marker

    lines: List[str] = []
    for row_idx, row in enumerate(grid):
        if row_idx == 0:
            prefix = f"{y_max:8.3f} |"
        elif row_idx == height - 1:
            prefix = f"{y_min:8.3f} |"
        else:
            prefix = " " * 8 + " |"
        lines.append(prefix + "".join(row))
    lines.append(" " * 9 + "+" + "-" * width)

    # x tick labels under their columns.
    ticks = [" "] * (width + 10)
    for i, x in enumerate(x_values):
        text = str(x)
        start = 10 + i * width_per_point
        ticks[start:start + len(text)] = list(text)
    lines.append("".join(ticks).rstrip())
    lines.append(" " * 10 + x_label + f"   (y: {y_label})")

    legend = "   ".join(
        f"{MARKERS[i]}={label}" for i, (label, _) in enumerate(series)
    )
    lines.append(" " * 10 + legend)
    return "\n".join(lines)


def render_sweep(sweep, height: int = 16) -> str:
    """Render a :class:`repro.sim.sweep.CurveSweep` as an ASCII plot."""
    series = [
        (name, [r.mcpi for r in results])
        for name, results in sweep.results.items()
    ]
    return render_curves(list(sweep.latencies), series, height=height)
