"""Per-benchmark dossiers: everything the paper says about one program.

The paper's Section 4 walks through doduc, xlisp, eqntott, tomcatv and
su2cor one at a time, combining their MCPI curves, stall breakdowns,
miss rates and in-flight histograms.  ``benchmark_report`` assembles
the same dossier for any workload model: the static audit, the curve
family (as a table and an ASCII plot), the latency-10 stall
decomposition, and the in-flight histograms.

Exposed on the command line as ``python -m repro report <benchmark>``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.analysis.ascii_plot import render_sweep
from repro.analysis.tables import format_interval, format_table
from repro.core.policies import MSHRPolicy, baseline_policies
from repro.sim.config import MachineConfig, baseline_config
from repro.sim.sweep import PAPER_LATENCIES, run_curves
from repro.workloads.workload import Workload


def benchmark_report(
    workload: Workload,
    scale: float = 0.5,
    base: Optional[MachineConfig] = None,
    policies: Optional[Sequence[MSHRPolicy]] = None,
    latencies: Sequence[int] = PAPER_LATENCIES,
    focus_latency: int = 10,
    fidelity: Optional[str] = None,
) -> str:
    """Render the full dossier for one workload as text.

    ``fidelity`` picks the evaluation tier (default ``exact``, the
    full simulated dossier).  At ``screen`` fidelity the curve family
    comes from the analytical bounds alone -- interval cells are
    annotated with their bound width rather than passed off as point
    estimates -- and the sections that need replay statistics (stall
    decomposition, in-flight occupancy) are omitted with a note.
    """
    from repro.analysis.screen import resolve_fidelity

    if base is None:
        base = baseline_config()
    if policies is None:
        policies = baseline_policies()
    fid = resolve_fidelity(fidelity, default="exact")
    if fid.name == "screen":
        return _screened_report(workload, scale, base, policies,
                                latencies, focus_latency)
    parts: List[str] = []

    parts.append(f"=== {workload.name}: {workload.description} ===")

    # -- static profile --------------------------------------------------------
    from repro.workloads.audit import audit_workload

    parts.append(audit_workload(workload, load_latency=focus_latency,
                                geometry=base.geometry).describe())

    # -- the curve family --------------------------------------------------------
    sweep = run_curves(workload, policies, latencies=latencies, base=base,
                       scale=scale)
    headers = ["load latency"] + [p.name for p in policies]
    rows: List[List[object]] = []
    for i, lat in enumerate(sweep.latencies):
        rows.append([lat] + [sweep.results[p.name][i].mcpi for p in policies])
    parts.append(format_table(headers, rows,
                              title=f"MCPI vs scheduled load latency "
                                    f"({base.geometry.describe()}, "
                                    f"penalty {base.effective_penalty})"))
    parts.append(render_sweep(sweep))

    # -- stall decomposition at the focus latency ------------------------------
    try:
        focus_idx = list(sweep.latencies).index(focus_latency)
    except ValueError:
        focus_idx = len(sweep.latencies) - 1
        focus_latency = sweep.latencies[focus_idx]
    decomp_rows: List[List[object]] = []
    for policy in policies:
        result = sweep.results[policy.name][focus_idx]
        miss = result.miss
        decomp_rows.append([
            policy.name,
            result.mcpi,
            result.truedep_mcpi,
            result.structural_mcpi,
            round(100 * miss.load_miss_rate, 2),
            round(100 * miss.secondary_miss_rate, 2),
            miss.structural_misses,
        ])
    parts.append(format_table(
        ["policy", "MCPI", "truedep", "structural", "miss %", "sec %",
         "struct-stall misses"],
        decomp_rows,
        title=f"Stall decomposition at scheduled latency {focus_latency}",
    ))

    # -- in-flight occupancy under the unrestricted organization ---------------
    unrestricted = sweep.results[policies[-1].name][focus_idx]
    miss = unrestricted.miss
    hist_rows = []
    for kind, pct, dist, peak in (
        ("misses", miss.pct_time_misses_inflight,
         miss.miss_inflight_distribution(), miss.max_misses_inflight),
        ("fetches", miss.pct_time_fetches_inflight,
         miss.fetch_inflight_distribution(), miss.max_fetches_inflight),
    ):
        hist_rows.append([kind, round(100 * pct)]
                         + [round(100 * p) for p in dist] + [peak])
    parts.append(format_table(
        ["kind", "% time >0"] + [str(i) for i in range(1, 7)] + ["7+", "max"],
        hist_rows,
        title=f"In-flight occupancy, {policies[-1].name}, "
              f"latency {focus_latency}",
    ))

    return "\n\n".join(parts)


def _screened_report(
    workload: Workload,
    scale: float,
    base: MachineConfig,
    policies: Sequence[MSHRPolicy],
    latencies: Sequence[int],
    focus_latency: int,
) -> str:
    """The dossier at screen fidelity: bounds only, honestly labelled."""
    from repro.analysis.screen import run_screen_table
    from repro.workloads.audit import audit_workload

    parts: List[str] = []
    parts.append(f"=== {workload.name}: {workload.description} "
                 f"(screen fidelity: analytical bounds, no replay) ===")
    parts.append(audit_workload(workload, load_latency=focus_latency,
                                geometry=base.geometry).describe())

    headers = ["load latency"] + [p.name for p in policies]
    rows: List[List[object]] = []
    for lat in latencies:
        table = run_screen_table([workload], policies, load_latency=lat,
                                 base=base, scale=scale, fidelity="screen")
        row: List[object] = [lat]
        for p in policies:
            low, high = table.bounds(workload.name, p.name)
            row.append(format_interval(low, high))
        rows.append(row)
    parts.append(format_table(
        headers, rows,
        title=f"MCPI bounds vs scheduled load latency "
              f"({base.geometry.describe()}, "
              f"penalty {base.effective_penalty}); "
              f"low~high cells are interval estimates",
    ))
    parts.append("stall decomposition and in-flight occupancy need exact "
                 "simulation; rerun at exact fidelity for the full dossier")
    return "\n\n".join(parts)
