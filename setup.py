"""Setup shim.

The environment has setuptools 65 but no `wheel` package, so PEP-517
editable installs (`pip install -e .`) cannot build a wheel.  This shim
lets `pip install -e . --no-build-isolation` fall back to the legacy
`setup.py develop` path, and `python setup.py develop` work directly.
All real metadata lives in pyproject.toml.
"""
from setuptools import setup

setup()
