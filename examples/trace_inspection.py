"""Watch the lockup-free cache make decisions, access by access.

Aggregate MCPI numbers say *how much* non-blocking hardware helps;
this example shows *how*.  It records the first accesses of a
benchmark under three organizations and prints them side by side:

* under a blocking cache every miss freezes the pipeline;
* under hit-under-miss (``mc=1``) the first miss proceeds, and you can
  watch the second one turn into a structural stall;
* unrestricted, clustered misses become primary+secondary groups whose
  fills land while the pipeline keeps issuing.

It finishes with the workload audit: the static profile that explains
why the accesses behave as they do.

Run with::

    python examples/trace_inspection.py [benchmark] [--count 25]
"""

from __future__ import annotations

import argparse

from repro import baseline_config, blocking_cache, get_benchmark, mc, no_restrict
from repro.sim.tracelog import format_access_log, record_accesses
from repro.workloads.audit import audit_workload


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("benchmark", nargs="?", default="tomcatv")
    parser.add_argument("--count", type=int, default=25,
                        help="accesses to show per organization")
    parser.add_argument("--latency", type=int, default=10)
    args = parser.parse_args()

    workload = get_benchmark(args.benchmark)
    print(f"benchmark: {workload.name} -- {workload.description}\n")

    for policy in (blocking_cache(), mc(1), no_restrict()):
        records = record_accesses(
            workload, baseline_config(policy),
            load_latency=args.latency, limit=args.count,
        )
        span = records[-1].issue_cycle if records else 0
        print(f"--- {policy.name}: first {len(records)} accesses "
              f"(reaching cycle {span}) ---")
        print(format_access_log(records))
        stalls = sum(r.stall_cycles for r in records)
        print(f"    pipeline-hold cycles across these accesses: {stalls}\n")

    print("--- why: the workload's static profile ---")
    print(audit_workload(workload, load_latency=args.latency).describe())


if __name__ == "__main__":
    main()
