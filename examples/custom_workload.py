"""Build a custom workload from scratch and study it.

This example shows the full public pipeline a downstream user would
follow to evaluate non-blocking load hardware against *their own*
loop:

1. describe the loop body with :class:`KernelBuilder` (virtual
   registers, loads/stores against named address streams);
2. bind each stream to an address pattern (here: a blocked matrix
   sweep and a small lookup table);
3. wrap both in a :class:`Workload` and sweep hardware policies and
   scheduled load latencies.

The kernel below is a sparse-ish "axpy with a gather": it streams one
vector, gathers scale factors through an index table, and writes the
result -- a shape whose misses partially overlap.
"""

from __future__ import annotations

from repro import MachineConfig, baseline_config, simulate
from repro.analysis import curve_table
from repro.compiler import KernelBuilder, RegClass
from repro.core import baseline_policies
from repro.sim.sweep import PAPER_LATENCIES, run_curves
from repro.workloads import HotCold, Strided, Workload, segment_base


def build_workload() -> Workload:
    b = KernelBuilder("gather-axpy")
    vec = b.declare_stream()      # streaming vector, unit stride
    table = b.declare_stream()    # small scale-factor table
    out = b.declare_stream()      # result vector

    x = b.load(vec, cls=RegClass.FP)              # x = X[i]
    scale = b.load(table, cls=RegClass.FP)        # s = S[idx]
    prod = b.fop(x, scale)                        # p = x * s
    acc = b.vreg(RegClass.FP)                     # loop-carried sum
    total = b.fop(prod, acc, dst=acc)             # acc += p
    b.store(out, total)                           # Y[i] = acc

    kernel = b.build()
    patterns = {
        vec: Strided(segment_base(0), 8, 4 * 1024 * 1024),
        table: HotCold(segment_base(1), 2048, 64 * 1024, hot_fraction=0.9),
        out: Strided(segment_base(2), 8, 4 * 1024 * 1024),
    }
    return Workload(
        name="gather-axpy",
        kernel=kernel,
        patterns=patterns,
        iterations=8000,
        max_unroll=8,
        description="unit-stride stream plus a 90%-hot gather table",
    )


def main() -> None:
    workload = build_workload()
    print(workload.kernel.render())
    print()

    policies = baseline_policies()
    sweep = run_curves(workload, policies, latencies=PAPER_LATENCIES,
                       base=baseline_config(), scale=0.5)
    series = [(p.name, sweep.mcpi_curve(p.name)) for p in policies]
    print(curve_table(list(sweep.latencies), series))

    # Zoom in on one configuration for the detailed statistics.
    from repro.core import mc

    result = simulate(workload, baseline_config(mc(1)), load_latency=10,
                      scale=0.5)
    miss = result.miss
    print(f"\nhit-under-miss at latency 10: MCPI {result.mcpi:.3f}")
    print(f"  loads/instr {result.loads_per_instruction:.3f}, "
          f"miss rate {100 * miss.load_miss_rate:.1f}%")
    print(f"  stall split: {result.truedep_mcpi:.3f} true-dependency, "
          f"{result.structural_mcpi:.3f} structural")
    print(f"  time with >0 misses in flight: "
          f"{100 * miss.pct_time_misses_inflight:.0f}%")


if __name__ == "__main__":
    main()
