"""Inside the compiler: what "scheduling for the miss" actually does.

The paper's closing point is that non-blocking hardware is only as
good as the compiler feeding it: loads must be scheduled for the miss
latency, not the hit latency.  This example opens up the compiler
pipeline for one benchmark and shows, per scheduled load latency:

* the unroll factor and body size the compiler chose,
* the achieved load-to-first-use distances,
* spill counts (register allocation runs after scheduling -- the
  Figure 4 effect), and
* the resulting MCPI on hit-under-miss vs unrestricted hardware.

Run with::

    python examples/compiler_latency_study.py [benchmark]
"""

from __future__ import annotations

import argparse
from statistics import mean

from repro import baseline_config, get_benchmark, simulate
from repro.analysis import format_table
from repro.compiler import load_use_distances, unroll
from repro.core import mc, no_restrict
from repro.sim.simulator import compile_workload
from repro.sim.sweep import PAPER_LATENCIES


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("benchmark", nargs="?", default="tomcatv")
    parser.add_argument("--scale", type=float, default=0.5)
    args = parser.parse_args()

    workload = get_benchmark(args.benchmark)
    print(f"benchmark: {workload.name} -- {workload.description}\n")

    rows = []
    for latency in PAPER_LATENCIES:
        compiled = compile_workload(workload, latency)
        body = unroll(workload.kernel, compiled.unroll_factor)
        distances = load_use_distances(body, compiled.schedule)
        hum = simulate(workload, baseline_config(mc(1)),
                       load_latency=latency, scale=args.scale)
        best = simulate(workload, baseline_config(no_restrict()),
                        load_latency=latency, scale=args.scale)
        rows.append([
            latency,
            compiled.unroll_factor,
            compiled.num_instructions,
            round(mean(distances.values()), 1) if distances else None,
            max(distances.values()) if distances else None,
            compiled.spill_count,
            hum.mcpi,
            best.mcpi,
        ])

    print(format_table(
        ["sched latency", "unroll", "body instrs", "avg load-use dist",
         "max dist", "spills", "MCPI mc=1", "MCPI no-restrict"],
        rows,
    ))
    print(
        "\nThe scheduled load latency is a *compiler* parameter: the "
        "machine's hit latency is always 1 cycle.  Larger values push "
        "loads earlier (bigger load-use distances), which is what lets "
        "the non-blocking hardware overlap misses with execution."
    )


if __name__ == "__main__":
    main()
