"""Explore the MSHR complexity/performance design space.

The paper's core question: how many storage bits does each increment
of non-blocking performance cost?  This example evaluates the design
catalogue of :mod:`repro.analysis.designspace` on a benchmark, prints
every point with its Section 2 storage price, marks the (bits, MCPI)
Pareto frontier, reports the marginal utility of each frontier upgrade
(MCPI gained per added kilobit), and answers a budget query.

Run with::

    python examples/mshr_design_space.py [benchmark] [--budget-bits 256]
"""

from __future__ import annotations

import argparse

from repro import baseline_config, get_benchmark
from repro.analysis import format_table
from repro.analysis.designspace import (
    best_under_budget,
    evaluate_designs,
    marginal_utilities,
    pareto_frontier,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("benchmark", nargs="?", default="doduc")
    parser.add_argument("--scale", type=float, default=0.5)
    parser.add_argument("--latency", type=int, default=10)
    parser.add_argument("--budget-bits", type=int, default=256,
                        help="storage budget for the budget query")
    args = parser.parse_args()

    workload = get_benchmark(args.benchmark)
    points = evaluate_designs(workload, baseline_config(),
                              load_latency=args.latency, scale=args.scale)
    frontier = pareto_frontier(points)
    on_frontier = {p.description for p in frontier}

    reference = min(p.mcpi for p in points)
    rows = []
    for p in sorted(points, key=lambda q: q.storage_bits):
        rows.append([
            p.description,
            p.policy.name,
            p.storage_bits,
            p.mcpi,
            round(p.mcpi / reference, 2) if reference else None,
            "*" if p.description in on_frontier else "",
        ])

    print(f"design space for {workload.name} at load latency "
          f"{args.latency}\n")
    print(format_table(
        ["design", "policy", "storage bits", "MCPI", "x vs best", "pareto"],
        rows,
    ))

    print("\nfrontier upgrades (MCPI gained per extra kilobit):")
    for upgrade, utility in zip(frontier[1:], marginal_utilities(frontier)):
        print(f"  -> {upgrade.description:28s} "
              f"{upgrade.storage_bits:5d} bits   {utility:7.3f} MCPI/kbit")

    best = best_under_budget(points, args.budget_bits)
    print(f"\nbest design under {args.budget_bits} bits: "
          f"{best.description} ({best.policy.name}), "
          f"MCPI {best.mcpi:.3f}")
    print(
        "\nThe paper's conclusion shows up here: for integer codes the "
        "single-field MSHR is already on the frontier; numeric codes "
        "justify more."
    )


if __name__ == "__main__":
    main()
