"""Extrapolating Section 5.3: non-blocking loads against the memory wall.

The paper's Figure 18 stops at a 128-cycle miss penalty and observes
that lockup-free MCPI grows *non-linearly*: cheap at small penalties,
converging back toward blocking behaviour as the overlap budget runs
out.  The paper was written in 1994, when 16 cycles was a realistic
penalty; this example pushes the sweep to 512 cycles — the "memory
wall" regime the introduction's widening-gap trend was pointing at —
and reports, per penalty:

* the MCPI of blocking, hit-under-miss, and unrestricted hardware, and
* the fraction of the blocking penalty each non-blocking organization
  still hides.

The structural lesson is visible by the end of the sweep: with a fixed
in-flight budget and a fixed schedule, the *hidden fraction* decays
toward a constant set by the overlap the code exposes, so non-blocking
loads alone cannot absorb an arbitrarily slow memory.

Run with::

    python examples/memory_wall.py [benchmark]
"""

from __future__ import annotations

import argparse

from repro import blocking_cache, get_benchmark, mc, no_restrict
from repro.analysis import format_table, render_curves
from repro.sim.sweep import run_penalty_sweep

PENALTIES = (4, 8, 16, 32, 64, 128, 256, 512)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("benchmark", nargs="?", default="tomcatv")
    parser.add_argument("--scale", type=float, default=0.5)
    parser.add_argument("--latency", type=int, default=10)
    args = parser.parse_args()

    workload = get_benchmark(args.benchmark)
    policies = [blocking_cache(), mc(1), mc(4), no_restrict()]
    sweep = run_penalty_sweep(workload, policies, PENALTIES,
                              load_latency=args.latency, scale=args.scale)

    rows = []
    for penalty in PENALTIES:
        blocking = sweep["mc=0"][penalty].mcpi
        row = [penalty, blocking]
        for name in ("mc=1", "mc=4", "no restrict"):
            value = sweep[name][penalty].mcpi
            hidden = 1.0 - value / blocking if blocking else 0.0
            row.extend([value, round(100 * hidden, 1)])
        rows.append(row)

    print(f"{workload.name}: MCPI vs miss penalty "
          f"(scheduled latency {args.latency})\n")
    print(format_table(
        ["penalty", "mc=0", "mc=1", "hidden %", "mc=4", "hidden %",
         "no restrict", "hidden %"],
        rows,
    ))

    print()
    series = [
        (name, [sweep[name][p].mcpi for p in PENALTIES])
        for name in ("mc=0", "mc=1", "no restrict")
    ]
    print(render_curves(list(PENALTIES), series,
                        x_label="miss penalty (cycles)"))
    print(
        "\nReading the sweep: at small penalties the lockup-free cache "
        "hides nearly everything; as the penalty grows the hidden "
        "fraction decays toward the overlap the schedule exposes, and "
        "every organization converges back to memory-bound behaviour."
    )


if __name__ == "__main__":
    main()
