"""Quickstart: measure what non-blocking loads buy on one benchmark.

Runs the tomcatv model on the paper's baseline system (8KB
direct-mapped data cache, 32-byte lines, 16-cycle miss penalty) under
the whole spectrum of miss-handling hardware, from a lockup cache to
an inverted-MSHR organization, and prints the miss CPI for each.

Run with::

    python examples/quickstart.py [benchmark] [--scale 1.0]
"""

from __future__ import annotations

import argparse

from repro import (
    baseline_config,
    baseline_policies,
    get_benchmark,
    simulate,
)
from repro.analysis import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("benchmark", nargs="?", default="tomcatv",
                        help="SPEC92 model name (default: tomcatv)")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="run-length multiplier")
    parser.add_argument("--latency", type=int, default=10,
                        help="scheduled load latency (compiler knob)")
    args = parser.parse_args()

    workload = get_benchmark(args.benchmark)
    print(f"benchmark: {workload.name} -- {workload.description}")
    print(f"scheduled load latency: {args.latency}\n")

    rows = []
    reference = None
    for policy in baseline_policies():
        result = simulate(
            workload,
            baseline_config(policy),
            load_latency=args.latency,
            scale=args.scale,
        )
        if policy.name == "no restrict":
            reference = result.mcpi
        rows.append([
            policy.name,
            result.mcpi,
            round(100 * result.miss.load_miss_rate, 1),
            result.miss.primary_misses,
            result.miss.secondary_misses,
            result.miss.structural_misses,
        ])

    # Add the paper's favourite summary: the ratio to unrestricted.
    for row in rows:
        mcpi = row[1]
        row.insert(2, round(mcpi / reference, 2) if reference else None)

    print(format_table(
        ["organization", "MCPI", "x vs unrestricted", "miss rate %",
         "primary", "secondary", "structural"],
        rows,
    ))
    print(
        "\nReading the table: 'mc=N' allows N outstanding misses, 'fc=N' "
        "N outstanding fetches with unlimited merged (secondary) misses, "
        "'no restrict' is the paper's inverted-MSHR organization."
    )


if __name__ == "__main__":
    main()
