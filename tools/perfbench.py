"""Benchmark the execution engine and the memoized sweep pipeline.

Three measurements, mirroring the acceptance targets of
``docs/performance.md`` and ``docs/caching.md``:

* **serial throughput** -- simulated instructions per second for the
  optimized engine vs the reference loops, on hit-dominated workloads
  (where the fast path matters) and a miss-heavy one (where it must
  not hurt);
* **sweep wall-clock** -- a benchmarks x policies MCPI sweep through
  the cache-affine grouped pool vs the old one-task-per-cell pool
  running the reference engine;
* **sweep-cache wall-clock** -- a multi-figure cell suite executed
  cold (empty result store: every distinct cell simulated once) and
  warm (same store: a pure cache read), with bit-equality asserted
  between the two passes.

A fourth measurement covers **policy-sibling fusion** -- a cold
benchmarks x policies sweep with the fused stream-pass + replay engine
vs per-cell execution (``fusion=False``), results asserted
bit-identical; CI enforces a floor via ``--assert-speedup`` and the
payload lands in ``BENCH_fusion.json``.

A fifth covers the observability layer: **telemetry overhead** -- the
same serial workload suite timed with telemetry enabled and disabled,
results asserted bit-identical, and the relative cost reported (CI
enforces ``--assert-overhead 2``: spans and counters ride the per-cell
layer, never the per-instruction loops, so the cost must stay under
2%).

Engine results go to ``BENCH_engine.json``; the cold/warm comparison
goes to ``BENCH_sweepcache.json``.  Both payloads embed the process's
final telemetry snapshot under ``"telemetry"``, so a benchmark archive
carries its own cells-simulated/store-hit provenance.  All engine
timings use best-of-N over warmed compile/trace caches, so they
measure the engines, not numpy expansion.

Usage::

    python tools/perfbench.py [--scale 1.0] [--repeats 3] [--out FILE]
    python tools/perfbench.py --smoke        # tiny, for CI
    python tools/perfbench.py --smoke --assert-overhead 2

Smoke runs are CI wiring checks, not measurements: unless an output
path is given explicitly, ``--smoke`` writes its payloads under the
git-ignored ``bench-smoke/`` directory so they can never clobber the
committed full-run ``BENCH_*.json`` records.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import statistics
import tempfile
import time
from dataclasses import replace

from repro import telemetry
from repro.analysis import format_table
from repro.compiler.ir import KernelBuilder
from repro.core.policies import (
    baseline_policies,
    blocking_cache,
    mc,
    no_restrict,
    table13_policies,
)
from repro.sim.config import baseline_config
from repro.sim.parallel import (
    _ungrouped_submit,
    dispatch,
    pool_stats,
    shutdown_pool,
)
from repro.sim.planner import run_plan
from repro.sim.simulator import clear_caches
from repro.sim.resultstore import ResultStore
from repro.sim.simulator import simulate
from repro.workloads.patterns import Strided
from repro.workloads.spec92 import get_benchmark
from repro.workloads.workload import Workload


def make_hitloop(iterations: int = 200_000) -> Workload:
    """A fully cache-resident read-modify-write kernel.

    Loads and stores walk the same 4 KB region of the 8 KB cache, so
    after one lap every access -- stores included (the baseline is
    write-around, so stores only hit blocks loads installed) -- is a
    hit.  This is the engine's best case and the headline number.
    """
    builder = KernelBuilder("hitloop")
    s_in = builder.declare_stream()
    s_out = builder.declare_stream()
    x = builder.load(s_in)
    y = builder.fop(x)
    builder.store(s_out, y)
    return Workload(
        name="hitloop",
        kernel=builder.build(),
        patterns={
            s_in: Strided(0, 8, 4096),
            s_out: Strided(0, 8, 4096),
        },
        iterations=iterations,
        max_unroll=4,
    )


SMOKE_DIR = "bench-smoke"


def redirect_smoke_outputs(args, parser) -> None:
    """Point default output paths into the git-ignored smoke directory.

    The repository's committed ``BENCH_*.json`` files are full-run
    records; a ``--smoke`` pass must not overwrite them.  Paths the
    user set explicitly are left alone.
    """
    os.makedirs(SMOKE_DIR, exist_ok=True)
    for attr in ("out", "sweepcache_out", "pool_out", "fusion_out",
                 "native_out", "cnative_out", "fabric_out", "screen_out"):
        default = parser.get_default(attr)
        if getattr(args, attr) == default:
            setattr(args, attr, os.path.join(SMOKE_DIR, default))


def best_of(repeats: int, fn):
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def bench_serial(workloads, scale: float, repeats: int):
    """Instructions/second per engine for each workload."""
    rows = []
    for workload in workloads:
        fast = simulate(workload, load_latency=10, scale=scale,
                        fast_path=True)
        slow = simulate(workload, load_latency=10, scale=scale,
                        fast_path=False)
        if fast != slow:
            raise AssertionError(
                f"engine divergence on {workload.name}"
            )
        t_fast, _ = best_of(repeats, lambda: simulate(
            workload, load_latency=10, scale=scale, fast_path=True))
        t_ref, _ = best_of(repeats, lambda: simulate(
            workload, load_latency=10, scale=scale, fast_path=False))
        instr = fast.instructions
        rows.append({
            "workload": workload.name,
            "instructions": instr,
            "fast_ips": instr / t_fast,
            "ref_ips": instr / t_ref,
            "speedup": t_ref / t_fast,
        })
    return rows


def bench_sweep(workloads, scale: float, repeats: int, workers: int):
    """Wall-clock for a policy sweep: grouped+fast vs ungrouped+ref.

    Runs the same fixed workload set as the serial benchmark (plus two
    more SPEC models) across the policy spectrum, comparing the new
    dispatch (cache-affine groups, optimized engine) against the
    pre-PR path (one task per cell, reference engine).
    """
    policies = (blocking_cache(), mc(1), mc(2), no_restrict())
    base = baseline_config()
    cells = [
        (workload, base.with_policy(policy), 10, scale)
        for workload in workloads
        for policy in policies
    ]

    t_grouped, grouped = best_of(
        repeats, lambda: dispatch(cells, workers=workers)
    )

    def ungrouped_reference():
        os.environ["REPRO_FASTPATH"] = "0"
        try:
            return _ungrouped_submit(cells, workers=workers)
        finally:
            del os.environ["REPRO_FASTPATH"]

    t_ungrouped, ungrouped = best_of(repeats, ungrouped_reference)
    if grouped != ungrouped:
        raise AssertionError("parallel sweep diverged from reference")
    return {
        "cells": len(cells),
        "workers": workers,
        "grouped_fast_seconds": t_grouped,
        "ungrouped_ref_seconds": t_ungrouped,
        "speedup": t_ungrouped / t_grouped,
    }


def figure_suite_chunks(scale: float):
    """Three figure-shaped sweeps with realistic cross-figure overlap.

    A slice of the fig5-style curves, the fig13 table, and the fig18
    penalty sweep, as the three separate dispatches an ``experiments
    all`` run would issue: the table's latency-10 row and the curves
    share traces, and the unrestricted/blocking baselines recur
    everywhere -- the overlap the persistent pool and trace plane
    exist to exploit.
    """
    base = baseline_config()
    curves = []
    for bench in ("doduc", "xlisp"):
        workload = get_benchmark(bench)
        for policy in baseline_policies():
            for latency in (1, 3, 10):
                curves.append((workload, base.with_policy(policy),
                               latency, scale))
    table = []
    for bench in ("doduc", "xlisp", "eqntott", "ora"):
        workload = get_benchmark(bench)
        for policy in table13_policies():
            table.append((workload, base.with_policy(policy), 10, scale))
    penalty = []
    workload = get_benchmark("doduc")
    for policy in (blocking_cache(), no_restrict()):
        for pen in (8, 16, 32):
            penalty.append((workload,
                            replace(base, policy=policy, miss_penalty=pen),
                            10, scale))
    return [curves, table, penalty]


def figure_suite_cells(scale: float):
    """The chunks of :func:`figure_suite_chunks` as one flat cell list."""
    return [cell for chunk in figure_suite_chunks(scale) for cell in chunk]


def bench_sweepcache(scale: float, workers: int, repeats: int):
    """Cold vs warm wall-clock for a multi-figure sweep.

    Cold: empty store, every distinct cell simulated once.  Warm: the
    same plan against the now-populated store -- zero simulations.
    Both passes must be bit-identical to each other and to a direct
    ``simulate`` call (spot-checked on one cell).
    """
    cells = figure_suite_cells(scale)
    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as tmp:
        store = ResultStore(tmp)

        t0 = time.perf_counter()
        cold_results, cold_report = run_plan(cells, workers=workers,
                                             store=store)
        t_cold = time.perf_counter() - t0

        t_warm = float("inf")
        warm_results, warm_report = None, None
        for _ in range(max(1, repeats)):
            t0 = time.perf_counter()
            warm_results, warm_report = run_plan(cells, workers=workers,
                                                 store=store)
            t_warm = min(t_warm, time.perf_counter() - t0)

        if warm_results != cold_results:
            raise AssertionError("warm sweep diverged from cold sweep")
        if warm_report.simulated != 0:
            raise AssertionError(
                f"warm sweep re-simulated {warm_report.simulated} cells"
            )
        spot_workload, spot_config, spot_latency, spot_scale = cells[0]
        direct = simulate(spot_workload, spot_config,
                          load_latency=spot_latency, scale=spot_scale)
        if direct != warm_results[0]:
            raise AssertionError("cached result diverged from simulate()")

    return {
        "cells": len(cells),
        "unique_cells": cold_report.unique,
        "deduplicated": cold_report.deduplicated,
        "workers": workers,
        "cold_seconds": t_cold,
        "warm_seconds": t_warm,
        "speedup": t_cold / t_warm,
        "warm_simulations": warm_report.simulated,
        "bit_identical": True,
    }


def bench_pool(scale: float, workers: int, repeats: int):
    """Cold multi-sweep wall-clock: persistent pool + trace plane vs
    fresh pools + per-worker expansion.

    Runs the three figure-shaped sweeps of :func:`figure_suite_chunks`
    as consecutive dispatches, the way ``experiments all`` issues
    them.  The new path keeps one warm pool across all three and
    publishes each trace once into shared memory; the baseline is the
    pre-PR behaviour -- a fresh ``ProcessPoolExecutor`` per dispatch,
    every worker re-expanding its group's trace.  Parent caches are
    cleared and the pool torn down before every pass, so both sides
    start cold.  Results are asserted bit-identical to each other and
    to serial ``simulate`` calls.
    """
    chunks = figure_suite_chunks(scale)

    def run_multi(reuse: bool, plane: bool):
        clear_caches()
        shutdown_pool()
        try:
            return [
                dispatch(chunk, workers=workers, reuse_pool=reuse,
                          trace_plane=plane)
                for chunk in chunks
            ]
        finally:
            shutdown_pool()

    t_new, new = best_of(repeats, lambda: run_multi(True, True))
    t_base, base = best_of(repeats, lambda: run_multi(False, False))
    if new != base:
        raise AssertionError("trace-plane sweep diverged from baseline pool")
    clear_caches()
    serial = [
        [simulate(w, c, load_latency=latency, scale=s)
         for w, c, latency, s in chunk]
        for chunk in chunks
    ]
    if new != serial:
        raise AssertionError("pooled sweep diverged from serial simulate()")
    return {
        "sweeps": len(chunks),
        "cells": sum(len(chunk) for chunk in chunks),
        "workers": workers,
        "persistent_plane_seconds": t_new,
        "fresh_baseline_seconds": t_base,
        "speedup": t_base / t_new,
        "bit_identical": True,
        "pool": pool_stats(),
    }


def bench_fabric(scale: float, workers: int, repeats: int):
    """Coordinator overhead: socket fabric vs in-process pool, warm.

    Starts ``workers`` real ``python -m repro worker`` subprocesses on
    loopback and times the Figure 13 plan through the
    :class:`~repro.sim.fabric.FabricCoordinator` against the same
    plan through the in-process pool backend at equal parallelism.
    Both sides get one untimed warm-up dispatch first (persistent
    pool workers and fabric workers alike keep compile/trace caches
    between dispatches), so the measured difference is the fabric's
    true per-dispatch cost: wire encoding, TCP round trips, and
    shard bookkeeping.  Results are asserted bit-identical to serial
    across all three paths.
    """
    import subprocess
    import sys as _sys
    from pathlib import Path

    from repro.sim.fabric import FabricCoordinator
    from repro.workloads.spec92 import all_benchmarks

    base = baseline_config()
    cells = [
        (workload, base.with_policy(policy), 10, scale)
        for workload in all_benchmarks()
        for policy in table13_policies()
    ]

    clear_caches()
    serial = [simulate(w, c, load_latency=latency, scale=s)
              for w, c, latency, s in cells]

    repo_root = Path(__file__).resolve().parent.parent
    env = dict(os.environ)
    env["PYTHONPATH"] = str(repo_root / "src")

    def start_worker():
        proc = subprocess.Popen(
            [_sys.executable, "-m", "repro", "worker", "--port", "0"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env, cwd=str(repo_root),
        )
        line = proc.stdout.readline()
        if not line.startswith("listening on "):
            proc.kill()
            raise RuntimeError(f"worker failed to start: {line!r}")
        address = line.split("listening on ", 1)[1].strip()
        host, _sep, port = address.rpartition(":")
        return proc, (host, int(port))

    procs = []
    try:
        procs = [start_worker() for _ in range(workers)]
        addresses = [address for _proc, address in procs]

        def fabric_run():
            return FabricCoordinator(addresses).run(cells)

        def pool_run():
            return dispatch(cells, backend="pool", workers=workers)

        fabric_warm = fabric_run()  # untimed: warms worker caches
        pool_warm = pool_run()      # untimed: warms pool worker caches
        # Interleave the timed repeats, alternating which side goes
        # first: container CPU speed drifts far more between separate
        # measurement phases than between back-to-back runs, and a
        # phase-per-side layout turns that drift straight into fake
        # overhead (or fake speedup).  Best-of over alternating pairs
        # samples both sides under the same conditions.
        t_fabric = t_pool = float("inf")
        fabric_results = pool_results = None
        for repeat in range(repeats):
            sides = [("fabric", fabric_run), ("pool", pool_run)]
            if repeat % 2:
                sides.reverse()
            for side, fn in sides:
                t0 = time.perf_counter()
                results = fn()
                elapsed = time.perf_counter() - t0
                if side == "fabric":
                    t_fabric = min(t_fabric, elapsed)
                    fabric_results = results
                else:
                    t_pool = min(t_pool, elapsed)
                    pool_results = results
    finally:
        for proc, _address in procs:
            if proc.poll() is None:
                proc.kill()
            proc.wait(timeout=10)
        shutdown_pool()

    for label, results in (("fabric warm-up", fabric_warm),
                           ("fabric", fabric_results),
                           ("pool warm-up", pool_warm),
                           ("pool", pool_results)):
        if results != serial:
            raise AssertionError(f"{label} sweep diverged from serial")

    overhead = t_fabric / t_pool - 1.0
    return {
        "cells": len(cells),
        "workers": workers,
        "fabric_seconds": t_fabric,
        "pool_seconds": t_pool,
        "overhead_fraction": overhead,
        "overhead_percent": 100.0 * overhead,
        "bit_identical": True,
    }


def bench_fusion(scale: float, repeats: int, smoke: bool):
    """Cold multi-policy sweep: policy-sibling fusion vs per-cell runs.

    The fusion target workload: every baseline policy over every
    benchmark at one latency -- the Figure 13 shape, where each
    (workload, latency, scale, line size) group is shared by seven
    policy siblings.  Fused, the group's trace is expanded and its
    event stream built once, blocking siblings collapse to the
    functional closed form, and each non-blocking sibling runs only
    its compiled replay kernel; unfused (``fusion=False``, the PR 4
    baseline), every sibling re-executes the interpreter.  Caches are
    cleared before every pass so both sides start cold, and the two
    result lists are asserted bit-identical.

    As with the telemetry benchmark, the run length is floored at half
    the calibrated scale even in smoke mode: fusion amortizes per-group
    fixed costs (expansion, stream build, kernel compilation) over the
    replayed instructions, so microsecond cells measure only the fixed
    costs it exists to amortize.
    """
    from repro.workloads.spec92 import BENCHMARK_ORDER

    scale = max(scale, 0.5)
    names = (("eqntott", "espresso", "doduc", "ora", "tomcatv", "xlisp")
             if smoke else tuple(BENCHMARK_ORDER))
    policies = baseline_policies()
    base = baseline_config()
    cells = [
        (get_benchmark(name), base.with_policy(policy), 10, scale)
        for name in names
        for policy in policies
    ]

    def run(fusion: bool):
        clear_caches()
        return [
            simulate(workload, config, load_latency=latency, scale=s,
                     fusion=fusion)
            for workload, config, latency, s in cells
        ]

    t_fused, fused = best_of(repeats, lambda: run(True))
    t_unfused, unfused = best_of(repeats, lambda: run(False))
    if fused != unfused:
        raise AssertionError("fused sweep diverged from unfused execution")
    clear_caches()
    return {
        "benchmarks": len(names),
        "policies": len(policies),
        "cells": len(cells),
        "fused_seconds": t_fused,
        "unfused_seconds": t_unfused,
        "speedup": t_unfused / t_fused,
        "bit_identical": True,
    }


def bench_native(scale: float, repeats: int, smoke: bool):
    """Replay phase of a cold multi-policy sweep: native lane vs scalar.

    The native tier vectorizes exactly one thing -- quiescent all-hit
    execution runs -- so it is measured on its envelope: the
    hit-dominated suite (``hitloop`` plus the cache-resident integer
    models at the 64 KB corner, where after the cold start nearly
    every execution hits).  Streaming FP models miss in essentially
    every execution at every cache size, so no exact execution-level
    batching can help them; two of them are measured and reported as
    the honest "outside the envelope" number (``streaming_speedup``,
    ~1.0x, not gated).  See docs/performance.md, "Native replay
    tier".

    Per workload the group's trace and event stream are built once
    (the shared stream pass the fused tier already amortizes); the
    timed quantity is the per-policy replay sweep -- every
    non-blocking baseline policy through the scalar kernel vs through
    the native lane -- with both lanes' results asserted
    bit-identical.
    """
    from repro.cache.geometry import CacheGeometry
    from repro.cpu.replay import run_replay
    from repro.cpu.replay_native import native_supported, run_native
    from repro.sim import stream as stream_mod
    from repro.sim.config import MachineConfig
    from repro.sim.simulator import expand_workload

    scale = max(scale, 0.5)
    big = CacheGeometry(size=64 * 1024, line_size=32, associativity=1)
    base = baseline_config()
    # hitloop keeps its calibrated length even in smoke mode: the
    # vector lane's gain grows with run length, so a microsecond
    # hitloop would measure chunk-scan ramp-up, not the lane.  It is
    # synthetic and cheap (~70 ms per lane sweep), so the gate stays
    # meaningful at smoke scale.
    suite = [
        ("hitloop", make_hitloop(200_000), base.geometry, True),
        ("xlisp@64KB", get_benchmark("xlisp"), big, True),
        ("compress@64KB", get_benchmark("compress"), big, True),
        ("tomcatv", get_benchmark("tomcatv"), base.geometry, False),
        ("doduc", get_benchmark("doduc"), base.geometry, False),
    ]
    policies = [p for p in baseline_policies() if not p.blocking]

    clear_caches()
    rows = []
    totals = {True: [0.0, 0.0], False: [0.0, 0.0]}
    for label, workload, geometry, gated in suite:
        _, trace = expand_workload(workload, 10, scale=scale)
        stream = stream_mod.event_stream(workload, 10, scale,
                                         geometry.line_size)
        configs = [MachineConfig(geometry=geometry, policy=p)
                   for p in policies]
        assert all(native_supported(c) for c in configs)
        for config in configs:
            if run_native(stream, trace, config) != \
                    run_replay(stream, trace, config):
                raise AssertionError(
                    f"native lane diverged on {label}/{config.policy.name}"
                )

        def sweep_replay(run, configs=configs, stream=stream, trace=trace):
            for config in configs:
                run(stream, trace, config)

        t_py, _ = best_of(repeats, lambda: sweep_replay(run_replay))
        t_nat, _ = best_of(repeats, lambda: sweep_replay(run_native))
        rows.append({
            "cell": label,
            "gated": gated,
            "python_seconds": t_py,
            "native_seconds": t_nat,
            "speedup": t_py / t_nat,
        })
        totals[gated][0] += t_py
        totals[gated][1] += t_nat
    clear_caches()
    return {
        "suite": "hit-dominated (gated) + streaming (informational)",
        "policies": len(policies),
        "cells": len(suite) * len(policies),
        "rows": rows,
        "python_seconds": totals[True][0],
        "native_seconds": totals[True][1],
        "speedup": totals[True][0] / totals[True][1],
        "streaming_speedup": totals[False][0] / totals[False][1],
        "bit_identical": True,
    }


def bench_cnative(scale: float, repeats: int, smoke: bool):
    """Replay phase on the cells the vector lane declines: C vs scalar.

    The compiled-C tier exists for exactly the replayable cells the
    numpy lane cannot take -- set-associative geometries and the
    streaming models the stream-shape heuristic steers off the vector
    scan -- so it is measured on that envelope: two streaming FP
    models at the direct-mapped baseline corner and two
    set-associative corners.  Per workload the group's trace and
    event stream are built once; kernels are compiled (or loaded from
    the disk cache) during the bit-identity check, so the timed
    sweeps measure kernel execution, never compilation.

    Requires a working C compiler: a missing-toolchain environment
    would silently measure the scalar fallback against itself, so the
    bench refuses to run instead.
    """
    from repro.cache.geometry import FULLY_ASSOCIATIVE, CacheGeometry
    from repro.cpu import ckernel
    from repro.cpu.replay import run_replay
    from repro.cpu.replay_cnative import cnative_supported, run_cnative
    from repro.sim import stream as stream_mod
    from repro.sim.config import MachineConfig
    from repro.sim.simulator import expand_workload

    if not ckernel.kernels_available():
        raise SystemExit(
            "bench_cnative needs a C compiler (none found; set REPRO_CC)"
        )
    scale = max(scale, 0.5)
    base = baseline_config()
    assoc4 = CacheGeometry(size=8 * 1024, line_size=32, associativity=4)
    big2 = CacheGeometry(size=64 * 1024, line_size=32, associativity=2)
    full = CacheGeometry(size=8 * 1024, line_size=32,
                         associativity=FULLY_ASSOCIATIVE)
    suite = [
        ("tomcatv", get_benchmark("tomcatv"), base.geometry, "streaming"),
        ("doduc", get_benchmark("doduc"), base.geometry, "streaming"),
        ("eqntott@4way", get_benchmark("eqntott"), assoc4, "associative"),
        ("xlisp@64KB/2way", get_benchmark("xlisp"), big2, "associative"),
        ("compress@full", get_benchmark("compress"), full, "associative"),
    ]
    if smoke:
        suite = suite[:1] + suite[2:3]
    policies = [p for p in baseline_policies() if not p.blocking]

    clear_caches()
    rows = []
    total_py = total_c = 0.0
    for label, workload, geometry, kind in suite:
        _, trace = expand_workload(workload, 10, scale=scale)
        stream = stream_mod.event_stream(workload, 10, scale,
                                         geometry.line_size)
        configs = [MachineConfig(geometry=geometry, policy=p)
                   for p in policies]
        assert all(cnative_supported(c) for c in configs)
        # Compiles/loads every kernel the sweep needs, so the timed
        # passes below never pay a build.
        for config in configs:
            c_out = run_cnative(stream, trace, config)
            if c_out is None or c_out != run_replay(stream, trace, config):
                raise AssertionError(
                    f"C kernel diverged on {label}/{config.policy.name}"
                )

        def sweep_replay(run, configs=configs, stream=stream, trace=trace):
            for config in configs:
                run(stream, trace, config)

        t_py, _ = best_of(repeats, lambda: sweep_replay(run_replay))
        t_c, _ = best_of(repeats, lambda: sweep_replay(run_cnative))
        rows.append({
            "cell": label,
            "kind": kind,
            "python_seconds": t_py,
            "cnative_seconds": t_c,
            "speedup": t_py / t_c,
        })
        total_py += t_py
        total_c += t_c
    built = [k for k in ckernel.loaded_kernels() if k.built]
    compile_seconds = sum(k.compile_seconds for k in built)
    clear_caches()
    return {
        "suite": "vector-lane-declined cells (streaming + associative)",
        "policies": len(policies),
        "cells": len(suite) * len(policies),
        "compiler": ckernel.find_compiler(),
        "kernels_built": len(built),
        "compile_seconds": compile_seconds,
        "rows": rows,
        "python_seconds": total_py,
        "cnative_seconds": total_c,
        "speedup": total_py / total_c,
        "bit_identical": True,
    }


def bench_telemetry(workloads, scale: float, repeats: int):
    """Per-cell telemetry cost against realistic cell lengths.

    The instrumentation sits at cell granularity -- one span and a
    handful of counter increments per ``simulate`` call, independent of
    the cell's length -- so its overhead is a fixed per-cell cost
    diluted by however long the cell runs.  Wall-clocking the whole
    suite on vs off cannot resolve that cost on a shared machine: the
    delta is far below the run-to-run noise of multi-millisecond
    windows.  This measures the two factors separately, each where it
    is actually measurable:

    * the **fixed cost**, on a microscopic cell timed in CPU time over
      thousands of calls per sample with the garbage collector paused
      (its pauses dwarf the delta), where the per-call difference is
      orders of magnitude larger relative to the work;
    * the **realistic cell length**, as the telemetry-off suite's mean
      per-cell wall time, floored at half the calibrated scale even in
      smoke mode -- the budget is about cells of realistic length.

    ``overhead_percent`` is their ratio.  Bit-identity of results with
    telemetry on vs off is still asserted on the realistic suite.
    """
    repeats = max(repeats, 16)
    scale = max(scale, 0.5)

    def run_suite():
        return [simulate(workload, load_latency=10, scale=scale)
                for workload in workloads]

    micro = make_hitloop(200)
    micro_reps = 2000

    def micro_sample(enabled: bool) -> float:
        telemetry.set_enabled(enabled)
        t0 = time.process_time()
        for _ in range(micro_reps):
            simulate(micro, load_latency=10, scale=scale)
        return (time.process_time() - t0) / micro_reps

    gc_was_enabled = gc.isenabled()
    try:
        telemetry.set_enabled(True)
        results_on = run_suite()  # also warms compile/trace caches
        telemetry.set_enabled(False)
        results_off = run_suite()
        if results_on != results_off:
            raise AssertionError("telemetry changed simulation results")

        # factor 1: fixed per-cell cost.  Median of adjacent on/off
        # pair deltas, not a difference of independent minima: paired
        # samples run milliseconds apart and see the same machine
        # state, while each side's global minimum can come from a
        # different contention regime and skew the difference.
        micro_sample(True)  # warm the micro cell's caches
        gc.disable()
        deltas = []
        for _ in range(repeats):
            on = micro_sample(True)
            off = micro_sample(False)
            deltas.append(on - off)
        fixed_seconds = max(0.0, statistics.median(deltas))

        # factor 2: realistic cell length (telemetry off)
        gc.enable()
        telemetry.set_enabled(False)
        suite_seconds = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            run_suite()
            suite_seconds = min(suite_seconds, time.perf_counter() - t0)
    finally:
        if gc_was_enabled:
            gc.enable()
        telemetry.set_enabled(None)

    cell_seconds = suite_seconds / len(workloads)
    return {
        "fixed_us_per_cell": fixed_seconds * 1e6,
        "cell_ms": cell_seconds * 1e3,
        "overhead_percent": fixed_seconds / cell_seconds * 100.0,
        "bit_identical": True,
    }


def run_native_only(args) -> None:
    """The ``perfbench bench_native`` entry: native-lane gate only."""
    native = bench_native(args.scale, args.repeats, args.smoke)
    print(f"native replay lane (replay phase, best of {args.repeats}, "
          f"{native['policies']} policies/cell):\n")
    print(format_table(
        ["cell", "gated", "python ms", "native ms", "speedup"],
        [[r["cell"], "yes" if r["gated"] else "no",
          round(1e3 * r["python_seconds"], 1),
          round(1e3 * r["native_seconds"], 1),
          round(r["speedup"], 2)] for r in native["rows"]],
    ))
    print(f"\n  hit-dominated suite   : {native['speedup']:.2f}x")
    print(f"  streaming (not gated) : {native['streaming_speedup']:.2f}x")
    payload = {
        "scale": args.scale,
        "repeats": args.repeats,
        "smoke": args.smoke,
        "native": native,
        "telemetry": telemetry.snapshot(),
    }
    with open(args.native_out, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"\nwrote {args.native_out}")
    if args.assert_speedup is not None:
        if native["speedup"] < args.assert_speedup:
            raise SystemExit(
                f"native replay speedup {native['speedup']:.2f}x is below "
                f"the {args.assert_speedup:.2f}x floor"
            )
        print(f"native replay speedup meets the "
              f"{args.assert_speedup:.2f}x floor")


def run_cnative_only(args) -> None:
    """The ``perfbench bench_cnative`` entry: C-kernel gate only."""
    cnative = bench_cnative(args.scale, args.repeats, args.smoke)
    print(f"compiled-C replay kernels (replay phase, best of "
          f"{args.repeats}, {cnative['policies']} policies/cell):\n")
    print(format_table(
        ["cell", "kind", "python ms", "C ms", "speedup"],
        [[r["cell"], r["kind"],
          round(1e3 * r["python_seconds"], 1),
          round(1e3 * r["cnative_seconds"], 1),
          round(r["speedup"], 2)] for r in cnative["rows"]],
    ))
    print(f"\n  declined-cell suite : {cnative['speedup']:.2f}x")
    print(f"  compiler            : {cnative['compiler']}")
    print(f"  kernels built       : {cnative['kernels_built']} "
          f"({cnative['compile_seconds']:.3f}s, one-time, disk-cached)")
    payload = {
        "scale": args.scale,
        "repeats": args.repeats,
        "smoke": args.smoke,
        "cnative": cnative,
        "telemetry": telemetry.snapshot(),
    }
    with open(args.cnative_out, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"\nwrote {args.cnative_out}")
    if args.assert_speedup is not None:
        if cnative["speedup"] < args.assert_speedup:
            raise SystemExit(
                f"C replay speedup {cnative['speedup']:.2f}x is below "
                f"the {args.assert_speedup:.2f}x floor"
            )
        print(f"C replay speedup meets the "
              f"{args.assert_speedup:.2f}x floor")


def screen_design_catalogue(line_size: int = 32,
                            cache_size: int = 8 * 1024):
    """The studied design catalogue widened with its size ladders.

    ~27 priced designs per scenario; fs entries get a synthetic
    eight-entry price (the per-set limit has no single hardware cost,
    and any monotone pricing exercises the pruning loop the same way).
    """
    from repro.analysis.designspace import design_catalogue
    from repro.core.cost import (
        explicit_mshr_bits,
        hybrid_mshr_bits,
        inverted_mshr_cost,
    )
    from repro.core.policies import fc, fs, inverted, mc, with_layout

    catalogue = list(design_catalogue(line_size=line_size,
                                      cache_size=cache_size))
    for n in (3, 6, 8, 12, 16):
        catalogue.append((
            f"{n} single-field MSHRs", mc(n),
            n * explicit_mshr_bits(line_size, 1),
        ))
    for n in (3, 6, 8):
        catalogue.append((
            f"{n} four-field explicit MSHRs", fc(n),
            n * explicit_mshr_bits(line_size, 4),
        ))
    for n in (1, 2, 4):
        catalogue.append((
            f"fs={n} per-set limit", fs(n),
            8 * explicit_mshr_bits(line_size, 4),
        ))
    for n in (16, 35):
        catalogue.append((
            f"inverted MSHR ({n} dest)", inverted(n),
            inverted_mshr_cost(n, line_size).total_bits,
        ))
    catalogue.append((
        "16 hybrid 4x2 MSHRs", with_layout(4, 2),
        16 * hybrid_mshr_bits(line_size, 4, 2),
    ))
    catalogue.append((
        "lockup cache + write-allocate", blocking_cache(write_allocate=True),
        0,
    ))
    return catalogue


def bench_screen(scale: float, repeats: int, smoke: bool):
    """Screened (auto-fidelity) vs exhaustive design-space sweep.

    Builds a ~1000-cell synthetic design space (workloads x cache
    sizes x latencies, ~27 priced designs each), resolves every
    scenario's Pareto frontier twice -- through the analytical
    screening tier and exhaustively -- and asserts the frontiers are
    identical.  Runs are serial and store-cold (fresh temp store,
    cleared in-memory caches) so the wall-clock comparison measures
    the tiers, not the memoization.  The prune rate counts cells
    resolved without their own exact simulation (closed-form screens
    plus proof-dominated prunes).
    """
    from repro.analysis.designspace import DesignPoint, pareto_frontier
    from repro.analysis.screen import run_band
    from repro.cache.geometry import CacheGeometry
    from repro.sim.config import MachineConfig

    if smoke:
        workload_names = ("eqntott", "compress")
        cache_kbs = (8, 64)
        latencies = (10,)
    else:
        workload_names = ("eqntott", "compress", "espresso", "su2cor",
                          "tomcatv", "doduc")
        cache_kbs = (8, 64, 256)
        latencies = (3, 10, 20)
    catalogue = screen_design_catalogue()
    bits = [b for _, _, b in catalogue]
    scenarios = []
    for name in workload_names:
        workload = get_benchmark(name)
        for kb in cache_kbs:
            geometry = CacheGeometry(size=kb * 1024, line_size=32,
                                     associativity=1)
            for latency in latencies:
                cells = [
                    (workload,
                     MachineConfig(geometry=geometry, policy=policy,
                                   miss_penalty=16, issue_width=1),
                     latency, scale)
                    for _, policy, _ in catalogue
                ]
                scenarios.append((f"{name}/{kb}KB/lat{latency}", cells))

    def run_all(fidelity: str):
        outcome = []
        with tempfile.TemporaryDirectory(
                prefix="repro-bench-screen-") as tmp:
            store = ResultStore(tmp)
            clear_caches()
            for label, cells in scenarios:
                entries, report = run_band(cells, bits, fidelity=fidelity,
                                           store=store)
                outcome.append((label, entries, report))
        return outcome

    t_screen, screened = best_of(repeats, lambda: run_all("auto"))
    t_exact, exhaustive = best_of(repeats, lambda: run_all("exact"))

    def frontier_of(entries):
        points = []
        for entry, (description, policy, storage_bits) in zip(entries,
                                                              catalogue):
            if entry.result is not None:
                mcpi = entry.result.mcpi
            else:
                mcpi = entry.bounds.mcpi_high
            points.append(DesignPoint(description=description,
                                      policy=policy,
                                      storage_bits=storage_bits,
                                      mcpi=mcpi))
        return [(p.description, p.storage_bits, p.mcpi)
                for p in pareto_frontier(points)]

    rows = []
    total_cells = total_simulated = total_pruned = 0
    identical = True
    for (label, entries_s, report_s), (_, entries_e, _) in zip(
            screened, exhaustive):
        frontier_s = frontier_of(entries_s)
        frontier_e = frontier_of(entries_e)
        match = frontier_s == frontier_e
        identical = identical and match
        total_cells += report_s.cells
        total_simulated += report_s.simulated
        total_pruned += report_s.pruned
        rows.append({
            "scenario": label,
            "cells": report_s.cells,
            "closed_form": report_s.exact_screened,
            "pruned": report_s.pruned,
            "simulated": report_s.simulated,
            "waves": report_s.waves,
            "frontier": len(frontier_e),
            "frontier_identical": match,
        })
    if not identical:
        bad = [r["scenario"] for r in rows if not r["frontier_identical"]]
        raise AssertionError(
            f"screened frontier diverged from exhaustive in: {bad}"
        )
    prune_rate = 1.0 - total_simulated / total_cells if total_cells else 0.0
    return {
        "scenarios": len(scenarios),
        "designs_per_scenario": len(catalogue),
        "cells": total_cells,
        "simulated": total_simulated,
        "pruned": total_pruned,
        "prune_rate": prune_rate,
        "frontier_identical": True,
        "screen_seconds": t_screen,
        "exact_seconds": t_exact,
        "speedup": t_exact / t_screen if t_screen else float("inf"),
        "rows": rows,
    }


def run_screen_only(args) -> None:
    """The ``perfbench bench_screen`` entry: screening-tier gate."""
    screen = bench_screen(args.scale, args.repeats, args.smoke)
    print(f"analytical screening tier ({screen['cells']} cells across "
          f"{screen['scenarios']} design-space scenarios, "
          f"{screen['designs_per_scenario']} designs each, "
          f"best of {args.repeats}):\n")
    print(format_table(
        ["scenario", "cells", "closed-form", "pruned", "simulated",
         "waves", "frontier"],
        [[r["scenario"], r["cells"], r["closed_form"], r["pruned"],
          r["simulated"], r["waves"], r["frontier"]]
         for r in screen["rows"]],
    ))
    print(f"\n  exhaustive (exact)   : {screen['exact_seconds']:.3f} s")
    print(f"  screened (auto)      : {screen['screen_seconds']:.3f} s")
    print(f"  speedup              : {screen['speedup']:.2f}x")
    print(f"  prune rate           : {100 * screen['prune_rate']:.1f}% "
          f"({screen['cells'] - screen['simulated']} of "
          f"{screen['cells']} cells never individually simulated)")
    print("  frontiers            : identical to exhaustive "
          "in every scenario")
    payload = {
        "scale": args.scale,
        "repeats": args.repeats,
        "smoke": args.smoke,
        "screen": screen,
        "telemetry": telemetry.snapshot(),
    }
    with open(args.screen_out, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"\nwrote {args.screen_out}")
    if args.assert_prune is not None:
        if 100 * screen["prune_rate"] < args.assert_prune:
            raise SystemExit(
                f"screen prune rate {100 * screen['prune_rate']:.1f}% is "
                f"below the {args.assert_prune:.1f}% floor"
            )
        print(f"screen prune rate meets the "
              f"{args.assert_prune:.1f}% floor")


def run_fabric_only(args) -> None:
    """The ``perfbench bench_fabric`` entry: coordinator-overhead gate."""
    workers = args.fabric_workers
    fabric = bench_fabric(args.scale, workers, args.repeats)
    print(f"distributed fabric overhead ({fabric['cells']} cells, "
          f"{workers} workers, best of {args.repeats}):\n")
    print(f"  in-process pool   : {fabric['pool_seconds']:.3f} s")
    print(f"  socket fabric     : {fabric['fabric_seconds']:.3f} s")
    print(f"  coordinator cost  : {fabric['overhead_percent']:+.1f}%")
    payload = {
        "scale": args.scale,
        "repeats": args.repeats,
        "smoke": args.smoke,
        "fabric": fabric,
        "telemetry": telemetry.snapshot(),
    }
    with open(args.fabric_out, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"\nwrote {args.fabric_out}")
    if args.assert_overhead is not None:
        if fabric["overhead_percent"] > args.assert_overhead:
            raise SystemExit(
                f"fabric coordinator overhead "
                f"{fabric['overhead_percent']:.1f}% exceeds the "
                f"{args.assert_overhead:.1f}% ceiling"
            )
        print(f"fabric coordinator overhead within the "
              f"{args.assert_overhead:.1f}% ceiling")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("bench", nargs="?", default="all",
                        choices=("all", "bench_native", "bench_cnative",
                                 "bench_fabric", "bench_screen"),
                        help="which suite to run: 'all' (default, the five "
                             "historical measurements), 'bench_native' "
                             "(the native replay-lane gate only), "
                             "'bench_cnative' (the compiled-C kernel gate "
                             "only), 'bench_fabric' (distributed "
                             "coordinator overhead vs the in-process "
                             "pool), or 'bench_screen' (analytical "
                             "screening tier vs exhaustive design-space "
                             "sweep); --assert-speedup applies to the "
                             "selected suite, --assert-overhead to "
                             "telemetry under 'all' and to the "
                             "coordinator under 'bench_fabric', "
                             "--assert-prune to 'bench_screen'")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="run-length multiplier for the benchmarks")
    parser.add_argument("--repeats", type=int, default=3,
                        help="best-of-N timing repeats")
    parser.add_argument("--workers", type=int, default=None,
                        help="pool size for the sweep benchmark")
    parser.add_argument("--out", default="BENCH_engine.json")
    parser.add_argument("--sweepcache-out", default="BENCH_sweepcache.json")
    parser.add_argument("--pool-out", default="BENCH_pool.json")
    parser.add_argument("--pool-workers", type=int, default=None,
                        help="pool size for the trace-plane benchmark "
                             "(default: max(4, --workers))")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny everything (CI wiring check, not a "
                             "meaningful measurement)")
    parser.add_argument("--assert-overhead", type=float, default=None,
                        metavar="PCT",
                        help="fail if telemetry overhead exceeds PCT percent")
    parser.add_argument("--fusion-out", default="BENCH_fusion.json")
    parser.add_argument("--native-out", default="BENCH_native.json")
    parser.add_argument("--cnative-out", default="BENCH_cnative.json")
    parser.add_argument("--fabric-out", default="BENCH_fabric.json")
    parser.add_argument("--screen-out", default="BENCH_screen.json")
    parser.add_argument("--assert-prune", type=float, default=None,
                        metavar="PCT",
                        help="bench_screen: fail if the screened sweep "
                             "prunes fewer than PCT percent of cells")
    parser.add_argument("--fabric-workers", type=int, default=2,
                        help="worker processes for bench_fabric "
                             "(default 2, matching the CI smoke)")
    parser.add_argument("--assert-speedup", type=float, default=None,
                        metavar="X",
                        help="fail if the gated sweep speedup falls below X "
                             "(the fused sweep under 'all', the native "
                             "replay lane under 'bench_native')")
    args = parser.parse_args()

    if args.smoke:
        redirect_smoke_outputs(args, parser)

    if args.bench == "bench_native":
        if args.smoke:
            args.repeats = max(args.repeats, 2)
        run_native_only(args)
        return

    if args.bench == "bench_cnative":
        if args.smoke:
            args.repeats = max(args.repeats, 2)
        run_cnative_only(args)
        return

    if args.bench == "bench_fabric":
        if args.smoke:
            args.scale = min(args.scale, 0.05)
            args.repeats = max(args.repeats, 2)
        run_fabric_only(args)
        return

    if args.bench == "bench_screen":
        if args.smoke:
            args.scale = min(args.scale, 0.05)
            args.repeats = 1
        run_screen_only(args)
        return

    if args.smoke:
        args.scale = min(args.scale, 0.05)
        args.repeats = 1
        workers = args.workers or 2
        hit_iterations = 20_000
    else:
        workers = args.workers
        hit_iterations = 200_000

    workloads = [
        make_hitloop(hit_iterations),
        get_benchmark("eqntott"),
        get_benchmark("espresso"),
        get_benchmark("ora"),
    ]
    serial = bench_serial(workloads, args.scale, args.repeats)
    sweep_workloads = workloads + [
        get_benchmark("tomcatv"), get_benchmark("xlisp"),
    ]
    sweep = bench_sweep(sweep_workloads, args.scale, args.repeats,
                        workers or 2)

    print("serial engine throughput (best of "
          f"{args.repeats}, scale {args.scale}):\n")
    print(format_table(
        ["workload", "instructions", "fast M/s", "ref M/s", "speedup"],
        [[r["workload"], r["instructions"],
          round(r["fast_ips"] / 1e6, 2), round(r["ref_ips"] / 1e6, 2),
          round(r["speedup"], 2)] for r in serial],
    ))
    print(f"\nparallel sweep, {sweep['cells']} cells, "
          f"{sweep['workers']} workers:")
    print(f"  grouped + fast engine : {sweep['grouped_fast_seconds']:.3f} s")
    print(f"  ungrouped + reference : {sweep['ungrouped_ref_seconds']:.3f} s")
    print(f"  speedup               : {sweep['speedup']:.2f}x")

    sweepcache = bench_sweepcache(args.scale, workers or 2, args.repeats)
    print(f"\nmemoized sweep, {sweepcache['cells']} cells "
          f"({sweepcache['unique_cells']} unique, "
          f"{sweepcache['deduplicated']} deduplicated), "
          f"{sweepcache['workers']} workers:")
    print(f"  cold (empty store)    : {sweepcache['cold_seconds']:.3f} s")
    print(f"  warm (pure cache read): {sweepcache['warm_seconds']:.3f} s")
    print(f"  speedup               : {sweepcache['speedup']:.1f}x")

    pool_workers = args.pool_workers or max(4, workers or 0)
    pool = bench_pool(args.scale, pool_workers, args.repeats)
    print(f"\ncold multi-sweep ({pool['sweeps']} sweeps, "
          f"{pool['cells']} cells), {pool['workers']} workers:")
    print(f"  persistent pool + trace plane : "
          f"{pool['persistent_plane_seconds']:.3f} s")
    print(f"  fresh pools + local expansion : "
          f"{pool['fresh_baseline_seconds']:.3f} s")
    print(f"  speedup                       : {pool['speedup']:.2f}x")

    fusion = bench_fusion(args.scale, args.repeats, args.smoke)
    print(f"\ncold multi-policy sweep ({fusion['benchmarks']} benchmarks x "
          f"{fusion['policies']} policies, serial):")
    print(f"  fused (stream + replay)       : "
          f"{fusion['fused_seconds']:.3f} s")
    print(f"  unfused (per-cell execution)  : "
          f"{fusion['unfused_seconds']:.3f} s")
    print(f"  speedup                       : {fusion['speedup']:.2f}x")

    overhead = bench_telemetry(workloads, args.scale, args.repeats)
    print(f"\ntelemetry overhead (fixed per-cell cost vs realistic "
          f"cells, best of {max(args.repeats, 16)}):")
    print(f"  fixed cost per cell   : "
          f"{overhead['fixed_us_per_cell']:.1f} us")
    print(f"  realistic cell length : {overhead['cell_ms']:.3f} ms")
    print(f"  overhead              : {overhead['overhead_percent']:+.2f}%")

    snapshot = telemetry.snapshot()
    payload = {
        "scale": args.scale,
        "repeats": args.repeats,
        "smoke": args.smoke,
        "serial": serial,
        "sweep": sweep,
        "telemetry_overhead": overhead,
        "telemetry": snapshot,
    }
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"\nwrote {args.out}")

    cache_payload = {
        "scale": args.scale,
        "repeats": args.repeats,
        "smoke": args.smoke,
        "sweepcache": sweepcache,
        "telemetry": snapshot,
    }
    with open(args.sweepcache_out, "w") as fh:
        json.dump(cache_payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.sweepcache_out}")

    pool_payload = {
        "scale": args.scale,
        "repeats": args.repeats,
        "smoke": args.smoke,
        "pool": pool,
        "telemetry": snapshot,
    }
    with open(args.pool_out, "w") as fh:
        json.dump(pool_payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.pool_out}")

    fusion_payload = {
        "scale": args.scale,
        "repeats": args.repeats,
        "smoke": args.smoke,
        "fusion": fusion,
        "telemetry": snapshot,
    }
    with open(args.fusion_out, "w") as fh:
        json.dump(fusion_payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.fusion_out}")

    if args.assert_speedup is not None:
        if fusion["speedup"] < args.assert_speedup:
            raise SystemExit(
                f"fused sweep speedup {fusion['speedup']:.2f}x is below "
                f"the {args.assert_speedup:.2f}x floor"
            )
        print(f"fused sweep speedup meets the "
              f"{args.assert_speedup:.2f}x floor")

    if args.assert_overhead is not None:
        if overhead["overhead_percent"] > args.assert_overhead:
            raise SystemExit(
                f"telemetry overhead {overhead['overhead_percent']:.2f}% "
                f"exceeds the {args.assert_overhead:.2f}% budget"
            )
        print(f"telemetry overhead within the "
              f"{args.assert_overhead:.2f}% budget")


if __name__ == "__main__":
    main()
