"""Measure the simulator's throughput (instructions simulated per second).

The reproduction band for this paper flagged "simple cache sim feasible
but slow on long traces"; this tool reports where this implementation
actually lands, per benchmark and policy, so run scales can be chosen
deliberately.

Usage::

    python tools/profile_simulator.py [--scale 1.0] [benchmarks ...]
"""

from __future__ import annotations

import argparse
import time

from repro.analysis import format_table
from repro.core.policies import blocking_cache, mc, no_restrict
from repro.sim.config import baseline_config
from repro.sim.simulator import clear_caches, simulate
from repro.workloads.spec92 import BENCHMARK_ORDER, get_benchmark


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("benchmarks", nargs="*",
                        default=["tomcatv", "xlisp", "compress"])
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--all", action="store_true",
                        help="profile all 18 benchmarks")
    args = parser.parse_args()

    names = list(BENCHMARK_ORDER) if args.all else args.benchmarks
    policies = [blocking_cache(), mc(1), no_restrict()]

    rows = []
    total_instr = 0
    total_time = 0.0
    for name in names:
        workload = get_benchmark(name)
        # Warm the compile/trace caches so we measure the engine, not
        # numpy stream generation.
        simulate(workload, baseline_config(no_restrict()),
                 load_latency=10, scale=args.scale)
        for policy in policies:
            start = time.time()
            result = simulate(workload, baseline_config(policy),
                              load_latency=10, scale=args.scale)
            elapsed = time.time() - start
            rate = result.instructions / elapsed if elapsed else 0.0
            rows.append([name, policy.name, result.instructions,
                         round(elapsed, 3), round(rate / 1e6, 2)])
            total_instr += result.instructions
            total_time += elapsed
    print(format_table(
        ["benchmark", "policy", "instructions", "seconds", "M instr/s"],
        rows,
    ))
    if total_time:
        print(f"\noverall: {total_instr} instructions in {total_time:.2f}s "
              f"= {total_instr / total_time / 1e6:.2f} M instr/s")
    clear_caches()


if __name__ == "__main__":
    main()
