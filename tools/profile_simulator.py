"""Measure the simulator's throughput (instructions simulated per second).

The reproduction band for this paper flagged "simple cache sim feasible
but slow on long traces"; this tool reports where this implementation
actually lands, per benchmark and policy, so run scales can be chosen
deliberately.

Usage::

    python tools/profile_simulator.py [--scale 1.0] [benchmarks ...]
    python tools/profile_simulator.py --phases [benchmarks ...]

``--phases`` profiles the fused engine's two passes separately: the
stream pass (expand + event-stream build + functional classification,
paid once per group) and the policy replay (paid once per sibling),
with the replay phase split into the scalar python kernel, the
numpy-vectorized native lane, and the compiled-C kernel (one-time
compile cost reported separately from execution), plus per-engine
cell counts for the profiled matrix (how many cells each registry
tier would execute).
"""

from __future__ import annotations

import argparse
import time

from repro.analysis import format_table
from repro.core.policies import blocking_cache, mc, no_restrict
from repro.sim.config import baseline_config
from repro.sim.simulator import clear_caches, simulate
from repro.workloads.spec92 import BENCHMARK_ORDER, get_benchmark


def profile_phases(names, scale: float) -> None:
    """Per-group time split between the stream pass and policy replay.

    The replay phase is timed up to three times per policy: through
    the scalar python kernel, the native (numpy) lane, and the
    compiled-C kernel, so the table shows directly which cells each
    accelerated tier speeds up.  C-kernel compilation (a one-time,
    disk-cached cost) is timed separately and never pollutes the
    per-replay execution numbers.
    """
    from repro.cpu import ckernel
    from repro.cpu.replay import run_replay
    from repro.cpu.replay_cnative import cnative_supported, run_cnative
    from repro.cpu.replay_native import native_supported, run_native
    from repro.sim import engines, stream as stream_mod
    from repro.sim.simulator import expand_workload

    policies = [blocking_cache(), mc(1), no_restrict()]
    config = baseline_config()
    geometry = config.geometry
    rows = []
    stream_total = python_total = native_total = 0.0
    cnative_total = compile_total = 0.0
    engine_cells = {name: 0 for name in engines.ENGINE_ORDER}
    for name in names:
        workload = get_benchmark(name)
        clear_caches()
        start = time.perf_counter()
        _, trace = expand_workload(workload, 10, scale=scale)
        expand_s = time.perf_counter() - start
        start = time.perf_counter()
        stream = stream_mod.event_stream(workload, 10, scale,
                                         geometry.line_size)
        summary = stream_mod.functional_summary(
            workload, 10, scale, geometry, False)
        stream_s = time.perf_counter() - start
        python_s = native_s = cnative_s = 0.0
        replays = natives = cnatives = 0
        for policy in policies:
            cell = baseline_config(policy)
            tier = engines.cell_engine_tier(cell)
            engine_cells[engines.ENGINE_ORDER[tier]] += 1
            if policy.blocking:
                # The closed form reads the functional summary timed
                # above; its own arithmetic is constant time.
                continue
            start = time.perf_counter()
            run_replay(stream, trace, cell)
            python_s += time.perf_counter() - start
            replays += 1
            if native_supported(cell):
                start = time.perf_counter()
                run_native(stream, trace, cell)
                native_s += time.perf_counter() - start
                natives += 1
            if cnative_supported(cell) and ckernel.kernels_available():
                start = time.perf_counter()
                ckernel.ensure_kernel(ckernel.family_of(cell))
                compile_total += time.perf_counter() - start
                start = time.perf_counter()
                run_cnative(stream, trace, cell)
                cnative_s += time.perf_counter() - start
                cnatives += 1
        per_python = python_s / replays if replays else 0.0
        per_native = native_s / natives if natives else 0.0
        per_cnative = cnative_s / cnatives if cnatives else 0.0
        rows.append([
            name, round(1e3 * expand_s, 2), round(1e3 * stream_s, 2),
            round(1e3 * per_python, 2),
            round(1e3 * per_native, 2) if natives else None,
            round(per_python / per_native, 2) if per_native else None,
            round(1e3 * per_cnative, 2) if cnatives else None,
            round(per_python / per_cnative, 2) if per_cnative else None,
        ])
        stream_total += expand_s + stream_s
        python_total += python_s
        native_total += native_s
        cnative_total += cnative_s
        del summary
    print(format_table(
        ["benchmark", "expand ms", "stream ms", "python ms/policy",
         "native ms/policy", "native x", "C ms/policy", "C x"],
        rows,
    ))
    print(f"\nstream pass total: {stream_total:.3f}s  "
          f"python replay total: {python_total:.3f}s  "
          f"native replay total: {native_total:.3f}s  "
          f"C replay total: {cnative_total:.3f}s")
    built = [k for k in ckernel.loaded_kernels() if k.built]
    print(f"C kernel compile (one-time, disk-cached): {compile_total:.3f}s "
          f"ensure-time, {len(built)} kernels built this run "
          f"({sum(k.compile_seconds for k in built):.3f}s compiler time)")
    counts = "  ".join(f"{name}: {engine_cells[name]}"
                       for name in engines.ENGINE_ORDER)
    print(f"cells by best engine tier: {counts}")
    clear_caches()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("benchmarks", nargs="*",
                        default=["tomcatv", "xlisp", "compress"])
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--all", action="store_true",
                        help="profile all 18 benchmarks")
    parser.add_argument("--phases", action="store_true",
                        help="split fused time into stream pass vs replay")
    args = parser.parse_args()

    names = list(BENCHMARK_ORDER) if args.all else args.benchmarks
    if args.phases:
        profile_phases(names, args.scale)
        return
    policies = [blocking_cache(), mc(1), no_restrict()]

    rows = []
    total_instr = 0
    total_time = 0.0
    for name in names:
        workload = get_benchmark(name)
        # Warm the compile/trace caches so we measure the engine, not
        # numpy stream generation.
        simulate(workload, baseline_config(no_restrict()),
                 load_latency=10, scale=args.scale)
        for policy in policies:
            start = time.time()
            result = simulate(workload, baseline_config(policy),
                              load_latency=10, scale=args.scale)
            elapsed = time.time() - start
            rate = result.instructions / elapsed if elapsed else 0.0
            rows.append([name, policy.name, result.instructions,
                         round(elapsed, 3), round(rate / 1e6, 2)])
            total_instr += result.instructions
            total_time += elapsed
    print(format_table(
        ["benchmark", "policy", "instructions", "seconds", "M instr/s"],
        rows,
    ))
    if total_time:
        print(f"\noverall: {total_instr} instructions in {total_time:.2f}s "
              f"= {total_instr / total_time / 1e6:.2f} M instr/s")
    clear_caches()


if __name__ == "__main__":
    main()
