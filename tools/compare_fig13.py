"""Calibration report: our Figure 13 against the paper's, with errors.

The workload models in :mod:`repro.workloads.spec92` are calibrated so
the baseline table matches the paper's Figure 13 in shape.  This tool
quantifies the fit: per benchmark and per hardware column it prints
ours vs paper, the log-error, and summary statistics, and flags any
ordering violations (cells where our MCPI ordering across columns
disagrees with the paper's).

Usage::

    python tools/compare_fig13.py [--scale 1.0]
"""

from __future__ import annotations

import argparse
import math

from repro.analysis import format_table
from repro.core.policies import table13_policies
from repro.sim.config import baseline_config
from repro.sim.sweep import run_table
from repro.workloads.spec92 import BENCHMARK_ORDER, PAPER_FIG13, all_benchmarks

COLUMNS = ("mc=0", "mc=1", "mc=2", "fc=1", "fc=2", "no restrict")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=1.0)
    args = parser.parse_args()

    table = run_table(all_benchmarks(), table13_policies(),
                      load_latency=10, scale=args.scale)

    rows = []
    log_errors = []
    order_violations = []
    for bench in BENCHMARK_ORDER:
        ours = {c: table.mcpi(bench, c) for c in COLUMNS}
        paper = PAPER_FIG13[bench]
        row = [bench]
        for col in COLUMNS:
            row.append(ours[col])
            row.append(paper[col])
            if ours[col] > 0 and paper[col] > 0:
                log_errors.append(abs(math.log2(ours[col] / paper[col])))
        rows.append(row)

        # Ordering check: every pair of columns must sort the same way
        # (ties in the paper tolerate either direction).
        for i, a in enumerate(COLUMNS):
            for b in COLUMNS[i + 1:]:
                paper_cmp = paper[a] - paper[b]
                ours_cmp = ours[a] - ours[b]
                if abs(paper_cmp) > 0.005 and paper_cmp * ours_cmp < 0:
                    order_violations.append((bench, a, b))

    headers = ["benchmark"]
    for col in COLUMNS:
        headers.extend([f"{col}", "(paper)"])
    print(format_table(headers, rows))

    mean_err = sum(log_errors) / len(log_errors)
    worst = max(log_errors)
    print(f"\ncells compared: {len(log_errors)}")
    print(f"mean |log2(ours/paper)|: {mean_err:.2f} "
          f"(i.e. typical factor {2 ** mean_err:.2f}x)")
    print(f"worst cell factor: {2 ** worst:.2f}x")
    if order_violations:
        print(f"ordering disagreements ({len(order_violations)}):")
        for bench, a, b in order_violations:
            print(f"  {bench}: {a} vs {b}")
    else:
        print("ordering agreements: all column orderings match the paper")


if __name__ == "__main__":
    main()
