"""CI smoke check for the shared-memory trace plane.

Runs a small two-worker sweep through ``dispatch`` twice (to exercise
persistent-pool reuse and the attach path), asserts the results are
bit-identical to the serial path, retires the pool, and verifies that
no ``/dev/shm`` trace-plane segments leaked.  Exits non-zero on any
violation; prints a one-line summary otherwise.

Usage::

    PYTHONPATH=src python tools/shm_smoke.py
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro import telemetry
from repro.core.policies import blocking_cache, mc, no_restrict
from repro.sim.config import baseline_config
from repro.sim.parallel import dispatch, pool_stats, shutdown_pool
from repro.sim.simulator import clear_caches, simulate
from repro.sim.traceplane import SEGMENT_PREFIX, plane
from repro.workloads.spec92 import get_benchmark

SHM_DIR = Path("/dev/shm")


def _segments() -> set:
    if not SHM_DIR.is_dir():
        return set()
    return {p.name for p in SHM_DIR.glob(f"{SEGMENT_PREFIX}*")}


def main() -> int:
    telemetry.set_enabled(True)
    before = _segments()

    base = baseline_config()
    policies = (blocking_cache(), mc(1), no_restrict())
    cells = [
        (get_benchmark(name), base.with_policy(policy), latency, 0.05)
        for name in ("ora", "eqntott", "xlisp")
        for policy in policies
        for latency in (3, 10)
    ]

    serial = [simulate(w, c, load_latency=latency, scale=s)
              for w, c, latency, s in cells]
    clear_caches()
    first = dispatch(cells, workers=2)
    second = dispatch(cells, workers=2)

    failures = []
    if first != serial:
        failures.append("first parallel pass diverged from serial")
    if second != serial:
        failures.append("second parallel pass diverged from serial")
    stats = pool_stats()
    if stats["reused"] < 1:
        failures.append(f"persistent pool was not reused: {stats}")
    if plane().live_segments() != 0:
        failures.append(
            f"{plane().live_segments()} trace segments still registered"
        )
    shutdown_pool()
    leaked = _segments() - before
    if leaked:
        failures.append(f"leaked /dev/shm segments: {sorted(leaked)}")

    counters = telemetry.snapshot().get("counters", {})
    published = counters.get("plane.bytes_published", 0)
    created = counters.get("plane.segments_created", 0)
    unlinked = counters.get("plane.segments_unlinked", 0)
    if created != unlinked:
        failures.append(
            f"segment imbalance: {created} created, {unlinked} unlinked"
        )
    s_created = counters.get("plane.stream_segments_created", 0)
    s_unlinked = counters.get("plane.stream_segments_unlinked", 0)
    if s_created != s_unlinked:
        failures.append(
            f"stream segment imbalance: {s_created} created, "
            f"{s_unlinked} unlinked"
        )

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(
        f"shm smoke ok: {len(cells)} cells x 2 passes bit-identical to "
        f"serial; {int(created)} segments ({int(published)} bytes) "
        f"published and unlinked; pool reused {stats['reused']}x; "
        f"no /dev/shm leaks"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
