"""CI smoke check for the distributed sweep fabric.

Starts two real ``python -m repro worker`` subprocesses on loopback,
runs the Figure 13 plan (benchmarks x table-13 policies at latency
10) through the socket coordinator, and asserts the distributed
results are bit-identical to the serial in-process run.  Then runs
the sweep again, killing one worker process after the first shard
completes, and asserts the run still finishes bit-identically via
per-shard reassignment to the survivor.  Exits non-zero on any
violation; prints a one-line summary otherwise.

Usage::

    PYTHONPATH=src python tools/fabric_smoke.py [--scale 0.02]
        [--benchmarks ora,compress,...]
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

from repro.core.policies import table13_policies  # noqa: E402
from repro.sim.config import baseline_config  # noqa: E402
from repro.sim.fabric import FabricCoordinator  # noqa: E402
from repro.sim.parallel import dispatch  # noqa: E402
from repro.workloads.spec92 import all_benchmarks, get_benchmark  # noqa: E402


def start_worker() -> "tuple[subprocess.Popen, str, int]":
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "worker", "--port", "0"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=env, cwd=str(REPO_ROOT),
    )
    deadline = time.time() + 60
    while time.time() < deadline:
        line = proc.stdout.readline()
        if line.startswith("listening on "):
            address = line.split("listening on ", 1)[1].strip()
            host, _sep, port = address.rpartition(":")
            return proc, host, int(port)
        if not line and proc.poll() is not None:
            break
    proc.kill()
    raise RuntimeError("worker did not announce its address")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.02,
                        help="workload scale for the plan (default 0.02)")
    parser.add_argument("--benchmarks", default=None,
                        help="comma-separated benchmark subset "
                             "(default: all 18, the full Figure 13 plan)")
    args = parser.parse_args()

    if args.benchmarks:
        workloads = [get_benchmark(name.strip())
                     for name in args.benchmarks.split(",")]
    else:
        workloads = list(all_benchmarks())
    base = baseline_config()
    cells = [
        (workload, base.with_policy(policy), 10, args.scale)
        for workload in workloads
        for policy in table13_policies()
    ]

    serial = dispatch(cells, backend="inline", workers=1)

    failures = []
    procs = []
    try:
        procs = [start_worker() for _ in range(2)]
        addresses = [(host, port) for _proc, host, port in procs]

        coordinator = FabricCoordinator(addresses)
        distributed = coordinator.run(cells)
        if distributed != serial:
            failures.append("distributed results diverged from serial")
        used = {address: count
                for address, count in coordinator.report.worker_shards.items()
                if count}
        if len(used) < 2:
            failures.append(
                f"expected both workers to serve shards: {used}")

        # Second pass: kill worker 0 after its first completed shard.
        killed = {"done": False}

        def kill_one(_shard) -> None:
            if not killed["done"]:
                killed["done"] = True
                procs[0][0].kill()

        survivor = FabricCoordinator(addresses, max_group=1,
                                     on_shard_done=kill_one)
        resilient = survivor.run(cells)
        if resilient != serial:
            failures.append("post-kill results diverged from serial")
        if not killed["done"]:
            failures.append("kill hook never fired")
        if survivor.report.lost_workers < 1:
            failures.append(
                f"worker kill not observed: {survivor.report}")
    finally:
        for proc, _host, _port in procs:
            if proc.poll() is None:
                proc.kill()
            proc.wait(timeout=10)

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(
        f"fabric smoke ok: {len(cells)} cells "
        f"({len(workloads)} benchmarks x {len(table13_policies())} "
        f"policies) bit-identical to serial across 2 workers "
        f"({dict(sorted(used.items()))}); kill-one-worker rerun "
        f"completed via reassignment "
        f"(lost={survivor.report.lost_workers}, "
        f"reassigned={survivor.report.reassigned}, "
        f"local={survivor.report.local_cells})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
