"""Golden-value regression tests.

Every run of this simulator is deterministic, so a handful of exact
numbers pin the whole stack: compiler (schedule shape feeds the cycle
counts), workload generation (seeded streams), and the timing model.
If a change moves one of these, it changed simulated behaviour --
either update the numbers *deliberately* (and recheck calibration with
``tools/compare_fig13.py``) or find the regression.

All runs use scale 0.1 to stay fast; the values were captured from the
calibrated models.
"""

import pytest

from repro.core.policies import blocking_cache, mc, no_restrict
from repro.sim.config import baseline_config
from repro.sim.simulator import compile_workload, simulate
from repro.workloads.spec92 import get_benchmark

SCALE = 0.1


def run(name, policy, latency=10):
    return simulate(get_benchmark(name), baseline_config(policy),
                    load_latency=latency, scale=SCALE)


class TestGoldenMcpi:
    def test_ora_exactly_one(self):
        # Not approximately: the model is engineered to be exact.
        assert run("ora", blocking_cache()).mcpi == pytest.approx(1.0,
                                                                  abs=1e-3)
        assert run("ora", no_restrict()).mcpi == pytest.approx(1.0, abs=1e-3)

    def test_tomcatv_pinned(self):
        assert run("tomcatv", blocking_cache()).mcpi == pytest.approx(
            1.045, abs=0.02)
        assert run("tomcatv", mc(1)).mcpi == pytest.approx(0.546, abs=0.02)
        assert run("tomcatv", no_restrict()).mcpi == pytest.approx(
            0.170, abs=0.02)

    def test_eqntott_pinned(self):
        assert run("eqntott", blocking_cache()).mcpi == pytest.approx(
            0.121, abs=0.01)
        assert run("eqntott", mc(1)).mcpi == pytest.approx(0.084, abs=0.01)


class TestGoldenStructure:
    def test_tomcatv_compiled_shape(self):
        body = compile_workload(get_benchmark("tomcatv"), 10)
        assert body.unroll_factor == 6
        assert body.rotated_loads == 8      # the pipelining budget
        assert body.spill_count == 0

    def test_ora_compiled_shape(self):
        body = compile_workload(get_benchmark("ora"), 10)
        assert body.num_instructions == 16
        assert body.unroll_factor == 1

    def test_exact_cycle_counts_are_stable(self):
        a = run("doduc", mc(2))
        b = run("doduc", mc(2))
        assert a.cycles == b.cycles
        assert a.miss.primary_misses == b.miss.primary_misses

    def test_doduc_miss_classification_split(self):
        result = run("doduc", no_restrict())
        miss = result.miss
        # The calibrated doduc model produces all three kinds of
        # non-stall misses under the unrestricted organization.
        assert miss.primary_misses > 0
        assert miss.secondary_misses > 0
        assert miss.structural_misses == 0


def run_warm(name, policy, latency=10):
    """Golden run with the cold-start prefix discarded.

    Short golden runs are dominated by warmup for resident-working-set
    models (xlisp), so these pins measure the stationary window.
    """
    return simulate(get_benchmark(name), baseline_config(policy),
                    load_latency=latency, scale=SCALE, warmup=0.25)


class TestGoldenPostCalibration:
    """Stationary-window values pinned after the final calibration."""

    def test_doduc_pinned(self):
        assert run_warm("doduc", blocking_cache()).mcpi == pytest.approx(
            0.431, abs=0.005)
        assert run_warm("doduc", mc(1)).mcpi == pytest.approx(
            0.236, abs=0.005)
        assert run_warm("doduc", no_restrict()).mcpi == pytest.approx(
            0.133, abs=0.005)

    def test_xlisp_pinned(self):
        assert run_warm("xlisp", blocking_cache()).mcpi == pytest.approx(
            0.246, abs=0.005)
        assert run_warm("xlisp", mc(1)).mcpi == pytest.approx(
            0.166, abs=0.005)

    def test_su2cor_pinned(self):
        assert run_warm("su2cor", mc(2)).mcpi == pytest.approx(
            0.396, abs=0.005)
