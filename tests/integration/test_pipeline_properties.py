"""End-to-end property tests: random workloads through the whole stack.

Hypothesis builds random (but well-formed) kernels and address
patterns, compiles them at random latencies, and simulates them under
random policies.  Whatever the draw, the stack must preserve:

* exact stall accounting (``cycles - instructions`` fully attributed);
* determinism (same inputs, same cycle counts);
* the hardware ladder (a strictly more capable policy never loses);
* blocking-penalty linearity.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler.ir import KernelBuilder, RegClass
from repro.core.policies import blocking_cache, fc, mc, no_restrict
from repro.sim.config import MachineConfig, baseline_config
from repro.sim.simulator import clear_caches, simulate
from repro.workloads.patterns import HotCold, Strided, segment_base
from repro.workloads.workload import Workload


@st.composite
def random_workloads(draw):
    """A random small streaming/mixed workload."""
    n_streams = draw(st.integers(min_value=1, max_value=3))
    work_depth = draw(st.integers(min_value=1, max_value=4))
    with_store = draw(st.booleans())
    hot = draw(st.booleans())

    b = KernelBuilder("rand")
    stream_ids = [b.declare_stream() for _ in range(n_streams)]
    store_id = b.declare_stream() if with_store else None
    values = [b.load(sid, cls=RegClass.FP) for sid in stream_ids]
    total = values[0]
    for v in values[1:]:
        total = b.fop(total, v)
    for _ in range(work_depth):
        total = b.fop(total)
    if store_id is not None:
        b.store(store_id, total)
    kernel = b.build()

    patterns = {}
    for i, sid in enumerate(stream_ids):
        stride = draw(st.sampled_from([4, 8, 32]))
        if hot and i == 0:
            patterns[sid] = HotCold(segment_base(i), 2048, 64 * 1024,
                                    hot_fraction=0.9)
        else:
            patterns[sid] = Strided(segment_base(i), stride, 1 << 20)
    if store_id is not None:
        patterns[store_id] = Strided(segment_base(8), 8, 1 << 20)

    iterations = draw(st.integers(min_value=50, max_value=400))
    max_unroll = draw(st.sampled_from([1, 2, 4, 8]))
    pipelined = draw(st.booleans())
    return Workload(
        name="rand", kernel=kernel, patterns=patterns,
        iterations=iterations, max_unroll=max_unroll,
        software_pipeline=pipelined,
    )


policies = st.sampled_from(
    [blocking_cache(), mc(1), mc(2), fc(1), fc(2), no_restrict()]
)
latencies = st.sampled_from([1, 3, 6, 10, 20])


@settings(max_examples=40, deadline=None)
@given(workload=random_workloads(), policy=policies, latency=latencies)
def test_accounting_holds_for_random_workloads(workload, policy, latency):
    clear_caches()
    result = simulate(workload, baseline_config(policy),
                      load_latency=latency)
    result.verify_accounting()  # raises on any attribution leak
    assert result.cycles >= result.instructions
    miss = result.miss
    assert miss.load_hits + miss.load_misses == miss.loads


@settings(max_examples=15, deadline=None)
@given(workload=random_workloads(), latency=latencies)
def test_hardware_ladder_for_random_workloads(workload, latency):
    clear_caches()
    ladder = [blocking_cache(), mc(1), mc(2), no_restrict()]
    mcpis = [
        simulate(workload, baseline_config(p), load_latency=latency).mcpi
        for p in ladder
    ]
    for worse, better in zip(mcpis, mcpis[1:]):
        assert better <= worse + 1e-9


@settings(max_examples=15, deadline=None)
@given(workload=random_workloads(), latency=latencies)
def test_blocking_linear_in_penalty_for_random_workloads(workload, latency):
    clear_caches()
    values = {}
    for penalty in (8, 16):
        config = MachineConfig(policy=blocking_cache(), miss_penalty=penalty)
        result = simulate(workload, config, load_latency=latency)
        # Stall cycles = penalty x (load misses + wma store misses).
        values[penalty] = (result.total_stall_cycles, result.miss.load_misses)
    stalls8, misses8 = values[8]
    stalls16, misses16 = values[16]
    assert misses8 == misses16  # same residency trajectory
    assert stalls16 == 2 * stalls8
