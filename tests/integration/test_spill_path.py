"""End-to-end coverage of the register-spill path.

The calibrated SPEC92 models rarely spill (the pressure-aware
scheduler avoids it), so this test builds a workload that *must*
spill -- many loop-carried accumulators eat the register file -- and
drives it through compilation, trace expansion (the implicit spill
stream), the dataflow verifier, and a full simulation with exact
accounting.
"""

import pytest

from repro.compiler.check import verify_compiled_body
from repro.compiler.ir import KernelBuilder, RegClass
from repro.core.policies import mc, no_restrict
from repro.cpu.isa import OpClass
from repro.sim.config import baseline_config
from repro.sim.simulator import compile_workload, expand_workload, simulate
from repro.workloads.patterns import Strided, segment_base
from repro.workloads.workload import Workload


def spilling_workload() -> Workload:
    """Twenty loop-carried accumulators plus parallel loads.

    The accumulators claim permanent registers; the temporaries then
    overflow the remainder of the FP file once the body is unrolled.
    """
    b = KernelBuilder("spiller")
    stream = b.declare_stream()
    out = b.declare_stream()
    accs = [b.vreg(RegClass.FP) for _ in range(20)]
    values = [b.load(stream) for _ in range(8)]
    for i, acc in enumerate(accs):
        b.fop(values[i % len(values)], acc, dst=acc)
    total = values[0]
    for v in values[1:]:
        total = b.fop(total, v)
    b.store(out, total)
    return Workload(
        name="spiller",
        kernel=b.build(),
        patterns={
            stream: Strided(segment_base(0), 8, 1 << 20),
            out: Strided(segment_base(1), 8, 1 << 20),
        },
        iterations=300,
        max_unroll=4,
    )


@pytest.fixture(scope="module")
def workload():
    return spilling_workload()


class TestSpillPath:
    def test_compilation_spills(self, workload):
        compiled = compile_workload(workload, 10)
        assert compiled.spill_count > 0
        assert compiled.num_streams == workload.kernel.num_streams + 1

    def test_verifier_accepts_spilled_body(self, workload):
        compiled = compile_workload(workload, 10)
        verify_compiled_body(workload.kernel, compiled)

    def test_spill_stream_gets_the_stack_pattern(self, workload):
        compiled = compile_workload(workload, 10)
        _, trace = expand_workload(workload, 10)
        spill_ops = [
            i for i, instr in enumerate(trace.body)
            if instr.is_memory and instr.stream == compiled.spill_stream
        ]
        assert spill_ops
        footprint = workload.spill_pattern.touched_bytes()
        base_low = min(trace.addresses[i][0] for i in spill_ops)
        base_high = max(trace.addresses[i][0] for i in spill_ops)
        assert base_high - base_low < footprint

    def test_simulation_accounts_exactly(self, workload):
        for policy in (mc(1), no_restrict()):
            result = simulate(workload, baseline_config(policy),
                              load_latency=10)
            result.verify_accounting()
            # Spill traffic shows up as extra loads/stores.
            compiled = compile_workload(workload, 10)
            plain_loads = sum(
                1 for instr in compiled.instructions
                if instr.op is OpClass.LOAD
                and instr.stream != compiled.spill_stream
            )
            assert result.miss.loads > plain_loads * (
                result.instructions / compiled.num_instructions
            ) * 0.9

    def test_spill_traffic_mostly_hits(self, workload):
        # The spill area is a tiny hot stack: it should not add misses.
        result = simulate(workload, baseline_config(no_restrict()),
                          load_latency=10)
        assert result.miss.load_miss_rate < 0.35
