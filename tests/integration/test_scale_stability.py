"""Run-length stability: do the headline numbers depend on the scale?

DESIGN.md's substitution argument rests on MCPI being the mean of a
stationary process: the paper ran billions of references, we run
1e5-ish, and the claims should not depend on which.  These tests
compare the calibrated numbers at two run lengths.
"""

import pytest

from repro.core.policies import blocking_cache, mc, no_restrict
from repro.sim.config import baseline_config
from repro.sim.simulator import simulate
from repro.workloads.spec92 import get_benchmark


def mcpi(name, policy, scale, warmup=0.0):
    return simulate(get_benchmark(name), baseline_config(policy),
                    load_latency=10, scale=scale, warmup=warmup).mcpi


class TestScaleStability:
    @pytest.mark.parametrize("name", ["tomcatv", "eqntott", "xlisp"])
    @pytest.mark.parametrize(
        "policy", [blocking_cache(), mc(1), no_restrict()],
        ids=["mc0", "mc1", "inf"],
    )
    def test_quarter_vs_full_scale_within_ten_percent(self, name, policy):
        # With the cold-start prefix discarded, the models are
        # stationary: a quarter-length run reports the same MCPI.
        # (xlisp without warmup drifts ~25% between these scales --
        # its heap's one-time cold misses are a visible fraction of a
        # short run; that is exactly what `warmup=` is for.)
        short = mcpi(name, policy, 0.25, warmup=0.2)
        long = mcpi(name, policy, 1.0, warmup=0.2)
        assert short == pytest.approx(long, rel=0.10, abs=0.01)

    def test_ratios_stable_across_scales(self):
        for scale in (0.25, 1.0):
            spread = (mcpi("tomcatv", blocking_cache(), scale)
                      / mcpi("tomcatv", no_restrict(), scale))
            assert spread > 4.0  # the headline numeric-code claim

    @pytest.mark.slow
    def test_double_scale_matches_calibration(self):
        # Twice the calibrated run length: the Figure 13 columns stay
        # put (stationarity, not warmup artifacts).
        for name in ("doduc", "su2cor"):
            for policy in (blocking_cache(), no_restrict()):
                assert mcpi(name, policy, 2.0) == pytest.approx(
                    mcpi(name, policy, 1.0), rel=0.08, abs=0.01
                )
