"""Integration tests: the paper's qualitative claims must hold.

These run the real workload models at a moderate scale and assert the
*shape* results of the paper -- curve orderings, ratio bands, the
special-case behaviours (ora's flat row, blocking's linear penalty
scaling, xlisp's conflict sensitivity).  Absolute MCPI values are
calibration targets, not assertions, except where the paper's claim is
itself about a magnitude.
"""

import pytest

from dataclasses import replace

from repro.cache.geometry import FULLY_ASSOCIATIVE, CacheGeometry
from repro.core.policies import (
    blocking_cache,
    fc,
    fs,
    mc,
    no_restrict,
    with_layout,
)
from repro.sim.config import baseline_config
from repro.sim.simulator import simulate
from repro.workloads.spec92 import get_benchmark

SCALE = 0.25


def mcpi(name, policy, latency=10, base=None, scale=SCALE):
    config = (base or baseline_config()).with_policy(policy)
    return simulate(get_benchmark(name), config, load_latency=latency,
                    scale=scale).mcpi


@pytest.fixture(scope="module")
def baseline_mcpis():
    """MCPI at latency 10 for the detailed benchmarks x key policies."""
    out = {}
    for name in ("doduc", "eqntott", "su2cor", "tomcatv", "xlisp"):
        out[name] = {
            policy.name: mcpi(name, policy)
            for policy in (blocking_cache(), mc(1), mc(2), fc(1), fc(2),
                           no_restrict())
        }
    return out


class TestHardwareOrdering:
    """More miss-handling hardware never hurts (Section 4)."""

    @pytest.mark.parametrize("name", ["doduc", "tomcatv", "su2cor"])
    def test_mc_ladder(self, baseline_mcpis, name):
        row = baseline_mcpis[name]
        assert row["mc=0"] >= row["mc=1"] >= row["mc=2"] \
            >= row["no restrict"] - 1e-9

    @pytest.mark.parametrize("name", ["doduc", "tomcatv", "su2cor"])
    def test_fc_ladder(self, baseline_mcpis, name):
        row = baseline_mcpis[name]
        assert row["fc=1"] >= row["fc=2"] >= row["no restrict"] - 1e-9

    @pytest.mark.parametrize("name", ["doduc", "tomcatv"])
    def test_fc_n_at_least_as_good_as_mc_n(self, baseline_mcpis, name):
        # fc=N strictly dominates mc=N in hardware capability.
        row = baseline_mcpis[name]
        assert row["fc=1"] <= row["mc=1"] + 1e-9
        assert row["fc=2"] <= row["mc=2"] + 1e-9


class TestIntegerVsNumeric:
    """The headline conclusion: hit-under-miss suffices for integer
    codes; numeric codes want more (Section 7)."""

    @pytest.mark.parametrize("name", ["eqntott", "xlisp"])
    def test_integer_hit_under_miss_near_optimal(self, baseline_mcpis, name):
        row = baseline_mcpis[name]
        assert row["mc=1"] <= 1.35 * row["no restrict"]

    @pytest.mark.parametrize("name", ["tomcatv", "su2cor"])
    def test_numeric_needs_more_than_hit_under_miss(self, baseline_mcpis, name):
        row = baseline_mcpis[name]
        assert row["mc=1"] >= 2.0 * row["no restrict"]

    def test_numeric_total_spread_is_large(self, baseline_mcpis):
        # Paper: numeric MCPI reduced by 4-10x (17x for tomcatv).
        row = baseline_mcpis["tomcatv"]
        assert row["mc=0"] / row["no restrict"] >= 4.0

    def test_integer_total_spread_is_modest(self, baseline_mcpis):
        # Paper: integer MCPI reduced by up to ~2x.
        row = baseline_mcpis["eqntott"]
        assert row["mc=0"] / row["no restrict"] <= 2.5


class TestDoducShape:
    """Figure 5's specific observations."""

    def test_fc1_between_mc1_and_mc2(self, baseline_mcpis):
        row = baseline_mcpis["doduc"]
        assert row["mc=2"] < row["fc=1"] < row["mc=1"]

    def test_mc2_big_step_over_mc1(self, baseline_mcpis):
        row = baseline_mcpis["doduc"]
        assert row["mc=2"] <= 0.75 * row["mc=1"]

    def test_latency_one_converges(self):
        # "all the lockup-free implementations achieve very similar
        # MCPIs for a load latency of 1"
        values = [mcpi("doduc", p, latency=1)
                  for p in (mc(1), fc(1), mc(2), fc(2), no_restrict())]
        assert max(values) <= 1.6 * min(values)

    def test_nonblocking_beats_blocking_at_high_latency(self):
        assert mcpi("doduc", no_restrict(), latency=10) < \
            0.5 * mcpi("doduc", blocking_cache(), latency=10)


class TestOra:
    """Figure 13's strangest row: 1.000 across the whole spectrum."""

    def test_flat_across_all_hardware(self):
        values = [
            mcpi("ora", policy)
            for policy in (blocking_cache(), mc(1), mc(2), fc(1), fc(2),
                           no_restrict())
        ]
        assert max(values) - min(values) < 1e-9

    def test_mcpi_is_one(self):
        assert mcpi("ora", no_restrict()) == pytest.approx(1.0, abs=0.05)


class TestWriteMissAllocate:
    def test_wma_is_strictly_worse(self):
        for name in ("doduc", "tomcatv", "su2cor"):
            assert mcpi(name, blocking_cache(write_allocate=True)) > \
                mcpi(name, blocking_cache())


class TestXlispConflicts:
    """Figures 9-10: conflicts dominate xlisp; associativity removes them."""

    def test_fully_associative_cuts_mcpi(self):
        fa = replace(
            baseline_config(),
            geometry=CacheGeometry(8 * 1024, 32, FULLY_ASSOCIATIVE),
        )
        dm_value = mcpi("xlisp", mc(1))
        fa_value = mcpi("xlisp", mc(1), base=fa)
        assert fa_value < 0.6 * dm_value  # paper: 2-3x lower

    def test_ordering_preserved_under_fa(self):
        fa = replace(
            baseline_config(),
            geometry=CacheGeometry(8 * 1024, 32, FULLY_ASSOCIATIVE),
        )
        assert mcpi("xlisp", blocking_cache(), base=fa) >= \
            mcpi("xlisp", no_restrict(), base=fa) - 1e-9


class TestStructuralStallShare:
    """Figure 7 / Figure 11: stall composition."""

    def test_eqntott_structural_share_tiny(self):
        result = simulate(get_benchmark("eqntott"), baseline_config(mc(1)),
                          load_latency=10, scale=SCALE)
        assert result.pct_structural < 5.0  # paper: < 1%

    def test_restricted_numeric_structural_share_large(self):
        result = simulate(get_benchmark("tomcatv"), baseline_config(mc(1)),
                          load_latency=10, scale=SCALE)
        assert result.pct_structural > 30.0

    def test_unrestricted_has_no_structural_stalls(self):
        result = simulate(get_benchmark("tomcatv"),
                          baseline_config(no_restrict()),
                          load_latency=10, scale=SCALE)
        assert result.miss.structural_stall_cycles == 0


class TestPenaltyScaling:
    """Figure 18: blocking is linear, non-blocking is non-linear."""

    def test_blocking_linear(self):
        values = {
            p: mcpi("tomcatv", blocking_cache(),
                    base=replace(baseline_config(), miss_penalty=p))
            for p in (8, 16, 32)
        }
        assert values[16] / values[8] == pytest.approx(2.0, rel=0.03)
        assert values[32] / values[16] == pytest.approx(2.0, rel=0.03)

    def test_nonblocking_superlinear_growth(self):
        values = {
            p: mcpi("tomcatv", no_restrict(),
                    base=replace(baseline_config(), miss_penalty=p))
            for p in (16, 32)
        }
        # Paper: doubling 16 -> 32 grows unrestricted MCPI ~5x.
        assert values[32] / max(values[16], 1e-9) > 2.5


class TestLineSizeTradeoff:
    """Figure 17: smaller lines devalue secondary-miss support."""

    def test_fc1_moves_toward_mc1_with_16b_lines(self):
        base32 = baseline_config()
        base16 = replace(
            baseline_config(),
            geometry=CacheGeometry(8 * 1024, 16, 1),
            miss_penalty=14,
        )

        def rel_position(base):
            m1 = mcpi("doduc", mc(1), base=base)
            m2 = mcpi("doduc", mc(2), base=base)
            f1 = mcpi("doduc", fc(1), base=base)
            return (m1 - f1) / max(m1 - m2, 1e-9)

        # fc=1's advantage over mc=1 shrinks with 16-byte lines.
        assert rel_position(base16) < rel_position(base32)


class TestPerSetLimits:
    """Figure 15: su2cor wants multiple fetches per set."""

    def test_fs1_much_worse_than_fs2(self):
        v1 = mcpi("su2cor", fs(1))
        v2 = mcpi("su2cor", fs(2))
        assert v1 > 1.5 * v2

    def test_fs2_close_to_unrestricted(self):
        v2 = mcpi("su2cor", fs(2))
        free = mcpi("su2cor", no_restrict())
        assert v2 <= 1.6 * free


class TestFieldGranularity:
    """Figure 14: 4-byte granularity matters for 32-bit loads."""

    def test_word_granularity_insufficient_for_doduc(self):
        coarse = mcpi("doduc", with_layout(4, 1))   # one per 8B word
        fine = mcpi("doduc", with_layout(8, 1))     # one per 4B
        free = mcpi("doduc", no_restrict())
        assert fine == pytest.approx(free, rel=0.1)
        # Paper's Figure 14: the 8B-word implicit MSHR is measurably
        # worse (ratio 1.09 there; stronger here) because doduc's
        # 32-bit loads collide within 8-byte words.
        assert coarse > 1.15 * fine

    def test_four_explicit_entries_sufficient(self):
        four = mcpi("doduc", with_layout(1, 4))
        free = mcpi("doduc", no_restrict())
        assert four == pytest.approx(free, rel=0.1)


class TestCacheSizeScaling:
    """Figure 16: bigger cache, same relative structure."""

    def test_64kb_reduces_absolute_mcpi(self):
        big = replace(baseline_config(),
                      geometry=CacheGeometry(64 * 1024, 32, 1))
        assert mcpi("doduc", mc(1), base=big) < 0.6 * mcpi("doduc", mc(1))

    def test_64kb_preserves_ordering(self):
        big = replace(baseline_config(),
                      geometry=CacheGeometry(64 * 1024, 32, 1))
        values = [mcpi("doduc", p, base=big)
                  for p in (blocking_cache(), mc(1), mc(2), no_restrict())]
        assert values == sorted(values, reverse=True)
