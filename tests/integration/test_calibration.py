"""Whole-table calibration guards.

``tools/compare_fig13.py`` reports the fit between our Figure 13 and
the paper's; these tests freeze that fit as an invariant so workload
or compiler changes that silently degrade the reproduction fail CI
instead of shipping.  Thresholds are set with head-room above the
current state (mean cell error ~1.16x, worst ~2.6x, zero ordering
disagreements).
"""

import math

import pytest

from repro.core.policies import table13_policies
from repro.sim.config import baseline_config
from repro.sim.sweep import run_table
from repro.workloads.spec92 import BENCHMARK_ORDER, PAPER_FIG13, all_benchmarks

COLUMNS = ("mc=0", "mc=1", "mc=2", "fc=1", "fc=2", "no restrict")


@pytest.fixture(scope="module")
def fig13_table():
    return run_table(all_benchmarks(), table13_policies(),
                     load_latency=10, scale=0.4)


class TestCalibrationBounds:
    def test_mean_cell_error_bounded(self, fig13_table):
        errors = []
        for bench in BENCHMARK_ORDER:
            for col in COLUMNS:
                ours = fig13_table.mcpi(bench, col)
                paper = PAPER_FIG13[bench][col]
                if ours > 0 and paper > 0:
                    errors.append(abs(math.log2(ours / paper)))
        mean = sum(errors) / len(errors)
        assert mean < 0.35, f"mean cell error {2 ** mean:.2f}x"

    def test_worst_cell_error_bounded(self, fig13_table):
        worst = 0.0
        worst_cell = None
        for bench in BENCHMARK_ORDER:
            for col in COLUMNS:
                ours = fig13_table.mcpi(bench, col)
                paper = PAPER_FIG13[bench][col]
                if ours > 0 and paper > 0:
                    err = abs(math.log2(ours / paper))
                    if err > worst:
                        worst, worst_cell = err, (bench, col)
        assert worst < math.log2(3.2), (
            f"worst cell {worst_cell}: {2 ** worst:.2f}x"
        )

    def test_every_column_ordering_matches_paper(self, fig13_table):
        """The reproduction's strongest guarantee: across all 108
        cells, every pairwise MCPI ordering agrees with the paper's
        (ties in the paper accept either direction)."""
        disagreements = []
        for bench in BENCHMARK_ORDER:
            paper = PAPER_FIG13[bench]
            for i, a in enumerate(COLUMNS):
                for b in COLUMNS[i + 1:]:
                    paper_cmp = paper[a] - paper[b]
                    ours_cmp = (fig13_table.mcpi(bench, a)
                                - fig13_table.mcpi(bench, b))
                    if abs(paper_cmp) > 0.005 and paper_cmp * ours_cmp < 0:
                        disagreements.append((bench, a, b))
        assert not disagreements, disagreements

    def test_mcpi_levels_roughly_span_the_papers_range(self, fig13_table):
        # The table spans two orders of magnitude in the paper
        # (0.046 .. 1.865 under mc=0); ours must too.
        mc0 = [fig13_table.mcpi(b, "mc=0") for b in BENCHMARK_ORDER]
        assert min(mc0) < 0.15
        assert max(mc0) > 1.0
