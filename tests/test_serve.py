"""The asyncio sweep service: coalescing, progress, the TCP front end."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro import serve
from repro.core.policies import fc, mc, no_restrict
from repro.sim import wire
from repro.sim.parallel import dispatch
from repro.sim.config import baseline_config
from repro.workloads.spec92 import get_benchmark


def sweep_cells():
    workload = get_benchmark("ora")
    return [
        (workload, baseline_config(policy), 10, 0.05)
        for policy in (mc(1), mc(2), fc(2), no_restrict())
    ]


class TestSweepService:
    def test_submit_and_wait_matches_serial(self):
        cells = sweep_cells()
        serial = dispatch(cells, backend="inline")

        async def main():
            service = serve.SweepService(batch_size=2)
            return await service.submit_and_wait(cells)

        assert asyncio.run(main()) == serial

    def test_identical_inflight_requests_coalesce(self):
        cells = sweep_cells()
        serial = dispatch(cells, backend="inline")

        async def main():
            service = serve.SweepService(batch_size=1)
            job1 = service.submit(cells)
            # Same cell *set*: reversed order plus duplicates.
            job2 = service.submit(list(reversed(cells)) + cells[:2])
            assert job2 is job1
            assert job1.subscribers == 2
            assert service.coalesced == 1
            await job1.wait()
            return (job1.results_for(cells),
                    job1.results_for(list(reversed(cells))))

        in_order, reversed_order = asyncio.run(main())
        assert in_order == serial
        assert reversed_order == list(reversed(serial))

    def test_completed_job_not_coalesced(self):
        cells = sweep_cells()[:2]

        async def main():
            service = serve.SweepService()
            job1 = service.submit(cells)
            await job1.wait()
            job2 = service.submit(cells)
            assert job2 is not job1
            await job2.wait()
            return service.coalesced

        assert asyncio.run(main()) == 0

    def test_progress_streams_and_replays(self):
        cells = sweep_cells()

        async def main():
            service = serve.SweepService(batch_size=1)
            job = service.submit(cells)
            live = [event async for event in job.progress()]
            # A late subscriber replays the full history.
            replay = [event async for event in job.progress()]
            return live, replay

        live, replay = asyncio.run(main())
        kinds = [event["kind"] for event in live]
        assert kinds[0] == "started"
        assert kinds[-1] == "done"
        assert kinds.count("progress") == len(cells)
        assert replay == live

    def test_progress_counts_unique_cells(self):
        cells = sweep_cells()[:2]
        doubled = cells + cells

        async def main():
            service = serve.SweepService(batch_size=1)
            job = service.submit(doubled)
            events = [event async for event in job.progress()]
            results = job.results_for(doubled)
            return events, results

        events, results = asyncio.run(main())
        final = [e for e in events if e["kind"] == "progress"][-1]
        assert final["total"] == len(cells)  # unique, not requested
        assert results == dispatch(doubled, backend="inline")

    def test_failure_propagates_to_all_waiters(self):
        workload = get_benchmark("ora")
        bad = [(workload, baseline_config(mc(1)), -5, 0.05)]

        async def main():
            service = serve.SweepService()
            job = service.submit(bad)
            with pytest.raises(Exception):
                await job.wait()
            events = [event async for event in job.progress()]
            assert events[-1]["kind"] == "failed"
            with pytest.raises(Exception):
                job.results_for(bad)

        asyncio.run(main())

    def test_per_loop_service_instances(self):
        async def main():
            return serve.get_service()

        first = asyncio.run(main())
        second = asyncio.run(main())
        assert first is not second

    def test_batch_size_validated(self):
        with pytest.raises(Exception, match="batch_size"):
            serve.SweepService(batch_size=0)


class TestApiSurface:
    def test_submit_sweep_via_api(self):
        from repro import api

        cells = sweep_cells()[:2]
        serial = dispatch(cells, backend="inline")

        async def main():
            job = await api.submit_sweep(cells)
            return await job.wait()

        assert asyncio.run(main()) == serial


class TestTcpFrontEnd:
    def test_round_trip_and_progress(self):
        cells = sweep_cells()
        serial = dispatch(cells, backend="inline")

        async def main():
            ready = asyncio.Event()
            server_task = asyncio.create_task(
                serve.serve_forever(port=0, ready=ready))
            await ready.wait()
            host, port = ready.address
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(json.dumps({
                "kind": "submit_sweep",
                "cells": wire.cells_to_wire(cells),
            }).encode() + b"\n")
            await writer.drain()
            events = []
            final = None
            while True:
                line = await asyncio.wait_for(reader.readline(), timeout=60)
                event = json.loads(line)
                events.append(event["kind"])
                if event["kind"] in ("done", "failed"):
                    final = event
                    break
            writer.close()
            server_task.cancel()
            try:
                await server_task
            except asyncio.CancelledError:
                pass
            return events, final

        events, final = asyncio.run(main())
        assert events[0] == "started"
        assert events[-1] == "done"
        assert wire.results_from_wire(final["results"]) == serial

    def test_bad_request_reports_failure(self):
        async def main():
            ready = asyncio.Event()
            server_task = asyncio.create_task(
                serve.serve_forever(port=0, ready=ready))
            await ready.wait()
            host, port = ready.address
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(b'{"kind": "something-else"}\n')
            await writer.drain()
            line = await asyncio.wait_for(reader.readline(), timeout=30)
            writer.close()
            server_task.cancel()
            try:
                await server_task
            except asyncio.CancelledError:
                pass
            return json.loads(line)

        reply = asyncio.run(main())
        assert reply["kind"] == "failed"
        assert "unknown request" in reply["message"]
