"""Tests for SimulationResult derived quantities."""

import pytest

from repro.core.stats import MissStats
from repro.errors import SimulationError
from repro.sim.stats import SimulationResult


def result(**overrides):
    defaults = dict(
        workload="w",
        policy="p",
        load_latency=10,
        instructions=1000,
        cycles=1500,
        truedep_stall_cycles=300,
        miss=MissStats(structural_stall_cycles=200),
    )
    defaults.update(overrides)
    return SimulationResult(**defaults)


class TestDerived:
    def test_mcpi(self):
        assert result().mcpi == pytest.approx(0.5)

    def test_cpi_and_ipc(self):
        r = result()
        assert r.cpi == pytest.approx(1.5)
        assert r.ipc == pytest.approx(1 / 1.5)

    def test_stall_split(self):
        r = result()
        assert r.truedep_mcpi == pytest.approx(0.3)
        assert r.structural_mcpi == pytest.approx(0.2)
        assert r.pct_structural == pytest.approx(40.0)

    def test_reference_mix(self):
        r = result(miss=MissStats(loads=250, stores=100,
                                  structural_stall_cycles=200))
        assert r.loads_per_instruction == pytest.approx(0.25)
        assert r.stores_per_instruction == pytest.approx(0.10)

    def test_mcpi_rejected_for_dual_issue(self):
        with pytest.raises(SimulationError):
            _ = result(issue_width=2).mcpi

    def test_zero_instruction_guards(self):
        r = result(instructions=0, cycles=0, truedep_stall_cycles=0,
                   miss=MissStats())
        assert r.mcpi == 0.0
        assert r.cpi == 0.0
        assert r.pct_structural == 0.0


class TestAccounting:
    def test_exact_attribution_passes(self):
        result().verify_accounting()

    def test_mismatch_raises(self):
        bad = result(truedep_stall_cycles=100)  # 100+200 != 500
        with pytest.raises(SimulationError):
            bad.verify_accounting()

    def test_dual_issue_skipped(self):
        result(issue_width=2, truedep_stall_cycles=0).verify_accounting()
