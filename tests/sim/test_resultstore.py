"""Tests for the content-addressed on-disk result store."""

import json
import os
from dataclasses import replace

import pytest

from repro.core.policies import fc, mc, no_restrict
from repro.sim import simulator
from repro.sim.config import baseline_config
from repro.sim.resultstore import (
    ResultStore,
    cell_fingerprint,
    result_from_dict,
    result_to_dict,
    workload_key,
)
from repro.sim.simulator import simulate
from repro.workloads.spec92 import get_benchmark


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path / "store")


def _cell():
    return get_benchmark("ora"), baseline_config(mc(1)), 10, 0.05


def _result():
    workload, config, latency, scale = _cell()
    return simulate(workload, config, load_latency=latency, scale=scale)


class TestFingerprint:
    def test_stable_across_equal_instances(self):
        w1 = get_benchmark("ora")
        w2 = replace(w1, description="renamed copy")
        config = baseline_config(mc(1))
        assert cell_fingerprint(w1, config, 10, 0.05) == \
            cell_fingerprint(w2, config, 10, 0.05)

    def test_workload_key_equal_for_replace_copies(self):
        """replicate()-style seed copies share a key only at equal seeds."""
        w = get_benchmark("tomcatv")
        assert workload_key(replace(w, seed=7)) == \
            workload_key(replace(w, seed=7))
        assert workload_key(replace(w, seed=7)) != \
            workload_key(replace(w, seed=8))

    @pytest.mark.parametrize("mutate", [
        lambda w, c, lat, s: (replace(w, seed=w.seed + 1), c, lat, s),
        lambda w, c, lat, s: (replace(w, iterations=w.iterations + 1),
                              c, lat, s),
        lambda w, c, lat, s: (w, c.with_policy(fc(2)), lat, s),
        lambda w, c, lat, s: (w, replace(c, miss_penalty=32), lat, s),
        lambda w, c, lat, s: (w, replace(c, issue_width=2), lat, s),
        lambda w, c, lat, s: (w, c, lat + 1, s),
        lambda w, c, lat, s: (w, c, lat, s * 2),
    ])
    def test_any_input_change_changes_fingerprint(self, mutate):
        cell = _cell()
        assert cell_fingerprint(*cell) != cell_fingerprint(*mutate(*cell))

    def test_engine_version_bump_changes_fingerprint(self, monkeypatch):
        cell = _cell()
        before = cell_fingerprint(*cell)
        monkeypatch.setattr(simulator, "ENGINE_VERSION", "engine-next")
        assert cell_fingerprint(*cell) != before


class TestSerialization:
    def test_round_trip_is_bit_identical(self):
        result = _result()
        assert result_from_dict(
            json.loads(json.dumps(result_to_dict(result)))) == result

    def test_round_trip_preserves_histograms_and_causes(self):
        # tomcatv under a tight policy exercises structural causes.
        workload = get_benchmark("tomcatv")
        result = simulate(workload, baseline_config(mc(1)),
                          load_latency=10, scale=0.05)
        rebuilt = result_from_dict(result_to_dict(result))
        assert rebuilt.miss.structural_causes == result.miss.structural_causes
        assert rebuilt.miss.miss_inflight_hist == result.miss.miss_inflight_hist
        assert rebuilt.miss.fetch_inflight_hist == \
            result.miss.fetch_inflight_hist


class TestStore:
    def test_round_trip(self, store):
        result = _result()
        fp = cell_fingerprint(*_cell())
        assert store.store(fp, result)
        assert store.load(fp) == result

    def test_missing_entry_is_none(self, store):
        assert store.load("0" * 64) is None

    def test_corrupted_entry_falls_back_to_miss(self, store):
        fp = cell_fingerprint(*_cell())
        store.store(fp, _result())
        store.entry_path(fp).write_text("{not json at all")
        assert store.load(fp) is None
        # The broken file was reaped; a fresh store works again.
        assert not store.entry_path(fp).exists()
        assert store.store(fp, _result())
        assert store.load(fp) is not None

    def test_truncated_entry_falls_back_to_miss(self, store):
        fp = cell_fingerprint(*_cell())
        store.store(fp, _result())
        path = store.entry_path(fp)
        path.write_text(path.read_text()[: 40])
        assert store.load(fp) is None

    def test_fingerprint_mismatch_is_a_miss(self, store):
        fp = cell_fingerprint(*_cell())
        store.store(fp, _result())
        other = "f" * 64
        os.makedirs(store.entry_path(other).parent, exist_ok=True)
        os.rename(store.entry_path(fp), store.entry_path(other))
        assert store.load(other) is None

    def test_engine_version_bump_invalidates(self, store, monkeypatch):
        cell = _cell()
        result = _result()
        store.store(cell_fingerprint(*cell), result)
        monkeypatch.setattr(simulator, "ENGINE_VERSION", "engine-next")
        assert store.load(cell_fingerprint(*cell)) is None

    def test_disabled_store_never_hits(self, store):
        disabled = ResultStore(store.root, enabled=False)
        fp = cell_fingerprint(*_cell())
        assert not disabled.store(fp, _result())
        assert disabled.load(fp) is None
        # Nothing was written at all.
        assert not disabled.root.exists()

    def test_from_env_honors_knobs(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "elsewhere"))
        assert ResultStore.from_env().root == tmp_path / "elsewhere"
        assert ResultStore.from_env().enabled
        monkeypatch.setenv("REPRO_CACHE", "0")
        assert not ResultStore.from_env().enabled


class TestMaintenance:
    def test_stats_counts_entries_and_counters(self, store):
        fp = cell_fingerprint(*_cell())
        store.store(fp, _result())
        store.add_counters(hits=3, misses=1, stores=1)
        stats = store.stats()
        assert stats.entries == 1
        assert stats.total_bytes > 0
        assert stats.hits == 3 and stats.misses == 1 and stats.stores == 1
        assert stats.hit_rate == pytest.approx(0.75)

    def test_clear_removes_everything(self, store):
        fp = cell_fingerprint(*_cell())
        store.store(fp, _result())
        assert store.clear() == 1
        assert store.stats().entries == 0
        assert store.load(fp) is None

    def test_gc_by_size_evicts_oldest_first(self, store):
        result = _result()
        fps = []
        for latency in (1, 2, 3):
            cell = _cell()[0], _cell()[1], latency, 0.05
            fp = cell_fingerprint(*cell)
            fps.append(fp)
            store.store(fp, result)
            os.utime(store.entry_path(fp), (1000.0 * latency, 1000.0 * latency))
        entry_size = store.entry_path(fps[0]).stat().st_size
        removed = store.gc(max_bytes=2 * entry_size)
        assert removed == 1
        assert store.load(fps[0]) is None  # the oldest went
        assert store.load(fps[1]) is not None
        assert store.load(fps[2]) is not None

    def test_gc_by_age(self, store):
        fp = cell_fingerprint(*_cell())
        store.store(fp, _result())
        os.utime(store.entry_path(fp), (0, 0))  # 1970: ancient
        assert store.gc(max_age_days=1) == 1
        assert store.load(fp) is None

    def test_gc_reaps_foreign_schema_dirs(self, store):
        fp = cell_fingerprint(*_cell())
        store.store(fp, _result())
        stale = store.root / "v0" / "ab"
        stale.mkdir(parents=True)
        (stale / "deadbeef.json").write_text("{}")
        assert store.gc() == 1
        assert not (store.root / "v0").exists()
        assert store.load(fp) is not None
