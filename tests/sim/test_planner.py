"""Tests for the unified sweep planner: dedup, memoization, equality."""

from dataclasses import replace

import pytest

import repro.sim.planner as planner
import repro.sim.simulator
from repro.core.policies import (
    blocking_cache,
    fc,
    fs,
    mc,
    no_restrict,
    with_layout,
)
from repro.sim.config import baseline_config
from repro.sim.parallel import run_cells
from repro.sim.planner import cached_simulate, execute_cells, run_plan
from repro.sim.resultstore import ResultStore
from repro.sim.simulator import simulate
from repro.workloads.spec92 import get_benchmark


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path / "store")


def _count_simulations(monkeypatch):
    """Wrap the simulator entry point with a call counter."""
    calls = []
    real = repro.sim.simulator.simulate

    def counting(*args, **kwargs):
        calls.append(args)
        return real(*args, **kwargs)

    monkeypatch.setattr(repro.sim.simulator, "simulate", counting)
    return calls


class TestDedup:
    def test_identical_cells_simulated_once(self, store, monkeypatch):
        calls = _count_simulations(monkeypatch)
        cell = (get_benchmark("ora"), baseline_config(mc(1)), 10, 0.05)
        results, report = run_plan([cell] * 5, store=store)
        assert len(results) == 5
        assert report.cells == 5
        assert report.unique == 1
        assert report.deduplicated == 4
        assert report.simulated == 1
        assert len(calls) == 1
        assert all(r == results[0] for r in results)

    def test_shared_baseline_across_figures_dedups(self, store):
        """The no-restrict cell every figure shares is run exactly once."""
        workload = get_benchmark("eqntott")
        base = baseline_config()
        fig_a = [(workload, base.with_policy(p), 10, 0.05)
                 for p in (mc(1), no_restrict())]
        fig_b = [(workload, base.with_policy(p), 10, 0.05)
                 for p in (fc(2), no_restrict())]
        _, report = run_plan(fig_a + fig_b, store=store)
        assert report.cells == 4
        assert report.unique == 3
        assert report.deduplicated == 1

    def test_equal_but_distinct_workloads_dedup(self, store, monkeypatch):
        """replace() copies with identical content collapse to one cell."""
        calls = _count_simulations(monkeypatch)
        workload = get_benchmark("ora")
        twin = replace(workload, seed=workload.seed)
        config = baseline_config(mc(1))
        results, report = run_plan(
            [(workload, config, 10, 0.05), (twin, config, 10, 0.05)],
            store=store,
        )
        assert report.unique == 1
        assert len(calls) == 1
        assert results[0] == results[1]

    def test_different_seeds_do_not_dedup(self, store):
        workload = get_benchmark("ora")
        other = replace(workload, seed=workload.seed + 1)
        config = baseline_config(mc(1))
        _, report = run_plan(
            [(workload, config, 10, 0.05), (other, config, 10, 0.05)],
            store=store,
        )
        assert report.unique == 2


class TestMemoization:
    def test_second_run_is_pure_cache_read(self, store, monkeypatch):
        cells = [
            (get_benchmark("ora"), baseline_config(p), 10, 0.05)
            for p in (blocking_cache(), mc(1), no_restrict())
        ]
        first, first_report = run_plan(cells, store=store)
        assert first_report.simulated == 3

        calls = _count_simulations(monkeypatch)
        second, second_report = run_plan(cells, store=store)
        assert second_report.simulated == 0
        assert second_report.store_hits == 3
        assert second_report.hit_rate == 1.0
        assert calls == []
        assert second == first

    def test_disabled_store_still_dedups_but_never_caches(self, tmp_path):
        disabled = ResultStore(tmp_path / "off", enabled=False)
        cell = (get_benchmark("ora"), baseline_config(mc(1)), 10, 0.05)
        _, r1 = run_plan([cell, cell], store=disabled)
        _, r2 = run_plan([cell], store=disabled)
        assert r1.deduplicated == 1 and r1.simulated == 1
        assert r2.store_hits == 0 and r2.simulated == 1

    def test_corrupt_entry_resimulated_transparently(self, store):
        cell = (get_benchmark("ora"), baseline_config(mc(1)), 10, 0.05)
        first, _ = run_plan([cell], store=store)
        # Corrupt every stored entry in place.
        for path in store._iter_entries():
            path.write_text("garbage")
        second, report = run_plan([cell], store=store)
        assert report.simulated == 1
        assert second == first

    def test_cached_simulate_matches_simulate(self, store):
        workload = get_benchmark("eqntott")
        config = baseline_config(fc(2))
        direct = simulate(workload, config, load_latency=6, scale=0.05)
        cold = cached_simulate(workload, config, load_latency=6, scale=0.05,
                               store=store)
        warm = cached_simulate(workload, config, load_latency=6, scale=0.05,
                               store=store)
        assert cold == direct
        assert warm == direct
        assert store.stats().hits == 1


class TestBitEquality:
    #: One policy per MSHR family: blocking, mc=, fc=, fs=, field
    #: layout, unrestricted.
    POLICY_FAMILIES = (
        blocking_cache(write_allocate=True),
        mc(1),
        fc(2),
        fs(1),
        with_layout(2, 2),
        no_restrict(),
    )

    def test_serial_parallel_cached_all_identical(self, store):
        """The acceptance check: three execution paths, one answer."""
        workload = get_benchmark("tomcatv")
        base = baseline_config()
        cells = [(workload, base.with_policy(p), 10, 0.05)
                 for p in self.POLICY_FAMILIES]

        direct = [simulate(w, c, load_latency=lat, scale=s)
                  for w, c, lat, s in cells]
        pooled = run_cells(cells, workers=2)
        cold = execute_cells(cells, store=store)
        warm = execute_cells(cells, store=store)

        assert pooled == direct
        assert cold == direct
        assert warm == direct

    def test_warm_results_preserve_every_counter(self, store):
        workload = get_benchmark("su2cor")
        config = baseline_config(fs(1))
        cold = execute_cells([(workload, config, 10, 0.05)], store=store)[0]
        warm = execute_cells([(workload, config, 10, 0.05)], store=store)[0]
        assert warm.cycles == cold.cycles
        assert warm.instructions == cold.instructions
        assert warm.truedep_stall_cycles == cold.truedep_stall_cycles
        assert warm.miss == cold.miss
        assert warm.mcpi == cold.mcpi
        warm.verify_accounting()


class TestReportPlumbing:
    def test_last_report_updated(self, store):
        cell = (get_benchmark("ora"), baseline_config(mc(1)), 10, 0.05)
        _, report = run_plan([cell], store=store)
        assert planner.last_report is report
        assert "1 simulated" in report.describe()

    def test_counters_accumulate_in_store(self, store):
        cell = (get_benchmark("ora"), baseline_config(mc(1)), 10, 0.05)
        run_plan([cell], store=store)
        run_plan([cell], store=store)
        stats = store.stats()
        assert stats.misses == 1
        assert stats.hits == 1
        assert stats.stores == 1
