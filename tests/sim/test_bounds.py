"""The analytical bound primitives behind the screening tier.

Soundness is the whole contract: every ``cell_bounds`` interval must
contain the reference engine's exact end cycle, the closed-form
families must be bit-exact, and the fallback causes must fire exactly
where the model says the summary cannot be bounded.  The property
test drives randomized small workloads across policy families,
geometries, and scheduled latencies against the unoptimized reference
loops, which share no code with the stream pass or the bound math.
"""

from __future__ import annotations

from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.geometry import CacheGeometry
from repro.compiler.ir import KernelBuilder
from repro.core.policies import (
    blocking_cache,
    fc,
    fs,
    in_cache,
    inverted,
    mc,
    no_restrict,
    with_layout,
)
from repro.sim import bounds
from repro.sim.bounds import (
    cell_bounds,
    bounds_cache_sizes,
    dependency_floor,
    screen_support,
)
from repro.sim.stream import event_stream
from repro.sim.config import MachineConfig, baseline_config
from repro.sim.simulator import clear_caches, simulate
from repro.workloads.patterns import Strided
from repro.workloads.spec92 import get_benchmark
from repro.workloads.workload import Workload

POLICIES = [
    blocking_cache(),
    blocking_cache(write_allocate=True),
    mc(1),
    mc(4),
    fc(2),
    fs(1),
    no_restrict(),
    inverted(8),
    in_cache(1),
    with_layout(2, 2),
    with_layout(4, 1),
]

GEOMETRIES = [
    CacheGeometry(size=1024, line_size=32, associativity=1),
    CacheGeometry(size=4096, line_size=32, associativity=2),
    CacheGeometry(size=2048, line_size=16, associativity=1),
]


@st.composite
def random_workloads(draw):
    n_loads = draw(st.integers(min_value=1, max_value=3))
    n_stores = draw(st.integers(min_value=0, max_value=2))
    builder = KernelBuilder("boundsprop")
    patterns = {}

    def pattern():
        stride = draw(st.sampled_from([8, 16, 32]))
        region = draw(st.sampled_from([256, 1024, 4096, 16384]))
        base = draw(st.integers(min_value=0, max_value=512)) * 8
        return Strided(base, stride, region)

    values = []
    for _ in range(n_loads):
        stream = builder.declare_stream()
        patterns[stream] = pattern()
        values.append(builder.load(stream))
    result = values[0]
    for _ in range(draw(st.integers(min_value=0, max_value=2))):
        result = builder.fop(result)
    for _ in range(n_stores):
        stream = builder.declare_stream()
        patterns[stream] = pattern()
        builder.store(stream, draw(st.sampled_from(values + [result])))
    return Workload(
        name="boundsprop",
        kernel=builder.build(),
        patterns=patterns,
        iterations=draw(st.integers(min_value=30, max_value=200)),
        max_unroll=draw(st.sampled_from([1, 2, 4])),
        seed=draw(st.integers(min_value=1, max_value=2**16)),
    )


@settings(max_examples=40, deadline=None)
@given(
    workload=random_workloads(),
    policy=st.sampled_from(POLICIES),
    geometry=st.sampled_from(GEOMETRIES),
    latency=st.sampled_from([1, 3, 10, 20]),
)
def test_bounds_contain_reference_cycles(workload, policy, geometry,
                                         latency):
    config = MachineConfig(geometry=geometry, policy=policy,
                           miss_penalty=16, issue_width=1)
    b = cell_bounds(workload, config, latency, 1.0)
    assert b is not None, "single-issue ideal-WB cells must be boundable"
    ref = simulate(workload, config, load_latency=latency, scale=1.0,
                   engine="reference")
    assert b.instructions == ref.instructions
    assert b.lower_cycles <= ref.cycles <= b.upper_cycles
    if b.exact:
        assert ref.cycles == b.upper_cycles
    assert b.mcpi_low <= ref.mcpi <= b.mcpi_high


class TestClosedForms:
    @pytest.mark.parametrize("policy", [blocking_cache(),
                                        blocking_cache(write_allocate=True)])
    @pytest.mark.parametrize("name", ["eqntott", "compress", "tomcatv"])
    def test_blocking_family_is_bit_exact(self, name, policy):
        workload = get_benchmark(name)
        config = baseline_config().with_policy(policy)
        b = cell_bounds(workload, config, 10, 0.05)
        exact = simulate(workload, config, load_latency=10, scale=0.05)
        assert b.exact
        assert b.method == "blocking"
        assert b.lower_cycles == b.upper_cycles == exact.cycles
        assert b.mcpi_high == exact.mcpi

    def test_perfect_cache_collapses_to_instructions(self):
        workload = get_benchmark("eqntott")
        config = replace(baseline_config(), perfect_cache=True)
        b = cell_bounds(workload, config, 10, 0.05)
        exact = simulate(workload, config, load_latency=10, scale=0.05)
        assert b.exact
        assert b.upper_cycles == exact.cycles == b.instructions

    def test_nonblocking_interval_brackets_blocking_value(self):
        # The non-blocking upper is the blocking closed form over the
        # same summary: strictly the paper's monotonicity claim.
        workload = get_benchmark("compress")
        config = baseline_config().with_policy(mc(1))
        blocking = cell_bounds(
            workload, baseline_config().with_policy(blocking_cache()),
            10, 0.05)
        b = cell_bounds(workload, config, 10, 0.05)
        assert not b.exact
        assert b.method == "interval"
        assert b.upper_cycles == blocking.upper_cycles
        assert b.lower_cycles >= b.instructions


class TestFallbackCauses:
    def test_dual_issue_is_unboundable(self):
        config = replace(baseline_config(), issue_width=2)
        assert screen_support(config) == "dual_issue"
        assert cell_bounds(get_benchmark("eqntott"), config, 10, 0.05) is None

    def test_fill_ports_is_unboundable(self):
        policy = replace(no_restrict(), fill_ports=1)
        config = baseline_config().with_policy(policy)
        assert screen_support(config) == "fill_ports"

    def test_write_allocate_nonblocking_is_unboundable(self):
        policy = replace(mc(2), write_allocate_blocking=True)
        config = baseline_config().with_policy(policy)
        assert screen_support(config) == "wma_nonblocking"

    def test_supported_cells_have_no_cause(self):
        for policy in POLICIES:
            config = baseline_config().with_policy(policy)
            assert screen_support(config) is None


class TestFiniteWriteBuffer:
    @pytest.mark.parametrize("policy", [mc(1), blocking_cache()])
    def test_bracket_widens_but_stays_sound(self, policy):
        workload = get_benchmark("compress")
        config = replace(baseline_config().with_policy(policy),
                         write_buffer_depth=1,
                         write_buffer_retire_cycles=3)
        b = cell_bounds(workload, config, 10, 0.05)
        exact = simulate(workload, config, load_latency=10, scale=0.05)
        assert b.method == "interval"
        assert not b.exact
        assert b.lower_cycles <= exact.cycles <= b.upper_cycles


class TestFloorsAndCaches:
    def test_lower_bound_never_below_instructions(self):
        workload = get_benchmark("eqntott")
        config = baseline_config().with_policy(no_restrict())
        b = cell_bounds(workload, config, 10, 0.05)
        assert b.lower_cycles >= b.instructions

    def test_dependency_floor_is_cached_per_stream(self):
        clear_caches()
        workload = get_benchmark("eqntott")
        stream = event_stream(workload, 10, 0.05, 32)
        floor_a = dependency_floor(workload, 10, 0.05, stream, 16)
        sizes = bounds_cache_sizes()
        floor_b = dependency_floor(workload, 10, 0.05, stream, 16)
        assert floor_a == floor_b
        assert floor_a >= 0
        assert bounds_cache_sizes() == sizes

    def test_clear_caches_drops_bound_caches(self):
        workload = get_benchmark("eqntott")
        cell_bounds(workload, baseline_config().with_policy(mc(1)),
                    10, 0.05)
        assert sum(bounds_cache_sizes()) > 0
        clear_caches()
        assert sum(bounds_cache_sizes()) == 0

    def test_walk_cap_degrades_to_a_sound_coarse_floor(self, monkeypatch):
        workload = get_benchmark("compress")
        config = baseline_config().with_policy(mc(1))
        clear_caches()
        monkeypatch.setattr(bounds, "MAX_WALK_STEPS", 3)
        capped = cell_bounds(workload, config, 10, 0.05)
        exact = simulate(workload, config, load_latency=10, scale=0.05)
        assert capped.lower_cycles <= exact.cycles <= capped.upper_cycles
        clear_caches()